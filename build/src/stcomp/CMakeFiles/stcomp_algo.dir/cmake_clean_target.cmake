file(REMOVE_RECURSE
  "libstcomp_algo.a"
)
