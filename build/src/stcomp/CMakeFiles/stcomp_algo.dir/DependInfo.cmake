
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/algo/angular.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/angular.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/angular.cc.o.d"
  "/root/repo/src/stcomp/algo/bottom_up.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/bottom_up.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/bottom_up.cc.o.d"
  "/root/repo/src/stcomp/algo/compression.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/compression.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/compression.cc.o.d"
  "/root/repo/src/stcomp/algo/douglas_peucker.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/douglas_peucker.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/douglas_peucker.cc.o.d"
  "/root/repo/src/stcomp/algo/opening_window.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/opening_window.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/opening_window.cc.o.d"
  "/root/repo/src/stcomp/algo/path_hull.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/path_hull.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/path_hull.cc.o.d"
  "/root/repo/src/stcomp/algo/perpendicular.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/perpendicular.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/perpendicular.cc.o.d"
  "/root/repo/src/stcomp/algo/radial_distance.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/radial_distance.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/radial_distance.cc.o.d"
  "/root/repo/src/stcomp/algo/registry.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/registry.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/registry.cc.o.d"
  "/root/repo/src/stcomp/algo/reumann_witkam.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/reumann_witkam.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/reumann_witkam.cc.o.d"
  "/root/repo/src/stcomp/algo/sampling.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/sampling.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/sampling.cc.o.d"
  "/root/repo/src/stcomp/algo/sliding_window.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/sliding_window.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/sliding_window.cc.o.d"
  "/root/repo/src/stcomp/algo/spatiotemporal.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/spatiotemporal.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/spatiotemporal.cc.o.d"
  "/root/repo/src/stcomp/algo/squish.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/squish.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/squish.cc.o.d"
  "/root/repo/src/stcomp/algo/time_ratio.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/time_ratio.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/time_ratio.cc.o.d"
  "/root/repo/src/stcomp/algo/visvalingam.cc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/visvalingam.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_algo.dir/algo/visvalingam.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
