# Empty compiler generated dependencies file for stcomp_algo.
# This may be replaced when dependencies are built.
