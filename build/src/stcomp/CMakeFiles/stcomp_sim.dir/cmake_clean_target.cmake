file(REMOVE_RECURSE
  "libstcomp_sim.a"
)
