
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/sim/gps_noise.cc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/gps_noise.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/gps_noise.cc.o.d"
  "/root/repo/src/stcomp/sim/map_matching.cc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/map_matching.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/map_matching.cc.o.d"
  "/root/repo/src/stcomp/sim/paper_dataset.cc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/paper_dataset.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/paper_dataset.cc.o.d"
  "/root/repo/src/stcomp/sim/random.cc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/random.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/random.cc.o.d"
  "/root/repo/src/stcomp/sim/road_network.cc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/road_network.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/road_network.cc.o.d"
  "/root/repo/src/stcomp/sim/trip_generator.cc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/trip_generator.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_sim.dir/sim/trip_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
