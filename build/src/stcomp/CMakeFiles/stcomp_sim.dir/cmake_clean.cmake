file(REMOVE_RECURSE
  "CMakeFiles/stcomp_sim.dir/sim/gps_noise.cc.o"
  "CMakeFiles/stcomp_sim.dir/sim/gps_noise.cc.o.d"
  "CMakeFiles/stcomp_sim.dir/sim/map_matching.cc.o"
  "CMakeFiles/stcomp_sim.dir/sim/map_matching.cc.o.d"
  "CMakeFiles/stcomp_sim.dir/sim/paper_dataset.cc.o"
  "CMakeFiles/stcomp_sim.dir/sim/paper_dataset.cc.o.d"
  "CMakeFiles/stcomp_sim.dir/sim/random.cc.o"
  "CMakeFiles/stcomp_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/stcomp_sim.dir/sim/road_network.cc.o"
  "CMakeFiles/stcomp_sim.dir/sim/road_network.cc.o.d"
  "CMakeFiles/stcomp_sim.dir/sim/trip_generator.cc.o"
  "CMakeFiles/stcomp_sim.dir/sim/trip_generator.cc.o.d"
  "libstcomp_sim.a"
  "libstcomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
