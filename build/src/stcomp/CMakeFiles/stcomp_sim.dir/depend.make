# Empty dependencies file for stcomp_sim.
# This may be replaced when dependencies are built.
