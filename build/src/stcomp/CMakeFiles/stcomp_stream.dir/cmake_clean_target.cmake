file(REMOVE_RECURSE
  "libstcomp_stream.a"
)
