
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/stream/batch_adapter.cc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/batch_adapter.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/batch_adapter.cc.o.d"
  "/root/repo/src/stcomp/stream/dead_reckoning_stream.cc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/dead_reckoning_stream.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/dead_reckoning_stream.cc.o.d"
  "/root/repo/src/stcomp/stream/fleet_compressor.cc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/fleet_compressor.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/fleet_compressor.cc.o.d"
  "/root/repo/src/stcomp/stream/online_compressor.cc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/online_compressor.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/online_compressor.cc.o.d"
  "/root/repo/src/stcomp/stream/opening_window_stream.cc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/opening_window_stream.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/opening_window_stream.cc.o.d"
  "/root/repo/src/stcomp/stream/squish_stream.cc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/squish_stream.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_stream.dir/stream/squish_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_store.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
