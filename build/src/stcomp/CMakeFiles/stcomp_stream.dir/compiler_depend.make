# Empty compiler generated dependencies file for stcomp_stream.
# This may be replaced when dependencies are built.
