file(REMOVE_RECURSE
  "CMakeFiles/stcomp_stream.dir/stream/batch_adapter.cc.o"
  "CMakeFiles/stcomp_stream.dir/stream/batch_adapter.cc.o.d"
  "CMakeFiles/stcomp_stream.dir/stream/dead_reckoning_stream.cc.o"
  "CMakeFiles/stcomp_stream.dir/stream/dead_reckoning_stream.cc.o.d"
  "CMakeFiles/stcomp_stream.dir/stream/fleet_compressor.cc.o"
  "CMakeFiles/stcomp_stream.dir/stream/fleet_compressor.cc.o.d"
  "CMakeFiles/stcomp_stream.dir/stream/online_compressor.cc.o"
  "CMakeFiles/stcomp_stream.dir/stream/online_compressor.cc.o.d"
  "CMakeFiles/stcomp_stream.dir/stream/opening_window_stream.cc.o"
  "CMakeFiles/stcomp_stream.dir/stream/opening_window_stream.cc.o.d"
  "CMakeFiles/stcomp_stream.dir/stream/squish_stream.cc.o"
  "CMakeFiles/stcomp_stream.dir/stream/squish_stream.cc.o.d"
  "libstcomp_stream.a"
  "libstcomp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
