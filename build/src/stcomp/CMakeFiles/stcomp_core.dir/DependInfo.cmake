
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/core/interpolation.cc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/interpolation.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/interpolation.cc.o.d"
  "/root/repo/src/stcomp/core/kinematics.cc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/kinematics.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/kinematics.cc.o.d"
  "/root/repo/src/stcomp/core/spline.cc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/spline.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/spline.cc.o.d"
  "/root/repo/src/stcomp/core/trajectory.cc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/trajectory.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/trajectory.cc.o.d"
  "/root/repo/src/stcomp/core/trajectory_stats.cc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/trajectory_stats.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_core.dir/core/trajectory_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
