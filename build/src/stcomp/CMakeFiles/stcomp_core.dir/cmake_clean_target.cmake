file(REMOVE_RECURSE
  "libstcomp_core.a"
)
