file(REMOVE_RECURSE
  "CMakeFiles/stcomp_core.dir/core/interpolation.cc.o"
  "CMakeFiles/stcomp_core.dir/core/interpolation.cc.o.d"
  "CMakeFiles/stcomp_core.dir/core/kinematics.cc.o"
  "CMakeFiles/stcomp_core.dir/core/kinematics.cc.o.d"
  "CMakeFiles/stcomp_core.dir/core/spline.cc.o"
  "CMakeFiles/stcomp_core.dir/core/spline.cc.o.d"
  "CMakeFiles/stcomp_core.dir/core/trajectory.cc.o"
  "CMakeFiles/stcomp_core.dir/core/trajectory.cc.o.d"
  "CMakeFiles/stcomp_core.dir/core/trajectory_stats.cc.o"
  "CMakeFiles/stcomp_core.dir/core/trajectory_stats.cc.o.d"
  "libstcomp_core.a"
  "libstcomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
