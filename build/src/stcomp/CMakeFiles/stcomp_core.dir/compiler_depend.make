# Empty compiler generated dependencies file for stcomp_core.
# This may be replaced when dependencies are built.
