file(REMOVE_RECURSE
  "libstcomp_exp.a"
)
