file(REMOVE_RECURSE
  "CMakeFiles/stcomp_exp.dir/exp/figures.cc.o"
  "CMakeFiles/stcomp_exp.dir/exp/figures.cc.o.d"
  "CMakeFiles/stcomp_exp.dir/exp/sweep.cc.o"
  "CMakeFiles/stcomp_exp.dir/exp/sweep.cc.o.d"
  "CMakeFiles/stcomp_exp.dir/exp/table.cc.o"
  "CMakeFiles/stcomp_exp.dir/exp/table.cc.o.d"
  "libstcomp_exp.a"
  "libstcomp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
