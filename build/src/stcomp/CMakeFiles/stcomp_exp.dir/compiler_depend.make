# Empty compiler generated dependencies file for stcomp_exp.
# This may be replaced when dependencies are built.
