file(REMOVE_RECURSE
  "libstcomp_gps.a"
)
