
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/gps/civil_time.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/civil_time.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/civil_time.cc.o.d"
  "/root/repo/src/stcomp/gps/csv.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/csv.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/csv.cc.o.d"
  "/root/repo/src/stcomp/gps/gpx.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/gpx.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/gpx.cc.o.d"
  "/root/repo/src/stcomp/gps/nmea.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/nmea.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/nmea.cc.o.d"
  "/root/repo/src/stcomp/gps/plt.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/plt.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/plt.cc.o.d"
  "/root/repo/src/stcomp/gps/projection.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/projection.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/projection.cc.o.d"
  "/root/repo/src/stcomp/gps/xml_scanner.cc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/xml_scanner.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_gps.dir/gps/xml_scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
