src/stcomp/CMakeFiles/stcomp_gps.dir/gps/civil_time.cc.o: \
 /root/repo/src/stcomp/gps/civil_time.cc /usr/include/stdc-predef.h \
 /root/repo/src/stcomp/gps/civil_time.h
