# Empty compiler generated dependencies file for stcomp_gps.
# This may be replaced when dependencies are built.
