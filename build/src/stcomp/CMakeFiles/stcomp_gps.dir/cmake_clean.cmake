file(REMOVE_RECURSE
  "CMakeFiles/stcomp_gps.dir/gps/civil_time.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/civil_time.cc.o.d"
  "CMakeFiles/stcomp_gps.dir/gps/csv.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/csv.cc.o.d"
  "CMakeFiles/stcomp_gps.dir/gps/gpx.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/gpx.cc.o.d"
  "CMakeFiles/stcomp_gps.dir/gps/nmea.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/nmea.cc.o.d"
  "CMakeFiles/stcomp_gps.dir/gps/plt.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/plt.cc.o.d"
  "CMakeFiles/stcomp_gps.dir/gps/projection.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/projection.cc.o.d"
  "CMakeFiles/stcomp_gps.dir/gps/xml_scanner.cc.o"
  "CMakeFiles/stcomp_gps.dir/gps/xml_scanner.cc.o.d"
  "libstcomp_gps.a"
  "libstcomp_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
