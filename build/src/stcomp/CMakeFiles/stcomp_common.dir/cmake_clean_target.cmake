file(REMOVE_RECURSE
  "libstcomp_common.a"
)
