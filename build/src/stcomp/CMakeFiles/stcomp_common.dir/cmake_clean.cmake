file(REMOVE_RECURSE
  "CMakeFiles/stcomp_common.dir/common/flags.cc.o"
  "CMakeFiles/stcomp_common.dir/common/flags.cc.o.d"
  "CMakeFiles/stcomp_common.dir/common/status.cc.o"
  "CMakeFiles/stcomp_common.dir/common/status.cc.o.d"
  "CMakeFiles/stcomp_common.dir/common/strings.cc.o"
  "CMakeFiles/stcomp_common.dir/common/strings.cc.o.d"
  "libstcomp_common.a"
  "libstcomp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
