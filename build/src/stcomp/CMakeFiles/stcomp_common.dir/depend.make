# Empty dependencies file for stcomp_common.
# This may be replaced when dependencies are built.
