file(REMOVE_RECURSE
  "CMakeFiles/stcomp_error.dir/error/clustering.cc.o"
  "CMakeFiles/stcomp_error.dir/error/clustering.cc.o.d"
  "CMakeFiles/stcomp_error.dir/error/cubic_error.cc.o"
  "CMakeFiles/stcomp_error.dir/error/cubic_error.cc.o.d"
  "CMakeFiles/stcomp_error.dir/error/evaluation.cc.o"
  "CMakeFiles/stcomp_error.dir/error/evaluation.cc.o.d"
  "CMakeFiles/stcomp_error.dir/error/integration.cc.o"
  "CMakeFiles/stcomp_error.dir/error/integration.cc.o.d"
  "CMakeFiles/stcomp_error.dir/error/similarity.cc.o"
  "CMakeFiles/stcomp_error.dir/error/similarity.cc.o.d"
  "CMakeFiles/stcomp_error.dir/error/spatial_error.cc.o"
  "CMakeFiles/stcomp_error.dir/error/spatial_error.cc.o.d"
  "CMakeFiles/stcomp_error.dir/error/synchronous_error.cc.o"
  "CMakeFiles/stcomp_error.dir/error/synchronous_error.cc.o.d"
  "libstcomp_error.a"
  "libstcomp_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
