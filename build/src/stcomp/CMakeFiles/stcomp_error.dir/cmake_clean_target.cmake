file(REMOVE_RECURSE
  "libstcomp_error.a"
)
