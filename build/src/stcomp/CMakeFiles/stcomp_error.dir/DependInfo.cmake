
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/error/clustering.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/clustering.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/clustering.cc.o.d"
  "/root/repo/src/stcomp/error/cubic_error.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/cubic_error.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/cubic_error.cc.o.d"
  "/root/repo/src/stcomp/error/evaluation.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/evaluation.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/evaluation.cc.o.d"
  "/root/repo/src/stcomp/error/integration.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/integration.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/integration.cc.o.d"
  "/root/repo/src/stcomp/error/similarity.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/similarity.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/similarity.cc.o.d"
  "/root/repo/src/stcomp/error/spatial_error.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/spatial_error.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/spatial_error.cc.o.d"
  "/root/repo/src/stcomp/error/synchronous_error.cc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/synchronous_error.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_error.dir/error/synchronous_error.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
