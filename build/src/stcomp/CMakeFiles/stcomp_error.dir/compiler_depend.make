# Empty compiler generated dependencies file for stcomp_error.
# This may be replaced when dependencies are built.
