# Empty compiler generated dependencies file for stcomp_geom.
# This may be replaced when dependencies are built.
