file(REMOVE_RECURSE
  "libstcomp_geom.a"
)
