file(REMOVE_RECURSE
  "CMakeFiles/stcomp_geom.dir/geom/geometry.cc.o"
  "CMakeFiles/stcomp_geom.dir/geom/geometry.cc.o.d"
  "libstcomp_geom.a"
  "libstcomp_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
