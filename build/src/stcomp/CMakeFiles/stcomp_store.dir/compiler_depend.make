# Empty compiler generated dependencies file for stcomp_store.
# This may be replaced when dependencies are built.
