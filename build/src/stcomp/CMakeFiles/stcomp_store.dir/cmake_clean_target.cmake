file(REMOVE_RECURSE
  "libstcomp_store.a"
)
