
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stcomp/store/codec.cc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/codec.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/codec.cc.o.d"
  "/root/repo/src/stcomp/store/grid_index.cc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/grid_index.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/grid_index.cc.o.d"
  "/root/repo/src/stcomp/store/serialization.cc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/serialization.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/serialization.cc.o.d"
  "/root/repo/src/stcomp/store/trajectory_store.cc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/trajectory_store.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/trajectory_store.cc.o.d"
  "/root/repo/src/stcomp/store/varint.cc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/varint.cc.o" "gcc" "src/stcomp/CMakeFiles/stcomp_store.dir/store/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
