file(REMOVE_RECURSE
  "CMakeFiles/stcomp_store.dir/store/codec.cc.o"
  "CMakeFiles/stcomp_store.dir/store/codec.cc.o.d"
  "CMakeFiles/stcomp_store.dir/store/grid_index.cc.o"
  "CMakeFiles/stcomp_store.dir/store/grid_index.cc.o.d"
  "CMakeFiles/stcomp_store.dir/store/serialization.cc.o"
  "CMakeFiles/stcomp_store.dir/store/serialization.cc.o.d"
  "CMakeFiles/stcomp_store.dir/store/trajectory_store.cc.o"
  "CMakeFiles/stcomp_store.dir/store/trajectory_store.cc.o.d"
  "CMakeFiles/stcomp_store.dir/store/varint.cc.o"
  "CMakeFiles/stcomp_store.dir/store/varint.cc.o.d"
  "libstcomp_store.a"
  "libstcomp_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcomp_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
