file(REMOVE_RECURSE
  "CMakeFiles/commuter_analysis.dir/commuter_analysis.cpp.o"
  "CMakeFiles/commuter_analysis.dir/commuter_analysis.cpp.o.d"
  "commuter_analysis"
  "commuter_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commuter_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
