# Empty dependencies file for commuter_analysis.
# This may be replaced when dependencies are built.
