file(REMOVE_RECURSE
  "CMakeFiles/trajectory_tool.dir/trajectory_tool.cpp.o"
  "CMakeFiles/trajectory_tool.dir/trajectory_tool.cpp.o.d"
  "trajectory_tool"
  "trajectory_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
