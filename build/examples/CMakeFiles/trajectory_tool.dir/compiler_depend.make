# Empty compiler generated dependencies file for trajectory_tool.
# This may be replaced when dependencies are built.
