file(REMOVE_RECURSE
  "CMakeFiles/streaming_gps_feed.dir/streaming_gps_feed.cpp.o"
  "CMakeFiles/streaming_gps_feed.dir/streaming_gps_feed.cpp.o.d"
  "streaming_gps_feed"
  "streaming_gps_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_gps_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
