# Empty dependencies file for map_matching.
# This may be replaced when dependencies are built.
