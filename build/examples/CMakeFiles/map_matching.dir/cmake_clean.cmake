file(REMOVE_RECURSE
  "CMakeFiles/map_matching.dir/map_matching.cpp.o"
  "CMakeFiles/map_matching.dir/map_matching.cpp.o.d"
  "map_matching"
  "map_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
