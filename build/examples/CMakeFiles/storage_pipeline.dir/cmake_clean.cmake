file(REMOVE_RECURSE
  "CMakeFiles/storage_pipeline.dir/storage_pipeline.cpp.o"
  "CMakeFiles/storage_pipeline.dir/storage_pipeline.cpp.o.d"
  "storage_pipeline"
  "storage_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
