# Empty dependencies file for storage_pipeline.
# This may be replaced when dependencies are built.
