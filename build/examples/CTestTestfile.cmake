# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_commuter_analysis "/root/repo/build/examples/commuter_analysis" "--fleet=6")
set_tests_properties(example_commuter_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_gps_feed "/root/repo/build/examples/streaming_gps_feed")
set_tests_properties(example_streaming_gps_feed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_storage_pipeline "/root/repo/build/examples/storage_pipeline")
set_tests_properties(example_storage_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threshold_tuning "/root/repo/build/examples/threshold_tuning")
set_tests_properties(example_threshold_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_map_matching "/root/repo/build/examples/map_matching")
set_tests_properties(example_map_matching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trajectory_tool_list "/root/repo/build/examples/trajectory_tool" "--list")
set_tests_properties(example_trajectory_tool_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
