file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pathhull.dir/bench_ablation_pathhull.cc.o"
  "CMakeFiles/bench_ablation_pathhull.dir/bench_ablation_pathhull.cc.o.d"
  "bench_ablation_pathhull"
  "bench_ablation_pathhull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pathhull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
