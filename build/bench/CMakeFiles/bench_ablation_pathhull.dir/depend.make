# Empty dependencies file for bench_ablation_pathhull.
# This may be replaced when dependencies are built.
