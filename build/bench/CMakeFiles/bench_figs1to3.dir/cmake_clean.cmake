file(REMOVE_RECURSE
  "CMakeFiles/bench_figs1to3.dir/bench_figs1to3.cc.o"
  "CMakeFiles/bench_figs1to3.dir/bench_figs1to3.cc.o.d"
  "bench_figs1to3"
  "bench_figs1to3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figs1to3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
