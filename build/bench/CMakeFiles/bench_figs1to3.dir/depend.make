# Empty dependencies file for bench_figs1to3.
# This may be replaced when dependencies are built.
