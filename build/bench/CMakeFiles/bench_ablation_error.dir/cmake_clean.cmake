file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_error.dir/bench_ablation_error.cc.o"
  "CMakeFiles/bench_ablation_error.dir/bench_ablation_error.cc.o.d"
  "bench_ablation_error"
  "bench_ablation_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
