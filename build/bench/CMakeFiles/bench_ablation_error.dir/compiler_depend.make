# Empty compiler generated dependencies file for bench_ablation_error.
# This may be replaced when dependencies are built.
