# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/trajectory_test[1]_include.cmake")
include("/root/repo/build/tests/simple_algos_test[1]_include.cmake")
include("/root/repo/build/tests/douglas_peucker_test[1]_include.cmake")
include("/root/repo/build/tests/opening_window_test[1]_include.cmake")
include("/root/repo/build/tests/time_ratio_test[1]_include.cmake")
include("/root/repo/build/tests/spatiotemporal_test[1]_include.cmake")
include("/root/repo/build/tests/bottom_up_sliding_test[1]_include.cmake")
include("/root/repo/build/tests/synchronous_error_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_error_test[1]_include.cmake")
include("/root/repo/build/tests/projection_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/extended_algos_test[1]_include.cmake")
include("/root/repo/build/tests/spline_similarity_test[1]_include.cmake")
include("/root/repo/build/tests/grid_index_test[1]_include.cmake")
include("/root/repo/build/tests/nmea_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_stream_test[1]_include.cmake")
include("/root/repo/build/tests/algorithm_properties_test[1]_include.cmake")
include("/root/repo/build/tests/kinematics_test[1]_include.cmake")
include("/root/repo/build/tests/map_matching_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_store_test[1]_include.cmake")
