# Empty compiler generated dependencies file for clustering_store_test.
# This may be replaced when dependencies are built.
