file(REMOVE_RECURSE
  "CMakeFiles/clustering_store_test.dir/clustering_store_test.cc.o"
  "CMakeFiles/clustering_store_test.dir/clustering_store_test.cc.o.d"
  "clustering_store_test"
  "clustering_store_test.pdb"
  "clustering_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
