# Empty compiler generated dependencies file for bottom_up_sliding_test.
# This may be replaced when dependencies are built.
