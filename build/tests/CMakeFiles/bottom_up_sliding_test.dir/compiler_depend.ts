# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bottom_up_sliding_test.
