file(REMOVE_RECURSE
  "CMakeFiles/bottom_up_sliding_test.dir/bottom_up_sliding_test.cc.o"
  "CMakeFiles/bottom_up_sliding_test.dir/bottom_up_sliding_test.cc.o.d"
  "bottom_up_sliding_test"
  "bottom_up_sliding_test.pdb"
  "bottom_up_sliding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottom_up_sliding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
