# Empty dependencies file for opening_window_test.
# This may be replaced when dependencies are built.
