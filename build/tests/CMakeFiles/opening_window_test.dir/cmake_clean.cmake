file(REMOVE_RECURSE
  "CMakeFiles/opening_window_test.dir/opening_window_test.cc.o"
  "CMakeFiles/opening_window_test.dir/opening_window_test.cc.o.d"
  "opening_window_test"
  "opening_window_test.pdb"
  "opening_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opening_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
