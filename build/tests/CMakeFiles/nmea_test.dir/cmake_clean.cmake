file(REMOVE_RECURSE
  "CMakeFiles/nmea_test.dir/nmea_test.cc.o"
  "CMakeFiles/nmea_test.dir/nmea_test.cc.o.d"
  "nmea_test"
  "nmea_test.pdb"
  "nmea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
