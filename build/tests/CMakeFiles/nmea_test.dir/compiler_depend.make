# Empty compiler generated dependencies file for nmea_test.
# This may be replaced when dependencies are built.
