file(REMOVE_RECURSE
  "CMakeFiles/spline_similarity_test.dir/spline_similarity_test.cc.o"
  "CMakeFiles/spline_similarity_test.dir/spline_similarity_test.cc.o.d"
  "spline_similarity_test"
  "spline_similarity_test.pdb"
  "spline_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spline_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
