# Empty compiler generated dependencies file for spline_similarity_test.
# This may be replaced when dependencies are built.
