file(REMOVE_RECURSE
  "CMakeFiles/simple_algos_test.dir/simple_algos_test.cc.o"
  "CMakeFiles/simple_algos_test.dir/simple_algos_test.cc.o.d"
  "simple_algos_test"
  "simple_algos_test.pdb"
  "simple_algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
