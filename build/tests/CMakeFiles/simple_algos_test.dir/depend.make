# Empty dependencies file for simple_algos_test.
# This may be replaced when dependencies are built.
