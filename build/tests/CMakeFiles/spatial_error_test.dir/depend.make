# Empty dependencies file for spatial_error_test.
# This may be replaced when dependencies are built.
