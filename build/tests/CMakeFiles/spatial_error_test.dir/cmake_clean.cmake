file(REMOVE_RECURSE
  "CMakeFiles/spatial_error_test.dir/spatial_error_test.cc.o"
  "CMakeFiles/spatial_error_test.dir/spatial_error_test.cc.o.d"
  "spatial_error_test"
  "spatial_error_test.pdb"
  "spatial_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
