# Empty dependencies file for synchronous_error_test.
# This may be replaced when dependencies are built.
