file(REMOVE_RECURSE
  "CMakeFiles/synchronous_error_test.dir/synchronous_error_test.cc.o"
  "CMakeFiles/synchronous_error_test.dir/synchronous_error_test.cc.o.d"
  "synchronous_error_test"
  "synchronous_error_test.pdb"
  "synchronous_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronous_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
