file(REMOVE_RECURSE
  "CMakeFiles/extended_algos_test.dir/extended_algos_test.cc.o"
  "CMakeFiles/extended_algos_test.dir/extended_algos_test.cc.o.d"
  "extended_algos_test"
  "extended_algos_test.pdb"
  "extended_algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
