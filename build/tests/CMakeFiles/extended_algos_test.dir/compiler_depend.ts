# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for extended_algos_test.
