# Empty compiler generated dependencies file for extended_algos_test.
# This may be replaced when dependencies are built.
