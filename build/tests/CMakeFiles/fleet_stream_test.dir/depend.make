# Empty dependencies file for fleet_stream_test.
# This may be replaced when dependencies are built.
