file(REMOVE_RECURSE
  "CMakeFiles/fleet_stream_test.dir/fleet_stream_test.cc.o"
  "CMakeFiles/fleet_stream_test.dir/fleet_stream_test.cc.o.d"
  "fleet_stream_test"
  "fleet_stream_test.pdb"
  "fleet_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
