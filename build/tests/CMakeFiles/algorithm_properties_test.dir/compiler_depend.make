# Empty compiler generated dependencies file for algorithm_properties_test.
# This may be replaced when dependencies are built.
