file(REMOVE_RECURSE
  "CMakeFiles/spatiotemporal_test.dir/spatiotemporal_test.cc.o"
  "CMakeFiles/spatiotemporal_test.dir/spatiotemporal_test.cc.o.d"
  "spatiotemporal_test"
  "spatiotemporal_test.pdb"
  "spatiotemporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatiotemporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
