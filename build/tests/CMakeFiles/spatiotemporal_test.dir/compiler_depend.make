# Empty compiler generated dependencies file for spatiotemporal_test.
# This may be replaced when dependencies are built.
