file(REMOVE_RECURSE
  "CMakeFiles/time_ratio_test.dir/time_ratio_test.cc.o"
  "CMakeFiles/time_ratio_test.dir/time_ratio_test.cc.o.d"
  "time_ratio_test"
  "time_ratio_test.pdb"
  "time_ratio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
