
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/time_ratio_test.cc" "tests/CMakeFiles/time_ratio_test.dir/time_ratio_test.cc.o" "gcc" "tests/CMakeFiles/time_ratio_test.dir/time_ratio_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_gps.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_error.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_store.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/stcomp/CMakeFiles/stcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
