# Empty dependencies file for time_ratio_test.
# This may be replaced when dependencies are built.
