# Empty dependencies file for douglas_peucker_test.
# This may be replaced when dependencies are built.
