file(REMOVE_RECURSE
  "CMakeFiles/douglas_peucker_test.dir/douglas_peucker_test.cc.o"
  "CMakeFiles/douglas_peucker_test.dir/douglas_peucker_test.cc.o.d"
  "douglas_peucker_test"
  "douglas_peucker_test.pdb"
  "douglas_peucker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/douglas_peucker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
