#include "stcomp/net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "stcomp/common/strings.h"

namespace stcomp::net {

Result<Listener> ListenLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return UnavailableError(StrFormat("bind(127.0.0.1:%u) failed: %s",
                                      static_cast<unsigned>(port),
                                      std::strerror(err)));
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    return UnavailableError(
        StrFormat("listen() failed: %s", std::strerror(err)));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const int err = errno;
    ::close(fd);
    return UnavailableError(
        StrFormat("getsockname() failed: %s", std::strerror(err)));
  }
  Listener listener;
  listener.fd = fd;
  listener.port = ntohs(bound.sin_port);
  return listener;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return UnavailableError(
        StrFormat("fcntl(O_NONBLOCK) failed: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

Status SendAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that disconnects mid-write must surface as
    // EPIPE here, not as a SIGPIPE whose default action kills the whole
    // embedding process.
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // The socket may be non-blocking (ingest server control frames);
        // wait for writability instead of spinning.
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, /*timeout_ms=*/100);
        continue;
      }
      return UnavailableError(
          StrFormat("send() failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

ReadOutcome ReadUntil(int fd, size_t max_bytes,
                      std::chrono::steady_clock::time_point deadline,
                      const std::atomic<bool>* running,
                      const std::function<bool(std::string_view)>& done,
                      std::string* buffer) {
  char chunk[1024];
  while (true) {
    if (done(*buffer)) {
      return ReadOutcome::kComplete;
    }
    if (buffer->size() >= max_bytes) {
      return ReadOutcome::kOverflow;
    }
    if (running != nullptr && !running->load(std::memory_order_acquire)) {
      return ReadOutcome::kStopped;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return ReadOutcome::kDeadline;
    }
    // Short poll slices so both the deadline and `running` are observed
    // promptly even against a byte-trickling client.
    pollfd pfd{fd, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::min<long long>(remaining.count(), 100));
    if (::poll(&pfd, 1, timeout_ms) < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kClosed;
    }
    if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      continue;  // poll timed out; re-check deadline and running
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      return ReadOutcome::kClosed;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

Status SendAllFaulty(int fd, std::string_view data,
                     const WireFaultHook& hook) {
  if (!hook) {
    return SendAll(fd, data);
  }
  const WireFault fault = hook(data.size());
  switch (fault.kind) {
    case WireFault::Kind::kNone:
      return SendAll(fd, data);
    case WireFault::Kind::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
      return SendAll(fd, data);
    case WireFault::Kind::kSplitWrite: {
      const size_t split = std::min(fault.offset, data.size());
      STCOMP_RETURN_IF_ERROR(SendAll(fd, data.substr(0, split)));
      // Yield so the receiver really observes two reads, exercising the
      // torn-frame reassembly path rather than a coalesced delivery.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return SendAll(fd, data.substr(split));
    }
    case WireFault::Kind::kCorruptSpan: {
      std::string corrupted(data);
      const size_t start = std::min(fault.offset, corrupted.size());
      const size_t end =
          std::min(start + std::max<size_t>(fault.length, 1), corrupted.size());
      for (size_t i = start; i < end; ++i) {
        corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5a);
      }
      return SendAll(fd, corrupted);
    }
    case WireFault::Kind::kDisconnect: {
      const size_t cut = std::min(fault.offset, data.size());
      // Best-effort prefix: the injected failure may race a real one.
      (void)SendAll(fd, data.substr(0, cut));
      return UnavailableError("injected disconnect");
    }
  }
  return SendAll(fd, data);
}

}  // namespace stcomp::net
