#include "stcomp/net/frame.h"

#include <algorithm>
#include <utility>

#include "stcomp/common/strings.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/varint.h"

namespace stcomp::net {

namespace {

// Smallest possible encoded fix inside a kBatch payload: a 1-byte id
// length, an empty id would be invalid but a 1-byte id is legal, plus
// three raw doubles. Used to bound the declared fix count before any
// vector reserve (the same unbounded-reserve hole the codec decoder had
// before PR 4 closed it).
constexpr uint64_t kMinEncodedFixBytes = 1 + 1 + 3 * 8;

void AppendCrc(std::string* frame) {
  const uint32_t crc = Crc32(*frame);
  for (int i = 0; i < 4; ++i) {
    frame->push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
}

Result<std::string> GetLengthPrefixedString(std::string_view* payload,
                                            std::string_view what) {
  STCOMP_ASSIGN_OR_RETURN(const uint64_t size, GetVarint(payload));
  if (payload->size() < size) {
    return DataLossError(StrFormat("net frame truncated in %.*s",
                                   static_cast<int>(what.size()),
                                   what.data()));
  }
  std::string value(payload->substr(0, size));
  payload->remove_prefix(size);
  return value;
}

}  // namespace

std::string_view NetMessageTypeName(NetMessageType type) {
  switch (type) {
    case NetMessageType::kHello:
      return "hello";
    case NetMessageType::kHelloAck:
      return "hello_ack";
    case NetMessageType::kBatch:
      return "batch";
    case NetMessageType::kBatchAck:
      return "batch_ack";
    case NetMessageType::kError:
      return "error";
    case NetMessageType::kGoAway:
      return "goaway";
    case NetMessageType::kBye:
      return "bye";
  }
  return "unknown";
}

std::string_view NetErrorCodeName(NetErrorCode code) {
  switch (code) {
    case NetErrorCode::kMalformedFrame:
      return "malformed_frame";
    case NetErrorCode::kBadVersion:
      return "bad_version";
    case NetErrorCode::kProtocol:
      return "protocol";
    case NetErrorCode::kOversizedFrame:
      return "oversized_frame";
    case NetErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string_view GoAwayReasonName(GoAwayReason reason) {
  switch (reason) {
    case GoAwayReason::kOverloaded:
      return "overloaded";
    case GoAwayReason::kDraining:
      return "draining";
    case GoAwayReason::kIdleTimeout:
      return "idle_timeout";
    case GoAwayReason::kSuperseded:
      return "superseded";
  }
  return "unknown";
}

NetFrame NetFrame::Hello(std::string client_id) {
  NetFrame frame;
  frame.type = NetMessageType::kHello;
  frame.client_id = std::move(client_id);
  return frame;
}

NetFrame NetFrame::HelloAck(uint64_t session_id, uint64_t last_acked) {
  NetFrame frame;
  frame.type = NetMessageType::kHelloAck;
  frame.session_id = session_id;
  frame.last_acked = last_acked;
  return frame;
}

NetFrame NetFrame::Batch(uint64_t batch_seq, std::vector<NetFix> fixes) {
  NetFrame frame;
  frame.type = NetMessageType::kBatch;
  frame.batch_seq = batch_seq;
  frame.fixes = std::move(fixes);
  return frame;
}

NetFrame NetFrame::BatchAck(uint64_t batch_seq) {
  NetFrame frame;
  frame.type = NetMessageType::kBatchAck;
  frame.batch_seq = batch_seq;
  return frame;
}

NetFrame NetFrame::Error(NetErrorCode code, std::string message) {
  NetFrame frame;
  frame.type = NetMessageType::kError;
  frame.code = static_cast<uint8_t>(code);
  frame.message = std::move(message);
  return frame;
}

NetFrame NetFrame::GoAway(GoAwayReason reason, std::string message) {
  NetFrame frame;
  frame.type = NetMessageType::kGoAway;
  frame.code = static_cast<uint8_t>(reason);
  frame.message = std::move(message);
  return frame;
}

NetFrame NetFrame::Bye() {
  NetFrame frame;
  frame.type = NetMessageType::kBye;
  return frame;
}

std::string EncodeNetFrame(const NetFrame& frame) {
  std::string payload;
  switch (frame.type) {
    case NetMessageType::kHello:
      PutVarint(frame.client_id.size(), &payload);
      payload += frame.client_id;
      PutVarint(frame.flags, &payload);
      break;
    case NetMessageType::kHelloAck:
      PutVarint(frame.session_id, &payload);
      PutVarint(frame.last_acked, &payload);
      break;
    case NetMessageType::kBatch:
      PutVarint(frame.batch_seq, &payload);
      PutVarint(frame.fixes.size(), &payload);
      for (const NetFix& fix : frame.fixes) {
        PutVarint(fix.object_id.size(), &payload);
        payload += fix.object_id;
        PutDouble(fix.fix.t, &payload);
        PutDouble(fix.fix.position.x, &payload);
        PutDouble(fix.fix.position.y, &payload);
      }
      break;
    case NetMessageType::kBatchAck:
      PutVarint(frame.batch_seq, &payload);
      break;
    case NetMessageType::kError:
    case NetMessageType::kGoAway:
      payload.push_back(static_cast<char>(frame.code));
      PutVarint(frame.message.size(), &payload);
      payload += frame.message;
      break;
    case NetMessageType::kBye:
      break;
  }
  std::string out(kNetMagic, sizeof(kNetMagic));
  out.push_back(static_cast<char>(kNetProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  PutVarint(payload.size(), &out);
  out += payload;
  AppendCrc(&out);
  return out;
}

Result<NetFrame> DecodeNetFrame(std::string_view* input) {
  const std::string_view frame_start = *input;
  if (input->size() < sizeof(kNetMagic) + 2) {
    return DataLossError("net frame truncated in header");
  }
  if (input->substr(0, 4) != std::string_view(kNetMagic, 4)) {
    return DataLossError("bad magic; not a net frame");
  }
  const uint8_t version = static_cast<uint8_t>((*input)[4]);
  const uint8_t type_byte = static_cast<uint8_t>((*input)[5]);
  input->remove_prefix(6);
  STCOMP_ASSIGN_OR_RETURN(const uint64_t payload_size, GetVarint(input));
  // Overflow-safe form of `size < payload_size + 4`: a hostile varint
  // declaring ~2^64 bytes must read as truncation, not wrap the sum and
  // sail past the bounds check into out-of-range reads.
  if (input->size() < 4 || input->size() - 4 < payload_size) {
    return DataLossError("net frame truncated in payload");
  }
  std::string_view payload = input->substr(0, payload_size);
  input->remove_prefix(payload_size);
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>((*input)[i]))
                  << (8 * i);
  }
  const size_t crc_span =
      static_cast<size_t>(input->data() - frame_start.data());
  input->remove_prefix(4);
  if (Crc32(frame_start.substr(0, crc_span)) != stored_crc) {
    return DataLossError("net frame CRC mismatch");
  }
  // The CRC held, so the version byte is what the peer really sent — a
  // future protocol speaking to this build, not corruption.
  if (version != kNetProtocolVersion) {
    return UnimplementedError(
        StrFormat("unsupported net protocol version %u",
                  static_cast<unsigned>(version)));
  }
  if (type_byte < static_cast<uint8_t>(NetMessageType::kHello) ||
      type_byte > static_cast<uint8_t>(NetMessageType::kBye)) {
    return DataLossError("unknown net frame type");
  }

  NetFrame frame;
  frame.type = static_cast<NetMessageType>(type_byte);
  switch (frame.type) {
    case NetMessageType::kHello: {
      STCOMP_ASSIGN_OR_RETURN(frame.client_id,
                              GetLengthPrefixedString(&payload, "client id"));
      STCOMP_ASSIGN_OR_RETURN(frame.flags, GetVarint(&payload));
      break;
    }
    case NetMessageType::kHelloAck: {
      STCOMP_ASSIGN_OR_RETURN(frame.session_id, GetVarint(&payload));
      STCOMP_ASSIGN_OR_RETURN(frame.last_acked, GetVarint(&payload));
      break;
    }
    case NetMessageType::kBatch: {
      STCOMP_ASSIGN_OR_RETURN(frame.batch_seq, GetVarint(&payload));
      STCOMP_ASSIGN_OR_RETURN(const uint64_t count, GetVarint(&payload));
      if (count > payload.size() / kMinEncodedFixBytes) {
        return DataLossError("net batch fix count exceeds payload");
      }
      frame.fixes.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        NetFix fix;
        STCOMP_ASSIGN_OR_RETURN(fix.object_id,
                                GetLengthPrefixedString(&payload, "object id"));
        if (fix.object_id.empty()) {
          return DataLossError("net batch fix with empty object id");
        }
        STCOMP_ASSIGN_OR_RETURN(fix.fix.t, GetDouble(&payload));
        STCOMP_ASSIGN_OR_RETURN(fix.fix.position.x, GetDouble(&payload));
        STCOMP_ASSIGN_OR_RETURN(fix.fix.position.y, GetDouble(&payload));
        frame.fixes.push_back(std::move(fix));
      }
      break;
    }
    case NetMessageType::kBatchAck: {
      STCOMP_ASSIGN_OR_RETURN(frame.batch_seq, GetVarint(&payload));
      break;
    }
    case NetMessageType::kError:
    case NetMessageType::kGoAway: {
      if (payload.empty()) {
        return DataLossError("net frame truncated in code");
      }
      frame.code = static_cast<uint8_t>(payload[0]);
      payload.remove_prefix(1);
      STCOMP_ASSIGN_OR_RETURN(frame.message,
                              GetLengthPrefixedString(&payload, "message"));
      break;
    }
    case NetMessageType::kBye:
      break;
  }
  if (!payload.empty()) {
    return DataLossError("net frame has trailing payload bytes");
  }
  return frame;
}

FrameScan ScanNetFrame(std::string_view buffer, size_t max_payload,
                       size_t* frame_size, Status* error) {
  const std::string_view magic(kNetMagic, sizeof(kNetMagic));
  const size_t check = std::min(buffer.size(), magic.size());
  if (buffer.substr(0, check) != magic.substr(0, check)) {
    *error = DataLossError("bad magic; not a net frame");
    return FrameScan::kError;
  }
  // magic(4) + version(1) + type(1) + at least one length byte.
  if (buffer.size() < 7) {
    return FrameScan::kNeedMore;
  }
  uint64_t payload_size = 0;
  size_t length_bytes = 0;
  size_t cursor = 6;
  while (true) {
    if (length_bytes >= 10) {
      *error = DataLossError("overlong payload length varint");
      return FrameScan::kError;
    }
    if (cursor >= buffer.size()) {
      return FrameScan::kNeedMore;
    }
    const uint8_t byte = static_cast<uint8_t>(buffer[cursor]);
    payload_size |= static_cast<uint64_t>(byte & 0x7f) << (7 * length_bytes);
    ++length_bytes;
    ++cursor;
    if ((byte & 0x80) == 0) {
      break;
    }
  }
  if (payload_size > max_payload) {
    // kOutOfRange, not kDataLoss: the server maps this code to the typed
    // kOversizedFrame error (no message sniffing).
    *error = OutOfRangeError(
        StrFormat("declared payload of %llu bytes exceeds the %zu-byte cap",
                  static_cast<unsigned long long>(payload_size), max_payload));
    return FrameScan::kError;
  }
  const size_t total = cursor + static_cast<size_t>(payload_size) + 4;
  if (buffer.size() < total) {
    return FrameScan::kNeedMore;
  }
  *frame_size = total;
  return FrameScan::kFrame;
}

FrameScan FrameReader::Next(NetFrame* out, Status* error) {
  if (!poison_.ok()) {
    *error = poison_;
    return FrameScan::kError;
  }
  size_t frame_size = 0;
  Status scan_error;
  const FrameScan scan =
      ScanNetFrame(buffer_, max_payload_, &frame_size, &scan_error);
  if (scan == FrameScan::kNeedMore) {
    return FrameScan::kNeedMore;
  }
  if (scan == FrameScan::kError) {
    poison_ = std::move(scan_error);
    *error = poison_;
    return FrameScan::kError;
  }
  std::string_view cursor = std::string_view(buffer_).substr(0, frame_size);
  Result<NetFrame> frame = DecodeNetFrame(&cursor);
  if (!frame.ok()) {
    poison_ = frame.status();
    *error = poison_;
    return FrameScan::kError;
  }
  *out = *std::move(frame);
  buffer_.erase(0, frame_size);
  return FrameScan::kFrame;
}

}  // namespace stcomp::net
