// Fault-tolerant network ingest front (DESIGN.md §18): a non-blocking,
// poll-based server accepting thousands of concurrent device connections
// speaking the STNI wire protocol (net/frame.h) and feeding their fixes
// into the fleet engine — the paper's setting (fleets of moving objects
// continuously transmitting position fixes) finally arriving over a real
// link instead of in-process calls.
//
// Engineering for partial failure is the headline; the design decisions:
//
//   Sessions.  One poll loop thread owns every connection. Each session
//   is a small state machine (await-hello → streaming → closing) with a
//   handshake deadline, an idle deadline (no bytes within
//   idle_timeout_s ⇒ GOAWAY(idle_timeout) + close — the slow-loris fix
//   from the admin server, generalized), and bounded inbound/outbound
//   buffers.
//
//   Backpressure and shedding.  A per-session buffer budget and a global
//   budget across sessions bound memory; exceeding either sheds the
//   session — a typed GOAWAY(overloaded) frame, counted in
//   stcomp_net_sessions_shed_total, never a silent drop. Accepts beyond
//   max_sessions shed-newest the same way. Push backpressure from the
//   fleet engine (a full shard queue) blocks the poll thread, which
//   stops reading, which fills TCP windows, which slows the devices:
//   end-to-end backpressure with no unbounded queue anywhere.
//
//   Protocol-error quarantine.  A malformed frame (bad magic, CRC
//   mismatch, oversize, truncation) or an out-of-state frame yields a
//   typed kError frame and a close — never a crash, never a resync.
//   Counted and flight-recorded per NetErrorCode.
//
//   Acked batches, exactly-once.  Batches apply only at seq ==
//   last_acked + 1, gated against the per-client high-water mark (not a
//   per-session snapshot); duplicates (a client resending after a lost
//   ack) are re-acked without applying, gaps are protocol errors. A
//   kHello fences any still-open session with the same client id
//   (GOAWAY(superseded) + close) so a zombie connection can never race
//   its replacement's seq space. The high-water mark survives the
//   session, so a device that reconnects resumes from its kHelloAck
//   without losing or duplicating a single acked fix.
//
//   Graceful drain.  Stop() processes every complete frame already
//   buffered, acks what it applied, sends GOAWAY(draining) to every
//   session, flushes within drain_timeout_s, then closes. Nothing acked
//   is ever dropped on the floor.
//
// Observability: stcomp_net_* counters/gauges under {server=<instance>},
// kNetAccept/kNetShed/kNetProtocolError/kNetDrain flight events, and
// RenderIngestzJson() for the admin server's /ingestz endpoint.
//
// Binds 127.0.0.1 ONLY (no auth on this surface; see socket_util.h).

#ifndef STCOMP_NET_INGEST_SERVER_H_
#define STCOMP_NET_INGEST_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "stcomp/common/status.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/net/frame.h"
#include "stcomp/obs/metrics.h"

namespace stcomp::net {

struct IngestServerOptions {
  // Accepts beyond this many live sessions are shed (GOAWAY + close).
  size_t max_sessions = 4096;
  // Cap on one frame's declared payload (oversize ⇒ typed error + close).
  size_t max_payload_bytes = kNetMaxPayloadBytes;
  // Per-session inbound+outbound buffer budget; exceeding sheds it.
  size_t session_buffer_budget = 4u << 20;
  // Sum of buffered bytes across all sessions; exceeding sheds the
  // session whose read tipped the total (shed-newest-traffic).
  size_t global_buffer_budget = 64u << 20;
  // A session that sends no bytes for this long is closed
  // (GOAWAY(idle_timeout)); devices are expected to stream continuously.
  double idle_timeout_s = 30.0;
  // The kHello must arrive this fast after accept.
  double handshake_timeout_s = 5.0;
  // Stop() flush budget: buffered acks/GOAWAYs get this long to reach
  // clients before the sockets are closed anyway.
  double drain_timeout_s = 1.0;
  // Metric-instance label; empty picks a unique "ingest-<n>".
  std::string instance;
};

class IngestServer {
 public:
  // Receives every applied fix, in per-client batch order. Typically
  // ShardedFleetCompressor::Push (or FleetCompressor::Push wrapped in a
  // lambda); may block (that is the backpressure path). A non-OK return
  // fails the whole batch: the batch is not acked, the session gets a
  // typed kError(kInternal) and is closed, and the client's resend after
  // reconnect retries it — so a transiently failing sink never loses
  // acked fixes and never double-applies (the sink must tolerate replay
  // of the *unacked* tail, which per-object monotonicity checks do).
  using PushFn =
      std::function<Status(std::string_view object_id, const TimedPoint& fix)>;

  explicit IngestServer(PushFn push, IngestServerOptions options = {});
  ~IngestServer();
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral, read back via port()) and
  // starts the poll thread. kUnavailable on bind failure,
  // kFailedPrecondition if already running.
  Status Start(uint16_t port);

  // The bound port; 0 before Start() succeeds.
  uint16_t port() const { return port_; }

  // Graceful drain (see header comment), then joins the poll thread.
  // Idempotent; also run by the destructor.
  void Stop();

  // Lifetime counters (registry-backed; stable across Stop/Start).
  uint64_t sessions_accepted() const { return accepted_->value(); }
  uint64_t sessions_shed() const { return shed_->value(); }
  uint64_t protocol_errors() const { return protocol_errors_->value(); }
  uint64_t batches_acked() const { return batches_acked_->value(); }
  uint64_t duplicate_batches() const { return duplicate_batches_->value(); }
  uint64_t fixes_in() const { return fixes_in_->value(); }
  uint64_t idle_timeouts() const { return idle_timeouts_->value(); }
  size_t active_sessions() const;

  const std::string& instance() const { return instance_; }

  // {"server":{...counters...},"sessions":[{...}, ...]} — what the admin
  // server's /ingestz endpoint serves. Thread-safe.
  std::string RenderIngestzJson() const;

 private:
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    bool hello_done = false;
    bool closing = false;  // error/GOAWAY queued; close once flushed
    std::string client_id;             // set at hello (under mu_)
    std::unique_ptr<FrameReader> reader;
    std::string outbound;              // poll thread only
    std::atomic<uint64_t> fixes{0};
    std::atomic<uint64_t> batches_acked{0};
    std::atomic<uint64_t> last_acked{0};  // /ingestz mirror of acked_[id]
    std::atomic<size_t> buffered_bytes{0};  // inbound+outbound, for /ingestz
    std::chrono::steady_clock::time_point accepted_at;
    std::chrono::steady_clock::time_point last_activity;
  };

  void Serve();
  void AcceptPending();
  // Reads everything available; returns false when the peer is gone.
  bool ReadSession(Session* session);
  // Drains complete frames out of the session's reader.
  void ProcessFrames(Session* session);
  void HandleFrame(Session* session, const NetFrame& frame);
  void HandleBatch(Session* session, const NetFrame& frame);
  // Queues a frame on the session's outbound buffer (flushed by poll).
  void QueueFrame(Session* session, const NetFrame& frame);
  // Typed error frame + mark closing; counted + flight-recorded.
  void ProtocolError(Session* session, NetErrorCode code,
                     std::string message);
  // GOAWAY + mark closing; counted + flight-recorded when shedding.
  void GoAwaySession(Session* session, GoAwayReason reason,
                     std::string message);
  // Flushes outbound (non-blocking); returns false when the peer died.
  bool FlushSession(Session* session);
  void CloseSession(uint64_t session_id);
  void EnforceDeadlines();
  void DrainAndCloseAll();
  // O(1): reads the running total, maintained by RefreshBufferGauge /
  // CloseSession (the global budget check runs per read chunk).
  size_t TotalBufferedBytes() const;
  void RefreshBufferGauge(Session* session);

  PushFn push_;
  IngestServerOptions options_;
  std::string instance_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_session_id_ = 1;

  // Guards sessions_ structure + client_id strings + acked_; the numeric
  // per-session stats are atomics so /ingestz never blocks on a push.
  mutable std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  // Per-client ack high-water marks; survive sessions (resume-on-
  // reconnect) for the server's lifetime.
  std::map<std::string, uint64_t, std::less<>> acked_;
  // Sum of every session's buffered_bytes, kept in lockstep by
  // RefreshBufferGauge (delta on exchange) and CloseSession (subtract).
  std::atomic<size_t> total_buffered_{0};

  // Registry-owned; valid for the process lifetime.
  obs::Counter* accepted_;
  obs::Counter* shed_;
  obs::Counter* protocol_errors_;
  obs::Counter* batches_acked_;
  obs::Counter* duplicate_batches_;
  obs::Counter* fixes_in_;
  obs::Counter* frames_in_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* idle_timeouts_;
  obs::Counter* resumed_sessions_;
  obs::Gauge* active_sessions_gauge_;
  obs::Gauge* buffered_bytes_gauge_;
};

}  // namespace stcomp::net

#endif  // STCOMP_NET_INGEST_SERVER_H_
