// The stcomp network ingest wire protocol (DESIGN.md §18): length-
// prefixed, CRC-framed binary messages carrying position fixes from
// device links into the fleet engine. Reuses the WAL "STWL" framing
// discipline — magic, version, type, payload length varint, payload,
// CRC32 over everything before the CRC — so the decoder hardening story
// (strict decode, fuzzed, salvage-free: a connection with one bad frame
// is closed, never resynced) carries over.
//
// Frame layout (all little-endian):
//
//   magic "STNI" | version u8 | type u8 | payload len varint | payload
//   | crc32 (4 bytes, over everything before it)
//
// Payloads by type:
//
//   kHello     client id (len varint + bytes) | flags varint (reserved 0)
//   kHelloAck  session id varint | last acked batch seq varint
//   kBatch     batch seq varint | fix count varint | fixes, each:
//              object id (len varint + bytes) | t, x, y raw doubles
//   kBatchAck  batch seq varint
//   kError     error code u8 | message (len varint + bytes)
//   kGoAway    reason u8 | message (len varint + bytes)
//   kBye       (empty)
//
// Handshake and resume: a client opens with kHello carrying a stable
// client id; the server answers kHelloAck echoing the highest batch seq
// it has ever acked for that id (0 if none). Batches are numbered 1.. by
// the client and applied exactly once, in order: the server applies seq
// == last_acked + 1, acks duplicates (seq <= last_acked) without
// applying, and treats gaps as protocol errors. After a disconnect the
// client reconnects, drops everything the kHelloAck says was acked and
// resends the rest — acked fixes are never lost and never duplicated.
// A kHello also fences any still-open session speaking for the same
// client id (kGoAway(kSuperseded) + close): one client id, one live
// connection, one seq space.
//
// Fix coordinates travel as raw doubles (not the quantising delta codec)
// for the same reason the WAL's do: the server-side compressed output
// must be bit-identical to in-process ingest of the same fixes.

#ifndef STCOMP_NET_FRAME_H_
#define STCOMP_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp::net {

inline constexpr char kNetMagic[4] = {'S', 'T', 'N', 'I'};
inline constexpr uint8_t kNetProtocolVersion = 1;

// Default cap on one frame's payload. A batch of ~64 fixes is ~2 KB;
// 1 MiB leaves two orders of magnitude of headroom while bounding what a
// hostile peer can make the server buffer for a single frame.
inline constexpr size_t kNetMaxPayloadBytes = 1u << 20;

enum class NetMessageType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kBatch = 3,
  kBatchAck = 4,
  kError = 5,
  kGoAway = 6,
  kBye = 7,
};

// Typed reason on a kError frame (malformed input ⇒ typed error frame +
// close, never UB — the fuzz target's contract).
enum class NetErrorCode : uint8_t {
  kMalformedFrame = 1,  // bad magic / CRC / truncation / trailing bytes
  kBadVersion = 2,      // frame version != kNetProtocolVersion
  kProtocol = 3,        // valid frame, wrong state (e.g. batch before hello)
  kOversizedFrame = 4,  // declared payload exceeds the server's cap
  kInternal = 5,        // server-side failure applying a valid frame
};

// Typed reason on a kGoAway frame (load shedding and lifecycle).
enum class GoAwayReason : uint8_t {
  kOverloaded = 1,   // session/buffer budgets exhausted; shed-newest
  kDraining = 2,     // server Stop(): finish up, reconnect elsewhere/later
  kIdleTimeout = 3,  // no bytes within the idle deadline
  kSuperseded = 4,   // a newer connection hello'd with the same client id
};

std::string_view NetMessageTypeName(NetMessageType type);
std::string_view NetErrorCodeName(NetErrorCode code);
std::string_view GoAwayReasonName(GoAwayReason reason);

// One fix on the wire: which object, and where/when.
struct NetFix {
  std::string object_id;
  TimedPoint fix;
};

// A decoded frame. Only the fields of the active `type` are meaningful.
struct NetFrame {
  NetMessageType type = NetMessageType::kBye;
  // kHello.
  std::string client_id;
  uint64_t flags = 0;
  // kHelloAck.
  uint64_t session_id = 0;
  uint64_t last_acked = 0;
  // kBatch / kBatchAck.
  uint64_t batch_seq = 0;
  std::vector<NetFix> fixes;  // kBatch only
  // kError / kGoAway.
  uint8_t code = 0;
  std::string message;

  static NetFrame Hello(std::string client_id);
  static NetFrame HelloAck(uint64_t session_id, uint64_t last_acked);
  static NetFrame Batch(uint64_t batch_seq, std::vector<NetFix> fixes);
  static NetFrame BatchAck(uint64_t batch_seq);
  static NetFrame Error(NetErrorCode code, std::string message);
  static NetFrame GoAway(GoAwayReason reason, std::string message);
  static NetFrame Bye();
};

// One serialized frame (magic + version + type + len + payload + crc).
std::string EncodeNetFrame(const NetFrame& frame);

// Strict single-frame decode from the front of `*input`, advancing it.
// kDataLoss on any corruption or truncation, kUnimplemented on a version
// this build does not speak (the CRC is checked first, so a frame that
// reports kUnimplemented really was sent by a future peer, not mangled
// in flight). Never reads past the encoded frame.
Result<NetFrame> DecodeNetFrame(std::string_view* input);

// Incremental framing over a byte stream that TCP may deliver torn or
// coalesced arbitrarily.
enum class FrameScan {
  kNeedMore,  // the buffer holds only a prefix of a frame
  kFrame,     // a complete frame spans the first *frame_size bytes
  kError,     // the buffer can never become a valid frame (close the link)
};

// Examines the front of `buffer`. On kFrame, *frame_size is the byte
// length of the complete leading frame (decode it with DecodeNetFrame).
// On kError, *error explains (bad magic, oversize, overlong varint...).
// `max_payload` bounds the *declared* payload length, so a hostile
// 4 GB length prefix is rejected before any buffering happens; that
// rejection carries kOutOfRange (every other framing error is
// kDataLoss) so callers can report a typed oversized-frame verdict.
FrameScan ScanNetFrame(std::string_view buffer, size_t max_payload,
                       size_t* frame_size, Status* error);

// Accumulates stream bytes and yields complete frames. After any kError
// the reader is poisoned (every later Next returns the same error): one
// bad frame kills the connection, there is no resync mid-stream.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kNetMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  // kFrame: *out holds the next decoded frame. kNeedMore: feed more
  // bytes. kError: *error explains; the reader is dead.
  FrameScan Next(NetFrame* out, Status* error);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t max_payload_;
  Status poison_;
};

}  // namespace stcomp::net

#endif  // STCOMP_NET_FRAME_H_
