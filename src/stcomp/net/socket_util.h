// Hardened POSIX socket plumbing shared by every listener in the tree —
// the obs admin server and the net ingest server link the same
// implementation, so the slow-loris deadline, the MSG_NOSIGNAL write
// discipline and the loopback-only bind policy are fixed in exactly one
// place (DESIGN.md §18).
//
// Everything here is deliberately low-level and allocation-light: Status
// in, Status out, no exceptions, no ownership of file descriptors beyond
// what each function documents. The wire-fault seam (WireFault /
// SendAllFaulty) is how the chaos soak and the fleet-client retry tests
// inject mid-frame disconnects, stalled sockets, split writes and byte
// corruption into an otherwise-real TCP path.

#ifndef STCOMP_NET_SOCKET_UTIL_H_
#define STCOMP_NET_SOCKET_UTIL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "stcomp/common/result.h"

namespace stcomp::net {

// A bound, listening TCP socket. `port` is the actual bound port (useful
// when the caller asked for 0 = ephemeral). The caller owns `fd`.
struct Listener {
  int fd = -1;
  uint16_t port = 0;
};

// Creates a loopback-only (127.0.0.1) TCP listener with SO_REUSEADDR.
// Every server in this tree binds loopback: the surfaces expose object
// ids and internals, and the ingest path has no auth — never forward the
// port off a trusted host. kUnavailable on any socket/bind/listen error.
Result<Listener> ListenLoopback(uint16_t port, int backlog);

// Puts `fd` into non-blocking mode (O_NONBLOCK).
Status SetNonBlocking(int fd);

// Writes all of `data`, retrying on EINTR, always with MSG_NOSIGNAL so a
// peer that disconnects mid-write surfaces as a Status (EPIPE), never as
// a SIGPIPE that kills the embedding process. Blocks until everything is
// written or the peer is gone. kUnavailable when the connection died.
Status SendAll(int fd, std::string_view data);

// How a deadline-bounded read ended.
enum class ReadOutcome {
  kComplete,  // `done(buffer)` returned true
  kDeadline,  // wall-clock deadline expired first
  kClosed,    // peer closed (or a read error) before completion
  kStopped,   // `running` flipped false (server shutdown)
  kOverflow,  // buffer reached max_bytes without completing
};

// Accumulates bytes from `fd` into `*buffer` until `done(*buffer)` is
// true, bounding the whole read by a wall-clock `deadline` — a per-read
// timeout alone would let a client trickling one byte every few seconds
// pin a serving thread (and block Stop()) for hours. `running` (may be
// null) is re-checked between polls so shutdown is observed promptly;
// `max_bytes` caps the buffer so a misbehaving client cannot balloon it.
ReadOutcome ReadUntil(int fd, size_t max_bytes,
                      std::chrono::steady_clock::time_point deadline,
                      const std::atomic<bool>* running,
                      const std::function<bool(std::string_view)>& done,
                      std::string* buffer);

// --- Wire-fault injection seam ---------------------------------------
//
// A WireFault describes one transport-level misbehaviour to apply to a
// single write. Deterministic plans (testing/FaultPlan::NextWireFault)
// produce these; production code passes no hook and pays nothing.

struct WireFault {
  enum class Kind : uint8_t {
    kNone = 0,
    kDisconnect,   // write only [0, offset), then report the link dead
    kStall,        // sleep stall_ms, then write normally
    kSplitWrite,   // write [0, offset), yield briefly, write the rest
    kCorruptSpan,  // XOR-corrupt `length` bytes starting at offset
  };
  Kind kind = Kind::kNone;
  size_t offset = 0;
  size_t length = 0;
  uint64_t stall_ms = 0;
};

// Decides the fault for one write of `write_size` bytes.
using WireFaultHook = std::function<WireFault(size_t write_size)>;

// SendAll with `hook` (may be empty) consulted once per call. On
// kDisconnect the prefix is written and kUnavailable("injected
// disconnect") is returned — the caller must treat the connection as
// dead and close the fd, exactly as it would for a real peer reset.
Status SendAllFaulty(int fd, std::string_view data,
                     const WireFaultHook& hook);

}  // namespace stcomp::net

#endif  // STCOMP_NET_SOCKET_UTIL_H_
