#include "stcomp/net/fleet_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "stcomp/common/strings.h"

namespace stcomp::net {
namespace {

constexpr size_t kReadChunk = 4096;

}  // namespace

FleetClient::FleetClient(FleetClientOptions options)
    : options_(std::move(options)) {}

FleetClient::~FleetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status FleetClient::Connect() { return EnsureConnected(); }

Status FleetClient::Dial() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError(
        StrFormat("bad host '%s'", options_.host.c_str()));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return UnavailableError(StrFormat("connect(%s:%u): %s",
                                      options_.host.c_str(), options_.port,
                                      std::strerror(errno)));
  }
  fd_ = fd;
  // Fresh stream, fresh framing state: leftover bytes from the previous
  // connection must never bleed into this one.
  reader_ = FrameReader(kNetMaxPayloadBytes);

  Status sent =
      SendAllFaulty(fd_, EncodeNetFrame(NetFrame::Hello(options_.client_id)),
                    options_.fault_hook);
  if (!sent.ok()) {
    MarkDisconnected();
    return sent;
  }
  connected_ = true;  // ReadOneFrame needs the link considered live
  // The first frame on a fresh connection is the kHelloAck (the server
  // handles frames in order and answers the hello before anything else);
  // it tells us what the server already has, and everything at or below
  // its high-water mark is dropped from pending_ rather than resent.
  Status read = ReadOneFrame();
  if (!read.ok()) {
    MarkDisconnected();
    return read;
  }
  return Status::Ok();
}

void FleetClient::MarkDisconnected() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  connected_ = false;
  sent_upto_ = 0;  // everything unacked gets resent on the next link
}

Status FleetClient::EnsureConnected() {
  if (connected_) return Status::Ok();
  std::string last_error = "never dialed";
  while (true) {
    // Every attempt after the first consumes reconnect budget — whether
    // the previous link failed to dial or dialed fine and then went
    // silent. Without this a server that accepts but never acks would
    // loop forever.
    if (ever_dialed_) {
      if (reconnects_ >= options_.max_reconnects) {
        return UnavailableError(
            StrFormat("reconnect budget (%zu) exhausted; last error: %s",
                      options_.max_reconnects, last_error.c_str()));
      }
      ++reconnects_;
      // Tiny backoff: enough to let a restarting server bind, not enough
      // to matter in tests.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ever_dialed_ = true;
    Status dialed = Dial();
    if (dialed.ok()) return Status::Ok();
    last_error = std::string(dialed.message());
  }
}

Status FleetClient::Push(std::string_view object_id, const TimedPoint& fix) {
  open_batch_.push_back(NetFix{std::string(object_id), fix});
  ++fixes_pushed_;
  if (open_batch_.size() >= options_.batch_size) {
    SealBatch();
    return Pump(/*need_all=*/false);
  }
  return Status::Ok();
}

Status FleetClient::Flush() {
  SealBatch();
  return Pump(/*need_all=*/true);
}

Status FleetClient::Bye() {
  STCOMP_RETURN_IF_ERROR(Flush());
  if (connected_) {
    // Best-effort farewell; the server keeps our ack state either way.
    SendAllFaulty(fd_, EncodeNetFrame(NetFrame::Bye()), options_.fault_hook)
        .ok();
    MarkDisconnected();
  }
  return Status::Ok();
}

void FleetClient::SealBatch() {
  if (open_batch_.empty()) return;
  PendingBatch batch;
  batch.seq = next_seq_++;
  batch.fixes = open_batch_.size();
  batch.bytes =
      EncodeNetFrame(NetFrame::Batch(batch.seq, std::move(open_batch_)));
  open_batch_.clear();
  pending_.push_back(std::move(batch));
}

Status FleetClient::Pump(bool need_all) {
  auto satisfied = [&] {
    return need_all ? pending_.empty()
                    : pending_.size() < options_.max_inflight_batches;
  };
  while (!satisfied()) {
    STCOMP_RETURN_IF_ERROR(EnsureConnected());
    Status sent = SendUnsent();
    if (!sent.ok()) {
      MarkDisconnected();
      continue;  // reconnect (budgeted in EnsureConnected) and resend
    }
    Status read = ReadOneFrame();
    if (!read.ok()) {
      MarkDisconnected();
      continue;
    }
  }
  // Push work ahead even when under the inflight cap, so acks for a
  // steady stream do not all pile up behind the final Flush.
  if (connected_ && !pending_.empty()) {
    Status sent = SendUnsent();
    if (!sent.ok()) MarkDisconnected();
  }
  return Status::Ok();
}

Status FleetClient::SendUnsent() {
  while (sent_upto_ < pending_.size()) {
    STCOMP_RETURN_IF_ERROR(
        SendAllFaulty(fd_, pending_[sent_upto_].bytes, options_.fault_hook));
    ++sent_upto_;
  }
  return Status::Ok();
}

Status FleetClient::ReadOneFrame() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.ack_timeout_ms);
  while (true) {
    NetFrame frame;
    Status error;
    FrameScan scan = reader_.Next(&frame, &error);
    if (scan == FrameScan::kError) {
      return DataLossError(StrFormat("server stream corrupt: %s",
                                     std::string(error.message()).c_str()));
    }
    if (scan == FrameScan::kFrame) {
      switch (frame.type) {
        case NetMessageType::kHelloAck: {
          // Drop everything the server already applied; the rest resends
          // byte-identically under the same sequence numbers.
          while (!pending_.empty() &&
                 pending_.front().seq <= frame.last_acked) {
            ++batches_acked_;
            pending_.pop_front();
          }
          sent_upto_ = 0;
          // A fresh process resuming an existing client id starts its
          // seq space at 1, which the server would shrug off as
          // duplicates — and silently drop. Fast-forward past the
          // server's high-water mark so new batches are genuinely new.
          if (next_seq_ <= frame.last_acked) {
            next_seq_ = frame.last_acked + 1;
          }
          return Status::Ok();
        }
        case NetMessageType::kBatchAck:
          HandleAck(frame.batch_seq);
          return Status::Ok();
        case NetMessageType::kError:
          return UnavailableError(
              StrFormat("server error %s: %s",
                        std::string(NetErrorCodeName(
                                        static_cast<NetErrorCode>(frame.code)))
                            .c_str(),
                        frame.message.c_str()));
        case NetMessageType::kGoAway:
          return UnavailableError(
              StrFormat("server goaway %s: %s",
                        std::string(GoAwayReasonName(
                                        static_cast<GoAwayReason>(frame.code)))
                            .c_str(),
                        frame.message.c_str()));
        default:
          return DataLossError("unexpected frame type from server");
      }
    }
    // kNeedMore: pull bytes off the socket, bounded by the ack deadline.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return UnavailableError(
          StrFormat("no ack within %llu ms",
                    static_cast<unsigned long long>(options_.ack_timeout_ms)));
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    struct pollfd pfd = {fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, std::max(1, std::min(wait_ms, 100)));
    if (ready < 0 && errno != EINTR) {
      return UnavailableError(StrFormat("poll(): %s", std::strerror(errno)));
    }
    if (ready <= 0) continue;
    char chunk[kReadChunk];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      reader_.Append(std::string_view(chunk, n));
      continue;
    }
    if (n == 0) return UnavailableError("server closed the connection");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return UnavailableError(StrFormat("recv(): %s", std::strerror(errno)));
  }
}

void FleetClient::HandleAck(uint64_t seq) {
  // The server acks in order, so one ack retires every batch at or below
  // it — this also absorbs acks lost to a disconnect and re-sent as part
  // of a duplicate-batch re-ack.
  while (!pending_.empty() && pending_.front().seq <= seq) {
    ++batches_acked_;
    pending_.pop_front();
  }
  if (sent_upto_ > pending_.size()) sent_upto_ = pending_.size();
}

}  // namespace stcomp::net
