#include "stcomp/net/ingest_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>
#include <vector>

#include "stcomp/common/strings.h"
#include "stcomp/net/socket_util.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"

namespace stcomp::net {
namespace {

// Poll slice: bounds how stale deadline enforcement and the running_
// flag can get when no socket is ready.
constexpr int kPollSliceMs = 50;

// Non-blocking read chunk. Small enough that one greedy session cannot
// starve the poll loop; the loop comes back for the rest next tick.
constexpr size_t kReadChunk = 4096;

std::atomic<uint64_t> g_instance_counter{1};

double SecondsSince(std::chrono::steady_clock::time_point then,
                    std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

}  // namespace

IngestServer::IngestServer(PushFn push, IngestServerOptions options)
    : push_(std::move(push)), options_(std::move(options)) {
  instance_ = options_.instance.empty()
                  ? StrFormat("ingest-%llu",
                              static_cast<unsigned long long>(
                                  g_instance_counter.fetch_add(1)))
                  : options_.instance;
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels = {{"server", instance_}};
  accepted_ =
      registry.GetCounter("stcomp_net_sessions_accepted_total", labels);
  shed_ = registry.GetCounter("stcomp_net_sessions_shed_total", labels);
  protocol_errors_ =
      registry.GetCounter("stcomp_net_protocol_errors_total", labels);
  batches_acked_ =
      registry.GetCounter("stcomp_net_batches_acked_total", labels);
  duplicate_batches_ =
      registry.GetCounter("stcomp_net_duplicate_batches_total", labels);
  fixes_in_ = registry.GetCounter("stcomp_net_fixes_in_total", labels);
  frames_in_ = registry.GetCounter("stcomp_net_frames_in_total", labels);
  bytes_in_ = registry.GetCounter("stcomp_net_bytes_in_total", labels);
  bytes_out_ = registry.GetCounter("stcomp_net_bytes_out_total", labels);
  idle_timeouts_ =
      registry.GetCounter("stcomp_net_idle_timeouts_total", labels);
  resumed_sessions_ =
      registry.GetCounter("stcomp_net_resumed_sessions_total", labels);
  active_sessions_gauge_ =
      registry.GetGauge("stcomp_net_sessions_active", labels);
  buffered_bytes_gauge_ =
      registry.GetGauge("stcomp_net_buffered_bytes", labels);
}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("ingest server already running");
  }
  STCOMP_ASSIGN_OR_RETURN(Listener listener, ListenLoopback(port, 128));
  STCOMP_RETURN_IF_ERROR(SetNonBlocking(listener.fd));
  listen_fd_ = listener.fd;
  port_ = listener.port;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&IngestServer::Serve, this);
  return Status::Ok();
}

void IngestServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  // Drain ran on the poll thread on its way out (it sees running_ false).
}

size_t IngestServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void IngestServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    // Build the poll set: listener + every live session. Session ids are
    // snapshotted alongside so map mutation during processing is safe.
    std::vector<pollfd> pfds;
    std::vector<uint64_t> ids;
    pfds.push_back({listen_fd_, POLLIN, 0});
    ids.push_back(0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, session] : sessions_) {
        short events = POLLIN;
        if (!session->outbound.empty()) events |= POLLOUT;
        pfds.push_back({session->fd, events, 0});
        ids.push_back(id);
      }
    }
    int ready = ::poll(pfds.data(), pfds.size(), kPollSliceMs);
    if (ready < 0 && errno != EINTR) break;
    if (!running_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) AcceptPending();

    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      Session* session = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(ids[i]);
        if (it == sessions_.end()) continue;
        session = it->second.get();
      }
      // Only the poll thread erases sessions, so the pointer stays valid
      // without holding mu_ (Push may block; never call it under a lock).
      bool alive = true;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (pfds[i].revents & (POLLIN | POLLHUP))) {
        alive = ReadSession(session);
        if (alive) ProcessFrames(session);
      }
      if (alive && (pfds[i].revents & POLLOUT)) alive = FlushSession(session);
      if (alive && session->closing && session->outbound.empty()) {
        alive = false;  // error/GOAWAY fully flushed; hang up
      }
      if (!alive) CloseSession(ids[i]);
    }

    EnforceDeadlines();

    // Sweep sessions marked closing whose farewell frame is fully
    // flushed — deadline-triggered GOAWAYs produce no poll event, so the
    // per-event close check above never sees them.
    std::vector<uint64_t> done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, session] : sessions_) {
        if (session->closing && session->outbound.empty()) done.push_back(id);
      }
    }
    for (uint64_t id : done) CloseSession(id);
  }
  DrainAndCloseAll();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void IngestServer::AcceptPending() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: accepted everything pending
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    session->reader =
        std::make_unique<FrameReader>(options_.max_payload_bytes);
    session->accepted_at = std::chrono::steady_clock::now();
    session->last_activity = session->accepted_at;
    Session* raw = session.get();
    size_t active;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.emplace(raw->id, std::move(session));
      active = sessions_.size();
    }
    accepted_->Increment();
    active_sessions_gauge_->Set(static_cast<double>(active));
    STCOMP_FLIGHT_EVENT(kNetAccept, instance_, raw->id, active);
    if (active > options_.max_sessions) {
      GoAwaySession(raw, GoAwayReason::kOverloaded, "session limit reached");
    }
  }
}

bool IngestServer::ReadSession(Session* session) {
  char chunk[kReadChunk];
  while (true) {
    ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      session->last_activity = std::chrono::steady_clock::now();
      bytes_in_->Increment(static_cast<uint64_t>(n));
      // A closing session's bytes are ignored: its fate is sealed, and
      // buffering more input for a peer we are hanging up on is waste.
      if (!session->closing) {
        session->reader->Append(std::string_view(chunk, n));
        RefreshBufferGauge(session);
        const size_t session_total =
            session->reader->buffered_bytes() + session->outbound.size();
        if (session_total > options_.session_buffer_budget ||
            TotalBufferedBytes() > options_.global_buffer_budget) {
          GoAwaySession(session, GoAwayReason::kOverloaded,
                        "buffer budget exhausted");
          return true;
        }
      }
      if (static_cast<size_t>(n) < sizeof(chunk)) return true;
      continue;
    }
    if (n == 0) return false;  // orderly peer close
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void IngestServer::ProcessFrames(Session* session) {
  while (!session->closing) {
    NetFrame frame;
    Status error;
    FrameScan scan = session->reader->Next(&frame, &error);
    if (scan == FrameScan::kNeedMore) break;
    if (scan == FrameScan::kError) {
      NetErrorCode code = NetErrorCode::kMalformedFrame;
      if (error.code() == StatusCode::kUnimplemented) {
        code = NetErrorCode::kBadVersion;
      } else if (error.code() == StatusCode::kOutOfRange) {
        // ScanNetFrame's typed verdict for a declared payload over the
        // cap; every other framing error arrives as kDataLoss.
        code = NetErrorCode::kOversizedFrame;
      }
      ProtocolError(session, code, std::string(error.message()));
      break;
    }
    frames_in_->Increment();
    HandleFrame(session, frame);
  }
  RefreshBufferGauge(session);
}

void IngestServer::HandleFrame(Session* session, const NetFrame& frame) {
  if (!session->hello_done && frame.type != NetMessageType::kHello) {
    ProtocolError(session, NetErrorCode::kProtocol,
                  StrFormat("%s before hello",
                            std::string(NetMessageTypeName(frame.type))
                                .c_str()));
    return;
  }
  switch (frame.type) {
    case NetMessageType::kHello: {
      if (session->hello_done) {
        ProtocolError(session, NetErrorCode::kProtocol, "duplicate hello");
        return;
      }
      if (frame.client_id.empty()) {
        ProtocolError(session, NetErrorCode::kProtocol, "empty client id");
        return;
      }
      uint64_t last_acked = 0;
      bool resumed = false;
      std::vector<Session*> stale;
      {
        std::lock_guard<std::mutex> lock(mu_);
        session->client_id = frame.client_id;
        auto it = acked_.find(frame.client_id);
        if (it != acked_.end()) {
          last_acked = it->second;
          resumed = true;
        }
        for (const auto& [id, other] : sessions_) {
          if (other.get() != session && other->hello_done &&
              !other->closing && other->client_id == frame.client_id) {
            stale.push_back(other.get());
          }
        }
      }
      // A still-open session speaking for this client id is a zombie —
      // its device reconnected. Fence it now so frames it already wrote
      // to its socket can never be applied alongside the new
      // connection's (one client id, one live connection, one seq
      // space).
      for (Session* zombie : stale) {
        GoAwaySession(zombie, GoAwayReason::kSuperseded,
                      "client reconnected on a new connection");
      }
      session->hello_done = true;
      session->last_acked.store(last_acked, std::memory_order_relaxed);
      if (resumed) resumed_sessions_->Increment();
      QueueFrame(session, NetFrame::HelloAck(session->id, last_acked));
      return;
    }
    case NetMessageType::kBatch:
      HandleBatch(session, frame);
      return;
    case NetMessageType::kBye:
      // Clean goodbye: flush whatever acks are queued, then close. The
      // acked_ entry survives for a future reconnect.
      session->closing = true;
      return;
    case NetMessageType::kHelloAck:
    case NetMessageType::kBatchAck:
    case NetMessageType::kError:
    case NetMessageType::kGoAway:
      ProtocolError(session, NetErrorCode::kProtocol,
                    StrFormat("client sent server-only frame %s",
                              std::string(NetMessageTypeName(frame.type))
                                  .c_str()));
      return;
  }
  ProtocolError(session, NetErrorCode::kProtocol, "unhandled frame type");
}

void IngestServer::HandleBatch(Session* session, const NetFrame& frame) {
  // Gate against the per-client high-water mark in acked_, never a
  // session-local snapshot: if two sessions ever share a client id (a
  // zombie connection racing its replacement past the hello fence),
  // each session's own snapshot would pass its own `last + 1` check and
  // the same batch would apply twice. All batch handling runs on the
  // single poll thread, so this read and the store below cannot
  // interleave with another session's.
  uint64_t last = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = acked_.find(session->client_id);
    if (it != acked_.end()) last = it->second;
  }
  if (frame.batch_seq <= last) {
    // A resend of something already applied (the client missed our ack,
    // or rewound conservatively after reconnect): re-ack, never re-apply
    // — this is the exactly-once half the seq gate buys.
    duplicate_batches_->Increment();
    QueueFrame(session, NetFrame::BatchAck(frame.batch_seq));
    return;
  }
  if (frame.batch_seq != last + 1) {
    ProtocolError(session, NetErrorCode::kProtocol,
                  StrFormat("batch seq gap: got %llu, expected %llu",
                            static_cast<unsigned long long>(frame.batch_seq),
                            static_cast<unsigned long long>(last + 1)));
    return;
  }
  // Apply, then ack. push_ may block on shard-queue backpressure — that
  // is by design: this thread stops reading sockets, TCP windows fill,
  // and the devices slow down. If the process dies mid-batch the batch
  // was never acked, so the client replays it and per-object monotonic
  // ordering downstream discards nothing (the batch simply applies then).
  for (const NetFix& net_fix : frame.fixes) {
    Status pushed = push_(net_fix.object_id, net_fix.fix);
    if (!pushed.ok()) {
      ProtocolError(session, NetErrorCode::kInternal,
                    std::string(pushed.message()));
      return;
    }
  }
  session->last_acked.store(frame.batch_seq, std::memory_order_relaxed);
  session->fixes.fetch_add(frame.fixes.size(), std::memory_order_relaxed);
  session->batches_acked.fetch_add(1, std::memory_order_relaxed);
  fixes_in_->Increment(frame.fixes.size());
  batches_acked_->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    acked_[session->client_id] = frame.batch_seq;
  }
  QueueFrame(session, NetFrame::BatchAck(frame.batch_seq));
}

void IngestServer::QueueFrame(Session* session, const NetFrame& frame) {
  session->outbound.append(EncodeNetFrame(frame));
  RefreshBufferGauge(session);
  // Opportunistic flush so acks reach the client this tick instead of
  // waiting for the next POLLOUT round trip.
  FlushSession(session);
}

void IngestServer::ProtocolError(Session* session, NetErrorCode code,
                                 std::string message) {
  if (session->closing) return;
  protocol_errors_->Increment();
  STCOMP_FLIGHT_EVENT(kNetProtocolError, instance_, session->id,
                      static_cast<uint64_t>(code));
  QueueFrame(session, NetFrame::Error(code, std::move(message)));
  session->closing = true;
}

void IngestServer::GoAwaySession(Session* session, GoAwayReason reason,
                                 std::string message) {
  if (session->closing) return;
  if (reason == GoAwayReason::kOverloaded) {
    shed_->Increment();
    STCOMP_FLIGHT_EVENT(kNetShed, instance_, session->id,
                        static_cast<uint64_t>(reason));
  } else if (reason == GoAwayReason::kIdleTimeout) {
    idle_timeouts_->Increment();
  }
  QueueFrame(session, NetFrame::GoAway(reason, std::move(message)));
  session->closing = true;
}

bool IngestServer::FlushSession(Session* session) {
  while (!session->outbound.empty()) {
    ssize_t n = ::send(session->fd, session->outbound.data(),
                       session->outbound.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_->Increment(static_cast<uint64_t>(n));
      session->outbound.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      RefreshBufferGauge(session);
      return true;  // kernel buffer full; POLLOUT will resume us
    }
    return false;  // peer gone
  }
  RefreshBufferGauge(session);
  return true;
}

void IngestServer::CloseSession(uint64_t session_id) {
  std::unique_ptr<Session> session;
  size_t active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
    active = sessions_.size();
  }
  ::close(session->fd);
  total_buffered_.fetch_sub(
      session->buffered_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  active_sessions_gauge_->Set(static_cast<double>(active));
  STCOMP_IF_METRICS(
      buffered_bytes_gauge_->Set(static_cast<double>(TotalBufferedBytes())));
}

void IngestServer::EnforceDeadlines() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<Session*> idle;
  std::vector<Session*> no_hello;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) {
      if (session->closing) continue;
      if (!session->hello_done &&
          SecondsSince(session->accepted_at, now) >
              options_.handshake_timeout_s) {
        no_hello.push_back(session.get());
      } else if (SecondsSince(session->last_activity, now) >
                 options_.idle_timeout_s) {
        idle.push_back(session.get());
      }
    }
  }
  // A handshake that never arrives is the slow-loris shape: hold the fd,
  // send nothing. Typed close, not a hang.
  for (Session* session : no_hello) {
    GoAwaySession(session, GoAwayReason::kIdleTimeout, "handshake timeout");
  }
  for (Session* session : idle) {
    GoAwaySession(session, GoAwayReason::kIdleTimeout, "idle timeout");
  }
}

void IngestServer::DrainAndCloseAll() {
  // 1. Every complete frame already buffered is processed (and acked) so
  //    no fix a client believes delivered rides the floor.
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  size_t drained = 0;
  for (uint64_t id : ids) {
    Session* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      session = it->second.get();
    }
    ProcessFrames(session);
    if (!session->closing) {
      GoAwaySession(session, GoAwayReason::kDraining, "server draining");
    }
    ++drained;
  }
  // 2. Give buffered acks/GOAWAYs drain_timeout_s to reach their peers.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.drain_timeout_s));
  bool pending = true;
  while (pending && std::chrono::steady_clock::now() < deadline) {
    pending = false;
    for (uint64_t id : ids) {
      Session* session = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end()) continue;
        session = it->second.get();
      }
      if (!FlushSession(session)) {
        CloseSession(id);
      } else if (!session->outbound.empty()) {
        pending = true;
      }
    }
    if (pending) {
      struct pollfd dummy = {-1, 0, 0};
      ::poll(&dummy, 1, 10);  // brief nap; kernel buffers need a moment
    }
  }
  // 3. Hang up on whatever is left.
  for (uint64_t id : ids) CloseSession(id);
  STCOMP_FLIGHT_EVENT(kNetDrain, instance_, drained, batches_acked_->value());
}

size_t IngestServer::TotalBufferedBytes() const {
  return total_buffered_.load(std::memory_order_relaxed);
}

void IngestServer::RefreshBufferGauge(Session* session) {
  const size_t now =
      session->reader->buffered_bytes() + session->outbound.size();
  const size_t before =
      session->buffered_bytes.exchange(now, std::memory_order_relaxed);
  // Unsigned wraparound makes the delta exact even when now < before,
  // keeping the running total in lockstep without iterating sessions —
  // the global budget check runs per read chunk and must stay O(1).
  total_buffered_.fetch_add(now - before, std::memory_order_relaxed);
  STCOMP_IF_METRICS(
      buffered_bytes_gauge_->Set(static_cast<double>(TotalBufferedBytes())));
}

std::string IngestServer::RenderIngestzJson() const {
  const auto now = std::chrono::steady_clock::now();
  std::string out;
  out.reserve(1024);
  out += StrFormat(
      "{\"server\":{\"instance\":\"%s\",\"port\":%u,"
      "\"active_sessions\":%zu,\"accepted\":%llu,\"shed\":%llu,"
      "\"protocol_errors\":%llu,\"idle_timeouts\":%llu,"
      "\"batches_acked\":%llu,\"duplicate_batches\":%llu,"
      "\"fixes\":%llu,\"bytes_in\":%llu,\"bytes_out\":%llu,"
      "\"draining\":%s},\"sessions\":[",
      obs::JsonEscape(instance_).c_str(), port_, active_sessions(),
      static_cast<unsigned long long>(accepted_->value()),
      static_cast<unsigned long long>(shed_->value()),
      static_cast<unsigned long long>(protocol_errors_->value()),
      static_cast<unsigned long long>(idle_timeouts_->value()),
      static_cast<unsigned long long>(batches_acked_->value()),
      static_cast<unsigned long long>(duplicate_batches_->value()),
      static_cast<unsigned long long>(fixes_in_->value()),
      static_cast<unsigned long long>(bytes_in_->value()),
      static_cast<unsigned long long>(bytes_out_->value()),
      running_.load(std::memory_order_acquire) ? "false" : "true");
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& [id, session] : sessions_) {
      if (!first) out += ',';
      first = false;
      out += StrFormat(
          "{\"id\":%llu,\"client\":\"%s\",\"fixes\":%llu,"
          "\"batches_acked\":%llu,\"last_acked\":%llu,"
          "\"buffer_bytes\":%zu,\"age_seconds\":%.3f}",
          static_cast<unsigned long long>(id),
          obs::JsonEscape(session->client_id).c_str(),
          static_cast<unsigned long long>(
              session->fixes.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              session->batches_acked.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              session->last_acked.load(std::memory_order_relaxed)),
          session->buffered_bytes.load(std::memory_order_relaxed),
          SecondsSince(session->accepted_at, now));
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace stcomp::net
