// A device-side ingest client for the STNI wire protocol (net/frame.h):
// batches fixes, numbers the batches, and survives disconnects without
// losing or duplicating anything the server acked.
//
// The client keeps every sent-but-unacked batch (bounded by
// max_inflight_batches — that bound is the client-side backpressure).
// On any link failure — connection reset, ack deadline, a kError or
// kGoAway frame from the server — it reconnects, replays the handshake,
// drops every pending batch the kHelloAck reports acked, and resends the
// rest byte-identically (same encoding, same sequence numbers). The
// server's seq gate (apply only last_acked + 1) turns that at-least-once
// resend into exactly-once application.
//
// Synchronous by design: Push() and Flush() drive the socket inline on
// the calling thread. A fleet simulator runs one client per thread; the
// chaos soak wraps the socket writes in a seeded WireFaultHook
// (socket_util.h) to prove the resume story under fire.

#ifndef STCOMP_NET_FLEET_CLIENT_H_
#define STCOMP_NET_FLEET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/status.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/net/frame.h"
#include "stcomp/net/socket_util.h"

namespace stcomp::net {

struct FleetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Stable identity for ack-resume across reconnects. Required.
  std::string client_id;
  // Fixes per batch; a partial batch is sealed by Flush().
  size_t batch_size = 64;
  // Sent-but-unacked batches Push() tolerates before blocking on acks.
  size_t max_inflight_batches = 8;
  // No ack within this window ⇒ declare the link dead and reconnect.
  uint64_t ack_timeout_ms = 5000;
  // Reconnect budget over the client's lifetime; exhausting it fails the
  // pending operation with kUnavailable.
  size_t max_reconnects = 100;
  // Chaos seam: every socket write goes through this hook when set
  // (injected disconnects / stalls / split writes / corrupt spans).
  WireFaultHook fault_hook;
};

class FleetClient {
 public:
  explicit FleetClient(FleetClientOptions options);
  ~FleetClient();
  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  // Dials and completes the hello/ack handshake. Also called lazily by
  // Push()/Flush(); explicit Connect() just surfaces errors earlier.
  Status Connect();

  // Buffers one fix; seals and sends a batch every batch_size fixes.
  // Blocks when max_inflight_batches are unacked (backpressure).
  Status Push(std::string_view object_id, const TimedPoint& fix);

  // Seals the partial batch and blocks until every batch is acked.
  Status Flush();

  // Flush + polite kBye + close. The server keeps the ack high-water
  // mark, so a later client with the same id resumes cleanly.
  Status Bye();

  uint64_t fixes_pushed() const { return fixes_pushed_; }
  uint64_t batches_acked() const { return batches_acked_; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  struct PendingBatch {
    uint64_t seq = 0;
    std::string bytes;  // encoded once; resends are byte-identical
    size_t fixes = 0;
  };

  Status EnsureConnected();
  Status Dial();
  void MarkDisconnected();
  // Seals buffered fixes into a PendingBatch (no-op when empty).
  void SealBatch();
  // Sends unsent pending batches, then reads acks until `need_all`
  // (Flush) or pending < max_inflight (Push) is satisfied.
  Status Pump(bool need_all);
  Status SendUnsent();
  // Blocks up to ack_timeout_ms for one server frame; dispatches it.
  Status ReadOneFrame();
  void HandleAck(uint64_t seq);

  FleetClientOptions options_;
  int fd_ = -1;
  bool connected_ = false;
  bool ever_dialed_ = false;
  FrameReader reader_;
  std::vector<NetFix> open_batch_;
  std::deque<PendingBatch> pending_;
  uint64_t next_seq_ = 1;
  // Batches of pending_ already written to the *current* connection;
  // reset on reconnect so the tail gets resent.
  size_t sent_upto_ = 0;
  uint64_t fixes_pushed_ = 0;
  uint64_t batches_acked_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace stcomp::net

#endif  // STCOMP_NET_FLEET_CLIENT_H_
