// Deterministic random generation for simulation and tests: SplitMix64 for
// seeding, xoshiro256++ as the engine, plus the handful of distributions
// the simulator needs. std::mt19937 + std::*_distribution are avoided
// because their output is not portable across standard library
// implementations; experiment outputs must be bit-reproducible.

#ifndef STCOMP_SIM_RANDOM_H_
#define STCOMP_SIM_RANDOM_H_

#include <cstdint>

namespace stcomp {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextUint64();

  // Uniform on [0, bound). Precondition (checked): bound > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform on [0, 1).
  double NextDouble();

  // Uniform on [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal (Marsaglia polar method).
  double NextGaussian();

  // Bernoulli with probability p.
  bool NextBool(double p);

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace stcomp

#endif  // STCOMP_SIM_RANDOM_H_
