#include "stcomp/sim/random.h"

#include <cmath>

#include "stcomp/common/check.h"

namespace stcomp {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  STCOMP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = bound * (UINT64_MAX / bound);
  uint64_t value = NextUint64();
  while (value >= limit) {
    value = NextUint64();
  }
  return value % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace stcomp
