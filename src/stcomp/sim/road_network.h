// A synthetic road network: a jittered grid graph with per-edge speed
// limits and signalised intersections. Routes for the trip generator are
// found with Dijkstra over travel time.
//
// This substitutes for the real Enschede road network underlying the
// paper's GPS traces; what matters for the experiments is that routes have
// straight stretches, turns, and signal stops — the features that create
// time-varying speed over spatially simple geometry.

#ifndef STCOMP_SIM_ROAD_NETWORK_H_
#define STCOMP_SIM_ROAD_NETWORK_H_

#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/geom/geometry.h"
#include "stcomp/sim/random.h"

namespace stcomp {

struct RoadNode {
  Vec2 position;
  bool has_traffic_light = false;
};

struct RoadEdge {
  int from = 0;
  int to = 0;
  double length_m = 0.0;
  double speed_limit_mps = 13.9;
};

struct RoadNetworkConfig {
  int grid_width = 24;
  int grid_height = 24;
  double spacing_m = 400.0;        // Block size.
  double jitter_fraction = 0.25;   // Node displacement, fraction of spacing.
  double edge_keep_probability = 0.92;  // Some blocks have no through road.
  double traffic_light_probability = 0.35;
  // Speed limits are drawn uniformly from [min, max]; arterials (every
  // `arterial_every`-th grid line) get the boosted range instead.
  double min_speed_mps = 11.1;   // 40 km/h
  double max_speed_mps = 13.9;   // 50 km/h
  int arterial_every = 6;
  double arterial_min_speed_mps = 19.4;  // 70 km/h
  double arterial_max_speed_mps = 25.0;  // 90 km/h
};

class RoadNetwork {
 public:
  // Builds the network; guaranteed connected on its largest component
  // (Generate retries edge removal until the component spans >= 90% of
  // nodes). Deterministic in `seed`.
  static RoadNetwork Generate(const RoadNetworkConfig& config, uint64_t seed);

  const std::vector<RoadNode>& nodes() const { return nodes_; }
  const std::vector<RoadEdge>& edges() const { return edges_; }
  // Edge indices incident to `node`.
  const std::vector<int>& AdjacentEdges(int node) const {
    return adjacency_[static_cast<size_t>(node)];
  }

  // Optional destination-selection bias for RouteWithLength: prefer
  // destinations whose straight-line distance to `anchor` is close to
  // `target_displacement_m`. Used by the trip generator to shape the
  // displacement/length ratio of multi-leg trips.
  struct RouteBias {
    Vec2 anchor;
    double target_displacement_m = 0.0;
  };

  // Node sequence of the (travel-time) shortest path whose length is
  // closest to `target_length_m`, starting from `from`: Dijkstra expands
  // fully, then the best-matching reachable destination is picked (with
  // `bias`, the score mixes length match and displacement match equally).
  // Fails with kNotFound if `from` is isolated.
  Result<std::vector<int>> RouteWithLength(int from, double target_length_m,
                                           const RouteBias* bias = nullptr)
      const;

  // Travel-time shortest path between two nodes (kNotFound if unreachable).
  Result<std::vector<int>> Route(int from, int to) const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace stcomp

#endif  // STCOMP_SIM_ROAD_NETWORK_H_
