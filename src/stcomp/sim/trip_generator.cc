#include "stcomp/sim/trip_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stcomp/common/check.h"

namespace stcomp {

namespace {

constexpr double kPi = 3.14159265358979323846;

// One leg of the flattened route.
struct Leg {
  Vec2 from;
  Vec2 to;
  double length_m;
  double speed_limit_mps;
  // Target speed when *entering* the next leg (turn/stop constraint at the
  // waypoint ending this leg); 0 for a stop.
  double exit_speed_mps;
  // Dwell time at the waypoint ending this leg (red light), 0 if none.
  double dwell_s;
};

// Comfortable speed through a turn of heading change `theta` (radians).
// Straight-through keeps full speed; a U-turn crawls.
double TurnSpeed(double theta, double lateral_accel) {
  // Approximate the turn as an arc of radius r ~ lane_offset / (1 -
  // cos(theta/2)); rather than model lanes we use a smooth empirical map
  // calibrated to urban driving: ~14 m/s at 20 deg, ~5 m/s at 90 deg,
  // ~2.5 m/s at 180 deg.
  const double sharpness = theta / kPi;  // 0..1
  const double v = 16.0 * std::pow(1.0 - sharpness, 2.0) + 2.5;
  // Lateral-acceleration cap for gentle curves.
  const double r = 30.0 / std::max(0.05, sharpness);
  return std::min(v, std::sqrt(lateral_accel * r));
}

// Looks ahead over upcoming constraints and returns the maximum speed
// permitted *now* such that every future target speed remains reachable
// with the configured deceleration.
double AllowedSpeed(const std::vector<Leg>& legs, size_t current_leg,
                    double position_in_leg, double decel) {
  const Leg& leg = legs[current_leg];
  double allowed = leg.speed_limit_mps;
  double distance = leg.length_m - position_in_leg;
  for (size_t j = current_leg; j < legs.size(); ++j) {
    const Leg& constraint_leg = legs[j];
    const double target = constraint_leg.exit_speed_mps;
    // v^2 <= target^2 + 2 a d
    const double limit =
        std::sqrt(target * target + 2.0 * decel * std::max(0.0, distance));
    allowed = std::min(allowed, limit);
    if (j + 1 < legs.size()) {
      allowed = std::min(
          allowed, std::sqrt(legs[j + 1].speed_limit_mps *
                                 legs[j + 1].speed_limit_mps +
                             2.0 * decel * std::max(0.0, distance)));
      distance += legs[j + 1].length_m;
    }
    // Once the accumulated distance exceeds the worst braking distance
    // from any speed we could hold, further constraints cannot bind.
    if (distance > allowed * allowed / (2.0 * decel) + 50.0) {
      break;
    }
  }
  return allowed;
}

const RoadEdge* FindEdge(const RoadNetwork& network, int a, int b) {
  for (int edge_index : network.AdjacentEdges(a)) {
    const RoadEdge& edge = network.edges()[static_cast<size_t>(edge_index)];
    if ((edge.from == a && edge.to == b) ||
        (edge.from == b && edge.to == a)) {
      return &edge;
    }
  }
  return nullptr;
}

}  // namespace

Result<Trajectory> GenerateTrip(const RoadNetwork& network,
                                const TripConfig& config, int start_node,
                                Rng* rng) {
  STCOMP_CHECK(rng != nullptr);
  STCOMP_CHECK(config.sample_interval_s > 0.0 &&
               config.integration_step_s > 0.0);
  if (network.nodes().empty()) {
    return NotFoundError("empty road network");
  }
  if (start_node < 0) {
    // Uniform over nodes with at least one incident edge.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const int candidate =
          static_cast<int>(rng->NextBelow(network.nodes().size()));
      if (!network.AdjacentEdges(candidate).empty()) {
        start_node = candidate;
        break;
      }
    }
    if (start_node < 0) {
      return NotFoundError("road network has no connected node");
    }
  }
  STCOMP_CHECK(config.num_legs >= 1);
  // Chain legs: each leg routes from the previous endpoint towards a
  // length-matched destination; RouteWithLength picks the best-matching
  // node, and the rng-free Dijkstra keeps the chain deterministic.
  std::vector<int> route;
  int leg_start = start_node;
  const double leg_length = config.target_length_m / config.num_legs;
  const Vec2 trip_origin =
      network.nodes()[static_cast<size_t>(start_node)].position;
  for (int leg = 0; leg < config.num_legs; ++leg) {
    // All legs after the first steer towards the configured end-to-end
    // displacement so trips wind without doubling straight back.
    RoadNetwork::RouteBias bias;
    bias.anchor = trip_origin;
    bias.target_displacement_m = config.displacement_fraction *
                                 config.target_length_m *
                                 (leg + 1.0) / config.num_legs;
    const bool use_bias = leg > 0;
    STCOMP_ASSIGN_OR_RETURN(
        const std::vector<int> leg_route,
        network.RouteWithLength(leg_start, leg_length,
                                use_bias ? &bias : nullptr));
    // Skip the shared junction node when concatenating.
    route.insert(route.end(),
                 leg_route.begin() + (route.empty() ? 0 : 1),
                 leg_route.end());
    leg_start = leg_route.back();
  }
  if (route.size() < 2) {
    return NotFoundError("route degenerate");
  }

  // Flatten to legs with exit constraints.
  std::vector<Leg> legs;
  legs.reserve(route.size() - 1);
  for (size_t k = 0; k + 1 < route.size(); ++k) {
    const RoadEdge* edge = FindEdge(network, route[k], route[k + 1]);
    STCOMP_CHECK(edge != nullptr);
    Leg leg;
    leg.from = network.nodes()[static_cast<size_t>(route[k])].position;
    leg.to = network.nodes()[static_cast<size_t>(route[k + 1])].position;
    leg.length_m = edge->length_m;
    leg.speed_limit_mps = edge->speed_limit_mps * config.speed_factor;
    leg.exit_speed_mps = leg.speed_limit_mps;
    leg.dwell_s = 0.0;
    legs.push_back(leg);
  }
  for (size_t k = 0; k + 1 < legs.size(); ++k) {
    const int node = route[k + 1];
    const double theta = HeadingChange(legs[k].from, legs[k].to,
                                       legs[k + 1].to);
    legs[k].exit_speed_mps = std::min(
        legs[k].exit_speed_mps, TurnSpeed(theta, config.lateral_accel_mps2));
    if (network.nodes()[static_cast<size_t>(node)].has_traffic_light &&
        rng->NextBool(config.stop_probability)) {
      legs[k].exit_speed_mps = 0.0;
      legs[k].dwell_s = rng->NextUniform(config.min_stop_s, config.max_stop_s);
    }
  }
  legs.back().exit_speed_mps = 0.0;  // Park at the destination.

  // March the vehicle.
  std::vector<TimedPoint> samples;
  double t = config.start_time_s;
  double next_sample_t = t;
  double v = 0.0;
  size_t leg_index = 0;
  double s = 0.0;  // Distance into the current leg.
  const double dt = config.integration_step_s;
  const auto position_now = [&]() {
    const Leg& leg = legs[leg_index];
    const double u = leg.length_m > 0.0 ? s / leg.length_m : 0.0;
    return Lerp(leg.from, leg.to, std::min(1.0, u));
  };
  const auto maybe_sample = [&]() {
    while (next_sample_t <= t) {
      samples.emplace_back(next_sample_t, position_now());
      next_sample_t += config.sample_interval_s;
    }
  };
  maybe_sample();
  // Hard cap: no trip runs longer than 6 hours (guards against a malformed
  // config ever stalling the simulation).
  const double t_limit = config.start_time_s + 6.0 * 3600.0;
  while (leg_index < legs.size() && t < t_limit) {
    const Leg& leg = legs[leg_index];
    const double allowed =
        AllowedSpeed(legs, leg_index, s, config.decel_mps2);
    if (v < allowed) {
      v = std::min(v + config.accel_mps2 * dt, allowed);
    } else {
      v = std::max(allowed, v - config.decel_mps2 * dt);
    }
    // Guarantee progress even when the braking envelope saturates to ~0
    // before the waypoint (numerical floor).
    s += std::max(v, 0.05) * dt;
    t += dt;
    if (s >= leg.length_m) {
      v = std::min(v, leg.exit_speed_mps);
      if (leg.dwell_s > 0.0) {
        // Red light: dwell at the node, emitting stationary samples.
        const double resume_t = t + leg.dwell_s;
        s = leg.length_m;
        maybe_sample();
        while (next_sample_t <= resume_t) {
          samples.emplace_back(next_sample_t, position_now());
          next_sample_t += config.sample_interval_s;
        }
        t = resume_t;
        v = 0.0;
      }
      s -= leg.length_m;
      ++leg_index;
      if (leg_index >= legs.size()) {
        break;
      }
    }
    maybe_sample();
  }
  // Final fix at the destination.
  const Vec2 destination = legs.back().to;
  if (samples.empty() || samples.back().t < t) {
    samples.emplace_back(t, destination);
  }
  Trajectory trajectory = Trajectory::FromUnordered(std::move(samples));
  return trajectory;
}

}  // namespace stcomp
