#include "stcomp/sim/paper_dataset.h"

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"

namespace stcomp {

namespace {

// Per-trip profile: target length and driving style. The spread of lengths
// reproduces Table 2's large length/duration standard deviations (the
// paper's traces mix short urban hops with long rural drives).
struct TripProfile {
  double target_length_m;
  double speed_factor;
  double stop_probability;
};

constexpr TripProfile kProfiles[] = {
    {4500.0, 0.85, 0.70},   // short urban errand
    {7000.0, 0.90, 0.65},   // urban commute
    {9500.0, 0.92, 0.60},   // urban commute
    {12500.0, 0.95, 0.55},  // cross-town
    {16000.0, 1.00, 0.50},  // cross-town
    {20000.0, 0.98, 0.50},  // mixed
    {25000.0, 1.00, 0.40},  // mixed, arterial-heavy
    {31000.0, 1.05, 0.35},  // rural
    {38000.0, 1.05, 0.30},  // rural
    {46000.0, 1.10, 0.25},  // long rural drive
};

}  // namespace

std::vector<Trajectory> GeneratePaperDataset(
    const PaperDatasetConfig& config) {
  // One shared network, large enough for the longest route.
  RoadNetworkConfig network_config;
  network_config.grid_width = 36;
  network_config.grid_height = 36;
  network_config.spacing_m = 650.0;
  // Speed limits and signal density tuned so the dataset's average speed
  // lands near Table 2's 40.85 km/h (urban streets dominate, with faster
  // arterials carrying the long rural trips).
  network_config.min_speed_mps = 7.5;         // 27 km/h
  network_config.max_speed_mps = 11.1;        // 40 km/h
  network_config.arterial_min_speed_mps = 13.3;  // ~48 km/h
  network_config.arterial_max_speed_mps = 18.0;  // ~65 km/h
  network_config.traffic_light_probability = 0.5;
  const RoadNetwork network =
      RoadNetwork::Generate(network_config, config.seed);

  std::vector<Trajectory> dataset;
  dataset.reserve(config.num_trajectories);
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const size_t num_profiles = sizeof(kProfiles) / sizeof(kProfiles[0]);
  for (size_t i = 0; i < config.num_trajectories; ++i) {
    const TripProfile& profile = kProfiles[i % num_profiles];
    TripConfig trip;
    trip.target_length_m = profile.target_length_m;
    trip.speed_factor = profile.speed_factor;
    trip.stop_probability = profile.stop_probability;
    trip.sample_interval_s = config.sample_interval_s;
    // Urban signal waits run up to a minute and a half (queues), which is
    // what makes trajectories deviate *temporally* while staying on the
    // road line — the regime the paper's error magnitudes reflect.
    trip.max_stop_s = 90.0;
    // Retry with fresh start nodes on the (rare) degenerate route.
    Trajectory trajectory;
    bool generated = false;
    for (int attempt = 0; attempt < 16 && !generated; ++attempt) {
      Result<Trajectory> result = GenerateTrip(network, trip, -1, &rng);
      if (result.ok() && result->size() >= 10) {
        trajectory = std::move(result).value();
        generated = true;
      }
    }
    STCOMP_CHECK(generated);
    if (config.add_noise) {
      trajectory = AddGpsNoise(trajectory, config.noise, &rng);
    }
    trajectory.set_name(StrFormat("trace-%zu", i));
    dataset.push_back(std::move(trajectory));
  }
  return dataset;
}

}  // namespace stcomp
