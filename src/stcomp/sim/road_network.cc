#include "stcomp/sim/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "stcomp/common/check.h"

namespace stcomp {

namespace {

struct DijkstraResult {
  std::vector<double> time_s;        // Infinity where unreachable.
  std::vector<double> distance_m;    // Path length along the chosen tree.
  std::vector<int> parent_edge;     // -1 at the source / unreachable.
};

DijkstraResult RunDijkstra(const RoadNetwork& network, int source) {
  const size_t n = network.nodes().size();
  DijkstraResult result;
  result.time_s.assign(n, std::numeric_limits<double>::infinity());
  result.distance_m.assign(n, 0.0);
  result.parent_edge.assign(n, -1);
  using Entry = std::pair<double, int>;  // (time, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  result.time_s[static_cast<size_t>(source)] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [time, node] = queue.top();
    queue.pop();
    if (time > result.time_s[static_cast<size_t>(node)]) {
      continue;
    }
    for (int edge_index : network.AdjacentEdges(node)) {
      const RoadEdge& edge = network.edges()[static_cast<size_t>(edge_index)];
      const int other = edge.from == node ? edge.to : edge.from;
      const double next_time = time + edge.length_m / edge.speed_limit_mps;
      if (next_time < result.time_s[static_cast<size_t>(other)]) {
        result.time_s[static_cast<size_t>(other)] = next_time;
        result.distance_m[static_cast<size_t>(other)] =
            result.distance_m[static_cast<size_t>(node)] + edge.length_m;
        result.parent_edge[static_cast<size_t>(other)] = edge_index;
        queue.emplace(next_time, other);
      }
    }
  }
  return result;
}

std::vector<int> ExtractPath(const RoadNetwork& network,
                             const DijkstraResult& tree, int source,
                             int destination) {
  std::vector<int> path;
  int node = destination;
  while (node != source) {
    path.push_back(node);
    const int edge_index = tree.parent_edge[static_cast<size_t>(node)];
    STCOMP_CHECK(edge_index >= 0);
    const RoadEdge& edge = network.edges()[static_cast<size_t>(edge_index)];
    node = edge.from == node ? edge.to : edge.from;
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RoadNetwork RoadNetwork::Generate(const RoadNetworkConfig& config,
                                  uint64_t seed) {
  Rng rng(seed);
  RoadNetwork network;
  const int w = config.grid_width;
  const int h = config.grid_height;
  STCOMP_CHECK(w >= 2 && h >= 2);
  network.nodes_.reserve(static_cast<size_t>(w) * static_cast<size_t>(h));
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      RoadNode node;
      const double jitter = config.jitter_fraction * config.spacing_m;
      node.position = {col * config.spacing_m +
                           rng.NextUniform(-jitter, jitter),
                       row * config.spacing_m +
                           rng.NextUniform(-jitter, jitter)};
      node.has_traffic_light = rng.NextBool(config.traffic_light_probability);
      network.nodes_.push_back(node);
    }
  }
  const auto node_index = [w](int col, int row) { return row * w + col; };
  const auto add_edge = [&](int from, int to, bool arterial) {
    if (!arterial && !rng.NextBool(config.edge_keep_probability)) {
      return;
    }
    RoadEdge edge;
    edge.from = from;
    edge.to = to;
    edge.length_m = Distance(network.nodes_[static_cast<size_t>(from)].position,
                             network.nodes_[static_cast<size_t>(to)].position);
    edge.speed_limit_mps =
        arterial ? rng.NextUniform(config.arterial_min_speed_mps,
                                   config.arterial_max_speed_mps)
                 : rng.NextUniform(config.min_speed_mps,
                                   config.max_speed_mps);
    network.edges_.push_back(edge);
  };
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      // Arterial roads run along every `arterial_every`-th grid line; they
      // are never removed, which keeps the network connected in practice.
      if (col + 1 < w) {
        const bool arterial =
            config.arterial_every > 0 && row % config.arterial_every == 0;
        add_edge(node_index(col, row), node_index(col + 1, row), arterial);
      }
      if (row + 1 < h) {
        const bool arterial =
            config.arterial_every > 0 && col % config.arterial_every == 0;
        add_edge(node_index(col, row), node_index(col, row + 1), arterial);
      }
    }
  }
  network.adjacency_.assign(network.nodes_.size(), {});
  for (size_t e = 0; e < network.edges_.size(); ++e) {
    network.adjacency_[static_cast<size_t>(network.edges_[e].from)].push_back(
        static_cast<int>(e));
    network.adjacency_[static_cast<size_t>(network.edges_[e].to)].push_back(
        static_cast<int>(e));
  }
  return network;
}

Result<std::vector<int>> RoadNetwork::RouteWithLength(
    int from, double target_length_m, const RouteBias* bias) const {
  STCOMP_CHECK(from >= 0 && static_cast<size_t>(from) < nodes_.size());
  const DijkstraResult tree = RunDijkstra(*this, from);
  int best = -1;
  double best_gap = std::numeric_limits<double>::infinity();
  for (size_t node = 0; node < nodes_.size(); ++node) {
    if (static_cast<int>(node) == from ||
        !std::isfinite(tree.time_s[node])) {
      continue;
    }
    double gap = std::abs(tree.distance_m[node] - target_length_m) /
                 std::max(target_length_m, 1.0);
    if (bias != nullptr) {
      const double displacement =
          Distance(nodes_[node].position, bias->anchor);
      gap += std::abs(displacement - bias->target_displacement_m) /
             std::max(bias->target_displacement_m, 1.0);
    }
    if (gap < best_gap) {
      best_gap = gap;
      best = static_cast<int>(node);
    }
  }
  if (best < 0) {
    return NotFoundError("no node reachable from route start");
  }
  return ExtractPath(*this, tree, from, best);
}

Result<std::vector<int>> RoadNetwork::Route(int from, int to) const {
  STCOMP_CHECK(from >= 0 && static_cast<size_t>(from) < nodes_.size());
  STCOMP_CHECK(to >= 0 && static_cast<size_t>(to) < nodes_.size());
  const DijkstraResult tree = RunDijkstra(*this, from);
  if (!std::isfinite(tree.time_s[static_cast<size_t>(to)])) {
    return NotFoundError("destination unreachable");
  }
  return ExtractPath(*this, tree, from, to);
}

}  // namespace stcomp
