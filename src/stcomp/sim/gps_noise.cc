#include "stcomp/sim/gps_noise.h"

#include <cmath>

#include "stcomp/common/check.h"

namespace stcomp {

Trajectory AddGpsNoise(const Trajectory& trajectory,
                       const GpsNoiseConfig& config, Rng* rng) {
  STCOMP_CHECK(rng != nullptr);
  STCOMP_CHECK(config.sigma_m >= 0.0 && config.correlation_time_s > 0.0);
  std::vector<TimedPoint> noisy;
  noisy.reserve(trajectory.size());
  Vec2 bias{0.0, 0.0};
  double previous_t = 0.0;
  bool first = true;
  for (const TimedPoint& point : trajectory.points()) {
    if (first) {
      bias = {config.sigma_m * rng->NextGaussian(),
              config.sigma_m * rng->NextGaussian()};
      first = false;
    } else {
      const double dt = point.t - previous_t;
      const double rho = std::exp(-dt / config.correlation_time_s);
      const double innovation = config.sigma_m * std::sqrt(1.0 - rho * rho);
      bias = {rho * bias.x + innovation * rng->NextGaussian(),
              rho * bias.y + innovation * rng->NextGaussian()};
    }
    previous_t = point.t;
    noisy.emplace_back(point.t, point.position + bias);
  }
  Trajectory result = Trajectory::FromUnordered(std::move(noisy));
  result.set_name(trajectory.name());
  return result;
}

}  // namespace stcomp
