#include "stcomp/sim/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "stcomp/common/check.h"

namespace stcomp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Candidate {
  int edge_index;
  Vec2 snapped;
  double offset_m;    // Along the edge from edge.from.
  double distance_m;  // Fix to edge.
};

// Memoised single-source shortest *distances* (metres) over the network.
class DistanceOracle {
 public:
  explicit DistanceOracle(const RoadNetwork& network) : network_(network) {}

  double NodeDistance(int from, int to) {
    const std::vector<double>& table = TableFor(from);
    return table[static_cast<size_t>(to)];
  }

 private:
  const std::vector<double>& TableFor(int source) {
    auto it = cache_.find(source);
    if (it != cache_.end()) {
      return it->second;
    }
    std::vector<double> distance(network_.nodes().size(), kInf);
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
    distance[static_cast<size_t>(source)] = 0.0;
    queue.emplace(0.0, source);
    while (!queue.empty()) {
      const auto [d, node] = queue.top();
      queue.pop();
      if (d > distance[static_cast<size_t>(node)]) {
        continue;
      }
      for (int edge_index : network_.AdjacentEdges(node)) {
        const RoadEdge& edge =
            network_.edges()[static_cast<size_t>(edge_index)];
        const int other = edge.from == node ? edge.to : edge.from;
        const double next = d + edge.length_m;
        if (next < distance[static_cast<size_t>(other)]) {
          distance[static_cast<size_t>(other)] = next;
          queue.emplace(next, other);
        }
      }
    }
    return cache_.emplace(source, std::move(distance)).first->second;
  }

  const RoadNetwork& network_;
  std::map<int, std::vector<double>> cache_;
};

std::vector<Candidate> FindCandidates(const RoadNetwork& network, Vec2 fix,
                                      const MapMatchConfig& config) {
  std::vector<Candidate> candidates;
  for (size_t e = 0; e < network.edges().size(); ++e) {
    const RoadEdge& edge = network.edges()[e];
    const Vec2 a = network.nodes()[static_cast<size_t>(edge.from)].position;
    const Vec2 b = network.nodes()[static_cast<size_t>(edge.to)].position;
    // Cheap bounding reject before the exact projection.
    const double slack = config.candidate_radius_m;
    if (fix.x < std::min(a.x, b.x) - slack ||
        fix.x > std::max(a.x, b.x) + slack ||
        fix.y < std::min(a.y, b.y) - slack ||
        fix.y > std::max(a.y, b.y) + slack) {
      continue;
    }
    const double u = ProjectOntoSegment(fix, a, b);
    const Vec2 snapped = Lerp(a, b, u);
    const double d = Distance(fix, snapped);
    if (d <= config.candidate_radius_m) {
      candidates.push_back(
          {static_cast<int>(e), snapped, u * edge.length_m, d});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& lhs, const Candidate& rhs) {
              return lhs.distance_m < rhs.distance_m;
            });
  if (candidates.size() > config.max_candidates_per_fix) {
    candidates.resize(config.max_candidates_per_fix);
  }
  return candidates;
}

// On-network distance between two candidate projections.
double NetworkDistance(const RoadNetwork& network, DistanceOracle* oracle,
                       const Candidate& from, const Candidate& to) {
  if (from.edge_index == to.edge_index) {
    return std::abs(to.offset_m - from.offset_m);
  }
  const RoadEdge& edge_a =
      network.edges()[static_cast<size_t>(from.edge_index)];
  const RoadEdge& edge_b = network.edges()[static_cast<size_t>(to.edge_index)];
  // Leave edge A via either endpoint, enter edge B via either endpoint.
  const double exit_cost[2] = {from.offset_m,
                               edge_a.length_m - from.offset_m};
  const int exit_node[2] = {edge_a.from, edge_a.to};
  const double enter_cost[2] = {to.offset_m, edge_b.length_m - to.offset_m};
  const int enter_node[2] = {edge_b.from, edge_b.to};
  double best = kInf;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const double via =
          exit_cost[i] + oracle->NodeDistance(exit_node[i], enter_node[j]) +
          enter_cost[j];
      best = std::min(best, via);
    }
  }
  return best;
}

}  // namespace

Result<MapMatchResult> MatchToNetwork(const RoadNetwork& network,
                                      const Trajectory& trajectory,
                                      const MapMatchConfig& config) {
  STCOMP_CHECK(config.candidate_radius_m > 0.0 && config.gps_sigma_m > 0.0);
  if (trajectory.empty()) {
    return InvalidArgumentError("cannot match an empty trajectory");
  }
  if (network.edges().empty()) {
    return InvalidArgumentError("cannot match onto an empty network");
  }
  // Candidate sets per fix.
  std::vector<std::vector<Candidate>> levels;
  levels.reserve(trajectory.size());
  for (const TimedPoint& point : trajectory.points()) {
    std::vector<Candidate> candidates =
        FindCandidates(network, point.position, config);
    if (candidates.empty()) {
      return NotFoundError(
          "a fix has no road edge within the candidate radius");
    }
    levels.push_back(std::move(candidates));
  }

  // Viterbi over negative log-likelihood costs.
  DistanceOracle oracle(network);
  const double inv_two_sigma_sq =
      1.0 / (2.0 * config.gps_sigma_m * config.gps_sigma_m);
  std::vector<std::vector<double>> cost(levels.size());
  std::vector<std::vector<int>> parent(levels.size());
  for (size_t i = 0; i < levels.size(); ++i) {
    cost[i].assign(levels[i].size(), kInf);
    parent[i].assign(levels[i].size(), -1);
  }
  for (size_t c = 0; c < levels[0].size(); ++c) {
    cost[0][c] =
        levels[0][c].distance_m * levels[0][c].distance_m * inv_two_sigma_sq;
  }
  for (size_t i = 1; i < levels.size(); ++i) {
    const double straight = Distance(trajectory[i - 1].position,
                                     trajectory[i].position);
    for (size_t c = 0; c < levels[i].size(); ++c) {
      const Candidate& candidate = levels[i][c];
      const double emission =
          candidate.distance_m * candidate.distance_m * inv_two_sigma_sq;
      for (size_t p = 0; p < levels[i - 1].size(); ++p) {
        if (cost[i - 1][p] == kInf) {
          continue;
        }
        const double network_distance =
            NetworkDistance(network, &oracle, levels[i - 1][p], candidate);
        const double transition =
            config.transition_weight * std::abs(network_distance - straight);
        const double total = cost[i - 1][p] + transition + emission;
        if (total < cost[i][c]) {
          cost[i][c] = total;
          parent[i][c] = static_cast<int>(p);
        }
      }
    }
  }

  // Backtrack from the cheapest final state.
  const size_t last = levels.size() - 1;
  size_t best_final = 0;
  for (size_t c = 1; c < levels[last].size(); ++c) {
    if (cost[last][c] < cost[last][best_final]) {
      best_final = c;
    }
  }
  if (cost[last][best_final] == kInf) {
    return NotFoundError("no connected matching path through candidates");
  }
  std::vector<size_t> chosen(levels.size());
  chosen[last] = best_final;
  for (size_t i = last; i > 0; --i) {
    chosen[i - 1] = static_cast<size_t>(parent[i][chosen[i]]);
  }

  MapMatchResult result;
  result.points.reserve(levels.size());
  std::vector<TimedPoint> snapped_points;
  snapped_points.reserve(levels.size());
  double residual_sum = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    const Candidate& candidate = levels[i][chosen[i]];
    MatchedPoint matched;
    matched.t = trajectory[i].t;
    matched.edge_index = candidate.edge_index;
    matched.snapped = candidate.snapped;
    matched.offset_m = candidate.offset_m;
    matched.distance_m = candidate.distance_m;
    residual_sum += candidate.distance_m;
    result.points.push_back(matched);
    snapped_points.emplace_back(matched.t, matched.snapped);
  }
  result.mean_residual_m =
      residual_sum / static_cast<double>(levels.size());
  STCOMP_ASSIGN_OR_RETURN(result.snapped,
                          Trajectory::FromPoints(std::move(snapped_points)));
  result.snapped.set_name(trajectory.name());
  return result;
}

}  // namespace stcomp
