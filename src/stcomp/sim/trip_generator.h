// Kinematic car-trip simulation over a road network, producing the
// ground-truth trajectory a GPS receiver would sample. The driver model
// accelerates towards speed limits, brakes for turns and signal stops, and
// waits at red lights — yielding the speed variation over spatially simple
// geometry that distinguishes spatiotemporal from spatial compression.

#ifndef STCOMP_SIM_TRIP_GENERATOR_H_
#define STCOMP_SIM_TRIP_GENERATOR_H_

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/sim/road_network.h"

namespace stcomp {

struct TripConfig {
  double target_length_m = 20000.0;
  double sample_interval_s = 10.0;   // GPS fix rate (the paper's example).
  double start_time_s = 0.0;
  // Trips are routed as a chain of legs (start -> via -> ... -> end), each
  // of length target_length_m / num_legs. More legs make the route wind,
  // lowering the displacement/length ratio towards what real commutes show
  // (paper Table 2: ~0.53). Precondition (checked): >= 1.
  int num_legs = 2;
  // Target ratio of end-to-end displacement to travelled length; the final
  // leg's destination is biased towards it. Only meaningful with
  // num_legs >= 2.
  double displacement_fraction = 0.55;

  // Driver model.
  double accel_mps2 = 1.3;
  double decel_mps2 = 1.9;
  double speed_factor = 1.0;         // Multiplier on edge limits.
  double lateral_accel_mps2 = 2.5;   // Comfort bound in turns.

  // Signalised intersections.
  double stop_probability = 0.5;     // P(red) at a light.
  double min_stop_s = 5.0;
  double max_stop_s = 45.0;

  // Internal integration step; samples are drawn from this fine trace.
  double integration_step_s = 0.25;
};

// Simulates a trip starting at `start_node` (chosen uniformly among
// connected nodes when < 0). The returned trajectory is noise-free ground
// truth; see gps_noise.h. Fails (kNotFound) only on a degenerate network.
Result<Trajectory> GenerateTrip(const RoadNetwork& network,
                                const TripConfig& config, int start_node,
                                Rng* rng);

}  // namespace stcomp

#endif  // STCOMP_SIM_TRIP_GENERATOR_H_
