// GPS measurement noise. Consumer GPS error is strongly autocorrelated
// (multipath/atmospheric bias drifts over tens of seconds), which a plain
// iid Gaussian misses; we use a first-order Gauss-Markov process per axis.

#ifndef STCOMP_SIM_GPS_NOISE_H_
#define STCOMP_SIM_GPS_NOISE_H_

#include "stcomp/core/trajectory.h"
#include "stcomp/sim/random.h"

namespace stcomp {

struct GpsNoiseConfig {
  double sigma_m = 4.0;              // Stationary per-axis std deviation.
  double correlation_time_s = 25.0;  // Gauss-Markov time constant.
};

// Adds correlated noise to every sample of `trajectory`, honouring the
// actual sample spacing (the autocorrelation between consecutive samples is
// exp(-dt/tau)). Deterministic in `rng`.
Trajectory AddGpsNoise(const Trajectory& trajectory,
                       const GpsNoiseConfig& config, Rng* rng);

}  // namespace stcomp

#endif  // STCOMP_SIM_GPS_NOISE_H_
