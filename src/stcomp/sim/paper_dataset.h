// The experiment dataset: 10 synthetic car trips standing in for the
// paper's 10 real GPS trajectories (urban + rural, Table 2). The mix of
// trip lengths and driver profiles is chosen so the aggregate statistics
// land near the paper's reported means and standard deviations; run
// bench_table2 for the side-by-side comparison.

#ifndef STCOMP_SIM_PAPER_DATASET_H_
#define STCOMP_SIM_PAPER_DATASET_H_

#include <vector>

#include "stcomp/core/trajectory.h"
#include "stcomp/sim/gps_noise.h"
#include "stcomp/sim/road_network.h"
#include "stcomp/sim/trip_generator.h"

namespace stcomp {

struct PaperDatasetConfig {
  uint64_t seed = 42;
  size_t num_trajectories = 10;
  double sample_interval_s = 10.0;
  bool add_noise = true;
  GpsNoiseConfig noise;
};

// Generates the dataset deterministically from the seed. Trajectories are
// named "trace-0" .. "trace-9".
std::vector<Trajectory> GeneratePaperDataset(const PaperDatasetConfig& config);

// Reference values from the paper's Table 2 (converted to SI units) for
// reporting alongside generated statistics.
struct Table2Reference {
  double duration_mean_s = 32.0 * 60.0 + 16.0;      // 00:32:16
  double duration_sd_s = 14.0 * 60.0 + 33.0;        // 00:14:33
  double speed_mean_mps = 40.85 / 3.6;
  double speed_sd_mps = 12.63 / 3.6;
  double length_mean_m = 19950.0;
  double length_sd_m = 12840.0;
  double displacement_mean_m = 10580.0;
  double displacement_sd_m = 8970.0;
  double num_points_mean = 200.0;
  double num_points_sd = 100.9;
};

}  // namespace stcomp

#endif  // STCOMP_SIM_PAPER_DATASET_H_
