// Map matching: snapping noisy GPS fixes onto the road network — the
// infrastructure-constrained view of movement the paper highlights
// ("object movement appears to be restricted to an underlying
// transportation infrastructure", Sec. 2). A compact HMM matcher in the
// spirit of Newson & Krumm (2009):
//
//  - candidates: for each fix, edges whose projected point lies within
//    `candidate_radius_m`;
//  - emission: Gaussian in the fix-to-edge distance (sigma = GPS noise);
//  - transition: penalises the mismatch between the straight-line movement
//    of consecutive fixes and the on-network movement between their
//    candidate projections. Network distances are evaluated on the edge
//    graph with memoised Dijkstra runs.
//
// Viterbi over that chain yields the most likely edge sequence and the
// snapped trajectory.

#ifndef STCOMP_SIM_MAP_MATCHING_H_
#define STCOMP_SIM_MAP_MATCHING_H_

#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/sim/road_network.h"

namespace stcomp {

struct MapMatchConfig {
  double candidate_radius_m = 60.0;
  double gps_sigma_m = 10.0;
  // Weight of the |network distance - straight distance| mismatch term,
  // per metre of mismatch (Newson-Krumm's beta, inverted).
  double transition_weight = 0.1;
  size_t max_candidates_per_fix = 8;
};

struct MatchedPoint {
  double t = 0.0;
  int edge_index = -1;      // Edge of RoadNetwork::edges().
  Vec2 snapped;             // Projection of the fix onto that edge.
  double offset_m = 0.0;    // Distance from edge.from along the edge.
  double distance_m = 0.0;  // Fix-to-edge distance (the residual).
};

struct MapMatchResult {
  std::vector<MatchedPoint> points;  // One per input fix.
  Trajectory snapped;                // Same timestamps, snapped positions.
  double mean_residual_m = 0.0;
};

// Fails with kNotFound when some fix has no candidate edge within the
// radius (increase the radius or check the frame), kInvalidArgument for
// empty inputs.
Result<MapMatchResult> MatchToNetwork(const RoadNetwork& network,
                                      const Trajectory& trajectory,
                                      const MapMatchConfig& config);

}  // namespace stcomp

#endif  // STCOMP_SIM_MAP_MATCHING_H_
