#include "stcomp/error/spatial_error.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/error/synchronous_error.h"

namespace stcomp {

namespace {

// Applies `visit(point_index, segment_first, segment_last)` to every
// discarded original point with its covering approximation segment.
template <typename Visitor>
void ForEachDiscarded(TrajectoryView original, const algo::IndexList& kept,
                      const Visitor& visit) {
  STCOMP_CHECK(algo::IsValidIndexList(original, kept));
  for (size_t s = 1; s < kept.size(); ++s) {
    const int first = kept[s - 1];
    const int last = kept[s];
    for (int i = first + 1; i < last; ++i) {
      visit(i, first, last);
    }
  }
}

// Walk the approximation segment by segment; within one approximation
// segment, cut at original vertices. On each piece both motions are
// linear, so the signed perpendicular offset to the approximation's
// carrier line is linear in time and the average of its absolute value
// is exact (AverageLinearAbs). Degenerate (zero-length) approximation
// segments fall back to the distance-to-point average (AverageLinearNorm).
// The approximation is abstracted as (size, point-at-index) so the
// index-list overload can evaluate it in place with identical arithmetic.
template <typename ApproximationPoint>
double AreaErrorImpl(TrajectoryView original, size_t approximation_size,
                     const ApproximationPoint& approximation_point) {
  double weighted_sum = 0.0;
  size_t original_segment = 0;
  for (size_t s = 0; s + 1 < approximation_size; ++s) {
    const TimedPoint& a0 = approximation_point(s);
    const TimedPoint& a1 = approximation_point(s + 1);
    const Vec2 carrier = a1.position - a0.position;
    const double carrier_len = carrier.Norm();
    double t0 = a0.t;
    Vec2 p0;
    {
      while (original_segment + 2 < original.size() &&
             original[original_segment + 1].t < t0) {
        ++original_segment;
      }
      p0 = InterpolatePosition(original[original_segment],
                               original[original_segment + 1], t0);
    }
    while (t0 < a1.t) {
      while (original_segment + 2 < original.size() &&
             original[original_segment + 1].t <= t0) {
        ++original_segment;
      }
      const double t1 = std::min(a1.t, original[original_segment + 1].t);
      const Vec2 p1 = InterpolatePosition(original[original_segment],
                                          original[original_segment + 1], t1);
      double piece_average;
      if (carrier_len == 0.0) {
        piece_average =
            AverageLinearNorm(p0 - a0.position, p1 - a0.position);
      } else {
        const double s0 = carrier.Cross(p0 - a0.position) / carrier_len;
        const double s1 = carrier.Cross(p1 - a0.position) / carrier_len;
        piece_average = AverageLinearAbs(s0, s1);
      }
      weighted_sum += (t1 - t0) * piece_average;
      t0 = t1;
      p0 = p1;
      if (t1 == original[original_segment + 1].t &&
          original_segment + 2 < original.size()) {
        ++original_segment;
      }
    }
  }
  const double duration = original.Duration();
  if (duration <= 0.0) {
    return 0.0;
  }
  return weighted_sum / duration;
}

}  // namespace

double MeanPerpendicularError(TrajectoryView original,
                              const algo::IndexList& kept) {
  double sum = 0.0;
  size_t count = 0;
  ForEachDiscarded(original, kept, [&](int i, int first, int last) {
    sum += PointToSegmentDistance(
        original[static_cast<size_t>(i)].position,
        original[static_cast<size_t>(first)].position,
        original[static_cast<size_t>(last)].position);
    ++count;
  });
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double MaxPerpendicularError(TrajectoryView original,
                             const algo::IndexList& kept) {
  double worst = 0.0;
  ForEachDiscarded(original, kept, [&](int i, int first, int last) {
    worst = std::max(
        worst, PointToSegmentDistance(
                   original[static_cast<size_t>(i)].position,
                   original[static_cast<size_t>(first)].position,
                   original[static_cast<size_t>(last)].position));
  });
  return worst;
}

Result<double> AreaError(TrajectoryView original,
                         TrajectoryView approximation) {
  if (original.size() < 2 || approximation.size() < 2) {
    return InvalidArgumentError("area error needs >= 2 points in both");
  }
  if (original.front().t != approximation.front().t ||
      original.back().t != approximation.back().t) {
    return InvalidArgumentError(
        "trajectories must cover the same time interval");
  }
  return AreaErrorImpl(
      original, approximation.size(),
      [&](size_t s) -> const TimedPoint& { return approximation[s]; });
}

Result<double> AreaError(TrajectoryView original,
                         const algo::IndexList& kept) {
  if (!algo::IsValidIndexList(original, kept)) {
    return InvalidArgumentError("kept indices are not a valid index list");
  }
  if (original.size() < 2) {
    return InvalidArgumentError("area error needs >= 2 points in both");
  }
  return AreaErrorImpl(original, kept.size(), [&](size_t s) -> const TimedPoint& {
    return original[static_cast<size_t>(kept[s])];
  });
}

}  // namespace stcomp
