// One-call evaluation of a compression run: compression rate plus every
// error notion, as used by the experiment harness for the paper's figures.

#ifndef STCOMP_ERROR_EVALUATION_H_
#define STCOMP_ERROR_EVALUATION_H_

#include "stcomp/algo/compression.h"
#include "stcomp/common/result.h"
#include "stcomp/core/trajectory_view.h"

namespace stcomp {

struct Evaluation {
  size_t original_points = 0;
  size_t kept_points = 0;
  double compression_percent = 0.0;

  // Paper Sec. 4.2 notion (the headline metric of all figures).
  double sync_error_mean_m = 0.0;
  double sync_error_max_m = 0.0;

  // Spatial notions (Sec. 4.1), for comparison.
  double perp_error_mean_m = 0.0;
  double perp_error_max_m = 0.0;
  double area_error_m = 0.0;
};

// Evaluates keeping `kept` of `original`, against the approximation *in
// place* (no Subset() copy; see DESIGN.md §11). A Trajectory converts
// implicitly. Preconditions (checked): valid index list; original needs
// >= 2 points for the error integrals (with < 2 points all errors are 0).
Result<Evaluation> Evaluate(TrajectoryView original,
                            const algo::IndexList& kept);

}  // namespace stcomp

#endif  // STCOMP_ERROR_EVALUATION_H_
