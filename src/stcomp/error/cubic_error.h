// The "other error notion" the paper's future work anticipates (Sec. 5):
// synchronous error measured against a cubic (Catmull-Rom) reconstruction
// of the original trajectory instead of the piecewise-linear one.

#ifndef STCOMP_ERROR_CUBIC_ERROR_H_
#define STCOMP_ERROR_CUBIC_ERROR_H_

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

// Time-weighted average distance between the cubic reconstruction of
// `original` and the linear reconstruction of `approximation`, by adaptive
// quadrature (`tolerance` is the absolute per-knot-interval tolerance).
// Requirements as SynchronousError: same time interval, >= 2 points each.
Result<double> CubicSynchronousError(const Trajectory& original,
                                     const Trajectory& approximation,
                                     double tolerance);

}  // namespace stcomp

#endif  // STCOMP_ERROR_CUBIC_ERROR_H_
