#include "stcomp/error/similarity.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace stcomp {

namespace {

Status CheckNonEmpty(const Trajectory& a, const Trajectory& b) {
  if (a.empty() || b.empty()) {
    return InvalidArgumentError("similarity needs non-empty trajectories");
  }
  return Status::Ok();
}

}  // namespace

Result<double> DiscreteFrechetDistance(const Trajectory& a,
                                       const Trajectory& b) {
  STCOMP_RETURN_IF_ERROR(CheckNonEmpty(a, b));
  const size_t n = a.size();
  const size_t m = b.size();
  // Rolling rows: ca[i][j] = max(d(i,j), min(ca[i-1][j], ca[i][j-1],
  // ca[i-1][j-1])).
  std::vector<double> previous(m);
  std::vector<double> current(m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = Distance(a[i].position, b[j].position);
      if (i == 0 && j == 0) {
        current[j] = d;
      } else if (i == 0) {
        current[j] = std::max(current[j - 1], d);
      } else if (j == 0) {
        current[j] = std::max(previous[j], d);
      } else {
        current[j] = std::max(
            std::min({previous[j], current[j - 1], previous[j - 1]}), d);
      }
    }
    std::swap(previous, current);
  }
  return previous[m - 1];
}

Result<double> DtwDistance(const Trajectory& a, const Trajectory& b) {
  STCOMP_RETURN_IF_ERROR(CheckNonEmpty(a, b));
  const size_t n = a.size();
  const size_t m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Cell {
    double cost;
    int steps;
  };
  std::vector<Cell> previous(m, {kInf, 0});
  std::vector<Cell> current(m, {kInf, 0});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = Distance(a[i].position, b[j].position);
      Cell best{kInf, 0};
      if (i == 0 && j == 0) {
        best = {0.0, 0};
      } else {
        if (i > 0 && previous[j].cost < best.cost) {
          best = previous[j];
        }
        if (j > 0 && current[j - 1].cost < best.cost) {
          best = current[j - 1];
        }
        if (i > 0 && j > 0 && previous[j - 1].cost < best.cost) {
          best = previous[j - 1];
        }
      }
      current[j] = {best.cost + d, best.steps + 1};
    }
    std::swap(previous, current);
  }
  const Cell& final_cell = previous[m - 1];
  return final_cell.cost / static_cast<double>(final_cell.steps);
}

Result<double> TimeShiftedMaxDistance(const Trajectory& a,
                                      const Trajectory& b,
                                      double time_offset_s) {
  STCOMP_RETURN_IF_ERROR(CheckNonEmpty(a, b));
  if (a.size() < 2 || b.size() < 2) {
    return InvalidArgumentError("need >= 2 points in both trajectories");
  }
  const double lo = std::max(a.front().t, b.front().t + time_offset_s);
  const double hi = std::min(a.back().t, b.back().t + time_offset_s);
  if (lo >= hi) {
    return InvalidArgumentError("shifted time intervals do not overlap");
  }
  // The distance between two piecewise-linear motions is piecewise convex;
  // its maximum is attained at a breakpoint of either trajectory (or the
  // interval ends).
  double worst = 0.0;
  const auto probe = [&](double t) {
    const Result<Vec2> pa = a.PositionAt(t);
    const Result<Vec2> pb = b.PositionAt(t - time_offset_s);
    if (pa.ok() && pb.ok()) {
      worst = std::max(worst, Distance(*pa, *pb));
    }
  };
  probe(lo);
  probe(hi);
  for (const TimedPoint& point : a.points()) {
    if (point.t > lo && point.t < hi) {
      probe(point.t);
    }
  }
  for (const TimedPoint& point : b.points()) {
    const double t = point.t + time_offset_s;
    if (t > lo && t < hi) {
      probe(t);
    }
  }
  return worst;
}

}  // namespace stcomp
