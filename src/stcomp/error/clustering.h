// Trajectory clustering on top of the similarity measures — the paper's
// future-work direction "we plan to look into the issue of moving objects
// of different nature": grouping trips by shape lets per-cluster
// compression thresholds be tuned (see examples/threshold_tuning).
//
// K-medoids (PAM-style swap refinement) over a caller-chosen trajectory
// distance. Medoids, not means: trajectory space has no averaging, and
// medoids keep every cluster representative an actual trip.

#ifndef STCOMP_ERROR_CLUSTERING_H_
#define STCOMP_ERROR_CLUSTERING_H_

#include <functional>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

using TrajectoryDistanceFn =
    std::function<Result<double>(const Trajectory&, const Trajectory&)>;

struct ClusteringResult {
  std::vector<int> medoids;       // Indices into the input dataset (size k).
  std::vector<int> assignment;    // Cluster id per input trajectory.
  double total_cost = 0.0;        // Sum of member-to-medoid distances.
  int iterations = 0;
};

// Clusters `dataset` into `k` groups under `distance`. Deterministic:
// initial medoids are chosen greedily (farthest-first from the most
// central trajectory), then improved by PAM swaps until convergence or
// `max_iterations`. Fails (kInvalidArgument) if k < 1 or k > dataset size,
// or if any pairwise distance computation fails.
Result<ClusteringResult> KMedoids(const std::vector<Trajectory>& dataset,
                                  size_t k,
                                  const TrajectoryDistanceFn& distance,
                                  int max_iterations = 50);

// Pairwise distance matrix (row-major, n*n) under `distance`; exposed for
// analyses that need it alongside the clustering.
Result<std::vector<double>> PairwiseDistances(
    const std::vector<Trajectory>& dataset,
    const TrajectoryDistanceFn& distance);

// Mean silhouette score of a clustering (in [-1, 1], higher = better
// separated); the standard internal quality measure, usable to pick k.
// Precondition (checked): assignment/matrix sizes consistent; clusters
// with a single member contribute silhouette 0.
double SilhouetteScore(const std::vector<double>& distance_matrix, size_t n,
                       const std::vector<int>& assignment);

}  // namespace stcomp

#endif  // STCOMP_ERROR_CLUSTERING_H_
