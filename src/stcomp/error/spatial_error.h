// Spatial (time-ignorant) error notions used by classic line
// generalization (paper Sec. 4.1): per-point perpendicular distances and
// the sampling-rate-insensitive area notion of Fig. 5a.
//
// Entry points read non-owning TrajectoryViews (a Trajectory converts
// implicitly); the (original, kept) AreaError overload evaluates the
// approximation in place, without a Subset() copy.

#ifndef STCOMP_ERROR_SPATIAL_ERROR_H_
#define STCOMP_ERROR_SPATIAL_ERROR_H_

#include "stcomp/algo/compression.h"
#include "stcomp/common/result.h"
#include "stcomp/core/trajectory_view.h"

namespace stcomp {

// Mean spatial distance from each *discarded* original point to the
// approximation segment covering its timestamp (0 when nothing was
// discarded). Precondition (checked): `kept` is a valid index list for
// `original` (see algo::IsValidIndexList).
double MeanPerpendicularError(TrajectoryView original,
                              const algo::IndexList& kept);

// Max over discarded points of the same distance.
double MaxPerpendicularError(TrajectoryView original,
                             const algo::IndexList& kept);

// Fig. 5a error: the time-weighted average perpendicular distance from the
// moving original point to the *line* carrying the active approximation
// segment — the limit of "sum of perpendicular distance chords" for
// progressively finer sampling. Computed in closed form. Requirements as
// SynchronousError (same time interval, >= 2 points each).
Result<double> AreaError(TrajectoryView original, TrajectoryView approximation);

// Index-list form: evaluates the approximation keeping `kept` of
// `original` without materialising it, bit-for-bit equal to the two-view
// form on original.Subset(kept). Requirements (else kInvalidArgument):
// valid index list, original.size() >= 2. Allocation-free.
Result<double> AreaError(TrajectoryView original, const algo::IndexList& kept);

}  // namespace stcomp

#endif  // STCOMP_ERROR_SPATIAL_ERROR_H_
