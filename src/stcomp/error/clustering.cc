#include "stcomp/error/clustering.h"

#include <algorithm>
#include <limits>

#include "stcomp/common/check.h"

namespace stcomp {

Result<std::vector<double>> PairwiseDistances(
    const std::vector<Trajectory>& dataset,
    const TrajectoryDistanceFn& distance) {
  const size_t n = dataset.size();
  std::vector<double> matrix(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      STCOMP_ASSIGN_OR_RETURN(const double d,
                              distance(dataset[i], dataset[j]));
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  }
  return matrix;
}

namespace {

// Assignment + cost for a fixed medoid set.
double Assign(const std::vector<double>& matrix, size_t n,
              const std::vector<int>& medoids, std::vector<int>* assignment) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int cluster = 0;
    for (size_t m = 0; m < medoids.size(); ++m) {
      const double d = matrix[i * n + static_cast<size_t>(medoids[m])];
      if (d < best) {
        best = d;
        cluster = static_cast<int>(m);
      }
    }
    (*assignment)[i] = cluster;
    total += best;
  }
  return total;
}

}  // namespace

Result<ClusteringResult> KMedoids(const std::vector<Trajectory>& dataset,
                                  size_t k,
                                  const TrajectoryDistanceFn& distance,
                                  int max_iterations) {
  const size_t n = dataset.size();
  if (k < 1 || k > n) {
    return InvalidArgumentError("k must be in [1, dataset size]");
  }
  STCOMP_ASSIGN_OR_RETURN(const std::vector<double> matrix,
                          PairwiseDistances(dataset, distance));

  ClusteringResult result;
  // Deterministic init: the most central trajectory first, then
  // farthest-first.
  {
    size_t most_central = 0;
    double best_sum = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t j = 0; j < n; ++j) {
        sum += matrix[i * n + j];
      }
      if (sum < best_sum) {
        best_sum = sum;
        most_central = i;
      }
    }
    result.medoids.push_back(static_cast<int>(most_central));
    while (result.medoids.size() < k) {
      size_t farthest = 0;
      double farthest_distance = -1.0;
      for (size_t i = 0; i < n; ++i) {
        double nearest = std::numeric_limits<double>::infinity();
        for (int m : result.medoids) {
          nearest = std::min(nearest, matrix[i * n + static_cast<size_t>(m)]);
        }
        if (nearest > farthest_distance) {
          farthest_distance = nearest;
          farthest = i;
        }
      }
      result.medoids.push_back(static_cast<int>(farthest));
    }
  }

  result.assignment.assign(n, 0);
  result.total_cost = Assign(matrix, n, result.medoids, &result.assignment);
  // PAM swap refinement: try replacing each medoid with each non-medoid,
  // keep the best improving swap per iteration.
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    double best_cost = result.total_cost;
    int best_medoid_slot = -1;
    int best_candidate = -1;
    std::vector<int> scratch_assignment(n, 0);
    for (size_t slot = 0; slot < result.medoids.size(); ++slot) {
      for (size_t candidate = 0; candidate < n; ++candidate) {
        if (std::find(result.medoids.begin(), result.medoids.end(),
                      static_cast<int>(candidate)) != result.medoids.end()) {
          continue;
        }
        std::vector<int> trial = result.medoids;
        trial[slot] = static_cast<int>(candidate);
        const double cost = Assign(matrix, n, trial, &scratch_assignment);
        if (cost + 1e-12 < best_cost) {
          best_cost = cost;
          best_medoid_slot = static_cast<int>(slot);
          best_candidate = static_cast<int>(candidate);
        }
      }
    }
    if (best_medoid_slot < 0) {
      break;  // Converged.
    }
    result.medoids[static_cast<size_t>(best_medoid_slot)] = best_candidate;
    result.total_cost =
        Assign(matrix, n, result.medoids, &result.assignment);
    result.iterations = iteration + 1;
  }
  return result;
}

double SilhouetteScore(const std::vector<double>& distance_matrix, size_t n,
                       const std::vector<int>& assignment) {
  STCOMP_CHECK(distance_matrix.size() == n * n);
  STCOMP_CHECK(assignment.size() == n);
  int num_clusters = 0;
  for (int cluster : assignment) {
    num_clusters = std::max(num_clusters, cluster + 1);
  }
  std::vector<int> cluster_sizes(static_cast<size_t>(num_clusters), 0);
  for (int cluster : assignment) {
    ++cluster_sizes[static_cast<size_t>(cluster)];
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int own = assignment[i];
    if (cluster_sizes[static_cast<size_t>(own)] <= 1) {
      continue;  // Silhouette defined as 0 for singletons.
    }
    // a = mean distance to own cluster, b = min mean distance to another.
    std::vector<double> sums(static_cast<size_t>(num_clusters), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      sums[static_cast<size_t>(assignment[j])] += distance_matrix[i * n + j];
    }
    const double a =
        sums[static_cast<size_t>(own)] /
        static_cast<double>(cluster_sizes[static_cast<size_t>(own)] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int cluster = 0; cluster < num_clusters; ++cluster) {
      if (cluster == own ||
          cluster_sizes[static_cast<size_t>(cluster)] == 0) {
        continue;
      }
      b = std::min(b, sums[static_cast<size_t>(cluster)] /
                          static_cast<double>(
                              cluster_sizes[static_cast<size_t>(cluster)]));
    }
    if (std::isfinite(b)) {
      total += (b - a) / std::max(a, b);
    }
  }
  return total / static_cast<double>(n);
}

}  // namespace stcomp
