#include "stcomp/error/synchronous_error.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "stcomp/error/integration.h"
#include "stcomp/geom/kernels.h"

namespace stcomp {

namespace {

// Walks a trajectory's segments in nondecreasing query-time order; O(n + q)
// for q monotone queries instead of O(q log n) binary searches.
class SegmentCursor {
 public:
  explicit SegmentCursor(TrajectoryView trajectory)
      : trajectory_(trajectory) {}

  // Position at `t`; `t` must be within the trajectory interval and
  // queries must be nondecreasing.
  Vec2 At(double t) {
    STCOMP_DCHECK(t >= trajectory_.front().t && t <= trajectory_.back().t);
    while (segment_ + 2 < trajectory_.size() &&
           trajectory_[segment_ + 1].t < t) {
      ++segment_;
    }
    return InterpolatePosition(trajectory_[segment_],
                               trajectory_[segment_ + 1], t);
  }

 private:
  const TrajectoryView trajectory_;
  size_t segment_ = 0;
};

// The same walk over the *implicit* approximation original.Subset(kept):
// segment s runs from original[kept[s]] to original[kept[s + 1]]. Since the
// subset's points are copies of the original's, this performs bit-for-bit
// the arithmetic SegmentCursor would on the materialised subset.
class KeptSegmentCursor {
 public:
  KeptSegmentCursor(TrajectoryView original, const algo::IndexList& kept)
      : original_(original), kept_(kept) {}

  Vec2 At(double t) {
    while (segment_ + 2 < kept_.size() && Point(segment_ + 1).t < t) {
      ++segment_;
    }
    return InterpolatePosition(Point(segment_), Point(segment_ + 1), t);
  }

 private:
  const TimedPoint& Point(size_t s) const {
    return original_[static_cast<size_t>(kept_[s])];
  }

  const TrajectoryView original_;
  const algo::IndexList& kept_;
  size_t segment_ = 0;
};

Status CheckComparable(TrajectoryView original, TrajectoryView approximation) {
  if (original.size() < 2 || approximation.size() < 2) {
    return InvalidArgumentError(
        "synchronous error needs >= 2 points in both trajectories");
  }
  if (original.front().t != approximation.front().t ||
      original.back().t != approximation.back().t) {
    return InvalidArgumentError(
        "trajectories must cover the same time interval");
  }
  return Status::Ok();
}

// An index list that is valid (endpoints kept, strictly increasing) makes
// the approximation's vertex times a subset of the original's with matching
// start/end — exactly the CheckComparable contract, with the union grid
// collapsing to the original's own timestamps.
Status CheckKept(TrajectoryView original, const algo::IndexList& kept) {
  if (!algo::IsValidIndexList(original, kept)) {
    return InvalidArgumentError("kept indices are not a valid index list");
  }
  if (original.size() < 2) {
    return InvalidArgumentError(
        "synchronous error needs >= 2 points in both trajectories");
  }
  return Status::Ok();
}

// Scratch for the kernelised (view, kept) error paths below. The error
// module has no Workspace parameter, so each thread keeps one grow-only
// set of buffers: repeated evaluations stop allocating once warm.
struct DeltaScratch {
  SoAScratch soa;
  std::vector<double> dx;
  std::vector<double> dy;
};

// Per-vertex synchronous deltas (original position minus approximation
// position at the original's own timestamps), batched: between two kept
// vertices the approximation is one fixed segment, so each kept segment is
// a single sync_deltas kernel call over the original vertices it covers.
// Replicates the SegmentCursor / KeptSegmentCursor arithmetic bit for bit
// (at an original vertex the cursor's lerp parameter is exactly dt/dt = 1,
// which SyncDeltaPoint folds into xp + (x - xp)); vertex 0 is the one u = 0
// evaluation, done here in scalar with the cursors' exact expressions.
// Precondition: CheckKept passed, so n >= 2 and timestamps are strictly
// increasing (every kept segment has at < bt).
TrajectoryViewSoA ComputeKeptDeltas(TrajectoryView original,
                                    const algo::IndexList& kept,
                                    DeltaScratch& scratch) {
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(original, scratch.soa);
  const size_t n = soa.size();
  scratch.dx.resize(n);
  scratch.dy.resize(n);
  const double* x = soa.x();
  const double* y = soa.y();
  const double* t = soa.t();
  double* dx = scratch.dx.data();
  double* dy = scratch.dy.data();
  const size_t k1 = static_cast<size_t>(kept[1]);
  dx[0] = (x[0] + (x[1] - x[0]) * 0.0) - (x[0] + (x[k1] - x[0]) * 0.0);
  dy[0] = (y[0] + (y[1] - y[0]) * 0.0) - (y[0] + (y[k1] - y[0]) * 0.0);
  const kernels::KernelOps& ops = kernels::KernelDispatch::Get();
  for (size_t j = 0; j + 1 < kept.size(); ++j) {
    const size_t a = static_cast<size_t>(kept[j]);
    const size_t b = static_cast<size_t>(kept[j + 1]);
    const kernels::SedSegment seg{x[a], y[a], t[a], x[b], y[b], t[b]};
    const size_t base = a + 1;
    ops.sync_deltas(x + base, y + base, t + base, x + base - 1, y + base - 1,
                    b - a, seg, dx + base, dy + base);
  }
  return soa;
}

// Union of the two trajectories' vertex timestamps (both sorted).
std::vector<double> UnionTimeGrid(TrajectoryView original,
                                  TrajectoryView approximation) {
  std::vector<double> grid;
  grid.reserve(original.size() + approximation.size());
  size_t i = 0;
  size_t j = 0;
  while (i < original.size() || j < approximation.size()) {
    double t;
    if (j >= approximation.size() ||
        (i < original.size() && original[i].t <= approximation[j].t)) {
      t = original[i].t;
      ++i;
      if (j < approximation.size() && approximation[j].t == t) {
        ++j;
      }
    } else {
      t = approximation[j].t;
      ++j;
    }
    if (grid.empty() || t > grid.back()) {
      grid.push_back(t);
    }
  }
  return grid;
}

}  // namespace

double AverageLinearAbs(double s0, double s1) {
  if ((s0 >= 0.0) == (s1 >= 0.0)) {
    // No sign change: |linear| is linear.
    return 0.5 * (std::abs(s0) + std::abs(s1));
  }
  // Crosses zero at u0 = s0 / (s0 - s1); two triangles.
  const double u0 = s0 / (s0 - s1);
  return 0.5 * (u0 * std::abs(s0) + (1.0 - u0) * std::abs(s1));
}

double AverageLinearNorm(Vec2 d0, Vec2 d1) {
  const Vec2 g = d1 - d0;
  const double a = g.SquaredNorm();
  const double c = d0.SquaredNorm();
  const double c_end = d1.SquaredNorm();
  const double scale = std::max({a, c, c_end});
  if (scale == 0.0) {
    return 0.0;
  }
  // Paper case c1 = 0: the approximation is a translated copy of the
  // original segment; the distance is constant. We use a relative cutoff:
  // below it the norm varies by < ~1e-6 relative and the endpoint average
  // is exact to that order (avoids catastrophic cancellation in the general
  // branch).
  if (a <= 1e-12 * scale) {
    return 0.5 * (std::sqrt(c) + std::sqrt(c_end));
  }
  const double b = 2.0 * d0.Dot(g);
  // Discriminant of the quadratic under the root; mathematically >= 0
  // (Cauchy-Schwarz), clamp rounding noise.
  const double disc = std::max(0.0, 4.0 * a * c - b * b);
  if (disc <= 1e-24 * (4.0 * a * c + b * b) || disc == 0.0) {
    // Paper case c2^2 - 4 c1 c3 = 0 (shared start point, shared end point,
    // or parallel chords): |d(u)| = sqrt(a) * |u - u0|.
    const double u0 = -b / (2.0 * a);
    double integral;  // of |u - u0| over [0, 1]
    if (u0 <= 0.0) {
      integral = 0.5 - u0;
    } else if (u0 >= 1.0) {
      integral = u0 - 0.5;
    } else {
      integral = 0.5 * (u0 * u0 + (1.0 - u0) * (1.0 - u0));
    }
    return std::sqrt(a) * integral;
  }
  // General case: F(u) = (2au+b)/(4a) * sqrt(q(u))
  //                      + disc/(8 a^{3/2}) * asinh((2au+b)/sqrt(disc)).
  const double sqrt_a = std::sqrt(a);
  const auto antiderivative = [&](double u, double q) {
    const double lin = 2.0 * a * u + b;
    return lin / (4.0 * a) * std::sqrt(q) +
           disc / (8.0 * a * sqrt_a) * std::asinh(lin / std::sqrt(disc));
  };
  return antiderivative(1.0, c_end) - antiderivative(0.0, c);
}

Result<double> SynchronousError(TrajectoryView original,
                                TrajectoryView approximation) {
  STCOMP_RETURN_IF_ERROR(CheckComparable(original, approximation));
  const std::vector<double> grid = UnionTimeGrid(original, approximation);
  SegmentCursor original_cursor(original);
  SegmentCursor approximation_cursor(approximation);
  // Evaluate both trajectories once per grid vertex; each interval then
  // contributes its closed-form average times its duration (paper Eq. 3's
  // time weighting).
  double weighted_sum = 0.0;
  Vec2 previous_delta = original_cursor.At(grid.front()) -
                        approximation_cursor.At(grid.front());
  for (size_t k = 1; k < grid.size(); ++k) {
    const Vec2 delta =
        original_cursor.At(grid[k]) - approximation_cursor.At(grid[k]);
    weighted_sum +=
        (grid[k] - grid[k - 1]) * AverageLinearNorm(previous_delta, delta);
    previous_delta = delta;
  }
  const double duration = grid.back() - grid.front();
  if (duration <= 0.0) {
    return 0.0;
  }
  return weighted_sum / duration;
}

Result<double> SynchronousError(TrajectoryView original,
                                const algo::IndexList& kept) {
  STCOMP_RETURN_IF_ERROR(CheckKept(original, kept));
  // The union grid is the original's own (strictly increasing) timestamps,
  // so the deltas come from one batched kernel call per kept segment; the
  // closed-form interval averaging stays scalar (its result depends only on
  // the deltas, so this is bit-identical to the former cursor walk).
  thread_local DeltaScratch scratch;
  const TrajectoryViewSoA soa = ComputeKeptDeltas(original, kept, scratch);
  const size_t n = soa.size();
  const double* t = soa.t();
  double weighted_sum = 0.0;
  Vec2 previous_delta{scratch.dx[0], scratch.dy[0]};
  for (size_t k = 1; k < n; ++k) {
    const Vec2 delta{scratch.dx[k], scratch.dy[k]};
    weighted_sum +=
        (t[k] - t[k - 1]) * AverageLinearNorm(previous_delta, delta);
    previous_delta = delta;
  }
  const double duration = t[n - 1] - t[0];
  if (duration <= 0.0) {
    return 0.0;
  }
  return weighted_sum / duration;
}

Result<double> SynchronousErrorNumeric(TrajectoryView original,
                                       TrajectoryView approximation,
                                       double tolerance) {
  STCOMP_RETURN_IF_ERROR(CheckComparable(original, approximation));
  const std::vector<double> grid = UnionTimeGrid(original, approximation);
  double weighted_sum = 0.0;
  for (size_t k = 1; k < grid.size(); ++k) {
    // Simpson revisits interior times in non-monotone order, so cursors
    // don't apply; use PositionAt (binary search) instead.
    const auto distance_at = [&](double t) {
      const Vec2 p = original.PositionAt(t).value();
      const Vec2 q = approximation.PositionAt(t).value();
      return Distance(p, q);
    };
    weighted_sum +=
        AdaptiveSimpson(distance_at, grid[k - 1], grid[k], tolerance);
  }
  const double duration = grid.back() - grid.front();
  if (duration <= 0.0) {
    return 0.0;
  }
  return weighted_sum / duration;
}

Result<double> MaxSynchronousError(TrajectoryView original,
                                   TrajectoryView approximation) {
  STCOMP_RETURN_IF_ERROR(CheckComparable(original, approximation));
  const std::vector<double> grid = UnionTimeGrid(original, approximation);
  SegmentCursor original_cursor(original);
  SegmentCursor approximation_cursor(approximation);
  double worst = 0.0;
  for (double t : grid) {
    // kernels::Norm2, not Distance (hypot), so this overload agrees bit for
    // bit with the kernelised (view, kept) overload below when the
    // approximation is a materialised subset.
    const Vec2 delta =
        original_cursor.At(t) - approximation_cursor.At(t);
    worst = std::max(worst, kernels::Norm2(delta.x, delta.y));
  }
  return worst;
}

Result<double> MaxSynchronousError(TrajectoryView original,
                                   const algo::IndexList& kept) {
  STCOMP_RETURN_IF_ERROR(CheckKept(original, kept));
  thread_local DeltaScratch scratch;
  const TrajectoryViewSoA soa = ComputeKeptDeltas(original, kept, scratch);
  double worst = 0.0;
  for (size_t k = 0; k < soa.size(); ++k) {
    // std::max keeps `worst` on NaN, matching the former cursor loop.
    worst = std::max(worst, kernels::Norm2(scratch.dx[k], scratch.dy[k]));
  }
  return worst;
}

}  // namespace stcomp
