#include "stcomp/error/cubic_error.h"

#include "stcomp/core/spline.h"
#include "stcomp/error/integration.h"

namespace stcomp {

Result<double> CubicSynchronousError(const Trajectory& original,
                                     const Trajectory& approximation,
                                     double tolerance) {
  if (original.size() < 2 || approximation.size() < 2) {
    return InvalidArgumentError("need >= 2 points in both trajectories");
  }
  if (original.front().t != approximation.front().t ||
      original.back().t != approximation.back().t) {
    return InvalidArgumentError(
        "trajectories must cover the same time interval");
  }
  STCOMP_ASSIGN_OR_RETURN(const CubicTrajectory cubic,
                          CubicTrajectory::Create(&original));
  // Integrate piecewise between consecutive original knots (the integrand
  // has kinks at approximation knots, which are a subset of these for
  // compression output; adaptive refinement handles the general case).
  double weighted_sum = 0.0;
  for (size_t i = 0; i + 1 < original.size(); ++i) {
    weighted_sum += AdaptiveSimpson(
        [&](double t) {
          return Distance(cubic.PositionAt(t).value(),
                          approximation.PositionAt(t).value());
        },
        original[i].t, original[i + 1].t, tolerance);
  }
  return weighted_sum / original.Duration();
}

}  // namespace stcomp
