// Trajectory similarity measures, complementing the synchronous error for
// analysis tasks (cf. the paper's reference [18], Nanni, "Distances for
// spatio-temporal clustering"): discrete Fréchet distance and dynamic time
// warping over sample positions. Both are order-preserving alignment
// measures; unlike the synchronous error they do not require matching
// time intervals, which makes them the right tool for comparing *different
// objects'* trajectories rather than an original with its approximation.

#ifndef STCOMP_ERROR_SIMILARITY_H_
#define STCOMP_ERROR_SIMILARITY_H_

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

// Discrete Fréchet distance (the classic coupling measure, Eiter &
// Mannila): the smallest leash length allowing two walkers to traverse
// both point sequences monotonically. O(n*m) time and memory.
// Fails (kInvalidArgument) on empty inputs.
Result<double> DiscreteFrechetDistance(const Trajectory& a,
                                       const Trajectory& b);

// Dynamic time warping with Euclidean point costs; returns the *average*
// cost per alignment step (sum / path length), so values are comparable
// across lengths. O(n*m). Fails (kInvalidArgument) on empty inputs.
Result<double> DtwDistance(const Trajectory& a, const Trajectory& b);

// Maximum over the common time interval of the synchronized distance after
// shifting `b` by `time_offset_s` — a helper for "same route, different
// departure" analyses. Fails if the shifted intervals do not overlap.
Result<double> TimeShiftedMaxDistance(const Trajectory& a,
                                      const Trajectory& b,
                                      double time_offset_s);

}  // namespace stcomp

#endif  // STCOMP_ERROR_SIMILARITY_H_
