// The paper's spatiotemporal error notion (Sec. 4.2): the time-weighted
// average distance between two objects travelling *synchronously*, one
// along the original trajectory p and one along the approximation a.
//
// On any interval where both paths are linear, the difference vector is
// linear in t and the average of its norm has a closed form — the paper's
// case analysis (constant offset / zero discriminant / general asinh case).
// Because the approximation's vertex times are a subset of the original's,
// the union time grid gives exactly those intervals.
//
// Every entry point reads non-owning TrajectoryViews (DESIGN.md §11); a
// Trajectory converts implicitly. The (original, kept) overloads evaluate
// the approximation `original.Subset(kept)` *in place* — same arithmetic,
// same result bit-for-bit, but no trajectory copy and no grid allocation.

#ifndef STCOMP_ERROR_SYNCHRONOUS_ERROR_H_
#define STCOMP_ERROR_SYNCHRONOUS_ERROR_H_

#include "stcomp/algo/compression.h"
#include "stcomp/common/result.h"
#include "stcomp/core/trajectory_view.h"

namespace stcomp {

// Average of |d0 + u*(d1 - d0)| for u uniform on [0, 1] — the closed-form
// building block (paper Eq. 5's solution, normalised to a unit interval).
// Exposed for tests and for the area error (spatial_error.h).
double AverageLinearNorm(Vec2 d0, Vec2 d1);

// Average of |s0 + u*(s1 - s0)| for u uniform on [0, 1], scalars (used for
// the signed perpendicular chord in the area error).
double AverageLinearAbs(double s0, double s1);

// α(p, a), paper Eq. 3: time-weighted average synchronous distance over the
// common time interval. Requirements (else kInvalidArgument): both
// trajectories have >= 2 points and identical start/end timestamps.
Result<double> SynchronousError(TrajectoryView original,
                                TrajectoryView approximation);

// Same quantity for the approximation that keeps `kept` of `original`,
// computed without materialising it. Requirements (else kInvalidArgument):
// `kept` is a valid index list for `original` (algo::IsValidIndexList) with
// >= 2 entries, and original.size() >= 2. Allocation-free.
Result<double> SynchronousError(TrajectoryView original,
                                const algo::IndexList& kept);

// Same quantity via adaptive Simpson on each union-grid interval; used by
// tests/ablation to validate the closed form. `tolerance` is absolute, per
// interval, on the time-integrated distance.
Result<double> SynchronousErrorNumeric(TrajectoryView original,
                                       TrajectoryView approximation,
                                       double tolerance);

// Maximum synchronous distance over the common interval. Because the
// distance is convex on each union-grid interval, the maximum is attained
// at a grid vertex, so this is exact. Same requirements as
// SynchronousError.
Result<double> MaxSynchronousError(TrajectoryView original,
                                   TrajectoryView approximation);

// Index-list form of the maximum; requirements and guarantees as the
// index-list SynchronousError. Allocation-free.
Result<double> MaxSynchronousError(TrajectoryView original,
                                   const algo::IndexList& kept);

}  // namespace stcomp

#endif  // STCOMP_ERROR_SYNCHRONOUS_ERROR_H_
