// Adaptive Simpson quadrature, used to cross-check the closed-form error
// integrals (error/synchronous_error.h) and in tests.

#ifndef STCOMP_ERROR_INTEGRATION_H_
#define STCOMP_ERROR_INTEGRATION_H_

#include <functional>

namespace stcomp {

// Integrates `f` over [a, b] to absolute tolerance `tolerance` with
// recursive Simpson refinement (depth-capped; the cap is generous enough
// for the piecewise-smooth integrands used here).
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tolerance);

}  // namespace stcomp

#endif  // STCOMP_ERROR_INTEGRATION_H_
