#include "stcomp/error/evaluation.h"

#include "stcomp/common/check.h"
#include "stcomp/error/spatial_error.h"
#include "stcomp/error/synchronous_error.h"

namespace stcomp {

Result<Evaluation> Evaluate(TrajectoryView original,
                            const algo::IndexList& kept) {
  if (!algo::IsValidIndexList(original, kept)) {
    return InvalidArgumentError("kept indices are not a valid index list");
  }
  Evaluation evaluation;
  evaluation.original_points = original.size();
  evaluation.kept_points = kept.size();
  evaluation.compression_percent =
      algo::CompressionPercent(original.size(), kept.size());
  if (original.size() < 2) {
    return evaluation;
  }
  STCOMP_ASSIGN_OR_RETURN(evaluation.sync_error_mean_m,
                          SynchronousError(original, kept));
  STCOMP_ASSIGN_OR_RETURN(evaluation.sync_error_max_m,
                          MaxSynchronousError(original, kept));
  evaluation.perp_error_mean_m = MeanPerpendicularError(original, kept);
  evaluation.perp_error_max_m = MaxPerpendicularError(original, kept);
  STCOMP_ASSIGN_OR_RETURN(evaluation.area_error_m, AreaError(original, kept));
  return evaluation;
}

}  // namespace stcomp
