#include "stcomp/error/integration.h"

#include <cmath>

namespace stcomp {

namespace {

double SimpsonRule(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double Recurse(const std::function<double(double)>& f, double a, double b,
               double fa, double fm, double fb, double whole, double tolerance,
               int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonRule(fa, flm, fm, m - a);
  const double right = SimpsonRule(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;
  }
  return Recurse(f, a, m, fa, flm, fm, left, 0.5 * tolerance, depth - 1) +
         Recurse(f, m, b, fm, frm, fb, right, 0.5 * tolerance, depth - 1);
}

}  // namespace

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tolerance) {
  if (a == b) {
    return 0.0;
  }
  const double fa = f(a);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = SimpsonRule(fa, fm, fb, b - a);
  // Depth 50 halves the interval to ~1e-15 of its size: beyond double
  // precision, so the cap never bites before convergence does.
  return Recurse(f, a, b, fa, fm, fb, whole, tolerance, 50);
}

}  // namespace stcomp
