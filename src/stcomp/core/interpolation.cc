#include "stcomp/core/interpolation.h"

#include "stcomp/common/check.h"

namespace stcomp {

Vec2 InterpolatePosition(const TimedPoint& start, const TimedPoint& end,
                         double t) {
  STCOMP_DCHECK(start.t <= t && t <= end.t);
  const double dt = end.t - start.t;
  if (dt <= 0.0) {
    return start.position;
  }
  const double u = (t - start.t) / dt;
  return Lerp(start.position, end.position, u);
}

Vec2 TimeRatioPosition(const TimedPoint& anchor, const TimedPoint& probe_end,
                       const TimedPoint& point) {
  // delta_e = t_e - t_s, delta_i = t_i - t_s (paper's notation).
  return InterpolatePosition(anchor, probe_end, point.t);
}

double SynchronizedDistance(const TimedPoint& anchor,
                            const TimedPoint& probe_end,
                            const TimedPoint& point) {
  return Distance(point.position, TimeRatioPosition(anchor, probe_end, point));
}

}  // namespace stcomp
