#include "stcomp/core/interpolation.h"

#include "stcomp/common/check.h"
#include "stcomp/geom/kernels.h"

namespace stcomp {

Vec2 InterpolatePosition(const TimedPoint& start, const TimedPoint& end,
                         double t) {
  STCOMP_DCHECK(start.t <= t && t <= end.t);
  const double dt = end.t - start.t;
  if (dt <= 0.0) {
    return start.position;
  }
  const double u = (t - start.t) / dt;
  return Lerp(start.position, end.position, u);
}

Vec2 TimeRatioPosition(const TimedPoint& anchor, const TimedPoint& probe_end,
                       const TimedPoint& point) {
  // delta_e = t_e - t_s, delta_i = t_i - t_s (paper's notation).
  return InterpolatePosition(anchor, probe_end, point.t);
}

double SynchronizedDistance(const TimedPoint& anchor,
                            const TimedPoint& probe_end,
                            const TimedPoint& point) {
  // Routed through the kernel layer's per-point helper (same lerp, same
  // degenerate rule, sqrt-based norm) so this AoS path stays bit-identical
  // to the batched SED kernels the window/range algorithms use.
  return kernels::SedDistancePoint(
      point.position.x, point.position.y, point.t,
      {anchor.position.x, anchor.position.y, anchor.t, probe_end.position.x,
       probe_end.position.y, probe_end.t});
}

}  // namespace stcomp
