#include "stcomp/core/trajectory.h"

#include <algorithm>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/geom/kernels.h"

namespace stcomp {

Result<Trajectory> Trajectory::FromPoints(std::vector<TimedPoint> points) {
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].t <= points[i - 1].t) {
      return InvalidArgumentError(StrFormat(
          "timestamps not strictly increasing at index %zu (%f <= %f)", i,
          points[i].t, points[i - 1].t));
    }
  }
  Trajectory trajectory;
  trajectory.points_ = std::move(points);
  return trajectory;
}

Trajectory Trajectory::FromUnordered(std::vector<TimedPoint> points) {
  std::stable_sort(points.begin(), points.end(),
                   [](const TimedPoint& a, const TimedPoint& b) {
                     return a.t < b.t;
                   });
  std::vector<TimedPoint> unique;
  unique.reserve(points.size());
  for (const TimedPoint& point : points) {
    if (unique.empty() || point.t > unique.back().t) {
      unique.push_back(point);
    }
  }
  Trajectory trajectory;
  trajectory.points_ = std::move(unique);
  return trajectory;
}

Status Trajectory::Append(const TimedPoint& point) {
  if (!points_.empty() && point.t <= points_.back().t) {
    return InvalidArgumentError(
        StrFormat("appended timestamp %f not after trajectory end %f", point.t,
                  points_.back().t));
  }
  points_.push_back(point);
  return Status::Ok();
}

double Trajectory::Duration() const {
  if (points_.size() < 2) {
    return 0.0;
  }
  return points_.back().t - points_.front().t;
}

double Trajectory::Length() const {
  double length = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    length += Distance(points_[i - 1].position, points_[i].position);
  }
  return length;
}

double Trajectory::Displacement() const {
  if (points_.size() < 2) {
    return 0.0;
  }
  return Distance(points_.front().position, points_.back().position);
}

double Trajectory::AverageSpeed() const {
  const double duration = Duration();
  if (duration <= 0.0) {
    return 0.0;
  }
  return Length() / duration;
}

Result<Vec2> Trajectory::PositionAt(double t) const {
  if (points_.empty()) {
    return OutOfRangeError("PositionAt on empty trajectory");
  }
  if (t < points_.front().t || t > points_.back().t) {
    return OutOfRangeError(StrFormat(
        "time %f outside trajectory interval [%f, %f]", t, points_.front().t,
        points_.back().t));
  }
  // Find the first sample with timestamp >= t.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TimedPoint& point, double value) { return point.t < value; });
  if (it->t == t) {
    return it->position;
  }
  const TimedPoint& after = *it;
  const TimedPoint& before = *(it - 1);
  return InterpolatePosition(before, after, t);
}

Trajectory Trajectory::Slice(size_t first, size_t last) const {
  STCOMP_CHECK(first <= last && last < points_.size());
  Trajectory result;
  result.points_.assign(points_.begin() + static_cast<ptrdiff_t>(first),
                        points_.begin() + static_cast<ptrdiff_t>(last) + 1);
  result.name_ = name_;
  return result;
}

Trajectory Trajectory::Subset(const std::vector<int>& kept_indices) const {
  Trajectory result;
  result.points_.reserve(kept_indices.size());
  int previous = -1;
  for (int index : kept_indices) {
    STCOMP_CHECK(index > previous &&
                 static_cast<size_t>(index) < points_.size());
    result.points_.push_back(points_[static_cast<size_t>(index)]);
    previous = index;
  }
  result.name_ = name_;
  return result;
}

double Trajectory::SegmentSpeed(size_t i) const {
  STCOMP_CHECK(i + 1 < points_.size());
  const double dt = points_[i + 1].t - points_[i].t;
  STCOMP_DCHECK(dt > 0.0);
  // Kernel norm (sqrt, not hypot), matching TrajectoryView::SegmentSpeed
  // bit for bit.
  return kernels::Norm2(points_[i + 1].position.x - points_[i].position.x,
                        points_[i + 1].position.y - points_[i].position.y) /
         dt;
}

std::vector<double> Trajectory::SegmentSpeeds() const {
  std::vector<double> speeds;
  if (points_.size() < 2) {
    return speeds;
  }
  speeds.reserve(points_.size() - 1);
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    speeds.push_back(SegmentSpeed(i));
  }
  return speeds;
}

}  // namespace stcomp
