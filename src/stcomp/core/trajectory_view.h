// A non-owning, trivially copyable window onto a trajectory's samples:
// the zero-copy calling convention for the algorithm, error and stream
// layers (DESIGN.md §11). A TrajectoryView carries the same invariant as
// Trajectory — strictly increasing timestamps — because every constructor
// takes data that already satisfies it (a Trajectory, a Trajectory-backed
// vector, or a subspan of another view). Views never outlive the storage
// they point into; callers own the lifetime.

#ifndef STCOMP_CORE_TRAJECTORY_VIEW_H_
#define STCOMP_CORE_TRAJECTORY_VIEW_H_

#include <cstddef>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

class TrajectoryView {
 public:
  // An empty view.
  constexpr TrajectoryView() = default;

  // A view over `size` samples starting at `data`. Precondition: the range
  // is time-monotone (callers pass trajectory-backed storage).
  constexpr TrajectoryView(const TimedPoint* data, size_t size)
      : data_(data), size_(size) {}

  // Implicit on purpose: every `const Trajectory&` call site converts to
  // the view-based entry points without change. The view borrows the
  // trajectory's storage; it is invalidated by mutation (Append) or
  // destruction of the trajectory.
  TrajectoryView(const Trajectory& trajectory)  // NOLINT(runtime/explicit)
      : data_(trajectory.points().data()), size_(trajectory.size()) {}

  // Implicit view over a raw sample vector (stream adapters keep their
  // internal buffers as vectors and run the batch criteria on views).
  // Precondition: strictly increasing timestamps.
  TrajectoryView(const std::vector<TimedPoint>& points)  // NOLINT
      : data_(points.data()), size_(points.size()) {}

  const TimedPoint* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const TimedPoint& operator[](size_t i) const { return data_[i]; }
  const TimedPoint& front() const { return data_[0]; }
  const TimedPoint& back() const { return data_[size_ - 1]; }

  const TimedPoint* begin() const { return data_; }
  const TimedPoint* end() const { return data_ + size_; }

  // The sub-view of `count` samples starting at `offset`. Precondition
  // (checked): offset + count <= size(). O(1), no copy.
  TrajectoryView subspan(size_t offset, size_t count) const;

  // The sub-view [first, last], inclusive — the view analogue of
  // Trajectory::Slice. Precondition (checked): first <= last < size().
  TrajectoryView Slice(size_t first, size_t last) const;

  // Total duration in seconds (0 for < 2 points).
  double Duration() const {
    return size_ < 2 ? 0.0 : data_[size_ - 1].t - data_[0].t;
  }

  // Derived speed on segment i -> i+1 in m/s. Precondition: i+1 < size().
  double SegmentSpeed(size_t i) const;

  // Position at time `t`, linearly interpolated between the enclosing
  // samples (binary search). Fails with kOutOfRange outside the interval.
  Result<Vec2> PositionAt(double t) const;

 private:
  const TimedPoint* data_ = nullptr;
  size_t size_ = 0;
};

// Materialises the subset of `view` at `kept_indices` as an owning
// Trajectory — the view analogue of Trajectory::Subset. Precondition
// (checked): indices strictly increasing and in range.
Trajectory Subset(TrajectoryView view, const std::vector<int>& kept_indices);

}  // namespace stcomp

#endif  // STCOMP_CORE_TRAJECTORY_VIEW_H_
