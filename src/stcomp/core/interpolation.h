// Temporal interpolation and the paper's time-ratio distance
// (synchronized Euclidean distance, SED). Paper Sec. 3.2, Eqs. 1-2.

#ifndef STCOMP_CORE_INTERPOLATION_H_
#define STCOMP_CORE_INTERPOLATION_H_

#include "stcomp/core/trajectory.h"
#include "stcomp/geom/geometry.h"

namespace stcomp {

// Position at time `t` on the linear motion from `start` to `end`.
// Precondition (checked): start.t <= t <= end.t and start.t < end.t
// (if start.t == end.t, returns start.position).
Vec2 InterpolatePosition(const TimedPoint& start, const TimedPoint& end,
                         double t);

// The paper's approximated position P'_i (Eqs. 1-2): where the object would
// be at `point.t` if it travelled the straight segment from `anchor` to
// `probe_end` at the time-ratio schedule.
Vec2 TimeRatioPosition(const TimedPoint& anchor, const TimedPoint& probe_end,
                       const TimedPoint& point);

// Synchronized Euclidean distance: |P_i - P'_i|. This is the discard
// criterion of the TR/SP algorithm classes (paper Sec. 3.2).
double SynchronizedDistance(const TimedPoint& anchor,
                            const TimedPoint& probe_end,
                            const TimedPoint& point);

}  // namespace stcomp

#endif  // STCOMP_CORE_INTERPOLATION_H_
