#include "stcomp/core/trajectory_view.h"

#include <algorithm>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/geom/kernels.h"

namespace stcomp {

TrajectoryView TrajectoryView::subspan(size_t offset, size_t count) const {
  STCOMP_CHECK(offset <= size_ && count <= size_ - offset);
  return TrajectoryView(data_ + offset, count);
}

TrajectoryView TrajectoryView::Slice(size_t first, size_t last) const {
  STCOMP_CHECK(first <= last && last < size_);
  return TrajectoryView(data_ + first, last - first + 1);
}

double TrajectoryView::SegmentSpeed(size_t i) const {
  STCOMP_CHECK(i + 1 < size_);
  const double dt = data_[i + 1].t - data_[i].t;
  STCOMP_DCHECK(dt > 0.0);
  // Kernel norm (sqrt, not hypot) so per-point speed jumps match the
  // precomputed kernels::SegmentSpeeds arrays bit-for-bit.
  return kernels::Norm2(data_[i + 1].position.x - data_[i].position.x,
                        data_[i + 1].position.y - data_[i].position.y) /
         dt;
}

Result<Vec2> TrajectoryView::PositionAt(double t) const {
  if (empty()) {
    return OutOfRangeError("PositionAt on empty trajectory");
  }
  if (t < front().t || t > back().t) {
    return OutOfRangeError(StrFormat(
        "time %f outside trajectory interval [%f, %f]", t, front().t,
        back().t));
  }
  // Find the first sample with timestamp >= t.
  const TimedPoint* it = std::lower_bound(
      begin(), end(), t,
      [](const TimedPoint& point, double value) { return point.t < value; });
  if (it->t == t) {
    return it->position;
  }
  const TimedPoint& after = *it;
  const TimedPoint& before = *(it - 1);
  return InterpolatePosition(before, after, t);
}

Trajectory Subset(TrajectoryView view, const std::vector<int>& kept_indices) {
  std::vector<TimedPoint> points;
  points.reserve(kept_indices.size());
  int previous = -1;
  for (int index : kept_indices) {
    STCOMP_CHECK(index > previous && static_cast<size_t>(index) < view.size());
    points.push_back(view[static_cast<size_t>(index)]);
    previous = index;
  }
  // The subset of a time-monotone range is time-monotone.
  return Trajectory::FromPoints(std::move(points)).value();
}

}  // namespace stcomp
