#include "stcomp/core/trajectory_stats.h"

#include <cmath>

namespace stcomp {

TrajectoryStats ComputeStats(const Trajectory& trajectory) {
  TrajectoryStats stats;
  stats.duration_s = trajectory.Duration();
  stats.length_m = trajectory.Length();
  stats.displacement_m = trajectory.Displacement();
  stats.avg_speed_mps = trajectory.AverageSpeed();
  stats.num_points = trajectory.size();
  return stats;
}

MeanSd ComputeMeanSd(const std::vector<double>& values) {
  MeanSd result;
  if (values.empty()) {
    return result;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  result.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) {
    return result;
  }
  double sq = 0.0;
  for (double v : values) {
    const double d = v - result.mean;
    sq += d * d;
  }
  result.sd = std::sqrt(sq / static_cast<double>(values.size() - 1));
  return result;
}

DatasetStats ComputeDatasetStats(const std::vector<Trajectory>& dataset) {
  std::vector<double> durations, speeds, lengths, displacements, counts;
  durations.reserve(dataset.size());
  speeds.reserve(dataset.size());
  lengths.reserve(dataset.size());
  displacements.reserve(dataset.size());
  counts.reserve(dataset.size());
  for (const Trajectory& trajectory : dataset) {
    const TrajectoryStats stats = ComputeStats(trajectory);
    durations.push_back(stats.duration_s);
    speeds.push_back(stats.avg_speed_mps);
    lengths.push_back(stats.length_m);
    displacements.push_back(stats.displacement_m);
    counts.push_back(static_cast<double>(stats.num_points));
  }
  DatasetStats stats;
  stats.duration_s = ComputeMeanSd(durations);
  stats.avg_speed_mps = ComputeMeanSd(speeds);
  stats.length_m = ComputeMeanSd(lengths);
  stats.displacement_m = ComputeMeanSd(displacements);
  stats.num_points = ComputeMeanSd(counts);
  return stats;
}

}  // namespace stcomp
