// Structure-of-arrays view of a trajectory (DESIGN.md §14): separate
// contiguous x / y / t double arrays, the layout the geom/kernels.h
// batched kernels consume. Built from an AoS TrajectoryView by repacking
// into caller-owned scratch (workspace-owned in the algo layer), so a
// warmed workspace makes the repack allocation-free: the scratch vectors
// only grow, like every other Workspace buffer.

#ifndef STCOMP_CORE_TRAJECTORY_VIEW_SOA_H_
#define STCOMP_CORE_TRAJECTORY_VIEW_SOA_H_

#include <cstddef>
#include <vector>

#include "stcomp/core/trajectory_view.h"

namespace stcomp {

// The backing storage for a repack. Reusable across calls; capacity only
// grows. Default-constructed scratch is valid (empty repack).
struct SoAScratch {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> t;
};

// Non-owning SoA view over a repacked trajectory. Like TrajectoryView it
// never outlives its storage — here the SoAScratch it was repacked into.
class TrajectoryViewSoA {
 public:
  TrajectoryViewSoA() = default;

  // Copies `view` into `scratch` (resizing it, which never shrinks
  // capacity) and returns a view over the repacked arrays. The repack is
  // lossless: the doubles are copied bit-for-bit, NaNs and signed zeros
  // included.
  static TrajectoryViewSoA Repack(TrajectoryView view, SoAScratch& scratch);

  const double* x() const { return x_; }
  const double* y() const { return y_; }
  const double* t() const { return t_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Reassembles point `i` (bounds unchecked like TrajectoryView::data()).
  TimedPoint operator[](size_t i) const {
    return TimedPoint{t_[i], {x_[i], y_[i]}};
  }

 private:
  TrajectoryViewSoA(const double* x, const double* y, const double* t,
                    size_t size)
      : x_(x), y_(y), t_(t), size_(size) {}

  const double* x_ = nullptr;
  const double* y_ = nullptr;
  const double* t_ = nullptr;
  size_t size_ = 0;
};

}  // namespace stcomp

#endif  // STCOMP_CORE_TRAJECTORY_VIEW_SOA_H_
