// Summary statistics over single trajectories and datasets — the columns of
// the paper's Table 2 (duration, speed, length, displacement, # of points).

#ifndef STCOMP_CORE_TRAJECTORY_STATS_H_
#define STCOMP_CORE_TRAJECTORY_STATS_H_

#include <vector>

#include "stcomp/core/trajectory.h"

namespace stcomp {

// Per-trajectory summary.
struct TrajectoryStats {
  double duration_s = 0.0;       // back().t - front().t
  double avg_speed_mps = 0.0;    // length / duration
  double length_m = 0.0;         // travelled path length
  double displacement_m = 0.0;   // start-to-end straight-line distance
  size_t num_points = 0;
};

TrajectoryStats ComputeStats(const Trajectory& trajectory);

// Mean / standard deviation of a sample (population sd with the n-1
// divisor, matching how small GPS datasets are conventionally reported;
// n<2 yields sd 0).
struct MeanSd {
  double mean = 0.0;
  double sd = 0.0;
};

MeanSd ComputeMeanSd(const std::vector<double>& values);

// Aggregate over a dataset: mean and sd per Table 2 statistic.
struct DatasetStats {
  MeanSd duration_s;
  MeanSd avg_speed_mps;
  MeanSd length_m;
  MeanSd displacement_m;
  MeanSd num_points;
};

DatasetStats ComputeDatasetStats(const std::vector<Trajectory>& dataset);

}  // namespace stcomp

#endif  // STCOMP_CORE_TRAJECTORY_STATS_H_
