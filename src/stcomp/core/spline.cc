#include "stcomp/core/spline.h"

#include <algorithm>
#include <cmath>

#include "stcomp/common/check.h"

namespace stcomp {

CubicTrajectory::CubicTrajectory(const Trajectory* trajectory)
    : trajectory_(trajectory) {}

Result<CubicTrajectory> CubicTrajectory::Create(const Trajectory* trajectory) {
  STCOMP_CHECK(trajectory != nullptr);
  if (trajectory->size() < 2) {
    return InvalidArgumentError("cubic interpolation needs >= 2 points");
  }
  return CubicTrajectory(trajectory);
}

Vec2 CubicTrajectory::Tangent(size_t i) const {
  const auto& points = trajectory_->points();
  const size_t n = points.size();
  if (i == 0) {
    return (points[1].position - points[0].position) /
           (points[1].t - points[0].t);
  }
  if (i == n - 1) {
    return (points[n - 1].position - points[n - 2].position) /
           (points[n - 1].t - points[n - 2].t);
  }
  // Central difference over the actual (possibly irregular) timestamps.
  return (points[i + 1].position - points[i - 1].position) /
         (points[i + 1].t - points[i - 1].t);
}

Result<Vec2> CubicTrajectory::PositionAt(double t) const {
  const auto& points = trajectory_->points();
  if (t < points.front().t || t > points.back().t) {
    return OutOfRangeError("time outside trajectory interval");
  }
  const auto it = std::lower_bound(
      points.begin(), points.end(), t,
      [](const TimedPoint& point, double value) { return point.t < value; });
  if (it->t == t) {
    return it->position;
  }
  const size_t k = static_cast<size_t>(it - points.begin());
  const TimedPoint& p0 = points[k - 1];
  const TimedPoint& p1 = points[k];
  const double h = p1.t - p0.t;
  const double u = (t - p0.t) / h;
  const Vec2 m0 = Tangent(k - 1) * h;  // Scale tangents to the unit interval.
  const Vec2 m1 = Tangent(k) * h;
  const double u2 = u * u;
  const double u3 = u2 * u;
  // Hermite basis.
  const double h00 = 2.0 * u3 - 3.0 * u2 + 1.0;
  const double h10 = u3 - 2.0 * u2 + u;
  const double h01 = -2.0 * u3 + 3.0 * u2;
  const double h11 = u3 - u2;
  return p0.position * h00 + m0 * h10 + p1.position * h01 + m1 * h11;
}

Result<Vec2> CubicTrajectory::VelocityAt(double t) const {
  const auto& points = trajectory_->points();
  if (t < points.front().t || t > points.back().t) {
    return OutOfRangeError("time outside trajectory interval");
  }
  auto it = std::lower_bound(
      points.begin(), points.end(), t,
      [](const TimedPoint& point, double value) { return point.t < value; });
  size_t k = static_cast<size_t>(it - points.begin());
  if (it->t == t) {
    // At a knot (including the first), the tangent itself is the velocity.
    return Tangent(k);
  }
  const TimedPoint& p0 = points[k - 1];
  const TimedPoint& p1 = points[k];
  const double h = p1.t - p0.t;
  const double u = (t - p0.t) / h;
  const Vec2 m0 = Tangent(k - 1) * h;
  const Vec2 m1 = Tangent(k) * h;
  const double u2 = u * u;
  const double d00 = 6.0 * u2 - 6.0 * u;
  const double d10 = 3.0 * u2 - 4.0 * u + 1.0;
  const double d01 = -6.0 * u2 + 6.0 * u;
  const double d11 = 3.0 * u2 - 2.0 * u;
  // d/dt = (d/du) / h.
  return (p0.position * d00 + m0 * d10 + p1.position * d01 + m1 * d11) / h;
}

}  // namespace stcomp
