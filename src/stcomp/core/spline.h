// Cubic Hermite (Catmull-Rom) trajectory interpolation — the paper's
// future-work item: "other, more advanced, interpolation techniques and
// consequently other error notions can be defined" (Sec. 5).
//
// The spline passes through every sample; tangents are finite differences
// over the *timestamps*, so irregular sampling is handled and the
// interpolant is C1 in time. At the end points it degrades to one-sided
// differences. With two samples it reduces to linear interpolation.

#ifndef STCOMP_CORE_SPLINE_H_
#define STCOMP_CORE_SPLINE_H_

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

class CubicTrajectory {
 public:
  // Keeps a reference: `trajectory` must outlive this object and have
  // >= 2 points (else kInvalidArgument).
  static Result<CubicTrajectory> Create(const Trajectory* trajectory);

  // Interpolated position; kOutOfRange outside the time interval.
  Result<Vec2> PositionAt(double t) const;

  // Interpolated velocity (the C1 derivative), m/s.
  Result<Vec2> VelocityAt(double t) const;

 private:
  explicit CubicTrajectory(const Trajectory* trajectory);

  // Finite-difference tangent (velocity) at sample i.
  Vec2 Tangent(size_t i) const;

  const Trajectory* trajectory_;
};

}  // namespace stcomp

#endif  // STCOMP_CORE_SPLINE_H_
