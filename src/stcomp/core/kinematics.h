// Derived kinematics over trajectories: speed/acceleration/heading
// profiles and dwell (stop) detection. These are the "understanding of
// moving object behaviour" tools the paper's conclusion says threshold
// selection needs — and the commuter analyses in examples/ use them.

#ifndef STCOMP_CORE_KINEMATICS_H_
#define STCOMP_CORE_KINEMATICS_H_

#include <vector>

#include "stcomp/core/trajectory.h"

namespace stcomp {

// Per-segment derived quantities (size() - 1 entries).
struct SegmentKinematics {
  double start_t = 0.0;
  double duration_s = 0.0;
  double speed_mps = 0.0;
  double heading_rad = 0.0;  // atan2 convention; 0 when stationary.
};

std::vector<SegmentKinematics> ComputeSegmentKinematics(
    const Trajectory& trajectory);

// Derived accelerations between consecutive segments (size() - 2 entries):
// (v_i - v_{i-1}) / ((dt_i + dt_{i-1}) / 2).
std::vector<double> ComputeAccelerations(const Trajectory& trajectory);

// A maximal time interval during which every derived segment speed stays
// below `max_speed_mps`.
struct Dwell {
  double start_t = 0.0;
  double end_t = 0.0;
  Vec2 centroid;       // Mean of the covered sample positions.
  size_t num_points = 0;  // Samples covered (>= 2).
  double duration_s() const { return end_t - start_t; }
};

// Finds dwells of at least `min_duration_s`. Preconditions (checked):
// max_speed_mps >= 0, min_duration_s >= 0.
std::vector<Dwell> DetectDwells(const Trajectory& trajectory,
                                double max_speed_mps, double min_duration_s);

// Speed distribution summary used for threshold tuning.
struct SpeedProfile {
  double min_mps = 0.0;
  double max_mps = 0.0;
  double mean_mps = 0.0;       // Time-weighted over segments.
  double moving_mean_mps = 0.0;  // Same, over segments above the cutoff.
  double stopped_fraction = 0.0;  // Time below the cutoff / total.
};

// Precondition (checked): stop_cutoff_mps >= 0. Zeroes for < 2 points.
SpeedProfile ComputeSpeedProfile(const Trajectory& trajectory,
                                 double stop_cutoff_mps);

}  // namespace stcomp

#endif  // STCOMP_CORE_KINEMATICS_H_
