// The trajectory model: a moving point object's history as a finite series
// of time-stamped positions, interpreted as a piecewise-linear path
// (paper Sec. 2, "positional time series").

#ifndef STCOMP_CORE_TRAJECTORY_H_
#define STCOMP_CORE_TRAJECTORY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/geom/geometry.h"

namespace stcomp {

// One sample <t, x, y>: the object was at `position` (metres, local frame)
// at time `t` (seconds; any epoch, only differences matter).
struct TimedPoint {
  double t = 0.0;
  Vec2 position;

  TimedPoint() = default;
  TimedPoint(double t_in, Vec2 position_in) : t(t_in), position(position_in) {}
  TimedPoint(double t_in, double x, double y)
      : t(t_in), position(x, y) {}

  friend bool operator==(const TimedPoint& a, const TimedPoint& b) {
    return a.t == b.t && a.position == b.position;
  }
};

// A trajectory: samples in strictly increasing time order.
//
// Invariant: for all consecutive samples i, points()[i].t < points()[i+1].t.
// The invariant is established at construction (FromPoints validates or
// sorts) and preserved by all mutators.
class Trajectory {
 public:
  // An empty trajectory.
  Trajectory() = default;

  // Validates strict time monotonicity; fails with kInvalidArgument if
  // violated (use FromUnordered to sort + deduplicate instead).
  static Result<Trajectory> FromPoints(std::vector<TimedPoint> points);

  // Sorts by time and drops samples with duplicate timestamps (keeping the
  // first). Never fails.
  static Trajectory FromUnordered(std::vector<TimedPoint> points);

  Trajectory(const Trajectory&) = default;
  Trajectory& operator=(const Trajectory&) = default;
  Trajectory(Trajectory&&) noexcept = default;
  Trajectory& operator=(Trajectory&&) noexcept = default;

  const std::vector<TimedPoint>& points() const { return points_; }
  const TimedPoint& operator[](size_t i) const { return points_[i]; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const TimedPoint& front() const { return points_.front(); }
  const TimedPoint& back() const { return points_.back(); }

  // Appends a sample; fails with kInvalidArgument unless
  // point.t > back().t (or the trajectory is empty).
  Status Append(const TimedPoint& point);

  // Total duration in seconds (0 for <2 points).
  double Duration() const;

  // Travelled path length in metres (sum of segment lengths).
  double Length() const;

  // Straight-line distance between first and last sample.
  double Displacement() const;

  // Length / Duration, in m/s (0 if duration is 0).
  double AverageSpeed() const;

  // Object position at time `t`, linearly interpolated between the
  // enclosing samples. Fails with kOutOfRange outside [front().t, back().t].
  Result<Vec2> PositionAt(double t) const;

  // The sub-trajectory with original indices [first, last], inclusive.
  // Precondition (checked): first <= last < size().
  Trajectory Slice(size_t first, size_t last) const;

  // Builds the approximation trajectory from a sorted list of original
  // indices. Precondition (checked): indices strictly increasing & in range.
  Trajectory Subset(const std::vector<int>& kept_indices) const;

  // Derived speed on segment i -> i+1 in m/s (paper Sec. 3.3: "speed values
  // derived from timestamps and positions"). Precondition: i+1 < size().
  double SegmentSpeed(size_t i) const;

  // All derived segment speeds (size() - 1 values; empty for <2 points).
  std::vector<double> SegmentSpeeds() const;

  // Optional label used by datasets and the store ("trace-3", ...).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  friend bool operator==(const Trajectory& a, const Trajectory& b) {
    return a.points_ == b.points_;
  }

 private:
  std::vector<TimedPoint> points_;
  std::string name_;
};

}  // namespace stcomp

#endif  // STCOMP_CORE_TRAJECTORY_H_
