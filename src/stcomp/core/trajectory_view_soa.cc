#include "stcomp/core/trajectory_view_soa.h"

namespace stcomp {

TrajectoryViewSoA TrajectoryViewSoA::Repack(TrajectoryView view,
                                            SoAScratch& scratch) {
  const size_t n = view.size();
  scratch.x.resize(n);
  scratch.y.resize(n);
  scratch.t.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const TimedPoint& point = view[i];
    scratch.x[i] = point.position.x;
    scratch.y[i] = point.position.y;
    scratch.t[i] = point.t;
  }
  return TrajectoryViewSoA(scratch.x.data(), scratch.y.data(),
                           scratch.t.data(), n);
}

}  // namespace stcomp
