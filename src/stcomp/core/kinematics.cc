#include "stcomp/core/kinematics.h"

#include <algorithm>
#include <cmath>

#include "stcomp/common/check.h"

namespace stcomp {

std::vector<SegmentKinematics> ComputeSegmentKinematics(
    const Trajectory& trajectory) {
  std::vector<SegmentKinematics> segments;
  if (trajectory.size() < 2) {
    return segments;
  }
  segments.reserve(trajectory.size() - 1);
  for (size_t i = 0; i + 1 < trajectory.size(); ++i) {
    SegmentKinematics segment;
    segment.start_t = trajectory[i].t;
    segment.duration_s = trajectory[i + 1].t - trajectory[i].t;
    segment.speed_mps = trajectory.SegmentSpeed(i);
    segment.heading_rad =
        Heading(trajectory[i].position, trajectory[i + 1].position);
    segments.push_back(segment);
  }
  return segments;
}

std::vector<double> ComputeAccelerations(const Trajectory& trajectory) {
  std::vector<double> accelerations;
  if (trajectory.size() < 3) {
    return accelerations;
  }
  accelerations.reserve(trajectory.size() - 2);
  for (size_t i = 1; i + 1 < trajectory.size(); ++i) {
    const double v_before = trajectory.SegmentSpeed(i - 1);
    const double v_after = trajectory.SegmentSpeed(i);
    const double dt_before = trajectory[i].t - trajectory[i - 1].t;
    const double dt_after = trajectory[i + 1].t - trajectory[i].t;
    accelerations.push_back((v_after - v_before) /
                            (0.5 * (dt_before + dt_after)));
  }
  return accelerations;
}

std::vector<Dwell> DetectDwells(const Trajectory& trajectory,
                                double max_speed_mps, double min_duration_s) {
  STCOMP_CHECK(max_speed_mps >= 0.0);
  STCOMP_CHECK(min_duration_s >= 0.0);
  std::vector<Dwell> dwells;
  if (trajectory.size() < 2) {
    return dwells;
  }
  size_t run_start = 0;
  bool in_run = false;
  const auto close_run = [&](size_t run_end /* inclusive sample index */) {
    // Run covers samples [run_start, run_end].
    const double duration =
        trajectory[run_end].t - trajectory[run_start].t;
    if (duration >= min_duration_s) {
      Dwell dwell;
      dwell.start_t = trajectory[run_start].t;
      dwell.end_t = trajectory[run_end].t;
      dwell.num_points = run_end - run_start + 1;
      Vec2 sum{0.0, 0.0};
      for (size_t k = run_start; k <= run_end; ++k) {
        sum += trajectory[k].position;
      }
      dwell.centroid = sum / static_cast<double>(dwell.num_points);
      dwells.push_back(dwell);
    }
  };
  for (size_t i = 0; i + 1 < trajectory.size(); ++i) {
    const bool slow = trajectory.SegmentSpeed(i) <= max_speed_mps;
    if (slow && !in_run) {
      in_run = true;
      run_start = i;
    } else if (!slow && in_run) {
      in_run = false;
      close_run(i);
    }
  }
  if (in_run) {
    close_run(trajectory.size() - 1);
  }
  return dwells;
}

SpeedProfile ComputeSpeedProfile(const Trajectory& trajectory,
                                 double stop_cutoff_mps) {
  STCOMP_CHECK(stop_cutoff_mps >= 0.0);
  SpeedProfile profile;
  if (trajectory.size() < 2) {
    return profile;
  }
  profile.min_mps = std::numeric_limits<double>::infinity();
  double total_time = 0.0;
  double weighted_speed = 0.0;
  double moving_time = 0.0;
  double moving_weighted_speed = 0.0;
  double stopped_time = 0.0;
  for (size_t i = 0; i + 1 < trajectory.size(); ++i) {
    const double dt = trajectory[i + 1].t - trajectory[i].t;
    const double v = trajectory.SegmentSpeed(i);
    profile.min_mps = std::min(profile.min_mps, v);
    profile.max_mps = std::max(profile.max_mps, v);
    total_time += dt;
    weighted_speed += v * dt;
    if (v > stop_cutoff_mps) {
      moving_time += dt;
      moving_weighted_speed += v * dt;
    } else {
      stopped_time += dt;
    }
  }
  profile.mean_mps = weighted_speed / total_time;
  profile.moving_mean_mps =
      moving_time > 0.0 ? moving_weighted_speed / moving_time : 0.0;
  profile.stopped_fraction = stopped_time / total_time;
  return profile;
}

}  // namespace stcomp
