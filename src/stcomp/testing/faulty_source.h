// FaultyFixSource: replays a clean, interleaved multi-object fix feed with
// deterministic faults drawn from a FaultPlan — the dirty-data regime
// (duplicated records, timestamp regression/jitter, NaN coordinates,
// transient mid-stream I/O errors) that the stream layer's IngestPolicy
// (stream/ingest_policy.h) exists to absorb. Feeding the faulted events
// into a FleetCompressor is the standard ingest-hardening harness; see
// tests/fault_plan_test.cc and examples/ingest_faults_demo.cpp.

#ifndef STCOMP_TESTING_FAULTY_SOURCE_H_
#define STCOMP_TESTING_FAULTY_SOURCE_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "stcomp/common/status.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/stream/online_compressor.h"
#include "stcomp/testing/fault_plan.h"

namespace stcomp::testing {

// One record of an interleaved fleet feed.
struct FleetFix {
  std::string object_id;
  TimedPoint fix;
};

// One event out of the faulty feed: either a (possibly corrupted) fix or a
// transient (kUnavailable) read failure the consumer is expected to retry.
struct FaultyFeedEvent {
  enum class Kind { kFix, kTransientError };
  Kind kind = Kind::kFix;
  FleetFix fix;  // Valid when kind == kFix.
  Status error;  // Non-OK when kind == kTransientError.
};

class FaultyFixSource {
 public:
  // `plan` must outlive the source; its RNG drives every fault decision,
  // so interleaving other draws on the same plan changes the sequence.
  FaultyFixSource(std::vector<FleetFix> clean, FaultPlan* plan);

  // Produces the next event; false when the feed is exhausted.
  bool Next(FaultyFeedEvent* event);

  // Events emitted so far (fixes + I/O errors).
  size_t events_emitted() const { return events_emitted_; }

 private:
  std::vector<FleetFix> clean_;
  FaultPlan* plan_;
  size_t index_ = 0;
  size_t events_emitted_ = 0;
  std::deque<FaultyFeedEvent> pending_;
};

// Adapts a single-object faulty feed to the stream layer's pull-based
// FixSource: kFix events yield the fix, kTransientError events surface
// their kUnavailable status (the fix itself arrives on the retried call),
// exhaustion yields nullopt. The standard harness for
// PolicedCompressor::DrainSource retry tests.
class FaultyFeedFixSource final : public FixSource {
 public:
  // `source` must outlive the adapter.
  explicit FaultyFeedFixSource(FaultyFixSource* source);

  Result<std::optional<TimedPoint>> Next() override;

 private:
  FaultyFixSource* source_;
};

}  // namespace stcomp::testing

#endif  // STCOMP_TESTING_FAULTY_SOURCE_H_
