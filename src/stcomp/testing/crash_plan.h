// Deterministic crash-point injection for the durability layer (DESIGN.md
// §13), riding the FaultPlan style: a CrashPlan is a seeded decision about
// WHERE the process dies (which durable-write boundary) and HOW (clean
// kill, short write, torn write). Installed as a SegmentStore/WalWriter
// WriteFaultHook it fires exactly once; the crash-matrix test enumerates
// every boundary of a reference workload times every fate and asserts
// recovery loses at most the last uncommitted batch.
//
// Like FaultPlan, everything is a pure function of the seed: the short
// prefix length and torn-write garbage come from the plan's own Rng, and
// every decision lands in a human-readable log for reproduction.

#ifndef STCOMP_TESTING_CRASH_PLAN_H_
#define STCOMP_TESTING_CRASH_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/sim/random.h"
#include "stcomp/store/durable_file.h"

namespace stcomp::testing {

// How the injected crash mangles the boundary it fires at.
enum class CrashFate {
  kKill,        // Process dies before the write: nothing lands.
  kShortWrite,  // A seeded prefix lands, then death.
  kTornWrite,   // A seeded prefix plus seeded garbage lands, then death.
};

std::string_view CrashFateToString(CrashFate fate);

struct CrashPoint {
  size_t boundary = 0;  // Global boundary index the crash fires at.
  CrashFate fate = CrashFate::kKill;
};

class CrashPlan {
 public:
  // Dry-run plan: never fires, only counts boundaries — run the workload
  // once with this to learn how many crash points it has.
  explicit CrashPlan(uint64_t seed);
  CrashPlan(uint64_t seed, CrashPoint point);

  // The hook to install (SegmentStore::Options::write_hook). Captures
  // `this`; the plan must outlive every writer using it. After firing,
  // every later boundary also dies (a dead process stays dead).
  WriteFaultHook Hook();

  bool fired() const { return fired_; }
  // Boundaries consulted so far (dry run: the total crash-point count).
  size_t boundaries_seen() const { return boundaries_seen_; }
  const std::vector<std::string>& log() const { return log_; }

  // "CrashPlan(seed=7, boundary 3, torn-write, fired)" — for test output.
  std::string Describe() const;

 private:
  WriteFault Decide(size_t boundary, std::string_view bytes);

  uint64_t seed_;
  std::optional<CrashPoint> point_;
  Rng rng_;
  size_t boundaries_seen_ = 0;
  bool fired_ = false;
  std::vector<std::string> log_;
};

}  // namespace stcomp::testing

#endif  // STCOMP_TESTING_CRASH_PLAN_H_
