#include "stcomp/testing/crash_plan.h"

#include "stcomp/common/strings.h"

namespace stcomp::testing {

std::string_view CrashFateToString(CrashFate fate) {
  switch (fate) {
    case CrashFate::kKill:
      return "kill";
    case CrashFate::kShortWrite:
      return "short-write";
    case CrashFate::kTornWrite:
      return "torn-write";
  }
  return "unknown";
}

CrashPlan::CrashPlan(uint64_t seed) : seed_(seed), rng_(seed) {}

CrashPlan::CrashPlan(uint64_t seed, CrashPoint point)
    : seed_(seed), point_(point), rng_(seed) {}

WriteFault CrashPlan::Decide(size_t boundary, std::string_view bytes) {
  ++boundaries_seen_;
  if (fired_) {
    // The process died at the planned boundary; anything after is a bug in
    // the writer's death handling, and killing again keeps it from
    // silently writing on.
    log_.push_back(StrFormat("post-mortem write at boundary %zu", boundary));
    return WriteFault{WriteFault::Action::kCrash, 0, ""};
  }
  if (!point_.has_value() || boundary != point_->boundary) {
    return WriteFault{};
  }
  fired_ = true;
  WriteFault fault;
  switch (point_->fate) {
    case CrashFate::kKill:
      fault.action = WriteFault::Action::kCrash;
      break;
    case CrashFate::kShortWrite:
      fault.action = WriteFault::Action::kShortWrite;
      // Non-byte boundaries (rename/truncate/fsync) pass empty bytes and
      // treat any non-proceed action as a pre-step crash.
      fault.keep_bytes =
          bytes.empty() ? 0 : static_cast<size_t>(rng_.NextBelow(bytes.size()));
      break;
    case CrashFate::kTornWrite: {
      fault.action = WriteFault::Action::kTornWrite;
      fault.keep_bytes =
          bytes.empty() ? 0 : static_cast<size_t>(rng_.NextBelow(bytes.size()));
      const size_t garbage_len = 1 + static_cast<size_t>(rng_.NextBelow(16));
      fault.garbage.reserve(garbage_len);
      for (size_t i = 0; i < garbage_len; ++i) {
        fault.garbage.push_back(
            static_cast<char>(rng_.NextBelow(256)));
      }
      break;
    }
  }
  log_.push_back(StrFormat("fired %s at boundary %zu (keep %zu of %zu)",
                           std::string(CrashFateToString(point_->fate)).c_str(),
                           boundary, fault.keep_bytes, bytes.size()));
  return fault;
}

WriteFaultHook CrashPlan::Hook() {
  return [this](size_t boundary, std::string_view bytes) {
    return Decide(boundary, bytes);
  };
}

std::string CrashPlan::Describe() const {
  if (!point_.has_value()) {
    return StrFormat("CrashPlan(seed=%llu, dry-run, %zu boundaries)",
                     static_cast<unsigned long long>(seed_),
                     boundaries_seen_);
  }
  return StrFormat("CrashPlan(seed=%llu, boundary %zu, %s, %s)",
                   static_cast<unsigned long long>(seed_), point_->boundary,
                   std::string(CrashFateToString(point_->fate)).c_str(),
                   fired_ ? "fired" : "not fired");
}

}  // namespace stcomp::testing
