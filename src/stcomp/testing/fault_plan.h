// Deterministic fault injection for ingest hardening (DESIGN.md §12).
//
// A FaultPlan is a seeded stream of fault decisions: wrap a byte buffer
// (CorruptBytes) or a fix feed (FaultyFixSource, faulty_source.h) and the
// plan injects bit flips, truncation, record duplication, timestamp
// regression/jitter, NaN coordinates and mid-stream I/O errors — always the
// same faults, in the same places, for the same seed. Every injected fault
// is appended to a human-readable log, so two runs can be proven
// byte-identical by comparing logs, and any failure reproduces from the
// single seed printed in the test output.
//
// This is test tooling (linked by tests/, tests/fuzz/ and the examples
// demo), not part of the product `stcomp` umbrella target.

#ifndef STCOMP_TESTING_FAULT_PLAN_H_
#define STCOMP_TESTING_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/net/socket_util.h"
#include "stcomp/sim/random.h"

namespace stcomp::testing {

// Per-fault-kind injection rates; all probabilities are per opportunity
// (per byte for flips, per record for the rest) in [0, 1]. The defaults
// are aggressive enough that a ~100-record feed sees every fault kind.
struct FaultPlanOptions {
  // Byte-stream faults (CorruptBytes).
  double bit_flip_per_byte = 0.005;
  double truncate_probability = 0.25;
  double duplicate_span_probability = 0.25;

  // Fix-stream faults (FaultyFixSource).
  double duplicate_fix_probability = 0.05;
  double regress_time_probability = 0.04;
  double jitter_time_probability = 0.06;
  double jitter_max_s = 3.0;
  double nan_coordinate_probability = 0.03;
  double io_error_probability = 0.02;

  // Wire faults (NextWireFault; per socket write). The defaults make a
  // ~500-write chaos-soak client see several disconnects, many split
  // writes and an occasional stall — corruption is kept rare because a
  // corrupted frame rightly kills the connection (protocol quarantine)
  // and costs a full reconnect/resume round trip.
  double wire_disconnect_probability = 0.02;
  double wire_stall_probability = 0.03;
  double wire_stall_max_ms = 20.0;
  double wire_split_probability = 0.25;
  double wire_corrupt_probability = 0.02;
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed, FaultPlanOptions options = {});

  uint64_t seed() const { return seed_; }
  const FaultPlanOptions& options() const { return options_; }

  // A deterministically corrupted copy of `input`: per-byte bit flips,
  // at most one duplicated span and at most one truncation. The fuzz
  // corpus replay driver uses this to grow every checked-in corpus file
  // into a seed-indexed family of hostile mutants.
  std::string CorruptBytes(std::string_view input);

  // One wire-fault decision for a socket write of `write_size` bytes —
  // plug into a net::WireFaultHook to chaos-test a client/server link:
  //
  //   net::WireFaultHook hook = [&](size_t n) { return plan.NextWireFault(n); };
  //
  // At most one fault per write, drawn in fixed order (disconnect,
  // corrupt, split, stall) so the sequence is a pure function of (seed,
  // write sizes). Injected faults land in log() like every other kind.
  net::WireFault NextWireFault(size_t write_size);

  // Ordered log of every fault injected so far ("bit-flip@12.3",
  // "dup-fix#4", ...). Equal seeds + equal call sequences produce
  // byte-identical logs; the determinism tests assert exactly that.
  const std::vector<std::string>& log() const { return log_; }
  size_t faults_injected() const { return log_.size(); }

  // "FaultPlan(seed=42, 17 faults)" — for demo/test failure messages.
  std::string Describe() const;

 private:
  friend class FaultyFixSource;

  Rng* rng() { return &rng_; }
  void Record(std::string entry) { log_.push_back(std::move(entry)); }

  uint64_t seed_;
  FaultPlanOptions options_;
  Rng rng_;
  std::vector<std::string> log_;
  uint64_t stall_count_ = 0;
};

}  // namespace stcomp::testing

#endif  // STCOMP_TESTING_FAULT_PLAN_H_
