#include "stcomp/testing/faulty_source.h"

#include <limits>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"

namespace stcomp::testing {

FaultyFixSource::FaultyFixSource(std::vector<FleetFix> clean, FaultPlan* plan)
    : clean_(std::move(clean)), plan_(plan) {
  STCOMP_CHECK(plan_ != nullptr);
}

bool FaultyFixSource::Next(FaultyFeedEvent* event) {
  STCOMP_CHECK(event != nullptr);
  if (!pending_.empty()) {
    *event = std::move(pending_.front());
    pending_.pop_front();
    ++events_emitted_;
    return true;
  }
  if (index_ >= clean_.size()) {
    return false;
  }
  const size_t i = index_++;
  FleetFix fix = clean_[i];
  Rng* rng = plan_->rng();
  const FaultPlanOptions& options = plan_->options();
  // Fixed draw order per record so the fault sequence is a pure function
  // of (seed, feed length): io-error, duplicate, regression, jitter, NaN.
  if (rng->NextBool(options.io_error_probability)) {
    // Transient read failure: the fix itself is delivered on the next
    // pull, like a retried socket read.
    plan_->Record(StrFormat("io-error#%zu", i));
    event->kind = FaultyFeedEvent::Kind::kTransientError;
    event->error =
        UnavailableError(StrFormat("injected read failure before fix %zu", i));
  } else {
    event->kind = FaultyFeedEvent::Kind::kFix;
    event->error = Status::Ok();
  }
  if (rng->NextBool(options.duplicate_fix_probability)) {
    plan_->Record(StrFormat("dup-fix#%zu", i));
    FaultyFeedEvent duplicate;
    duplicate.kind = FaultyFeedEvent::Kind::kFix;
    duplicate.fix = fix;
    pending_.push_back(std::move(duplicate));
  }
  if (rng->NextBool(options.regress_time_probability)) {
    const double back = rng->NextUniform(0.5, 30.0);
    fix.fix.t -= back;
    plan_->Record(StrFormat("regress#%zu-%.3fs", i, back));
  }
  if (rng->NextBool(options.jitter_time_probability)) {
    const double jitter =
        rng->NextUniform(-options.jitter_max_s, options.jitter_max_s);
    fix.fix.t += jitter;
    plan_->Record(StrFormat("jitter#%zu%+.3fs", i, jitter));
  }
  if (rng->NextBool(options.nan_coordinate_probability)) {
    const bool x_axis = rng->NextBool(0.5);
    (x_axis ? fix.fix.position.x : fix.fix.position.y) =
        std::numeric_limits<double>::quiet_NaN();
    plan_->Record(StrFormat("nan#%zu.%c", i, x_axis ? 'x' : 'y'));
  }
  if (event->kind == FaultyFeedEvent::Kind::kTransientError) {
    // Deliver the (possibly corrupted) fix after the error event.
    FaultyFeedEvent retry;
    retry.kind = FaultyFeedEvent::Kind::kFix;
    retry.fix = std::move(fix);
    pending_.push_front(std::move(retry));
  } else {
    event->fix = std::move(fix);
  }
  ++events_emitted_;
  return true;
}

FaultyFeedFixSource::FaultyFeedFixSource(FaultyFixSource* source)
    : source_(source) {
  STCOMP_CHECK(source_ != nullptr);
}

Result<std::optional<TimedPoint>> FaultyFeedFixSource::Next() {
  FaultyFeedEvent event;
  if (!source_->Next(&event)) {
    return std::optional<TimedPoint>();
  }
  if (event.kind == FaultyFeedEvent::Kind::kTransientError) {
    return event.error;
  }
  return std::optional<TimedPoint>(event.fix.fix);
}

}  // namespace stcomp::testing
