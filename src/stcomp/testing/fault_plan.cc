#include "stcomp/testing/fault_plan.h"

#include "stcomp/common/strings.h"

namespace stcomp::testing {

FaultPlan::FaultPlan(uint64_t seed, FaultPlanOptions options)
    : seed_(seed), options_(options), rng_(seed) {}

std::string FaultPlan::CorruptBytes(std::string_view input) {
  std::string out(input);
  // Fixed draw order (flips, then duplication, then truncation) keeps the
  // fault sequence a pure function of (seed, input length).
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng_.NextBool(options_.bit_flip_per_byte)) {
      const int bit = static_cast<int>(rng_.NextBelow(8));
      out[i] = static_cast<char>(out[i] ^ (1 << bit));
      Record(StrFormat("bit-flip@%zu.%d", i, bit));
    }
  }
  if (!out.empty() && rng_.NextBool(options_.duplicate_span_probability)) {
    const size_t start = rng_.NextBelow(out.size());
    const size_t max_len = out.size() - start;
    const size_t len = 1 + rng_.NextBelow(max_len);
    out.insert(start + len, out.substr(start, len));
    Record(StrFormat("dup-span@%zu+%zu", start, len));
  }
  if (!out.empty() && rng_.NextBool(options_.truncate_probability)) {
    const size_t keep = rng_.NextBelow(out.size());
    out.resize(keep);
    Record(StrFormat("truncate@%zu", keep));
  }
  return out;
}

net::WireFault FaultPlan::NextWireFault(size_t write_size) {
  net::WireFault fault;
  if (write_size == 0) return fault;
  // Fixed draw order (disconnect, corrupt, split, stall), at most one
  // fault per write — the decision stream is a pure function of (seed,
  // write-size sequence), so a failing soak replays from its seed alone.
  if (rng_.NextBool(options_.wire_disconnect_probability)) {
    fault.kind = net::WireFault::Kind::kDisconnect;
    fault.offset = rng_.NextBelow(write_size);
    Record(StrFormat("wire-disconnect@%zu", fault.offset));
    return fault;
  }
  if (rng_.NextBool(options_.wire_corrupt_probability)) {
    fault.kind = net::WireFault::Kind::kCorruptSpan;
    fault.offset = rng_.NextBelow(write_size);
    fault.length = 1 + rng_.NextBelow(8);
    Record(StrFormat("wire-corrupt@%zu+%zu", fault.offset, fault.length));
    return fault;
  }
  if (write_size > 1 && rng_.NextBool(options_.wire_split_probability)) {
    fault.kind = net::WireFault::Kind::kSplitWrite;
    fault.offset = 1 + rng_.NextBelow(write_size - 1);
    Record(StrFormat("wire-split@%zu", fault.offset));
    return fault;
  }
  if (rng_.NextBool(options_.wire_stall_probability)) {
    fault.kind = net::WireFault::Kind::kStall;
    fault.stall_ms = 1 + rng_.NextBelow(
                             static_cast<uint64_t>(options_.wire_stall_max_ms));
    Record(StrFormat("wire-stall#%llu(%llums)",
                     static_cast<unsigned long long>(++stall_count_),
                     static_cast<unsigned long long>(fault.stall_ms)));
    return fault;
  }
  return fault;
}

std::string FaultPlan::Describe() const {
  return StrFormat("FaultPlan(seed=%llu, %zu faults)",
                   static_cast<unsigned long long>(seed_), log_.size());
}

}  // namespace stcomp::testing
