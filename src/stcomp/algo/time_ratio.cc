#include "stcomp/algo/time_ratio.h"

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/opening_window.h"
#include "stcomp/core/interpolation.h"

namespace stcomp::algo {

double SynchronizedSplitDistance(TrajectoryView trajectory, int first,
                                 int last, int i) {
  return SynchronizedDistance(trajectory[static_cast<size_t>(first)],
                              trajectory[static_cast<size_t>(last)],
                              trajectory[static_cast<size_t>(i)]);
}

void TdTr(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
          IndexList& out) {
  TopDown(trajectory, epsilon_m, SplitCriterion::kSynchronized, workspace,
          out);
}

IndexList TdTr(TrajectoryView trajectory, double epsilon_m) {
  Workspace workspace;
  IndexList kept;
  TdTr(trajectory, epsilon_m, workspace, kept);
  return kept;
}

void TdTrMaxPoints(TrajectoryView trajectory, int max_points,
                   Workspace& workspace, IndexList& out) {
  TopDownMaxPoints(trajectory, max_points, SplitCriterion::kSynchronized,
                   workspace, out);
}

IndexList TdTrMaxPoints(TrajectoryView trajectory, int max_points) {
  Workspace workspace;
  IndexList kept;
  TdTrMaxPoints(trajectory, max_points, workspace, kept);
  return kept;
}

void OpwTr(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
           IndexList& out) {
  OpeningWindow(trajectory, epsilon_m, BreakPolicy::kNormal,
                WindowCriterion::kSynchronized, workspace, out);
}

void OpwTr(TrajectoryView trajectory, double epsilon_m, IndexList& out) {
  Workspace workspace;
  OpwTr(trajectory, epsilon_m, workspace, out);
}

IndexList OpwTr(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  OpwTr(trajectory, epsilon_m, kept);
  return kept;
}

}  // namespace stcomp::algo
