#include "stcomp/algo/time_ratio.h"

#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/opening_window.h"
#include "stcomp/core/interpolation.h"

namespace stcomp::algo {

double SynchronizedSplitDistance(const Trajectory& trajectory, int first,
                                 int last, int i) {
  return SynchronizedDistance(trajectory[static_cast<size_t>(first)],
                              trajectory[static_cast<size_t>(last)],
                              trajectory[static_cast<size_t>(i)]);
}

IndexList TdTr(const Trajectory& trajectory, double epsilon_m) {
  return TopDown(trajectory, epsilon_m, SynchronizedSplitDistance);
}

IndexList TdTrMaxPoints(const Trajectory& trajectory, int max_points) {
  return TopDownMaxPoints(trajectory, max_points, SynchronizedSplitDistance);
}

IndexList OpwTr(const Trajectory& trajectory, double epsilon_m) {
  return OpeningWindow(trajectory, epsilon_m, BreakPolicy::kNormal,
                       SynchronizedWindowDistance);
}

}  // namespace stcomp::algo
