// Reumann-Witkam simplification: slide a strip of half-width epsilon along
// the current heading; points inside the strip are dropped, the first
// point outside starts a new strip. A single-pass O(n) line-generalization
// baseline from the same era as the algorithms in the paper's Sec. 2.

#ifndef STCOMP_ALGO_REUMANN_WITKAM_H_
#define STCOMP_ALGO_REUMANN_WITKAM_H_

#include "stcomp/algo/compression.h"

namespace stcomp::algo {

// The strip direction is set by the current key point and its immediate
// successor. Precondition (checked): epsilon_m >= 0.
void ReumannWitkam(TrajectoryView trajectory, double epsilon_m,
                   IndexList& out);
IndexList ReumannWitkam(TrajectoryView trajectory, double epsilon_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_REUMANN_WITKAM_H_
