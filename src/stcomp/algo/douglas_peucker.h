// The Douglas-Peucker top-down algorithm (paper Sec. 2.1, [Douglas &
// Peucker 1973]) plus the generic top-down skeleton reused by the
// spatiotemporal TD-TR algorithm (time_ratio.h).

#ifndef STCOMP_ALGO_DOUGLAS_PEUCKER_H_
#define STCOMP_ALGO_DOUGLAS_PEUCKER_H_

#include <functional>

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// Distance of interior point `i` from the candidate approximation of the
// range (first, last): perpendicular distance for classic DP, synchronized
// (time-ratio) distance for TD-TR.
using SplitDistanceFn =
    std::function<double(TrajectoryView, int first, int last, int i)>;

// Perpendicular distance from point `i` to the line through points `first`
// and `last` (the classic DP criterion; the paper's NDP).
double PerpendicularSplitDistance(TrajectoryView trajectory, int first,
                                  int last, int i);

// The built-in split criteria as an enum: these take the kernel-dispatched
// whole-range path (geom/kernels.h) — one batched argmax per range over
// the workspace's SoA repack — and produce bit-identical output to the
// per-point SplitDistanceFn forms.
enum class SplitCriterion {
  kPerpendicular,  // NDP (classic Douglas-Peucker)
  kSynchronized,   // TD-TR
};

// Generic top-down recursion: splits (iteratively, with an explicit stack)
// at the interior point of maximum `distance` whenever that maximum exceeds
// `epsilon`; ties break to the lowest index. Keeps both endpoints.
// Precondition (checked): epsilon >= 0.
void TopDown(TrajectoryView trajectory, double epsilon,
             const SplitDistanceFn& distance, Workspace& workspace,
             IndexList& out);
IndexList TopDown(TrajectoryView trajectory, double epsilon,
                  const SplitDistanceFn& distance);

// Kernel-dispatched fast path for the built-in criteria. Allocation-free
// on a warmed workspace.
void TopDown(TrajectoryView trajectory, double epsilon,
             SplitCriterion criterion, Workspace& workspace, IndexList& out);

// Classic Douglas-Peucker with perpendicular-distance threshold `epsilon_m`
// ("NDP" in the paper's experiments).
void DouglasPeucker(TrajectoryView trajectory, double epsilon_m,
                    Workspace& workspace, IndexList& out);
IndexList DouglasPeucker(TrajectoryView trajectory, double epsilon_m);

// Best-first top-down refinement halting on output size instead of a
// distance threshold (paper Sec. 2, halting condition "the number of data
// points exceeds a user-defined value"). Always keeps the two endpoints,
// so the effective minimum is 2. Precondition (checked): max_points >= 2.
void TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                      const SplitDistanceFn& distance, Workspace& workspace,
                      IndexList& out);
IndexList TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                           const SplitDistanceFn& distance);

// Kernel-dispatched fast path for the built-in criteria.
void TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                      SplitCriterion criterion, Workspace& workspace,
                      IndexList& out);

// The classic perpendicular-distance instance of TopDownMaxPoints.
void DouglasPeuckerMaxPoints(TrajectoryView trajectory, int max_points,
                             Workspace& workspace, IndexList& out);
IndexList DouglasPeuckerMaxPoints(TrajectoryView trajectory, int max_points);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_DOUGLAS_PEUCKER_H_
