// Point-elimination baselines that ignore neighbourhood geometry
// (paper Sec. 2: "leaving in every i-th data point" [Tobler]).

#ifndef STCOMP_ALGO_SAMPLING_H_
#define STCOMP_ALGO_SAMPLING_H_

#include "stcomp/algo/compression.h"

namespace stcomp::algo {

// Keeps every `keep_every`-th point (plus the last point, so the full time
// interval stays covered). keep_every == 1 keeps everything.
// Precondition (checked): keep_every >= 1.
void UniformSampling(TrajectoryView trajectory, int keep_every,
                     IndexList& out);
IndexList UniformSampling(TrajectoryView trajectory, int keep_every);

// Keeps the first point of every `interval_s`-second time bucket (plus the
// last point). Precondition (checked): interval_s > 0.
void TemporalSampling(TrajectoryView trajectory, double interval_s,
                      IndexList& out);
IndexList TemporalSampling(TrajectoryView trajectory, double interval_s);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_SAMPLING_H_
