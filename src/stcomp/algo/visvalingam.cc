#include "stcomp/algo/visvalingam.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

using detail::HeapEntry;

// Min-heap order on (area, index); same pop order as the pre-workspace
// std::priority_queue<Entry, vector, greater<>>.
bool AreaGreater(const HeapEntry& a, const HeapEntry& b) {
  if (a.key != b.key) {
    return a.key > b.key;
  }
  return a.index > b.index;
}

// Greedy least-area removal over a doubly-linked list with a lazily
// invalidated heap (same engine shape as bottom_up.cc, but the cost is a
// property of the removed point's triangle, not of the merged range). All
// scratch lives in the caller's Workspace.
class VisvalingamEngine {
 public:
  using AreaFn = double (*)(TrajectoryView, int a, int b, int c,
                            double weight);

  VisvalingamEngine(TrajectoryView trajectory, AreaFn area, double weight,
                    Workspace& workspace)
      : trajectory_(trajectory),
        area_(area),
        weight_(weight),
        n_(static_cast<int>(trajectory.size())),
        prev_(workspace.prev),
        next_(workspace.next),
        generation_(workspace.generation),
        alive_(workspace.alive),
        queue_(workspace.heap) {
    prev_.resize(static_cast<size_t>(n_));
    next_.resize(static_cast<size_t>(n_));
    generation_.assign(static_cast<size_t>(n_), 0);
    alive_.assign(static_cast<size_t>(n_), 1);
    queue_.clear();
    for (int i = 0; i < n_; ++i) {
      prev_[static_cast<size_t>(i)] = i - 1;
      next_[static_cast<size_t>(i)] = i + 1 < n_ ? i + 1 : -1;
    }
    for (int i = 1; i + 1 < n_; ++i) {
      Push(i);
    }
    kept_count_ = n_;
  }

  template <typename Predicate>
  void Run(const Predicate& may_remove, IndexList& out) {
    // Visvalingam detail: a removal can *reduce* a neighbour's area below
    // an already-removed one's; the standard fix is to clamp each removal
    // cost to be non-decreasing so the removal order is globally
    // consistent.
    double floor_area = 0.0;
    while (!queue_.empty()) {
      const HeapEntry top = queue_.front();
      std::pop_heap(queue_.begin(), queue_.end(), AreaGreater);
      queue_.pop_back();
      if (!alive_[static_cast<size_t>(top.index)] ||
          top.generation != generation_[static_cast<size_t>(top.index)]) {
        continue;
      }
      const double effective = std::max(top.key, floor_area);
      if (!may_remove(effective, kept_count_)) {
        break;
      }
      floor_area = effective;
      Remove(top.index);
    }
    out.clear();
    out.reserve(static_cast<size_t>(kept_count_));
    for (int i = 0; i != -1 && i < n_; i = next_[static_cast<size_t>(i)]) {
      out.push_back(i);
      if (next_[static_cast<size_t>(i)] == -1) {
        break;
      }
    }
  }

 private:
  void Push(int index) {
    const int a = prev_[static_cast<size_t>(index)];
    const int c = next_[static_cast<size_t>(index)];
    queue_.push_back(HeapEntry{area_(trajectory_, a, index, c, weight_),
                               index,
                               generation_[static_cast<size_t>(index)]});
    std::push_heap(queue_.begin(), queue_.end(), AreaGreater);
  }

  void Remove(int b) {
    const int a = prev_[static_cast<size_t>(b)];
    const int c = next_[static_cast<size_t>(b)];
    alive_[static_cast<size_t>(b)] = 0;
    next_[static_cast<size_t>(a)] = c;
    prev_[static_cast<size_t>(c)] = a;
    --kept_count_;
    if (a > 0) {
      ++generation_[static_cast<size_t>(a)];
      Push(a);
    }
    if (c < n_ - 1) {
      ++generation_[static_cast<size_t>(c)];
      Push(c);
    }
  }

  const TrajectoryView trajectory_;
  const AreaFn area_;
  const double weight_;
  const int n_;
  std::vector<int>& prev_;
  std::vector<int>& next_;
  std::vector<int>& generation_;
  std::vector<char>& alive_;
  std::vector<HeapEntry>& queue_;
  int kept_count_ = 0;
};

double SpatialArea(TrajectoryView t, int a, int b, int c, double /*weight*/) {
  const Vec2 pa = t[static_cast<size_t>(a)].position;
  const Vec2 pb = t[static_cast<size_t>(b)].position;
  const Vec2 pc = t[static_cast<size_t>(c)].position;
  return 0.5 * std::abs((pb - pa).Cross(pc - pa));
}

double SpatiotemporalArea(TrajectoryView t, int a, int b, int c,
                          double weight) {
  // Triangle area in (x, y, weight * time) space.
  const TimedPoint& qa = t[static_cast<size_t>(a)];
  const TimedPoint& qb = t[static_cast<size_t>(b)];
  const TimedPoint& qc = t[static_cast<size_t>(c)];
  const double e1x = qb.position.x - qa.position.x;
  const double e1y = qb.position.y - qa.position.y;
  const double e1t = weight * (qb.t - qa.t);
  const double e2x = qc.position.x - qa.position.x;
  const double e2y = qc.position.y - qa.position.y;
  const double e2t = weight * (qc.t - qa.t);
  const double cx = e1y * e2t - e1t * e2y;
  const double cy = e1t * e2x - e1x * e2t;
  const double cz = e1x * e2y - e1y * e2x;
  return 0.5 * std::sqrt(cx * cx + cy * cy + cz * cz);
}

}  // namespace

void Visvalingam(TrajectoryView trajectory, double min_area_m2,
                 Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(min_area_m2 >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  VisvalingamEngine engine(trajectory, SpatialArea, 0.0, workspace);
  engine.Run(
      [min_area_m2](double area, int /*kept*/) { return area < min_area_m2; },
      out);
}

IndexList Visvalingam(TrajectoryView trajectory, double min_area_m2) {
  Workspace workspace;
  IndexList kept;
  Visvalingam(trajectory, min_area_m2, workspace, kept);
  return kept;
}

void VisvalingamMaxPoints(TrajectoryView trajectory, int max_points,
                          Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(max_points >= 2);
  if (static_cast<int>(trajectory.size()) <= max_points) {
    KeepAll(trajectory, out);
    return;
  }
  VisvalingamEngine engine(trajectory, SpatialArea, 0.0, workspace);
  engine.Run(
      [max_points](double /*area*/, int kept) { return kept > max_points; },
      out);
}

IndexList VisvalingamMaxPoints(TrajectoryView trajectory, int max_points) {
  Workspace workspace;
  IndexList kept;
  VisvalingamMaxPoints(trajectory, max_points, workspace, kept);
  return kept;
}

void VisvalingamTr(TrajectoryView trajectory, double min_area_m2,
                   double time_weight_mps, Workspace& workspace,
                   IndexList& out) {
  STCOMP_CHECK(min_area_m2 >= 0.0);
  STCOMP_CHECK(time_weight_mps >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  VisvalingamEngine engine(trajectory, SpatiotemporalArea, time_weight_mps,
                           workspace);
  engine.Run(
      [min_area_m2](double area, int /*kept*/) { return area < min_area_m2; },
      out);
}

IndexList VisvalingamTr(TrajectoryView trajectory, double min_area_m2,
                        double time_weight_mps) {
  Workspace workspace;
  IndexList kept;
  VisvalingamTr(trajectory, min_area_m2, time_weight_mps, workspace, kept);
  return kept;
}

}  // namespace stcomp::algo
