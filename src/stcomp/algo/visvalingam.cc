#include "stcomp/algo/visvalingam.h"

#include <cmath>
#include <queue>
#include <vector>

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

// Greedy least-area removal over a doubly-linked list with a lazily
// invalidated heap (same engine shape as bottom_up.cc, but the cost is a
// property of the removed point's triangle, not of the merged range).
class VisvalingamEngine {
 public:
  using AreaFn = double (*)(const Trajectory&, int a, int b, int c,
                            double weight);

  VisvalingamEngine(const Trajectory& trajectory, AreaFn area, double weight)
      : trajectory_(trajectory),
        area_(area),
        weight_(weight),
        n_(static_cast<int>(trajectory.size())),
        prev_(static_cast<size_t>(n_)),
        next_(static_cast<size_t>(n_)),
        generation_(static_cast<size_t>(n_), 0),
        alive_(static_cast<size_t>(n_), true) {
    for (int i = 0; i < n_; ++i) {
      prev_[static_cast<size_t>(i)] = i - 1;
      next_[static_cast<size_t>(i)] = i + 1 < n_ ? i + 1 : -1;
    }
    for (int i = 1; i + 1 < n_; ++i) {
      Push(i);
    }
    kept_count_ = n_;
  }

  template <typename Predicate>
  IndexList Run(const Predicate& may_remove) {
    // Visvalingam detail: a removal can *reduce* a neighbour's area below
    // an already-removed one's; the standard fix is to clamp each removal
    // cost to be non-decreasing so the removal order is globally
    // consistent.
    double floor_area = 0.0;
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      queue_.pop();
      if (!alive_[static_cast<size_t>(top.index)] ||
          top.generation != generation_[static_cast<size_t>(top.index)]) {
        continue;
      }
      const double effective = std::max(top.area, floor_area);
      if (!may_remove(effective, kept_count_)) {
        break;
      }
      floor_area = effective;
      Remove(top.index);
    }
    IndexList kept;
    kept.reserve(static_cast<size_t>(kept_count_));
    for (int i = 0; i != -1 && i < n_; i = next_[static_cast<size_t>(i)]) {
      kept.push_back(i);
      if (next_[static_cast<size_t>(i)] == -1) {
        break;
      }
    }
    return kept;
  }

 private:
  struct Entry {
    double area;
    int index;
    int generation;
    bool operator>(const Entry& other) const {
      if (area != other.area) {
        return area > other.area;
      }
      return index > other.index;
    }
  };

  void Push(int index) {
    const int a = prev_[static_cast<size_t>(index)];
    const int c = next_[static_cast<size_t>(index)];
    queue_.push(Entry{area_(trajectory_, a, index, c, weight_), index,
                      generation_[static_cast<size_t>(index)]});
  }

  void Remove(int b) {
    const int a = prev_[static_cast<size_t>(b)];
    const int c = next_[static_cast<size_t>(b)];
    alive_[static_cast<size_t>(b)] = false;
    next_[static_cast<size_t>(a)] = c;
    prev_[static_cast<size_t>(c)] = a;
    --kept_count_;
    if (a > 0) {
      ++generation_[static_cast<size_t>(a)];
      Push(a);
    }
    if (c < n_ - 1) {
      ++generation_[static_cast<size_t>(c)];
      Push(c);
    }
  }

  const Trajectory& trajectory_;
  const AreaFn area_;
  const double weight_;
  const int n_;
  std::vector<int> prev_;
  std::vector<int> next_;
  std::vector<int> generation_;
  std::vector<bool> alive_;
  int kept_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
};

double SpatialArea(const Trajectory& t, int a, int b, int c,
                   double /*weight*/) {
  const Vec2 pa = t[static_cast<size_t>(a)].position;
  const Vec2 pb = t[static_cast<size_t>(b)].position;
  const Vec2 pc = t[static_cast<size_t>(c)].position;
  return 0.5 * std::abs((pb - pa).Cross(pc - pa));
}

double SpatiotemporalArea(const Trajectory& t, int a, int b, int c,
                          double weight) {
  // Triangle area in (x, y, weight * time) space.
  const TimedPoint& qa = t[static_cast<size_t>(a)];
  const TimedPoint& qb = t[static_cast<size_t>(b)];
  const TimedPoint& qc = t[static_cast<size_t>(c)];
  const double e1x = qb.position.x - qa.position.x;
  const double e1y = qb.position.y - qa.position.y;
  const double e1t = weight * (qb.t - qa.t);
  const double e2x = qc.position.x - qa.position.x;
  const double e2y = qc.position.y - qa.position.y;
  const double e2t = weight * (qc.t - qa.t);
  const double cx = e1y * e2t - e1t * e2y;
  const double cy = e1t * e2x - e1x * e2t;
  const double cz = e1x * e2y - e1y * e2x;
  return 0.5 * std::sqrt(cx * cx + cy * cy + cz * cz);
}

}  // namespace

IndexList Visvalingam(const Trajectory& trajectory, double min_area_m2) {
  STCOMP_CHECK(min_area_m2 >= 0.0);
  if (trajectory.size() <= 2) {
    return KeepAll(trajectory);
  }
  VisvalingamEngine engine(trajectory, SpatialArea, 0.0);
  return engine.Run([min_area_m2](double area, int /*kept*/) {
    return area < min_area_m2;
  });
}

IndexList VisvalingamMaxPoints(const Trajectory& trajectory, int max_points) {
  STCOMP_CHECK(max_points >= 2);
  if (static_cast<int>(trajectory.size()) <= max_points) {
    return KeepAll(trajectory);
  }
  VisvalingamEngine engine(trajectory, SpatialArea, 0.0);
  return engine.Run(
      [max_points](double /*area*/, int kept) { return kept > max_points; });
}

IndexList VisvalingamTr(const Trajectory& trajectory, double min_area_m2,
                        double time_weight_mps) {
  STCOMP_CHECK(min_area_m2 >= 0.0);
  STCOMP_CHECK(time_weight_mps >= 0.0);
  if (trajectory.size() <= 2) {
    return KeepAll(trajectory);
  }
  VisvalingamEngine engine(trajectory, SpatiotemporalArea, time_weight_mps);
  return engine.Run([min_area_m2](double area, int /*kept*/) {
    return area < min_area_m2;
  });
}

}  // namespace stcomp::algo
