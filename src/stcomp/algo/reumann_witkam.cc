#include "stcomp/algo/reumann_witkam.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

void ReumannWitkam(TrajectoryView trajectory, double epsilon_m,
                   IndexList& out) {
  STCOMP_CHECK(epsilon_m >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  out.clear();
  out.push_back(0);
  int key = 0;
  int direction = 1;  // Successor defining the strip direction.
  for (int i = 2; i < n; ++i) {
    const double offset = PointToLineDistance(
        trajectory[static_cast<size_t>(i)].position,
        trajectory[static_cast<size_t>(key)].position,
        trajectory[static_cast<size_t>(direction)].position);
    if (offset > epsilon_m) {
      // The previous point ends the strip and becomes the new key.
      out.push_back(i - 1);
      key = i - 1;
      direction = i;
    }
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

IndexList ReumannWitkam(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  ReumannWitkam(trajectory, epsilon_m, kept);
  return kept;
}

}  // namespace stcomp::algo
