// The paper's "more advanced" spatiotemporal algorithm class (Sec. 3.3):
// the synchronized-distance criterion combined with a derived-speed
// difference criterion. OPW-SP is the paper's SPT pseudocode; TD-SP is the
// top-down application the experiments mention (see DESIGN.md for the
// interpretation, as the paper gives no TD-SP pseudocode).

#ifndef STCOMP_ALGO_SPATIOTEMPORAL_H_
#define STCOMP_ALGO_SPATIOTEMPORAL_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// Derived speed difference at interior point `i`: the absolute difference
// between the derived (distance/time) speeds of segments (i-1, i) and
// (i, i+1). Precondition: 0 < i < size()-1.
double SpeedJump(TrajectoryView trajectory, int i);

// OPW-SP (the paper's procedure SPT): opening window; a window is violated
// at interior point i when SED(i) > max_dist_error_m OR
// SpeedJump(i) > max_speed_error_mps; the cut is at the violating point.
// Preconditions (checked): both thresholds >= 0.
void OpwSp(TrajectoryView trajectory, double max_dist_error_m,
           double max_speed_error_mps, Workspace& workspace, IndexList& out);
void OpwSp(TrajectoryView trajectory, double max_dist_error_m,
           double max_speed_error_mps, IndexList& out);
IndexList OpwSp(TrajectoryView trajectory, double max_dist_error_m,
                double max_speed_error_mps);

// TD-SP: top-down; a range is split when max SED > max_dist_error_m or any
// interior speed jump > max_speed_error_mps. The split point is the max-SED
// point when the distance criterion fired, otherwise the largest-speed-jump
// point. Preconditions (checked): both thresholds >= 0.
void TdSp(TrajectoryView trajectory, double max_dist_error_m,
          double max_speed_error_mps, Workspace& workspace, IndexList& out);
IndexList TdSp(TrajectoryView trajectory, double max_dist_error_m,
               double max_speed_error_mps);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_SPATIOTEMPORAL_H_
