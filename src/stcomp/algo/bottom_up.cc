#include "stcomp/algo/bottom_up.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"

namespace stcomp::algo {

namespace {

using detail::HeapEntry;

// Min-heap order on (cost, index): std::push_heap/pop_heap with this
// comparator pop entries cheapest-first, lowest index on ties — the same
// order std::priority_queue<Entry, vector, greater<>> produced before the
// workspace refactor.
bool CostGreater(const HeapEntry& a, const HeapEntry& b) {
  if (a.key != b.key) {
    return a.key > b.key;
  }
  return a.index > b.index;  // Deterministic tie-break: lowest index.
}

// Shared greedy engine. Runs removals in increasing cost order and stops
// when `may_remove(next_cost, kept_count)` says so. All scratch lives in
// the caller's Workspace.
class BottomUpEngine {
 public:
  BottomUpEngine(TrajectoryView trajectory, BottomUpMetric metric,
                 Workspace& workspace)
      : trajectory_(trajectory),
        metric_(metric),
        n_(static_cast<int>(trajectory.size())),
        prev_(workspace.prev),
        next_(workspace.next),
        generation_(workspace.generation),
        alive_(workspace.alive),
        queue_(workspace.heap) {
    prev_.resize(static_cast<size_t>(n_));
    next_.resize(static_cast<size_t>(n_));
    generation_.assign(static_cast<size_t>(n_), 0);
    alive_.assign(static_cast<size_t>(n_), 1);
    queue_.clear();
    for (int i = 0; i < n_; ++i) {
      prev_[static_cast<size_t>(i)] = i - 1;
      next_[static_cast<size_t>(i)] = i + 1 < n_ ? i + 1 : -1;
    }
    for (int i = 1; i + 1 < n_; ++i) {
      Push(i);
    }
    kept_count_ = n_;
  }

  // Removes points while `may_remove(cost, kept_count)` allows. Fills `out`
  // with the surviving indices.
  template <typename Predicate>
  void Run(const Predicate& may_remove, IndexList& out) {
    while (!queue_.empty()) {
      const HeapEntry top = queue_.front();
      std::pop_heap(queue_.begin(), queue_.end(), CostGreater);
      queue_.pop_back();
      if (!alive_[static_cast<size_t>(top.index)] ||
          top.generation != generation_[static_cast<size_t>(top.index)]) {
        continue;  // Stale entry.
      }
      if (!may_remove(top.key, kept_count_)) {
        break;
      }
      Remove(top.index);
    }
    out.clear();
    out.reserve(static_cast<size_t>(kept_count_));
    for (int i = 0; i != -1 && i < n_; i = next_[static_cast<size_t>(i)]) {
      out.push_back(i);
      if (next_[static_cast<size_t>(i)] == -1) {
        break;
      }
    }
  }

 private:
  // Cost of removing the (alive, interior) point `b`: the worst distance of
  // any currently-dead-or-alive interior point of (prev(b), next(b)) from
  // the merged approximation.
  double RemovalCost(int b) const {
    const int a = prev_[static_cast<size_t>(b)];
    const int c = next_[static_cast<size_t>(b)];
    STCOMP_DCHECK(a >= 0 && c >= 0);
    double worst = 0.0;
    for (int i = a + 1; i < c; ++i) {
      double d = 0.0;
      if (metric_ == BottomUpMetric::kPerpendicular) {
        d = PointToSegmentDistance(
            trajectory_[static_cast<size_t>(i)].position,
            trajectory_[static_cast<size_t>(a)].position,
            trajectory_[static_cast<size_t>(c)].position);
      } else {
        d = SynchronizedDistance(trajectory_[static_cast<size_t>(a)],
                                 trajectory_[static_cast<size_t>(c)],
                                 trajectory_[static_cast<size_t>(i)]);
      }
      worst = std::max(worst, d);
    }
    return worst;
  }

  void Push(int index) {
    queue_.push_back(HeapEntry{RemovalCost(index), index,
                               generation_[static_cast<size_t>(index)]});
    std::push_heap(queue_.begin(), queue_.end(), CostGreater);
  }

  void Remove(int b) {
    const int a = prev_[static_cast<size_t>(b)];
    const int c = next_[static_cast<size_t>(b)];
    alive_[static_cast<size_t>(b)] = 0;
    next_[static_cast<size_t>(a)] = c;
    prev_[static_cast<size_t>(c)] = a;
    --kept_count_;
    // Refresh the neighbours' costs (their merge ranges grew).
    if (a > 0) {
      ++generation_[static_cast<size_t>(a)];
      Push(a);
    }
    if (c < n_ - 1) {
      ++generation_[static_cast<size_t>(c)];
      Push(c);
    }
  }

  const TrajectoryView trajectory_;
  const BottomUpMetric metric_;
  const int n_;
  std::vector<int>& prev_;
  std::vector<int>& next_;
  std::vector<int>& generation_;
  std::vector<char>& alive_;
  std::vector<HeapEntry>& queue_;
  int kept_count_ = 0;
};

}  // namespace

void BottomUp(TrajectoryView trajectory, double epsilon, BottomUpMetric metric,
              Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  BottomUpEngine engine(trajectory, metric, workspace);
  engine.Run([epsilon](double cost, int /*kept*/) { return cost <= epsilon; },
             out);
}

IndexList BottomUp(TrajectoryView trajectory, double epsilon,
                   BottomUpMetric metric) {
  Workspace workspace;
  IndexList kept;
  BottomUp(trajectory, epsilon, metric, workspace, kept);
  return kept;
}

void BottomUpMaxPoints(TrajectoryView trajectory, int max_points,
                       BottomUpMetric metric, Workspace& workspace,
                       IndexList& out) {
  STCOMP_CHECK(max_points >= 2);
  if (static_cast<int>(trajectory.size()) <= max_points) {
    KeepAll(trajectory, out);
    return;
  }
  BottomUpEngine engine(trajectory, metric, workspace);
  engine.Run(
      [max_points](double /*cost*/, int kept) { return kept > max_points; },
      out);
}

IndexList BottomUpMaxPoints(TrajectoryView trajectory, int max_points,
                            BottomUpMetric metric) {
  Workspace workspace;
  IndexList kept;
  BottomUpMaxPoints(trajectory, max_points, metric, workspace, kept);
  return kept;
}

}  // namespace stcomp::algo
