#include "stcomp/algo/bottom_up.h"

#include <limits>
#include <queue>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"

namespace stcomp::algo {

namespace {

// Shared greedy engine. Runs removals in increasing cost order and stops
// when `should_stop(next_cost, kept_count)` says so.
class BottomUpEngine {
 public:
  BottomUpEngine(const Trajectory& trajectory, BottomUpMetric metric)
      : trajectory_(trajectory),
        metric_(metric),
        n_(static_cast<int>(trajectory.size())),
        prev_(static_cast<size_t>(n_)),
        next_(static_cast<size_t>(n_)),
        generation_(static_cast<size_t>(n_), 0),
        alive_(static_cast<size_t>(n_), true) {
    for (int i = 0; i < n_; ++i) {
      prev_[static_cast<size_t>(i)] = i - 1;
      next_[static_cast<size_t>(i)] = i + 1 < n_ ? i + 1 : -1;
    }
    for (int i = 1; i + 1 < n_; ++i) {
      Push(i);
    }
    kept_count_ = n_;
  }

  // Removes points while `may_remove(cost, kept_count)` allows. Returns the
  // surviving indices.
  template <typename Predicate>
  IndexList Run(const Predicate& may_remove) {
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      queue_.pop();
      if (!alive_[static_cast<size_t>(top.index)] ||
          top.generation != generation_[static_cast<size_t>(top.index)]) {
        continue;  // Stale entry.
      }
      if (!may_remove(top.cost, kept_count_)) {
        break;
      }
      Remove(top.index);
    }
    IndexList kept;
    kept.reserve(static_cast<size_t>(kept_count_));
    for (int i = 0; i != -1 && i < n_; i = next_[static_cast<size_t>(i)]) {
      kept.push_back(i);
      if (next_[static_cast<size_t>(i)] == -1) {
        break;
      }
    }
    return kept;
  }

 private:
  struct Entry {
    double cost;
    int index;
    int generation;
    bool operator>(const Entry& other) const {
      if (cost != other.cost) {
        return cost > other.cost;
      }
      return index > other.index;  // Deterministic tie-break: lowest index.
    }
  };

  // Cost of removing the (alive, interior) point `b`: the worst distance of
  // any currently-dead-or-alive interior point of (prev(b), next(b)) from
  // the merged approximation.
  double RemovalCost(int b) const {
    const int a = prev_[static_cast<size_t>(b)];
    const int c = next_[static_cast<size_t>(b)];
    STCOMP_DCHECK(a >= 0 && c >= 0);
    double worst = 0.0;
    for (int i = a + 1; i < c; ++i) {
      double d = 0.0;
      if (metric_ == BottomUpMetric::kPerpendicular) {
        d = PointToSegmentDistance(
            trajectory_[static_cast<size_t>(i)].position,
            trajectory_[static_cast<size_t>(a)].position,
            trajectory_[static_cast<size_t>(c)].position);
      } else {
        d = SynchronizedDistance(trajectory_[static_cast<size_t>(a)],
                                 trajectory_[static_cast<size_t>(c)],
                                 trajectory_[static_cast<size_t>(i)]);
      }
      worst = std::max(worst, d);
    }
    return worst;
  }

  void Push(int index) {
    queue_.push(Entry{RemovalCost(index), index,
                      generation_[static_cast<size_t>(index)]});
  }

  void Remove(int b) {
    const int a = prev_[static_cast<size_t>(b)];
    const int c = next_[static_cast<size_t>(b)];
    alive_[static_cast<size_t>(b)] = false;
    next_[static_cast<size_t>(a)] = c;
    prev_[static_cast<size_t>(c)] = a;
    --kept_count_;
    // Refresh the neighbours' costs (their merge ranges grew).
    if (a > 0) {
      ++generation_[static_cast<size_t>(a)];
      Push(a);
    }
    if (c < n_ - 1) {
      ++generation_[static_cast<size_t>(c)];
      Push(c);
    }
  }

  const Trajectory& trajectory_;
  const BottomUpMetric metric_;
  const int n_;
  std::vector<int> prev_;
  std::vector<int> next_;
  std::vector<int> generation_;
  std::vector<bool> alive_;
  int kept_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
};

}  // namespace

IndexList BottomUp(const Trajectory& trajectory, double epsilon,
                   BottomUpMetric metric) {
  STCOMP_CHECK(epsilon >= 0.0);
  if (trajectory.size() <= 2) {
    return KeepAll(trajectory);
  }
  BottomUpEngine engine(trajectory, metric);
  return engine.Run(
      [epsilon](double cost, int /*kept*/) { return cost <= epsilon; });
}

IndexList BottomUpMaxPoints(const Trajectory& trajectory, int max_points,
                            BottomUpMetric metric) {
  STCOMP_CHECK(max_points >= 2);
  if (static_cast<int>(trajectory.size()) <= max_points) {
    return KeepAll(trajectory);
  }
  BottomUpEngine engine(trajectory, metric);
  return engine.Run([max_points](double /*cost*/, int kept) {
    return kept > max_points;
  });
}

}  // namespace stcomp::algo
