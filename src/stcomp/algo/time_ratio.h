// The paper's time-ratio algorithm class (Sec. 3.2): the top-down and
// opening-window skeletons driven by the synchronized (time-ratio) distance
// instead of the perpendicular distance.

#ifndef STCOMP_ALGO_TIME_RATIO_H_
#define STCOMP_ALGO_TIME_RATIO_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// TD-TR: Douglas-Peucker skeleton, synchronized-distance split criterion.
// Batch algorithm. Precondition (checked): epsilon_m >= 0.
void TdTr(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
          IndexList& out);
IndexList TdTr(TrajectoryView trajectory, double epsilon_m);

// Synchronized split distance for reuse in registries/tests.
double SynchronizedSplitDistance(TrajectoryView trajectory, int first,
                                 int last, int i);

// TD-TR under a point budget instead of a distance threshold (best-first
// splitting on the largest synchronized deviation). Precondition
// (checked): max_points >= 2.
void TdTrMaxPoints(TrajectoryView trajectory, int max_points,
                   Workspace& workspace, IndexList& out);
IndexList TdTrMaxPoints(TrajectoryView trajectory, int max_points);

// OPW-TR: opening window, synchronized-distance criterion, normal (break at
// the violating point) policy, matching the SPT pseudocode's recursion at
// the violating index. Online-capable (see stream/). Precondition
// (checked): epsilon_m >= 0.
void OpwTr(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
           IndexList& out);
void OpwTr(TrajectoryView trajectory, double epsilon_m, IndexList& out);
IndexList OpwTr(TrajectoryView trajectory, double epsilon_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_TIME_RATIO_H_
