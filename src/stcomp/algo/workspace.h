// Caller-owned scratch memory for the view-based algorithm entry points
// (DESIGN.md §11). A Workspace holds every growable buffer the algorithms
// need — keep flags, range stacks, merge lists, binary heaps, convex-hull
// deques — so a reused workspace makes repeated runs allocation-free once
// the buffers have grown to the largest input seen.
//
// Contract:
//  - A Workspace may serve at most one Run at a time (not thread-safe;
//    use one Workspace per thread).
//  - Algorithms reset the buffers they use on entry; callers never need
//    to clear a workspace, and a dirty workspace produces byte-identical
//    output to a fresh one (enforced by the property harness).
//  - Buffers only grow; reuse across trajectories of mixed sizes is fine.

#ifndef STCOMP_ALGO_WORKSPACE_H_
#define STCOMP_ALGO_WORKSPACE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "stcomp/core/trajectory_view_soa.h"

namespace stcomp::algo {

namespace detail {

// (key, index, generation) node for the lazy-invalidation min-heaps of the
// bottom-up and Visvalingam engines.
struct HeapEntry {
  double key = 0.0;
  int index = 0;
  int generation = 0;
};

// Best-first range node for the max-points top-down drivers.
struct RangeEntry {
  double key = 0.0;
  int first = 0;
  int last = 0;
  int split = 0;
};

// Undo record for the path-hull Melkman hulls (O(1) pop restoring the
// deque slots a push overwrote). kNoSlot marks "no slot written".
struct HullUndo {
  static constexpr int kNoSlot = -2;

  int point = 0;
  size_t bot = 0;  // Deque indices before this addition.
  size_t top = 0;
  // Slot each push overwrote and its prior content (kNoSlot: no push).
  size_t bot_written_slot = 0;
  size_t top_written_slot = 0;
  int old_bot_slot = kNoSlot;
  int old_top_slot = kNoSlot;
};

}  // namespace detail

struct Workspace {
  // Per-point keep flags (char, not vector<bool>: addressable + memset-able).
  std::vector<char> keep;

  // DFS / best-first range stack for the top-down family and path-hull.
  std::vector<std::pair<int, int>> ranges;

  // Doubly-linked survivor list + lazy-heap bookkeeping for the bottom-up
  // and Visvalingam engines.
  std::vector<int> prev;
  std::vector<int> next;
  std::vector<int> generation;
  std::vector<char> alive;

  // Binary-heap storage (std::push_heap/pop_heap; replicates
  // std::priority_queue pop order exactly).
  std::vector<detail::HeapEntry> heap;
  std::vector<detail::RangeEntry> range_heap;

  // Path-hull scratch: one deque + undo history per hull side.
  std::vector<int> hull_deque[2];
  std::vector<detail::HullUndo> hull_history[2];

  // General-purpose index scratch (e.g. SQUISH finalisation).
  std::vector<int> scratch_indices;

  // SoA repack destination for the batched distance kernels (DESIGN.md
  // §14) plus the SP family's precomputed per-segment speeds and
  // per-point speed jumps.
  SoAScratch soa;
  std::vector<double> speeds;
  std::vector<double> jumps;
};

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_WORKSPACE_H_
