// Hershberger & Snoeyink's path-hull speedup of Douglas-Peucker (paper
// Sec. 2.1, [17], "Speeding up the Douglas-Peucker line-simplification
// algorithm", Proc. 5th SDH, 1992).
//
// Idea: the farthest point of a range from its anchor-float line is an
// extreme point, i.e. a convex-hull vertex, of the range. The range's hull
// is maintained as a *path hull* — two Melkman half-hulls grown outward
// from a middle tag point, with O(1)-undoable additions — so that when DP
// splits a range, the half containing the split reuses the existing hulls
// (undoing additions past the split point) and only the other, smaller,
// half is rebuilt. The build work then satisfies the "rebuild the smaller
// half" recurrence, giving O(n log n) total hull maintenance.
//
// Caveat inherited from Melkman's algorithm: the incremental hull is only
// guaranteed correct for *simple* (non-self-intersecting) chains.
// Consecutive duplicate positions (an object standing still) are handled;
// a trace that crosses or retraces itself may split at a different point
// than the naive scan and can, in principle, miss a violating point. Use
// DouglasPeucker() when the input may self-intersect; the ablation bench
// (bench_ablation_pathhull) demonstrates both the identical output on
// simple chains and the speedup.

#ifndef STCOMP_ALGO_PATH_HULL_H_
#define STCOMP_ALGO_PATH_HULL_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// Drop-in replacement for DouglasPeucker(trajectory, epsilon_m); output is
// identical for simple chains in generic position.
// Precondition (checked): epsilon_m >= 0.
void DouglasPeuckerHull(TrajectoryView trajectory, double epsilon_m,
                        Workspace& workspace, IndexList& out);
IndexList DouglasPeuckerHull(TrajectoryView trajectory, double epsilon_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_PATH_HULL_H_
