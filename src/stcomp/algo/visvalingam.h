// Visvalingam-Whyatt simplification: repeatedly remove the point whose
// triangle with its neighbours has the least "effective area". A classic
// line-generalization baseline complementing the distance-based ones in
// the paper's Sec. 2 taxonomy (bottom-up category), plus a spatiotemporal
// variant whose area is measured in (time-scaled) space so that dwelling
// points survive.

#ifndef STCOMP_ALGO_VISVALINGAM_H_
#define STCOMP_ALGO_VISVALINGAM_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// Removes points while the smallest effective triangle area is below
// `min_area_m2`. Precondition (checked): min_area_m2 >= 0.
void Visvalingam(TrajectoryView trajectory, double min_area_m2,
                 Workspace& workspace, IndexList& out);
IndexList Visvalingam(TrajectoryView trajectory, double min_area_m2);

// Halts when `max_points` remain instead (endpoints always kept).
// Precondition (checked): max_points >= 2.
void VisvalingamMaxPoints(TrajectoryView trajectory, int max_points,
                          Workspace& workspace, IndexList& out);
IndexList VisvalingamMaxPoints(TrajectoryView trajectory, int max_points);

// Spatiotemporal variant: the triangle is taken in the 3-D space
// (x, y, w*t) with w = `time_weight_mps` converting seconds to metres (a
// characteristic speed). Its area is zero exactly when the three samples
// describe constant-velocity motion (zero synchronized deviation), so
// points that deviate only temporally — dwells — survive, unlike in the
// plain spatial variant. Preconditions (checked): both arguments >= 0.
void VisvalingamTr(TrajectoryView trajectory, double min_area_m2,
                   double time_weight_mps, Workspace& workspace,
                   IndexList& out);
IndexList VisvalingamTr(TrajectoryView trajectory, double min_area_m2,
                        double time_weight_mps);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_VISVALINGAM_H_
