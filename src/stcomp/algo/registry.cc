#include "stcomp/algo/registry.h"

#include "stcomp/algo/angular.h"
#include "stcomp/algo/bottom_up.h"
#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/opening_window.h"
#include "stcomp/algo/path_hull.h"
#include "stcomp/algo/perpendicular.h"
#include "stcomp/algo/radial_distance.h"
#include "stcomp/algo/sampling.h"
#include "stcomp/algo/reumann_witkam.h"
#include "stcomp/algo/sliding_window.h"
#include "stcomp/algo/spatiotemporal.h"
#include "stcomp/algo/squish.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/algo/visvalingam.h"
#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"

namespace stcomp::algo {

Status AlgorithmParams::Validate() const {
  // The negated comparisons also reject NaN.
  if (!(epsilon_m >= 0.0)) {
    return InvalidArgumentError(
        StrFormat("epsilon_m must be >= 0, got %f", epsilon_m));
  }
  if (!(speed_threshold_mps >= 0.0)) {
    return InvalidArgumentError(StrFormat(
        "speed_threshold_mps must be >= 0, got %f", speed_threshold_mps));
  }
  if (keep_every < 1) {
    return InvalidArgumentError(
        StrFormat("keep_every must be >= 1, got %d", keep_every));
  }
  if (!(interval_s > 0.0)) {
    return InvalidArgumentError(
        StrFormat("interval_s must be > 0, got %f", interval_s));
  }
  constexpr double kPi = 3.14159265358979323846;
  if (!(min_heading_change_rad >= 0.0 && min_heading_change_rad <= kPi)) {
    return InvalidArgumentError(
        StrFormat("min_heading_change_rad must be in [0, pi], got %f",
                  min_heading_change_rad));
  }
  if (max_window < 2) {
    return InvalidArgumentError(
        StrFormat("max_window must be >= 2, got %d", max_window));
  }
  return Status::Ok();
}

namespace {

// Wraps an algorithm so every invocation through the registry validates
// its parameters and records its run count, wall time, input size and
// compression ratio under {algorithm=<name>} labels — the experiment
// harness, examples and fleet ingestion all get per-algorithm
// observability for free. Metric pointers are resolved once at
// registration; a run adds one exact timer and a few relaxed atomics
// (measured by bench_obs_overhead), so the wrapper is safe under the
// parallel sweep. With STCOMP_DISABLE_METRICS only the validation stays.
AlgorithmViewFn Instrumented(const std::string& name, AlgorithmViewFn fn) {
#if STCOMP_METRICS_ENABLED
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"algorithm", name}};
  obs::Counter* const runs =
      registry.GetCounter("stcomp_algo_runs_total", labels);
  obs::Counter* const points_in =
      registry.GetCounter("stcomp_algo_points_in_total", labels);
  obs::Counter* const points_kept =
      registry.GetCounter("stcomp_algo_points_kept_total", labels);
  obs::Histogram* const run_seconds = registry.GetHistogram(
      "stcomp_algo_run_seconds", labels, obs::LatencyBucketsSeconds());
  obs::Histogram* const ratio = registry.GetHistogram(
      "stcomp_algo_compression_ratio", labels, obs::RatioBuckets());
  obs::Histogram* const input_points = registry.GetHistogram(
      "stcomp_algo_input_points", labels, obs::SizeBuckets());
  return [=, fn = std::move(fn)](TrajectoryView trajectory,
                                 const AlgorithmParams& params,
                                 Workspace& workspace, IndexList& out) {
    STCOMP_CHECK_OK(params.Validate());
    {
      obs::ScopedTimer timer(run_seconds);
      fn(trajectory, params, workspace, out);
    }
    runs->Increment();
    points_in->Increment(trajectory.size());
    points_kept->Increment(out.size());
    input_points->Observe(static_cast<double>(trajectory.size()));
    if (!trajectory.empty()) {
      ratio->Observe(static_cast<double>(out.size()) /
                     static_cast<double>(trajectory.size()));
    }
  };
#else
  (void)name;
  return [fn = std::move(fn)](TrajectoryView trajectory,
                              const AlgorithmParams& params,
                              Workspace& workspace, IndexList& out) {
    STCOMP_CHECK_OK(params.Validate());
    fn(trajectory, params, workspace, out);
  };
#endif
}

// The legacy Trajectory-based entry point as a thin shim over the view
// path: one thread-local workspace serves every shim call on a thread, so
// repeated legacy calls stop allocating scratch once the buffers have
// grown. Only the returned IndexList is allocated per call.
AlgorithmFn MakeShim(AlgorithmViewFn view_fn) {
  return [view_fn = std::move(view_fn)](const Trajectory& trajectory,
                                        const AlgorithmParams& params) {
    thread_local Workspace workspace;
    IndexList kept;
    view_fn(trajectory, params, workspace, kept);
    return kept;
  };
}

std::vector<AlgorithmInfo> MakeRegistry() {
  std::vector<AlgorithmInfo> algorithms;
  const auto add = [&algorithms](std::string name, std::string description,
                                 bool online, bool spatiotemporal,
                                 AlgorithmViewFn run_view) {
    AlgorithmInfo info;
    info.name = std::move(name);
    info.description = std::move(description);
    info.online = online;
    info.spatiotemporal = spatiotemporal;
    info.run_view = std::move(run_view);
    algorithms.push_back(std::move(info));
  };
  add("uniform", "keep every i-th point [Tobler]", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) { UniformSampling(t, p.keep_every, out); });
  add("temporal", "keep one point per time bucket", true, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) { TemporalSampling(t, p.interval_s, out); });
  add("radial", "drop neighbours closer than epsilon", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { RadialDistance(t, p.epsilon_m, ws, out); });
  add("perpendicular", "Jenks three-point perpendicular test", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) { PerpendicularDistance(t, p.epsilon_m, out); });
  add("angular", "Jenks heading-change test", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) {
        AngularChange(t, p.min_heading_change_rad, out);
      });
  add("reumann-witkam", "strip-based single pass [Reumann-Witkam]", true,
      false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) { ReumannWitkam(t, p.epsilon_m, out); });
  add("visvalingam", "least-effective-area removal (batch)", false, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) {
        // Treat epsilon as a length scale: area threshold eps^2 / 2.
        Visvalingam(t, 0.5 * p.epsilon_m * p.epsilon_m, ws, out);
      });
  add("ndp", "Douglas-Peucker, perpendicular distance (batch)", false, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { DouglasPeucker(t, p.epsilon_m, ws, out); });
  add("ndp-hull", "Douglas-Peucker via convex-hull farthest queries", false,
      false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { DouglasPeuckerHull(t, p.epsilon_m, ws, out); });
  add("sliding", "capped opening window, perpendicular", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) {
        SlidingWindow(t, p.epsilon_m, p.max_window, out);
      });
  add("bottom-up", "greedy cheapest-removal (batch), perpendicular", false,
      false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) {
        BottomUp(t, p.epsilon_m, BottomUpMetric::kPerpendicular, ws, out);
      });
  add("nopw", "opening window, break at violating point", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { Nopw(t, p.epsilon_m, ws, out); });
  add("bopw", "opening window, break before the float", true, false,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { Bopw(t, p.epsilon_m, ws, out); });
  add("td-tr", "top-down time-ratio (paper Sec. 3.2, batch)", false, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { TdTr(t, p.epsilon_m, ws, out); });
  add("opw-tr", "opening-window time-ratio (paper Sec. 3.2)", true, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) { OpwTr(t, p.epsilon_m, ws, out); });
  add("opw-sp", "opening-window spatiotemporal, SED + speed (paper SPT)",
      true, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) {
        OpwSp(t, p.epsilon_m, p.speed_threshold_mps, ws, out);
      });
  add("td-sp", "top-down spatiotemporal, SED + speed (batch)", false, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) {
        TdSp(t, p.epsilon_m, p.speed_threshold_mps, ws, out);
      });
  add("bottom-up-tr", "greedy cheapest-removal, synchronized distance",
      false, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) {
        BottomUp(t, p.epsilon_m, BottomUpMetric::kSynchronized, ws, out);
      });
  add("visvalingam-tr", "least 3-D (x, y, v*t) area removal", false, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace& ws,
         IndexList& out) {
        VisvalingamTr(t, 0.5 * p.epsilon_m * p.epsilon_m,
                      /*time_weight_mps=*/10.0, ws, out);
      });
  add("squish-e", "SQUISH-E: priority-queue SED, error-bounded [Muckell]",
      true, true,
      [](TrajectoryView t, const AlgorithmParams& p, Workspace&,
         IndexList& out) { SquishE(t, p.epsilon_m, out); });
  for (AlgorithmInfo& info : algorithms) {
    info.run_view = Instrumented(info.name, std::move(info.run_view));
    info.run = MakeShim(info.run_view);
  }
  return algorithms;
}

}  // namespace

const std::vector<AlgorithmInfo>& AllAlgorithms() {
  // Function-local static: initialised on first use, never destroyed order
  // problems (registry lives for the program's lifetime).
  static const std::vector<AlgorithmInfo>* const kRegistry =
      new std::vector<AlgorithmInfo>(MakeRegistry());
  return *kRegistry;
}

Result<const AlgorithmInfo*> FindAlgorithm(std::string_view name) {
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    if (info.name == name) {
      return &info;
    }
  }
  std::string known;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    if (!known.empty()) {
      known += ", ";
    }
    known += info.name;
  }
  return NotFoundError("unknown algorithm '" + std::string(name) +
                       "'; known: " + known);
}

}  // namespace stcomp::algo
