#include "stcomp/algo/registry.h"

#include "stcomp/algo/angular.h"
#include "stcomp/algo/bottom_up.h"
#include "stcomp/algo/douglas_peucker.h"
#include "stcomp/algo/opening_window.h"
#include "stcomp/algo/path_hull.h"
#include "stcomp/algo/perpendicular.h"
#include "stcomp/algo/radial_distance.h"
#include "stcomp/algo/sampling.h"
#include "stcomp/algo/reumann_witkam.h"
#include "stcomp/algo/sliding_window.h"
#include "stcomp/algo/spatiotemporal.h"
#include "stcomp/algo/squish.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/algo/visvalingam.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"

namespace stcomp::algo {

namespace {

// Wraps an algorithm so every invocation through the registry records its
// run count, wall time, input size and compression ratio under
// {algorithm=<name>} labels — the experiment harness, examples and fleet
// ingestion all get per-algorithm observability for free. Metric pointers
// are resolved once at registration; a run adds one exact timer and a few
// relaxed atomics (measured by bench_obs_overhead). With
// STCOMP_DISABLE_METRICS the wrapper vanishes entirely.
AlgorithmFn Instrumented(const std::string& name, AlgorithmFn fn) {
#if STCOMP_METRICS_ENABLED
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"algorithm", name}};
  obs::Counter* const runs =
      registry.GetCounter("stcomp_algo_runs_total", labels);
  obs::Counter* const points_in =
      registry.GetCounter("stcomp_algo_points_in_total", labels);
  obs::Counter* const points_kept =
      registry.GetCounter("stcomp_algo_points_kept_total", labels);
  obs::Histogram* const run_seconds = registry.GetHistogram(
      "stcomp_algo_run_seconds", labels, obs::LatencyBucketsSeconds());
  obs::Histogram* const ratio = registry.GetHistogram(
      "stcomp_algo_compression_ratio", labels, obs::RatioBuckets());
  obs::Histogram* const input_points = registry.GetHistogram(
      "stcomp_algo_input_points", labels, obs::SizeBuckets());
  return [=, fn = std::move(fn)](const Trajectory& trajectory,
                                 const AlgorithmParams& params) {
    IndexList kept;
    {
      obs::ScopedTimer timer(run_seconds);
      kept = fn(trajectory, params);
    }
    runs->Increment();
    points_in->Increment(trajectory.size());
    points_kept->Increment(kept.size());
    input_points->Observe(static_cast<double>(trajectory.size()));
    if (!trajectory.empty()) {
      ratio->Observe(static_cast<double>(kept.size()) /
                     static_cast<double>(trajectory.size()));
    }
    return kept;
  };
#else
  (void)name;
  return fn;
#endif
}

std::vector<AlgorithmInfo> MakeRegistry() {
  std::vector<AlgorithmInfo> algorithms;
  algorithms.push_back(
      {"uniform", "keep every i-th point [Tobler]", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return UniformSampling(t, p.keep_every);
       }});
  algorithms.push_back(
      {"temporal", "keep one point per time bucket", true, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return TemporalSampling(t, p.interval_s);
       }});
  algorithms.push_back(
      {"radial", "drop neighbours closer than epsilon", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return RadialDistance(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"perpendicular", "Jenks three-point perpendicular test", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return PerpendicularDistance(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"angular", "Jenks heading-change test", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return AngularChange(t, p.min_heading_change_rad);
       }});
  algorithms.push_back(
      {"reumann-witkam", "strip-based single pass [Reumann-Witkam]", true,
       false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return ReumannWitkam(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"visvalingam", "least-effective-area removal (batch)", false, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         // Treat epsilon as a length scale: area threshold eps^2 / 2.
         return Visvalingam(t, 0.5 * p.epsilon_m * p.epsilon_m);
       }});
  algorithms.push_back(
      {"ndp", "Douglas-Peucker, perpendicular distance (batch)", false, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return DouglasPeucker(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"ndp-hull", "Douglas-Peucker via convex-hull farthest queries", false,
       false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return DouglasPeuckerHull(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"sliding", "capped opening window, perpendicular", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return SlidingWindow(t, p.epsilon_m, p.max_window);
       }});
  algorithms.push_back(
      {"bottom-up", "greedy cheapest-removal (batch), perpendicular", false,
       false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return BottomUp(t, p.epsilon_m, BottomUpMetric::kPerpendicular);
       }});
  algorithms.push_back(
      {"nopw", "opening window, break at violating point", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return Nopw(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"bopw", "opening window, break before the float", true, false,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return Bopw(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"td-tr", "top-down time-ratio (paper Sec. 3.2, batch)", false, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return TdTr(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"opw-tr", "opening-window time-ratio (paper Sec. 3.2)", true, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return OpwTr(t, p.epsilon_m);
       }});
  algorithms.push_back(
      {"opw-sp", "opening-window spatiotemporal, SED + speed (paper SPT)",
       true, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return OpwSp(t, p.epsilon_m, p.speed_threshold_mps);
       }});
  algorithms.push_back(
      {"td-sp", "top-down spatiotemporal, SED + speed (batch)", false, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return TdSp(t, p.epsilon_m, p.speed_threshold_mps);
       }});
  algorithms.push_back(
      {"bottom-up-tr", "greedy cheapest-removal, synchronized distance",
       false, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return BottomUp(t, p.epsilon_m, BottomUpMetric::kSynchronized);
       }});
  algorithms.push_back(
      {"visvalingam-tr", "least 3-D (x, y, v*t) area removal", false, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return VisvalingamTr(t, 0.5 * p.epsilon_m * p.epsilon_m,
                              /*time_weight_mps=*/10.0);
       }});
  algorithms.push_back(
      {"squish-e", "SQUISH-E: priority-queue SED, error-bounded [Muckell]",
       true, true,
       [](const Trajectory& t, const AlgorithmParams& p) {
         return SquishE(t, p.epsilon_m);
       }});
  for (AlgorithmInfo& info : algorithms) {
    info.run = Instrumented(info.name, std::move(info.run));
  }
  return algorithms;
}

}  // namespace

const std::vector<AlgorithmInfo>& AllAlgorithms() {
  // Function-local static: initialised on first use, never destroyed order
  // problems (registry lives for the program's lifetime).
  static const std::vector<AlgorithmInfo>* const kRegistry =
      new std::vector<AlgorithmInfo>(MakeRegistry());
  return *kRegistry;
}

Result<const AlgorithmInfo*> FindAlgorithm(std::string_view name) {
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    if (info.name == name) {
      return &info;
    }
  }
  std::string known;
  for (const AlgorithmInfo& info : AllAlgorithms()) {
    if (!known.empty()) {
      known += ", ";
    }
    known += info.name;
  }
  return NotFoundError("unknown algorithm '" + std::string(name) +
                       "'; known: " + known);
}

}  // namespace stcomp::algo
