// Jenks' angular-change test (paper Sec. 2, [Jenks 1985]): "utilized the
// angular change between each three consecutive data points" to avoid
// over-representing straight lines.

#ifndef STCOMP_ALGO_ANGULAR_H_
#define STCOMP_ALGO_ANGULAR_H_

#include "stcomp/algo/compression.h"

namespace stcomp::algo {

// Drops the middle point of a triple when the absolute heading change at it
// (0 = straight continuation, pi = reversal) is below
// `min_heading_change_rad`. The triple is (last kept, candidate, next
// original point). Precondition (checked): threshold in [0, pi].
void AngularChange(TrajectoryView trajectory, double min_heading_change_rad,
                   IndexList& out);
IndexList AngularChange(TrajectoryView trajectory,
                        double min_heading_change_rad);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_ANGULAR_H_
