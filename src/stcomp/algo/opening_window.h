// Opening-window algorithms (paper Sec. 2.2): anchor a segment start,
// grow the float until a threshold violation, cut, repeat. Parameterised
// over the per-point distance measure (perpendicular for the classic
// NOPW/BOPW, synchronized time-ratio distance for OPW-TR) and over the
// break policy.

#ifndef STCOMP_ALGO_OPENING_WINDOW_H_
#define STCOMP_ALGO_OPENING_WINDOW_H_

#include <functional>

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// Where to cut when the window [anchor, float] first violates the
// threshold at interior point v (paper Figs. 2 and 3):
enum class BreakPolicy {
  // Cut at v, the point causing the violation ("Normal Opening Window").
  kNormal,
  // Cut at float-1, the last float for which the window was still valid
  // ("Before Opening Window"). See DESIGN.md on the paper's Fig. 3 reading.
  kBefore,
};

// Distance of interior point `i` from the candidate window segment
// (anchor, float_index).
using WindowDistanceFn =
    std::function<double(TrajectoryView, int anchor, int float_index, int i)>;

// Perpendicular distance from point `i` to the line through the window
// endpoints — the classic opening-window criterion.
double PerpendicularWindowDistance(TrajectoryView trajectory, int anchor,
                                   int float_index, int i);

// Synchronized (time-ratio) distance of point `i` from the window segment
// (paper Eqs. 1-2) — the OPW-TR criterion.
double SynchronizedWindowDistance(TrajectoryView trajectory, int anchor,
                                  int float_index, int i);

// The two batch criteria as an enum: these take the kernel-dispatched
// whole-window path (geom/kernels.h) — one batched first-violation scan
// per float advance over the workspace's SoA repack — and produce
// bit-identical output to the per-point WindowDistanceFn forms below.
enum class WindowCriterion {
  kPerpendicular,  // NOPW / BOPW
  kSynchronized,   // OPW-TR
};

// Generic opening window. A window is violated when any interior distance
// exceeds `epsilon` (strictly). The final point is always kept (the
// countermeasure for the "may lose the last few data points" issue the
// paper notes). Precondition (checked): epsilon >= 0.
void OpeningWindow(TrajectoryView trajectory, double epsilon,
                   BreakPolicy policy, const WindowDistanceFn& distance,
                   IndexList& out);
IndexList OpeningWindow(TrajectoryView trajectory, double epsilon,
                        BreakPolicy policy, const WindowDistanceFn& distance);

// Kernel-dispatched fast path for the built-in criteria. Allocation-free
// on a warmed workspace.
void OpeningWindow(TrajectoryView trajectory, double epsilon,
                   BreakPolicy policy, WindowCriterion criterion,
                   Workspace& workspace, IndexList& out);

// Classic spatial variants (perpendicular distance). The Workspace
// overloads are the hot path; the others allocate a throwaway workspace.
void Nopw(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
          IndexList& out);
void Nopw(TrajectoryView trajectory, double epsilon_m, IndexList& out);
IndexList Nopw(TrajectoryView trajectory, double epsilon_m);
void Bopw(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
          IndexList& out);
void Bopw(TrajectoryView trajectory, double epsilon_m, IndexList& out);
IndexList Bopw(TrajectoryView trajectory, double epsilon_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_OPENING_WINDOW_H_
