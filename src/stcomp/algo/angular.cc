#include "stcomp/algo/angular.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

void AngularChange(TrajectoryView trajectory, double min_heading_change_rad,
                   IndexList& out) {
  STCOMP_CHECK(min_heading_change_rad >= 0.0 &&
               min_heading_change_rad <= 3.14159265358979323846);
  const int n = static_cast<int>(trajectory.size());
  out.clear();
  if (n == 0) {
    return;
  }
  out.push_back(0);
  for (int i = 1; i < n - 1; ++i) {
    const Vec2 anchor = trajectory[static_cast<size_t>(out.back())].position;
    const Vec2 candidate = trajectory[static_cast<size_t>(i)].position;
    const Vec2 next = trajectory[static_cast<size_t>(i) + 1].position;
    if (HeadingChange(anchor, candidate, next) >= min_heading_change_rad) {
      out.push_back(i);
    }
  }
  if (n > 1) {
    out.push_back(n - 1);
  }
}

IndexList AngularChange(TrajectoryView trajectory,
                        double min_heading_change_rad) {
  IndexList kept;
  AngularChange(trajectory, min_heading_change_rad, kept);
  return kept;
}

}  // namespace stcomp::algo
