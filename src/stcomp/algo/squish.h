// SQUISH and SQUISH-E (Muckell et al., "Compression of trajectory data: a
// comprehensive evaluation and new approach", GeoInformatica 2014): online
// compression built directly on the paper's synchronized Euclidean
// distance. A priority queue holds the buffered points; a point's priority
// estimates the maximum SED error its removal would introduce, and
// removals propagate their priority to the neighbours so errors cannot
// silently accumulate.
//
// Two halting modes:
//   Squish      — bounded buffer (compression-ratio driven, O(beta) memory)
//   SquishE     — bounded error estimate (remove while min priority <= mu)
//
// Included as the canonical follow-on to the paper's OPW-TR: same error
// notion, better compression/error trade-off at bounded memory.

#ifndef STCOMP_ALGO_SQUISH_H_
#define STCOMP_ALGO_SQUISH_H_

#include <optional>
#include <set>
#include <vector>

#include "stcomp/algo/compression.h"
#include "stcomp/common/status.h"

namespace stcomp::algo {

// Plain-struct snapshot of a SquishBuffer (stream checkpointing, DESIGN.md
// §13). The byte encoding lives in the stream layer; algo/ only exports
// and re-imports the in-memory structure. The priority queue is derived
// state and is rebuilt on import.
struct SquishBufferState {
  struct Node {
    TimedPoint point;
    int original_index = 0;
    double priority = 0.0;
    double carry = 0.0;
    int prev = -1;
    int next = -1;
    bool alive = false;
  };
  size_t capacity = 0;  // Config echo; ImportState validates both.
  double mu = 0.0;
  std::vector<Node> nodes;
  std::vector<int> free_ids;
  int head = -1;
  int tail = -1;
};

// The incremental engine, also used by stream/squish_stream.h. Feed points
// in time order with their original indices; Finalize() returns the kept
// indices in order.
class SquishBuffer {
 public:
  // capacity == 0 means unbounded (error-driven mode only).
  // mu is the error-estimate bound; removals stop when the cheapest
  // removal's priority exceeds mu. capacity and mu may be combined.
  SquishBuffer(size_t capacity, double mu);

  void Push(int original_index, const TimedPoint& point);

  // Number of currently buffered points.
  size_t size() const { return nodes_alive_; }

  // Kept original indices (ascending). The buffer remains usable.
  IndexList Finalize() const;
  void Finalize(IndexList& out) const;

  // Kept points with their original indices (for streaming adapters).
  std::vector<std::pair<int, TimedPoint>> FinalizePoints() const;

  // Applies `visit(original_index, point)` to every kept point in time
  // order, without materialising a result vector. The buffer remains
  // usable.
  template <typename Visitor>
  void ForEachKept(const Visitor& visit) const {
    for (int id = head_; id >= 0; id = nodes_[static_cast<size_t>(id)].next) {
      const Node& node = nodes_[static_cast<size_t>(id)];
      visit(node.original_index, node.point);
    }
  }

  // Checkpointing: a full snapshot of the working set, and its inverse.
  // ImportState replaces the buffer contents; it fails with
  // kInvalidArgument on a capacity/mu config mismatch and kDataLoss on
  // malformed links (out-of-range ids), leaving the buffer unspecified
  // only on the latter.
  SquishBufferState ExportState() const;
  Status ImportState(const SquishBufferState& state);

 private:
  struct Node {
    TimedPoint point;
    int original_index;
    double priority;  // Removal-error estimate (infinity for endpoints).
    double carry;     // Max priority inherited from removed neighbours.
    int prev;
    int next;
    bool alive;
  };

  double SedPriority(const Node& node) const;
  void Reprioritise(int node_id);
  void RemoveCheapest();
  bool ShouldRemove() const;

  const size_t capacity_;
  const double mu_;
  std::vector<Node> nodes_;
  std::vector<int> free_ids_;  // Recycled slots: memory stays O(capacity).
  size_t nodes_alive_ = 0;
  // Orders (priority, node id); rebuilt entries replace stale ones.
  std::set<std::pair<double, int>> queue_;
  int head_ = -1;
  int tail_ = -1;
};

// Buffer-bound SQUISH: keeps at most `buffer_capacity` points (>= 2,
// checked). The endpoints always survive.
void Squish(TrajectoryView trajectory, size_t buffer_capacity,
            IndexList& out);
IndexList Squish(TrajectoryView trajectory, size_t buffer_capacity);

// Error-bound SQUISH-E(mu): removes points while the cheapest removal's
// SED-error estimate stays <= mu_m. Precondition (checked): mu_m >= 0.
void SquishE(TrajectoryView trajectory, double mu_m, IndexList& out);
IndexList SquishE(TrajectoryView trajectory, double mu_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_SQUISH_H_
