#include "stcomp/algo/sliding_window.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

void SlidingWindowImpl(TrajectoryView trajectory, double epsilon,
                       int max_window, const WindowDistanceFn& distance,
                       IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  STCOMP_CHECK(max_window >= 2);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  out.clear();
  out.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    int violation = -1;
    for (int i = anchor + 1; i < float_index; ++i) {
      if (distance(trajectory, anchor, float_index, i) > epsilon) {
        violation = i;
        break;
      }
    }
    if (violation >= 0) {
      out.push_back(violation);
      anchor = violation;
      float_index = anchor + 2;
      continue;
    }
    if (float_index - anchor >= max_window) {
      // Window cap reached without violation: commit the segment.
      out.push_back(float_index);
      anchor = float_index;
      float_index = anchor + 2;
      continue;
    }
    ++float_index;
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

}  // namespace

void SlidingWindow(TrajectoryView trajectory, double epsilon_m,
                   int max_window, IndexList& out) {
  SlidingWindowImpl(trajectory, epsilon_m, max_window,
                    PerpendicularWindowDistance, out);
}

IndexList SlidingWindow(TrajectoryView trajectory, double epsilon_m,
                        int max_window) {
  IndexList kept;
  SlidingWindow(trajectory, epsilon_m, max_window, kept);
  return kept;
}

void SlidingWindowTr(TrajectoryView trajectory, double epsilon_m,
                     int max_window, IndexList& out) {
  SlidingWindowImpl(trajectory, epsilon_m, max_window,
                    SynchronizedWindowDistance, out);
}

IndexList SlidingWindowTr(TrajectoryView trajectory, double epsilon_m,
                          int max_window) {
  IndexList kept;
  SlidingWindowTr(trajectory, epsilon_m, max_window, kept);
  return kept;
}

}  // namespace stcomp::algo
