#include "stcomp/algo/sliding_window.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

IndexList SlidingWindowImpl(const Trajectory& trajectory, double epsilon,
                            int max_window, const WindowDistanceFn& distance) {
  STCOMP_CHECK(epsilon >= 0.0);
  STCOMP_CHECK(max_window >= 2);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    return KeepAll(trajectory);
  }
  IndexList kept;
  kept.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    int violation = -1;
    for (int i = anchor + 1; i < float_index; ++i) {
      if (distance(trajectory, anchor, float_index, i) > epsilon) {
        violation = i;
        break;
      }
    }
    if (violation >= 0) {
      kept.push_back(violation);
      anchor = violation;
      float_index = anchor + 2;
      continue;
    }
    if (float_index - anchor >= max_window) {
      // Window cap reached without violation: commit the segment.
      kept.push_back(float_index);
      anchor = float_index;
      float_index = anchor + 2;
      continue;
    }
    ++float_index;
  }
  if (kept.back() != n - 1) {
    kept.push_back(n - 1);
  }
  return kept;
}

}  // namespace

IndexList SlidingWindow(const Trajectory& trajectory, double epsilon_m,
                        int max_window) {
  return SlidingWindowImpl(trajectory, epsilon_m, max_window,
                           PerpendicularWindowDistance);
}

IndexList SlidingWindowTr(const Trajectory& trajectory, double epsilon_m,
                          int max_window) {
  return SlidingWindowImpl(trajectory, epsilon_m, max_window,
                           SynchronizedWindowDistance);
}

}  // namespace stcomp::algo
