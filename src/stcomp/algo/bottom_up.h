// Bottom-up compression (paper Sec. 2 taxonomy, [Keogh et al. 2001]):
// start from the finest representation and greedily remove the point whose
// removal hurts least, until the halting condition would be violated.
// A batch algorithm; on short series it typically beats the windowed
// heuristics on the error/compression trade-off.

#ifndef STCOMP_ALGO_BOTTOM_UP_H_
#define STCOMP_ALGO_BOTTOM_UP_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// The per-point cost measure used when evaluating a merge.
enum class BottomUpMetric {
  // Spatial distance from each interior point to the merged segment.
  kPerpendicular,
  // Synchronized (time-ratio) distance — the spatiotemporal variant.
  kSynchronized,
};

// Removes points while the cheapest removal keeps every affected interior
// point within `epsilon` of the merged segment.
// Precondition (checked): epsilon >= 0.
void BottomUp(TrajectoryView trajectory, double epsilon, BottomUpMetric metric,
              Workspace& workspace, IndexList& out);
IndexList BottomUp(TrajectoryView trajectory, double epsilon,
                   BottomUpMetric metric);

// Same greedy order, but halts when `max_points` kept points remain
// (endpoints always kept). Precondition (checked): max_points >= 2.
void BottomUpMaxPoints(TrajectoryView trajectory, int max_points,
                       BottomUpMetric metric, Workspace& workspace,
                       IndexList& out);
IndexList BottomUpMaxPoints(TrajectoryView trajectory, int max_points,
                            BottomUpMetric metric);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_BOTTOM_UP_H_
