#include "stcomp/algo/path_hull.h"

#include <cmath>
#include <utility>
#include <vector>

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

using Record = detail::HullUndo;

// A Melkman convex hull of a chain of trajectory points, grown one point
// at a time, with O(1) undo per addition. The deque holds point *indices*;
// slot contents are never mutated by pops, and each push overwrites exactly
// one slot per end, so saving (bot, top, two overwritten slots) per
// addition restores any earlier state exactly. Deque and history storage
// are borrowed from the caller's Workspace.
class MelkmanHull {
 public:
  // `points` must outlive the hull; capacity is for the longest chain.
  MelkmanHull(TrajectoryView points, std::vector<int>& deque,
              std::vector<Record>& history, size_t capacity)
      : points_(points), deque_(deque), history_(history) {
    deque_.assign(2 * capacity + 8, -1);
  }

  // Resets to the single-point hull {seed_index}.
  void Init(int seed_index) {
    bot_ = top_ = deque_.size() / 2;
    deque_[bot_] = seed_index;
    history_.clear();
  }

  // Adds chain point `index` (chains are fed outward from the tag, one
  // index step at a time).
  void Add(int index) {
    Record record;
    record.point = index;
    record.bot = bot_;
    record.top = top_;
    const Vec2 p = Position(index);
    if (top_ == bot_) {
      // One-point hull.
      if (p == Position(deque_[bot_])) {
        // Exact duplicate: keep the lowest index so tie-breaking matches
        // the naive first-max scan.
        if (index < deque_[bot_]) {
          record.bot_written_slot = bot_;
          record.old_bot_slot = deque_[bot_];
          deque_[bot_] = index;
        }
        history_.push_back(record);
        return;
      }
      record.bot_written_slot = bot_ - 1;
      record.top_written_slot = top_ + 1;
      record.old_bot_slot = deque_[bot_ - 1];
      record.old_top_slot = deque_[top_ + 1];
      deque_[bot_ - 1] = index;
      deque_[top_ + 1] = index;
      --bot_;
      ++top_;
      history_.push_back(record);
      return;
    }
    if (p == Position(deque_[top_])) {
      // Consecutive stationary fix: duplicate of the bridge vertex (which
      // occupies both deque ends). Keep the lowest index for tie-breaking.
      if (index < deque_[top_]) {
        record.bot_written_slot = bot_;
        record.old_bot_slot = deque_[bot_];
        record.top_written_slot = top_;
        record.old_top_slot = deque_[top_];
        deque_[bot_] = index;
        deque_[top_] = index;
      }
      history_.push_back(record);
      return;
    }
    // Melkman step. Inside check: p strictly left of both bridge edges.
    if (Cross(deque_[bot_], deque_[bot_ + 1], p) > 0.0 &&
        Cross(deque_[top_ - 1], deque_[top_], p) > 0.0) {
      history_.push_back(record);
      return;
    }
    while (top_ - bot_ >= 2 &&
           Cross(deque_[bot_], deque_[bot_ + 1], p) <= 0.0) {
      ++bot_;  // Pop bottom; slot content untouched.
    }
    record.bot_written_slot = bot_ - 1;
    record.old_bot_slot = deque_[bot_ - 1];
    deque_[--bot_] = index;
    while (top_ - bot_ >= 2 &&
           Cross(deque_[top_ - 1], deque_[top_], p) <= 0.0) {
      --top_;  // Pop top.
    }
    record.top_written_slot = top_ + 1;
    record.old_top_slot = deque_[top_ + 1];
    deque_[++top_] = index;
    history_.push_back(record);
  }

  // Undoes additions until the addition of `index` is the most recent
  // remaining one. With `index` == the Init seed, undoes everything.
  void SplitAt(int index) {
    while (!history_.empty() && history_.back().point != index) {
      const Record& record = history_.back();
      if (record.old_bot_slot != Record::kNoSlot) {
        deque_[record.bot_written_slot] = record.old_bot_slot;
      }
      if (record.old_top_slot != Record::kNoSlot) {
        deque_[record.top_written_slot] = record.old_top_slot;
      }
      bot_ = record.bot;
      top_ = record.top;
      history_.pop_back();
    }
  }

  // Applies `visit(point_index)` to every current hull vertex (the closing
  // duplicate is visited twice; harmless for max queries).
  template <typename Visitor>
  void VisitVertices(const Visitor& visit) const {
    for (size_t slot = bot_; slot <= top_; ++slot) {
      visit(deque_[slot]);
    }
  }

 private:
  Vec2 Position(int index) const {
    return points_[static_cast<size_t>(index)].position;
  }
  double Cross(int a, int b, Vec2 p) const {
    const Vec2 va = Position(a);
    return (Position(b) - va).Cross(p - va);
  }

  const TrajectoryView points_;
  std::vector<int>& deque_;
  size_t bot_ = 0;
  size_t top_ = 0;
  std::vector<Record>& history_;
};

// The DP driver holding the two half-hulls of the current range.
class PathHullDp {
 public:
  PathHullDp(TrajectoryView trajectory, double epsilon, Workspace& workspace)
      : points_(trajectory),
        epsilon_(epsilon),
        left_(points_, workspace.hull_deque[0], workspace.hull_history[0],
              trajectory.size()),
        right_(points_, workspace.hull_deque[1], workspace.hull_history[1],
               trajectory.size()),
        keep_(workspace.keep),
        stack_(workspace.ranges) {
    keep_.assign(trajectory.size(), 0);
  }

  void Run(IndexList& out) {
    const int n = static_cast<int>(points_.size());
    keep_[0] = 1;
    keep_[static_cast<size_t>(n) - 1] = 1;
    int kept_count = 2;
    // Ranges pending a fresh Build.
    stack_.clear();
    stack_.emplace_back(0, n - 1);
    while (!stack_.empty()) {
      auto [i, j] = stack_.back();
      stack_.pop_back();
      if (j - i < 2) {
        continue;
      }
      Build(i, j);
      // Tail-iterate along the half that reuses the current hulls; push
      // the freshly-built (smaller) half for later.
      while (j - i >= 2) {
        const auto [split, max_distance] = FindExtreme(i, j);
        if (max_distance <= epsilon_) {
          break;
        }
        keep_[static_cast<size_t>(split)] = 1;
        ++kept_count;
        if (split <= tag_) {
          // Reuse hulls for [split, j]: undo left additions past split.
          left_.SplitAt(split == tag_ ? tag_ : split);
          if (split == tag_) {
            left_.Init(tag_);
          }
          stack_.emplace_back(i, split);
          i = split;
        } else {
          right_.SplitAt(split);
          stack_.emplace_back(split, j);
          j = split;
        }
      }
    }
    out.clear();
    out.reserve(static_cast<size_t>(kept_count));
    for (int i = 0; i < n; ++i) {
      if (keep_[static_cast<size_t>(i)]) {
        out.push_back(i);
      }
    }
  }

 private:
  void Build(int i, int j) {
    tag_ = (i + j) / 2;
    left_.Init(tag_);
    for (int k = tag_ - 1; k >= i; --k) {
      left_.Add(k);
    }
    right_.Init(tag_);
    for (int k = tag_ + 1; k <= j; ++k) {
      right_.Add(k);
    }
  }

  // Farthest hull vertex of (i, j) from the line through i and j; ties go
  // to the lowest index, and the distance expression matches
  // PointToLineDistance bit-for-bit (see douglas_peucker.cc).
  std::pair<int, double> FindExtreme(int i, int j) const {
    const Vec2 a = points_[static_cast<size_t>(i)].position;
    const Vec2 b = points_[static_cast<size_t>(j)].position;
    int best_index = i + 1;
    double best_distance = -1.0;
    const auto consider = [&](int index) {
      if (index <= i || index >= j) {
        return;  // Only interior points compete, as in the naive scan.
      }
      const double d = PointToLineDistance(
          points_[static_cast<size_t>(index)].position, a, b);
      if (d > best_distance || (d == best_distance && index < best_index)) {
        best_distance = d;
        best_index = index;
      }
    };
    left_.VisitVertices(consider);
    right_.VisitVertices(consider);
    if (best_distance < 0.0) {
      // Every interior point was absorbed as a duplicate of the tag; the
      // naive scan would see distance 0 everywhere.
      best_distance = PointToLineDistance(
          points_[static_cast<size_t>(i) + 1].position, a, b);
    }
    return {best_index, best_distance};
  }

  const TrajectoryView points_;
  const double epsilon_;
  MelkmanHull left_;
  MelkmanHull right_;
  std::vector<char>& keep_;
  std::vector<std::pair<int, int>>& stack_;
  int tag_ = 0;
};

}  // namespace

void DouglasPeuckerHull(TrajectoryView trajectory, double epsilon_m,
                        Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(epsilon_m >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  PathHullDp dp(trajectory, epsilon_m, workspace);
  dp.Run(out);
}

IndexList DouglasPeuckerHull(TrajectoryView trajectory, double epsilon_m) {
  Workspace workspace;
  IndexList kept;
  DouglasPeuckerHull(trajectory, epsilon_m, workspace, kept);
  return kept;
}

}  // namespace stcomp::algo
