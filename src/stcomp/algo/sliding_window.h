// Sliding-window compression (paper Sec. 2 taxonomy): like the opening
// window, but the number of points under consideration is capped, bounding
// per-point work (and therefore latency in streaming settings) at the cost
// of compression on long smooth stretches.

#ifndef STCOMP_ALGO_SLIDING_WINDOW_H_
#define STCOMP_ALGO_SLIDING_WINDOW_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/opening_window.h"

namespace stcomp::algo {

// Opening window whose float may advance at most `max_window` points past
// the anchor; when the cap is hit without a violation, the algorithm cuts
// at the capped float and re-anchors. Perpendicular-distance criterion.
// Preconditions (checked): epsilon_m >= 0, max_window >= 2.
void SlidingWindow(TrajectoryView trajectory, double epsilon_m,
                   int max_window, IndexList& out);
IndexList SlidingWindow(TrajectoryView trajectory, double epsilon_m,
                        int max_window);

// Same, with the synchronized (time-ratio) distance criterion.
void SlidingWindowTr(TrajectoryView trajectory, double epsilon_m,
                     int max_window, IndexList& out);
IndexList SlidingWindowTr(TrajectoryView trajectory, double epsilon_m,
                          int max_window);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_SLIDING_WINDOW_H_
