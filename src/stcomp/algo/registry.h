// A uniform, name-addressable view over every compression algorithm, used
// by the experiment harness, examples and CLI tools.

#ifndef STCOMP_ALGO_REGISTRY_H_
#define STCOMP_ALGO_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"
#include "stcomp/common/result.h"

namespace stcomp::algo {

// Union of the tunables across all algorithms; each algorithm reads only
// the fields it documents.
struct AlgorithmParams {
  // Distance threshold (metres): every algorithm with a distance criterion.
  double epsilon_m = 50.0;
  // Speed-difference threshold (m/s): OPW-SP, TD-SP.
  double speed_threshold_mps = 15.0;
  // Keep every i-th point: uniform sampling.
  int keep_every = 2;
  // Time bucket (seconds): temporal sampling.
  double interval_s = 30.0;
  // Minimum heading change (radians): angular change.
  double min_heading_change_rad = 0.1;
  // Window cap (points): sliding window.
  int max_window = 32;

  // kInvalidArgument (naming the offending field) when any tunable is out
  // of its documented domain: epsilon_m < 0 or NaN, speed_threshold_mps < 0
  // or NaN, keep_every < 1, interval_s <= 0 or NaN, min_heading_change_rad
  // outside [0, pi], max_window < 2. Checked by the registry run wrappers
  // and the sweep/CLI entry points, so a bad parameter fails loudly at the
  // boundary instead of tripping a deep precondition (or silently
  // misbehaving).
  Status Validate() const;
};

// The legacy, allocating entry point: returns a fresh IndexList per call.
using AlgorithmFn =
    std::function<IndexList(const Trajectory&, const AlgorithmParams&)>;

// The zero-copy entry point (DESIGN.md §11): reads a non-owning view,
// scratches in the caller's workspace and fills a caller-owned output.
// Reusing (workspace, out) across calls makes the hot path allocation-free.
using AlgorithmViewFn = std::function<void(
    TrajectoryView, const AlgorithmParams&, Workspace&, IndexList&)>;

struct AlgorithmInfo {
  std::string name;         // Stable identifier, e.g. "td-tr".
  std::string description;  // One line for --help output.
  bool online;              // Usable on unbounded streams.
  bool spatiotemporal;      // Uses the temporal dimension in its criterion.
  AlgorithmFn run;          // Thin shim over run_view (thread-local scratch).
  AlgorithmViewFn run_view;
};

// All registered algorithms, in presentation order (spatial baselines
// first, then the paper's spatiotemporal contributions).
const std::vector<AlgorithmInfo>& AllAlgorithms();

// Lookup by name; kNotFound lists valid names in the message.
Result<const AlgorithmInfo*> FindAlgorithm(std::string_view name);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_REGISTRY_H_
