// A uniform, name-addressable view over every compression algorithm, used
// by the experiment harness, examples and CLI tools.

#ifndef STCOMP_ALGO_REGISTRY_H_
#define STCOMP_ALGO_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/algo/compression.h"
#include "stcomp/common/result.h"

namespace stcomp::algo {

// Union of the tunables across all algorithms; each algorithm reads only
// the fields it documents.
struct AlgorithmParams {
  // Distance threshold (metres): every algorithm with a distance criterion.
  double epsilon_m = 50.0;
  // Speed-difference threshold (m/s): OPW-SP, TD-SP.
  double speed_threshold_mps = 15.0;
  // Keep every i-th point: uniform sampling.
  int keep_every = 2;
  // Time bucket (seconds): temporal sampling.
  double interval_s = 30.0;
  // Minimum heading change (radians): angular change.
  double min_heading_change_rad = 0.1;
  // Window cap (points): sliding window.
  int max_window = 32;
};

using AlgorithmFn =
    std::function<IndexList(const Trajectory&, const AlgorithmParams&)>;

struct AlgorithmInfo {
  std::string name;         // Stable identifier, e.g. "td-tr".
  std::string description;  // One line for --help output.
  bool online;              // Usable on unbounded streams.
  bool spatiotemporal;      // Uses the temporal dimension in its criterion.
  AlgorithmFn run;
};

// All registered algorithms, in presentation order (spatial baselines
// first, then the paper's spatiotemporal contributions).
const std::vector<AlgorithmInfo>& AllAlgorithms();

// Lookup by name; kNotFound lists valid names in the message.
Result<const AlgorithmInfo*> FindAlgorithm(std::string_view name);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_REGISTRY_H_
