#include "stcomp/algo/sampling.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

IndexList UniformSampling(const Trajectory& trajectory, int keep_every) {
  STCOMP_CHECK(keep_every >= 1);
  const int n = static_cast<int>(trajectory.size());
  IndexList kept;
  for (int i = 0; i < n; i += keep_every) {
    kept.push_back(i);
  }
  if (!kept.empty() && kept.back() != n - 1) {
    kept.push_back(n - 1);
  }
  return kept;
}

IndexList TemporalSampling(const Trajectory& trajectory, double interval_s) {
  STCOMP_CHECK(interval_s > 0.0);
  const int n = static_cast<int>(trajectory.size());
  IndexList kept;
  if (n == 0) {
    return kept;
  }
  kept.push_back(0);
  double next_bucket = trajectory[0].t + interval_s;
  for (int i = 1; i < n - 1; ++i) {
    if (trajectory[static_cast<size_t>(i)].t >= next_bucket) {
      kept.push_back(i);
      // Advance to the bucket containing this sample, so long gaps do not
      // force a burst of kept points afterwards.
      while (next_bucket <= trajectory[static_cast<size_t>(i)].t) {
        next_bucket += interval_s;
      }
    }
  }
  if (n > 1) {
    kept.push_back(n - 1);
  }
  return kept;
}

}  // namespace stcomp::algo
