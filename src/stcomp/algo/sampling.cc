#include "stcomp/algo/sampling.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

void UniformSampling(TrajectoryView trajectory, int keep_every,
                     IndexList& out) {
  STCOMP_CHECK(keep_every >= 1);
  const int n = static_cast<int>(trajectory.size());
  out.clear();
  // Exact output size: ceil(n / keep_every), plus possibly the last point.
  out.reserve(static_cast<size_t>((n + keep_every - 1) / keep_every) + 1);
  for (int i = 0; i < n; i += keep_every) {
    out.push_back(i);
  }
  if (!out.empty() && out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

IndexList UniformSampling(TrajectoryView trajectory, int keep_every) {
  IndexList kept;
  UniformSampling(trajectory, keep_every, kept);
  return kept;
}

void TemporalSampling(TrajectoryView trajectory, double interval_s,
                      IndexList& out) {
  STCOMP_CHECK(interval_s > 0.0);
  const int n = static_cast<int>(trajectory.size());
  out.clear();
  if (n == 0) {
    return;
  }
  out.push_back(0);
  double next_bucket = trajectory[0].t + interval_s;
  for (int i = 1; i < n - 1; ++i) {
    if (trajectory[static_cast<size_t>(i)].t >= next_bucket) {
      out.push_back(i);
      // Advance to the bucket containing this sample, so long gaps do not
      // force a burst of kept points afterwards.
      while (next_bucket <= trajectory[static_cast<size_t>(i)].t) {
        next_bucket += interval_s;
      }
    }
  }
  if (n > 1) {
    out.push_back(n - 1);
  }
}

IndexList TemporalSampling(TrajectoryView trajectory, double interval_s) {
  IndexList kept;
  TemporalSampling(trajectory, interval_s, kept);
  return kept;
}

}  // namespace stcomp::algo
