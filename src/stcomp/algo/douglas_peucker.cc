#include "stcomp/algo/douglas_peucker.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "stcomp/geom/kernels.h"

namespace stcomp::algo {

namespace {

// Index of the interior point of (first, last) maximising `distance`,
// lowest index on ties, together with that maximum. Requires last >
// first + 1.
std::pair<int, double> FarthestInteriorPoint(TrajectoryView trajectory,
                                             int first, int last,
                                             const SplitDistanceFn& distance) {
  int best_index = first + 1;
  double best_distance = -1.0;
  for (int i = first + 1; i < last; ++i) {
    const double d = distance(trajectory, first, last, i);
    if (d > best_distance) {
      best_distance = d;
      best_index = i;
    }
  }
  return {best_index, best_distance};
}

// The same query via one batched kernel argmax over the SoA repack. The
// kernel scan (strict >, earliest index, -1.0 initial best) replicates
// FarthestInteriorPoint exactly, so both forms return identical pairs.
struct KernelFarthest {
  const double* x;
  const double* y;
  const double* t;
  const kernels::KernelOps* ops;
  SplitCriterion criterion;

  std::pair<int, double> operator()(int first, int last) const {
    const size_t base = static_cast<size_t>(first) + 1;
    const size_t count = static_cast<size_t>(last - first - 1);
    const size_t a = static_cast<size_t>(first);
    const size_t b = static_cast<size_t>(last);
    kernels::MaxResult r;
    if (criterion == SplitCriterion::kSynchronized) {
      const kernels::SedSegment seg{x[a], y[a], t[a], x[b], y[b], t[b]};
      r = ops->sed_max(x + base, y + base, t + base, count, seg);
    } else {
      const kernels::LineSegment seg{x[a], y[a], x[b], y[b]};
      r = ops->perp_max(x + base, y + base, count, seg);
    }
    return {first + 1 + static_cast<int>(r.index), r.value};
  }
};

// Max-heap order for the best-first ranges; ties break to the earlier
// range for deterministic output (same order std::priority_queue<Range>
// produced before the workspace refactor).
bool RangeLess(const detail::RangeEntry& a, const detail::RangeEntry& b) {
  if (a.key != b.key) {
    return a.key < b.key;
  }
  return a.first > b.first;
}

// Copies the set-bit indices of `keep` into `out` (exact-size reserve).
void CollectKept(const std::vector<char>& keep, int kept_count,
                 IndexList& out) {
  out.clear();
  out.reserve(static_cast<size_t>(kept_count));
  const int n = static_cast<int>(keep.size());
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)]) {
      out.push_back(i);
    }
  }
}

// The top-down skeleton, parameterised over the farthest-interior query
// ((first, last) -> (split index, max distance)) so the generic
// SplitDistanceFn path and the kernelised criterion path share one
// control flow.
template <typename FarthestFn>
void TopDownImpl(TrajectoryView trajectory, double epsilon,
                 const FarthestFn& farthest, Workspace& workspace,
                 IndexList& out) {
  const int n = static_cast<int>(trajectory.size());
  std::vector<char>& keep = workspace.keep;
  keep.assign(static_cast<size_t>(n), 0);
  keep[0] = 1;
  keep[static_cast<size_t>(n) - 1] = 1;
  int kept_count = 2;

  // Explicit stack instead of recursion: GPS traces can be long and
  // adversarial splits would otherwise risk stack exhaustion.
  std::vector<std::pair<int, int>>& stack = workspace.ranges;
  stack.clear();
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last - first < 2) {
      continue;
    }
    const auto [split, max_distance] = farthest(first, last);
    if (max_distance > epsilon) {
      keep[static_cast<size_t>(split)] = 1;
      ++kept_count;
      // Push the right half first so the left half is processed first;
      // order does not affect the result, only reproducibility of traces.
      stack.emplace_back(split, last);
      stack.emplace_back(first, split);
    }
  }

  CollectKept(keep, kept_count, out);
}

template <typename FarthestFn>
void TopDownMaxPointsImpl(TrajectoryView trajectory, int max_points,
                          const FarthestFn& farthest, Workspace& workspace,
                          IndexList& out) {
  const int n = static_cast<int>(trajectory.size());
  // Best-first refinement: repeatedly split the pending range with the
  // globally largest deviation until the point budget is exhausted. The
  // workspace-owned binary heap replicates std::priority_queue<Range>.
  auto make_range = [&farthest](int first, int last) {
    const auto [split, max_distance] = farthest(first, last);
    return detail::RangeEntry{max_distance, first, last, split};
  };

  std::vector<detail::RangeEntry>& queue = workspace.range_heap;
  queue.clear();
  queue.push_back(make_range(0, n - 1));
  std::vector<char>& keep = workspace.keep;
  keep.assign(static_cast<size_t>(n), 0);
  keep[0] = 1;
  keep[static_cast<size_t>(n) - 1] = 1;
  int kept_count = 2;
  while (kept_count < max_points && !queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), RangeLess);
    const detail::RangeEntry range = queue.back();
    queue.pop_back();
    keep[static_cast<size_t>(range.split)] = 1;
    ++kept_count;
    if (range.split - range.first >= 2) {
      queue.push_back(make_range(range.first, range.split));
      std::push_heap(queue.begin(), queue.end(), RangeLess);
    }
    if (range.last - range.split >= 2) {
      queue.push_back(make_range(range.split, range.last));
      std::push_heap(queue.begin(), queue.end(), RangeLess);
    }
  }

  CollectKept(keep, kept_count, out);
}

KernelFarthest MakeKernelFarthest(const TrajectoryViewSoA& soa,
                                  SplitCriterion criterion) {
  return KernelFarthest{soa.x(), soa.y(), soa.t(),
                        &kernels::KernelDispatch::Get(), criterion};
}

}  // namespace

double PerpendicularSplitDistance(TrajectoryView trajectory, int first,
                                  int last, int i) {
  return PointToLineDistance(trajectory[static_cast<size_t>(i)].position,
                             trajectory[static_cast<size_t>(first)].position,
                             trajectory[static_cast<size_t>(last)].position);
}

void TopDown(TrajectoryView trajectory, double epsilon,
             const SplitDistanceFn& distance, Workspace& workspace,
             IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  const auto farthest = [&trajectory, &distance](int first, int last) {
    return FarthestInteriorPoint(trajectory, first, last, distance);
  };
  TopDownImpl(trajectory, epsilon, farthest, workspace, out);
}

IndexList TopDown(TrajectoryView trajectory, double epsilon,
                  const SplitDistanceFn& distance) {
  Workspace workspace;
  IndexList kept;
  TopDown(trajectory, epsilon, distance, workspace, kept);
  return kept;
}

void TopDown(TrajectoryView trajectory, double epsilon,
             SplitCriterion criterion, Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, workspace.soa);
  TopDownImpl(trajectory, epsilon, MakeKernelFarthest(soa, criterion),
              workspace, out);
}

void DouglasPeucker(TrajectoryView trajectory, double epsilon_m,
                    Workspace& workspace, IndexList& out) {
  TopDown(trajectory, epsilon_m, SplitCriterion::kPerpendicular, workspace,
          out);
}

IndexList DouglasPeucker(TrajectoryView trajectory, double epsilon_m) {
  Workspace workspace;
  IndexList kept;
  DouglasPeucker(trajectory, epsilon_m, workspace, kept);
  return kept;
}

void TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                      const SplitDistanceFn& distance, Workspace& workspace,
                      IndexList& out) {
  STCOMP_CHECK(max_points >= 2);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2 || n <= max_points) {
    KeepAll(trajectory, out);
    return;
  }
  const auto farthest = [&trajectory, &distance](int first, int last) {
    return FarthestInteriorPoint(trajectory, first, last, distance);
  };
  TopDownMaxPointsImpl(trajectory, max_points, farthest, workspace, out);
}

IndexList TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                           const SplitDistanceFn& distance) {
  Workspace workspace;
  IndexList kept;
  TopDownMaxPoints(trajectory, max_points, distance, workspace, kept);
  return kept;
}

void TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                      SplitCriterion criterion, Workspace& workspace,
                      IndexList& out) {
  STCOMP_CHECK(max_points >= 2);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2 || n <= max_points) {
    KeepAll(trajectory, out);
    return;
  }
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, workspace.soa);
  TopDownMaxPointsImpl(trajectory, max_points, MakeKernelFarthest(soa, criterion),
                       workspace, out);
}

void DouglasPeuckerMaxPoints(TrajectoryView trajectory, int max_points,
                             Workspace& workspace, IndexList& out) {
  TopDownMaxPoints(trajectory, max_points, SplitCriterion::kPerpendicular,
                   workspace, out);
}

IndexList DouglasPeuckerMaxPoints(TrajectoryView trajectory, int max_points) {
  Workspace workspace;
  IndexList kept;
  DouglasPeuckerMaxPoints(trajectory, max_points, workspace, kept);
  return kept;
}

}  // namespace stcomp::algo
