#include "stcomp/algo/douglas_peucker.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

// Index of the interior point of (first, last) maximising `distance`,
// lowest index on ties, together with that maximum. Requires last >
// first + 1.
std::pair<int, double> FarthestInteriorPoint(const Trajectory& trajectory,
                                             int first, int last,
                                             const SplitDistanceFn& distance) {
  int best_index = first + 1;
  double best_distance = -1.0;
  for (int i = first + 1; i < last; ++i) {
    const double d = distance(trajectory, first, last, i);
    if (d > best_distance) {
      best_distance = d;
      best_index = i;
    }
  }
  return {best_index, best_distance};
}

}  // namespace

double PerpendicularSplitDistance(const Trajectory& trajectory, int first,
                                  int last, int i) {
  return PointToLineDistance(trajectory[static_cast<size_t>(i)].position,
                             trajectory[static_cast<size_t>(first)].position,
                             trajectory[static_cast<size_t>(last)].position);
}

IndexList TopDown(const Trajectory& trajectory, double epsilon,
                  const SplitDistanceFn& distance) {
  STCOMP_CHECK(epsilon >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    return KeepAll(trajectory);
  }
  std::vector<bool> keep(static_cast<size_t>(n), false);
  keep[0] = true;
  keep[static_cast<size_t>(n) - 1] = true;

  // Explicit stack instead of recursion: GPS traces can be long and
  // adversarial splits would otherwise risk stack exhaustion.
  std::vector<std::pair<int, int>> stack;
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last - first < 2) {
      continue;
    }
    const auto [split, max_distance] =
        FarthestInteriorPoint(trajectory, first, last, distance);
    if (max_distance > epsilon) {
      keep[static_cast<size_t>(split)] = true;
      // Push the right half first so the left half is processed first;
      // order does not affect the result, only reproducibility of traces.
      stack.emplace_back(split, last);
      stack.emplace_back(first, split);
    }
  }

  IndexList kept;
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)]) {
      kept.push_back(i);
    }
  }
  return kept;
}

IndexList DouglasPeucker(const Trajectory& trajectory, double epsilon_m) {
  return TopDown(trajectory, epsilon_m, PerpendicularSplitDistance);
}

IndexList TopDownMaxPoints(const Trajectory& trajectory, int max_points,
                           const SplitDistanceFn& distance) {
  STCOMP_CHECK(max_points >= 2);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2 || n <= max_points) {
    return KeepAll(trajectory);
  }

  // Best-first refinement: repeatedly split the pending range with the
  // globally largest deviation until the point budget is exhausted.
  struct Range {
    double max_distance;
    int first;
    int last;
    int split;
    bool operator<(const Range& other) const {
      // std::priority_queue is a max-heap; ties break to the earlier range
      // for deterministic output.
      if (max_distance != other.max_distance) {
        return max_distance < other.max_distance;
      }
      return first > other.first;
    }
  };

  auto make_range = [&trajectory, &distance](int first, int last) {
    const auto [split, max_distance] =
        FarthestInteriorPoint(trajectory, first, last, distance);
    return Range{max_distance, first, last, split};
  };

  std::priority_queue<Range> queue;
  queue.push(make_range(0, n - 1));
  std::vector<bool> keep(static_cast<size_t>(n), false);
  keep[0] = true;
  keep[static_cast<size_t>(n) - 1] = true;
  int kept_count = 2;
  while (kept_count < max_points && !queue.empty()) {
    const Range range = queue.top();
    queue.pop();
    keep[static_cast<size_t>(range.split)] = true;
    ++kept_count;
    if (range.split - range.first >= 2) {
      queue.push(make_range(range.first, range.split));
    }
    if (range.last - range.split >= 2) {
      queue.push(make_range(range.split, range.last));
    }
  }

  IndexList kept;
  kept.reserve(static_cast<size_t>(kept_count));
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)]) {
      kept.push_back(i);
    }
  }
  return kept;
}

IndexList DouglasPeuckerMaxPoints(const Trajectory& trajectory,
                                  int max_points) {
  return TopDownMaxPoints(trajectory, max_points, PerpendicularSplitDistance);
}

}  // namespace stcomp::algo
