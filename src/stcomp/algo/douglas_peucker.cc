#include "stcomp/algo/douglas_peucker.h"

#include <algorithm>
#include <utility>

#include "stcomp/common/check.h"

namespace stcomp::algo {

namespace {

// Index of the interior point of (first, last) maximising `distance`,
// lowest index on ties, together with that maximum. Requires last >
// first + 1.
std::pair<int, double> FarthestInteriorPoint(TrajectoryView trajectory,
                                             int first, int last,
                                             const SplitDistanceFn& distance) {
  int best_index = first + 1;
  double best_distance = -1.0;
  for (int i = first + 1; i < last; ++i) {
    const double d = distance(trajectory, first, last, i);
    if (d > best_distance) {
      best_distance = d;
      best_index = i;
    }
  }
  return {best_index, best_distance};
}

// Max-heap order for the best-first ranges; ties break to the earlier
// range for deterministic output (same order std::priority_queue<Range>
// produced before the workspace refactor).
bool RangeLess(const detail::RangeEntry& a, const detail::RangeEntry& b) {
  if (a.key != b.key) {
    return a.key < b.key;
  }
  return a.first > b.first;
}

// Copies the set-bit indices of `keep` into `out` (exact-size reserve).
void CollectKept(const std::vector<char>& keep, int kept_count,
                 IndexList& out) {
  out.clear();
  out.reserve(static_cast<size_t>(kept_count));
  const int n = static_cast<int>(keep.size());
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)]) {
      out.push_back(i);
    }
  }
}

}  // namespace

double PerpendicularSplitDistance(TrajectoryView trajectory, int first,
                                  int last, int i) {
  return PointToLineDistance(trajectory[static_cast<size_t>(i)].position,
                             trajectory[static_cast<size_t>(first)].position,
                             trajectory[static_cast<size_t>(last)].position);
}

void TopDown(TrajectoryView trajectory, double epsilon,
             const SplitDistanceFn& distance, Workspace& workspace,
             IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  std::vector<char>& keep = workspace.keep;
  keep.assign(static_cast<size_t>(n), 0);
  keep[0] = 1;
  keep[static_cast<size_t>(n) - 1] = 1;
  int kept_count = 2;

  // Explicit stack instead of recursion: GPS traces can be long and
  // adversarial splits would otherwise risk stack exhaustion.
  std::vector<std::pair<int, int>>& stack = workspace.ranges;
  stack.clear();
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last - first < 2) {
      continue;
    }
    const auto [split, max_distance] =
        FarthestInteriorPoint(trajectory, first, last, distance);
    if (max_distance > epsilon) {
      keep[static_cast<size_t>(split)] = 1;
      ++kept_count;
      // Push the right half first so the left half is processed first;
      // order does not affect the result, only reproducibility of traces.
      stack.emplace_back(split, last);
      stack.emplace_back(first, split);
    }
  }

  CollectKept(keep, kept_count, out);
}

IndexList TopDown(TrajectoryView trajectory, double epsilon,
                  const SplitDistanceFn& distance) {
  Workspace workspace;
  IndexList kept;
  TopDown(trajectory, epsilon, distance, workspace, kept);
  return kept;
}

void DouglasPeucker(TrajectoryView trajectory, double epsilon_m,
                    Workspace& workspace, IndexList& out) {
  TopDown(trajectory, epsilon_m, PerpendicularSplitDistance, workspace, out);
}

IndexList DouglasPeucker(TrajectoryView trajectory, double epsilon_m) {
  return TopDown(trajectory, epsilon_m, PerpendicularSplitDistance);
}

void TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                      const SplitDistanceFn& distance, Workspace& workspace,
                      IndexList& out) {
  STCOMP_CHECK(max_points >= 2);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2 || n <= max_points) {
    KeepAll(trajectory, out);
    return;
  }

  // Best-first refinement: repeatedly split the pending range with the
  // globally largest deviation until the point budget is exhausted. The
  // workspace-owned binary heap replicates std::priority_queue<Range>.
  auto make_range = [&trajectory, &distance](int first, int last) {
    const auto [split, max_distance] =
        FarthestInteriorPoint(trajectory, first, last, distance);
    return detail::RangeEntry{max_distance, first, last, split};
  };

  std::vector<detail::RangeEntry>& queue = workspace.range_heap;
  queue.clear();
  queue.push_back(make_range(0, n - 1));
  std::vector<char>& keep = workspace.keep;
  keep.assign(static_cast<size_t>(n), 0);
  keep[0] = 1;
  keep[static_cast<size_t>(n) - 1] = 1;
  int kept_count = 2;
  while (kept_count < max_points && !queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), RangeLess);
    const detail::RangeEntry range = queue.back();
    queue.pop_back();
    keep[static_cast<size_t>(range.split)] = 1;
    ++kept_count;
    if (range.split - range.first >= 2) {
      queue.push_back(make_range(range.first, range.split));
      std::push_heap(queue.begin(), queue.end(), RangeLess);
    }
    if (range.last - range.split >= 2) {
      queue.push_back(make_range(range.split, range.last));
      std::push_heap(queue.begin(), queue.end(), RangeLess);
    }
  }

  CollectKept(keep, kept_count, out);
}

IndexList TopDownMaxPoints(TrajectoryView trajectory, int max_points,
                           const SplitDistanceFn& distance) {
  Workspace workspace;
  IndexList kept;
  TopDownMaxPoints(trajectory, max_points, distance, workspace, kept);
  return kept;
}

void DouglasPeuckerMaxPoints(TrajectoryView trajectory, int max_points,
                             Workspace& workspace, IndexList& out) {
  TopDownMaxPoints(trajectory, max_points, PerpendicularSplitDistance,
                   workspace, out);
}

IndexList DouglasPeuckerMaxPoints(TrajectoryView trajectory, int max_points) {
  return TopDownMaxPoints(trajectory, max_points, PerpendicularSplitDistance);
}

}  // namespace stcomp::algo
