#include "stcomp/algo/spatiotemporal.h"

#include <cmath>
#include <utility>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"

namespace stcomp::algo {

double SpeedJump(TrajectoryView trajectory, int i) {
  STCOMP_CHECK(i > 0 && static_cast<size_t>(i) + 1 < trajectory.size());
  const double before = trajectory.SegmentSpeed(static_cast<size_t>(i) - 1);
  const double after = trajectory.SegmentSpeed(static_cast<size_t>(i));
  return std::abs(after - before);
}

void OpwSp(TrajectoryView trajectory, double max_dist_error_m,
           double max_speed_error_mps, IndexList& out) {
  STCOMP_CHECK(max_dist_error_m >= 0.0);
  STCOMP_CHECK(max_speed_error_mps >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  // Iterative form of the paper's recursive SPT procedure: the recursion
  // SPT(s[i..]) after a violation at i is exactly "cut at i, re-anchor".
  out.clear();
  out.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    int violation = -1;
    for (int i = anchor + 1; i < float_index; ++i) {
      const double sed =
          SynchronizedDistance(trajectory[static_cast<size_t>(anchor)],
                               trajectory[static_cast<size_t>(float_index)],
                               trajectory[static_cast<size_t>(i)]);
      if (sed > max_dist_error_m ||
          SpeedJump(trajectory, i) > max_speed_error_mps) {
        violation = i;
        break;
      }
    }
    if (violation < 0) {
      ++float_index;
      continue;
    }
    out.push_back(violation);
    anchor = violation;
    float_index = anchor + 2;
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

IndexList OpwSp(TrajectoryView trajectory, double max_dist_error_m,
                double max_speed_error_mps) {
  IndexList kept;
  OpwSp(trajectory, max_dist_error_m, max_speed_error_mps, kept);
  return kept;
}

void TdSp(TrajectoryView trajectory, double max_dist_error_m,
          double max_speed_error_mps, Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(max_dist_error_m >= 0.0);
  STCOMP_CHECK(max_speed_error_mps >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  std::vector<char>& keep = workspace.keep;
  keep.assign(static_cast<size_t>(n), 0);
  keep[0] = 1;
  keep[static_cast<size_t>(n) - 1] = 1;
  int kept_count = 2;
  std::vector<std::pair<int, int>>& stack = workspace.ranges;
  stack.clear();
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last - first < 2) {
      continue;
    }
    int max_sed_index = first + 1;
    double max_sed = -1.0;
    int max_jump_index = -1;
    double max_jump = -1.0;
    for (int i = first + 1; i < last; ++i) {
      const double sed =
          SynchronizedDistance(trajectory[static_cast<size_t>(first)],
                               trajectory[static_cast<size_t>(last)],
                               trajectory[static_cast<size_t>(i)]);
      if (sed > max_sed) {
        max_sed = sed;
        max_sed_index = i;
      }
      // The speed jump needs a predecessor and successor sample in the full
      // trajectory; interior points of any range always have both.
      const double jump = SpeedJump(trajectory, i);
      if (jump > max_jump) {
        max_jump = jump;
        max_jump_index = i;
      }
    }
    int split = -1;
    if (max_sed > max_dist_error_m) {
      split = max_sed_index;
    } else if (max_jump > max_speed_error_mps) {
      split = max_jump_index;
    }
    if (split >= 0) {
      keep[static_cast<size_t>(split)] = 1;
      ++kept_count;
      stack.emplace_back(split, last);
      stack.emplace_back(first, split);
    }
  }
  out.clear();
  out.reserve(static_cast<size_t>(kept_count));
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)]) {
      out.push_back(i);
    }
  }
}

IndexList TdSp(TrajectoryView trajectory, double max_dist_error_m,
               double max_speed_error_mps) {
  Workspace workspace;
  IndexList kept;
  TdSp(trajectory, max_dist_error_m, max_speed_error_mps, workspace, kept);
  return kept;
}

}  // namespace stcomp::algo
