#include "stcomp/algo/spatiotemporal.h"

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "stcomp/geom/kernels.h"

namespace stcomp::algo {

namespace {

// Fills workspace.speeds / workspace.jumps from the SoA repack: speeds[i]
// is the derived speed of segment (i, i+1), jumps[i] == SpeedJump(i) for
// interior i (0 at the endpoints, which the criteria never test). The SP
// criteria then read O(1) per candidate instead of recomputing two norms.
void PrecomputeSpeedJumps(const TrajectoryViewSoA& soa, Workspace& workspace) {
  const size_t n = soa.size();
  workspace.speeds.resize(n > 0 ? n - 1 : 0);
  workspace.jumps.resize(n);
  kernels::SegmentSpeeds(soa.x(), soa.y(), soa.t(), n,
                         workspace.speeds.data());
  kernels::SpeedJumps(workspace.speeds.data(), n, workspace.jumps.data());
}

}  // namespace

double SpeedJump(TrajectoryView trajectory, int i) {
  STCOMP_CHECK(i > 0 && static_cast<size_t>(i) + 1 < trajectory.size());
  const double before = trajectory.SegmentSpeed(static_cast<size_t>(i) - 1);
  const double after = trajectory.SegmentSpeed(static_cast<size_t>(i));
  return std::abs(after - before);
}

void OpwSp(TrajectoryView trajectory, double max_dist_error_m,
           double max_speed_error_mps, Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(max_dist_error_m >= 0.0);
  STCOMP_CHECK(max_speed_error_mps >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  // Iterative form of the paper's recursive SPT procedure: the recursion
  // SPT(s[i..]) after a violation at i is exactly "cut at i, re-anchor".
  // The per-window scan is kernelised: the first SED violation and the
  // first speed-jump violation are each found by one batched call, and the
  // earlier of the two is the window's violation — identical to the
  // point-at-a-time OR of the two criteria.
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, workspace.soa);
  PrecomputeSpeedJumps(soa, workspace);
  const kernels::KernelOps& ops = kernels::KernelDispatch::Get();
  const double* x = soa.x();
  const double* y = soa.y();
  const double* t = soa.t();
  const double* jumps = workspace.jumps.data();
  out.clear();
  out.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    const size_t base = static_cast<size_t>(anchor) + 1;
    const size_t count = static_cast<size_t>(float_index - anchor - 1);
    const size_t a = static_cast<size_t>(anchor);
    const size_t f = static_cast<size_t>(float_index);
    const kernels::SedSegment seg{x[a], y[a], t[a], x[f], y[f], t[f]};
    const std::ptrdiff_t sed_hit = ops.sed_first_above(
        x + base, y + base, t + base, count, seg, max_dist_error_m);
    // Only the window up to the SED violation matters for the jump scan:
    // the earliest violation of either kind wins.
    const size_t jump_count =
        sed_hit < 0 ? count : static_cast<size_t>(sed_hit) + 1;
    const std::ptrdiff_t jump_hit = ops.array_first_above(
        jumps + base, jump_count, max_speed_error_mps);
    std::ptrdiff_t hit = sed_hit;
    if (jump_hit >= 0 && (hit < 0 || jump_hit < hit)) {
      hit = jump_hit;
    }
    if (hit < 0) {
      ++float_index;
      continue;
    }
    const int violation = anchor + 1 + static_cast<int>(hit);
    out.push_back(violation);
    anchor = violation;
    float_index = anchor + 2;
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

void OpwSp(TrajectoryView trajectory, double max_dist_error_m,
           double max_speed_error_mps, IndexList& out) {
  Workspace workspace;
  OpwSp(trajectory, max_dist_error_m, max_speed_error_mps, workspace, out);
}

IndexList OpwSp(TrajectoryView trajectory, double max_dist_error_m,
                double max_speed_error_mps) {
  IndexList kept;
  OpwSp(trajectory, max_dist_error_m, max_speed_error_mps, kept);
  return kept;
}

void TdSp(TrajectoryView trajectory, double max_dist_error_m,
          double max_speed_error_mps, Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(max_dist_error_m >= 0.0);
  STCOMP_CHECK(max_speed_error_mps >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, workspace.soa);
  PrecomputeSpeedJumps(soa, workspace);
  const kernels::KernelOps& ops = kernels::KernelDispatch::Get();
  const double* x = soa.x();
  const double* y = soa.y();
  const double* t = soa.t();
  const double* jumps = workspace.jumps.data();
  std::vector<char>& keep = workspace.keep;
  keep.assign(static_cast<size_t>(n), 0);
  keep[0] = 1;
  keep[static_cast<size_t>(n) - 1] = 1;
  int kept_count = 2;
  std::vector<std::pair<int, int>>& stack = workspace.ranges;
  stack.clear();
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last - first < 2) {
      continue;
    }
    // One batched argmax per criterion over the interior of the range
    // (both maxima were previously accumulated in a single scalar loop;
    // the running maxima are independent, so two kernel scans produce the
    // same two results). The speed jump needs a predecessor and successor
    // sample in the full trajectory; interior points of any range always
    // have both.
    const size_t base = static_cast<size_t>(first) + 1;
    const size_t count = static_cast<size_t>(last - first - 1);
    const size_t a = static_cast<size_t>(first);
    const size_t b = static_cast<size_t>(last);
    const kernels::SedSegment seg{x[a], y[a], t[a], x[b], y[b], t[b]};
    const kernels::MaxResult max_sed =
        ops.sed_max(x + base, y + base, t + base, count, seg);
    const kernels::MaxResult max_jump = ops.array_max(jumps + base, count);
    int split = -1;
    if (max_sed.value > max_dist_error_m) {
      split = first + 1 + static_cast<int>(max_sed.index);
    } else if (max_jump.value > max_speed_error_mps) {
      split = first + 1 + static_cast<int>(max_jump.index);
    }
    if (split >= 0) {
      keep[static_cast<size_t>(split)] = 1;
      ++kept_count;
      stack.emplace_back(split, last);
      stack.emplace_back(first, split);
    }
  }
  out.clear();
  out.reserve(static_cast<size_t>(kept_count));
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<size_t>(i)]) {
      out.push_back(i);
    }
  }
}

IndexList TdSp(TrajectoryView trajectory, double max_dist_error_m,
               double max_speed_error_mps) {
  Workspace workspace;
  IndexList kept;
  TdSp(trajectory, max_dist_error_m, max_speed_error_mps, workspace, kept);
  return kept;
}

}  // namespace stcomp::algo
