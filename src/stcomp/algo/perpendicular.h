// Jenks' perpendicular-distance test (paper Sec. 2, [Jenks 1981]):
// "evaluating the perpendicular distance from a line connecting two
// consecutive data points to an intermediate data point against a user
// threshold".

#ifndef STCOMP_ALGO_PERPENDICULAR_H_
#define STCOMP_ALGO_PERPENDICULAR_H_

#include "stcomp/algo/compression.h"

namespace stcomp::algo {

// Sequential three-point test: the candidate point `i` is dropped when its
// perpendicular distance to the line (last kept point, point i+1) is below
// `epsilon_m`. Precondition (checked): epsilon_m >= 0.
void PerpendicularDistance(TrajectoryView trajectory, double epsilon_m,
                           IndexList& out);
IndexList PerpendicularDistance(TrajectoryView trajectory, double epsilon_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_PERPENDICULAR_H_
