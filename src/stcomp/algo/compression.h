// Shared conventions for all compression algorithms.
//
// Every algorithm maps a Trajectory to the list of *kept* original indices,
// always sorted ascending and always including the first and the last index
// (for trajectories with >= 1 point). The approximation trajectory is then
// `trajectory.Subset(kept)`; error/compression accounting is uniform across
// algorithms (see error/evaluation.h).

#ifndef STCOMP_ALGO_COMPRESSION_H_
#define STCOMP_ALGO_COMPRESSION_H_

#include <vector>

#include "stcomp/core/trajectory.h"

namespace stcomp::algo {

// Indices into Trajectory::points() retained by a compression run.
using IndexList = std::vector<int>;

// The trivial result: keep everything.
IndexList KeepAll(const Trajectory& trajectory);

// Returns true iff `kept` is sorted strictly ascending, within range, and
// contains the endpoints (vacuously true for empty trajectories). Used by
// tests and debug checks.
bool IsValidIndexList(const Trajectory& trajectory, const IndexList& kept);

// Compression rate in percent: (1 - kept/original) * 100; 0 when the
// trajectory has < 1 point.
double CompressionPercent(size_t original_points, size_t kept_points);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_COMPRESSION_H_
