// Shared conventions for all compression algorithms.
//
// Every algorithm maps a trajectory to the list of *kept* original indices,
// always sorted ascending and always including the first and the last index
// (for trajectories with >= 1 point). The approximation trajectory is then
// `trajectory.Subset(kept)`; error/compression accounting is uniform across
// algorithms (see error/evaluation.h).
//
// Each algorithm has two forms (DESIGN.md §11): a zero-copy entry point
// `void Foo(TrajectoryView, ..., IndexList& out)` that clears and fills a
// caller-owned output (allocation-free once the buffers have grown), and an
// allocating convenience wrapper `IndexList Foo(TrajectoryView, ...)`.
// `const Trajectory&` converts to TrajectoryView implicitly, so legacy call
// sites use either form unchanged.

#ifndef STCOMP_ALGO_COMPRESSION_H_
#define STCOMP_ALGO_COMPRESSION_H_

#include <vector>

#include "stcomp/core/trajectory_view.h"

namespace stcomp::algo {

// Indices into the trajectory's samples retained by a compression run.
using IndexList = std::vector<int>;

// The trivial result: keep everything.
void KeepAll(TrajectoryView trajectory, IndexList& out);
IndexList KeepAll(TrajectoryView trajectory);

// Returns true iff `kept` is sorted strictly ascending, within range, and
// contains the endpoints (vacuously true for empty trajectories). Used by
// tests and debug checks.
bool IsValidIndexList(TrajectoryView trajectory, const IndexList& kept);

// Compression rate in percent: (1 - kept/original) * 100; 0 when the
// trajectory has < 1 point.
double CompressionPercent(size_t original_points, size_t kept_points);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_COMPRESSION_H_
