#include "stcomp/algo/squish.h"

#include <limits>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/geom/kernels.h"

namespace stcomp::algo {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

SquishBuffer::SquishBuffer(size_t capacity, double mu)
    : capacity_(capacity), mu_(mu) {
  STCOMP_CHECK(capacity_ == 0 || capacity_ >= 2);
  STCOMP_CHECK(mu_ >= 0.0);
}

double SquishBuffer::SedPriority(const Node& node) const {
  if (node.prev < 0 || node.next < 0) {
    return kInfinity;  // Endpoints are never removed.
  }
  // Inherently point-at-a-time (one neighbour pair per priority update),
  // so this rides the kernel layer's per-point SED helper — the same
  // formula the batched kernels use, keeping SQUISH priorities consistent
  // with the window/range algorithms under either backend.
  const Node& before = nodes_[static_cast<size_t>(node.prev)];
  const Node& after = nodes_[static_cast<size_t>(node.next)];
  return node.carry +
         kernels::SedDistancePoint(
             node.point.position.x, node.point.position.y, node.point.t,
             {before.point.position.x, before.point.position.y, before.point.t,
              after.point.position.x, after.point.position.y, after.point.t});
}

void SquishBuffer::Reprioritise(int node_id) {
  Node& node = nodes_[static_cast<size_t>(node_id)];
  queue_.erase({node.priority, node_id});
  node.priority = SedPriority(node);
  queue_.insert({node.priority, node_id});
}

void SquishBuffer::RemoveCheapest() {
  STCOMP_DCHECK(!queue_.empty());
  const auto [priority, node_id] = *queue_.begin();
  queue_.erase(queue_.begin());
  Node& node = nodes_[static_cast<size_t>(node_id)];
  STCOMP_DCHECK(node.alive && node.prev >= 0 && node.next >= 0);
  node.alive = false;
  --nodes_alive_;
  Node& before = nodes_[static_cast<size_t>(node.prev)];
  Node& after = nodes_[static_cast<size_t>(node.next)];
  before.next = node.next;
  after.prev = node.prev;
  // Propagate the removal's error estimate so neighbours account for the
  // points they now also approximate.
  before.carry = std::max(before.carry, node.priority);
  after.carry = std::max(after.carry, node.priority);
  free_ids_.push_back(node_id);
  if (before.prev >= 0) {
    Reprioritise(node.prev);
  }
  if (after.next >= 0) {
    Reprioritise(node.next);
  }
}

bool SquishBuffer::ShouldRemove() const {
  if (nodes_alive_ <= 2 || queue_.empty()) {
    return false;
  }
  const double cheapest = queue_.begin()->first;
  if (cheapest == kInfinity) {
    return false;
  }
  if (capacity_ != 0 && nodes_alive_ > capacity_) {
    return true;
  }
  // Error-driven mode: shrink opportunistically while within budget.
  return capacity_ == 0 && cheapest <= mu_;
}

void SquishBuffer::Push(int original_index, const TimedPoint& point) {
  int node_id;
  if (!free_ids_.empty()) {
    node_id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.point = point;
  node.original_index = original_index;
  node.priority = kInfinity;
  node.carry = 0.0;
  node.prev = tail_;
  node.next = -1;
  node.alive = true;
  ++nodes_alive_;
  if (tail_ >= 0) {
    nodes_[static_cast<size_t>(tail_)].next = node_id;
  } else {
    head_ = node_id;
  }
  const int previous_tail = tail_;
  tail_ = node_id;
  queue_.insert({kInfinity, node_id});
  // The former tail now has both neighbours; give it a real priority.
  if (previous_tail >= 0 &&
      nodes_[static_cast<size_t>(previous_tail)].prev >= 0) {
    Reprioritise(previous_tail);
  }
  while (ShouldRemove()) {
    RemoveCheapest();
  }
}

SquishBufferState SquishBuffer::ExportState() const {
  SquishBufferState state;
  state.capacity = capacity_;
  state.mu = mu_;
  state.nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    state.nodes.push_back({node.point, node.original_index, node.priority,
                           node.carry, node.prev, node.next, node.alive});
  }
  state.free_ids = free_ids_;
  state.head = head_;
  state.tail = tail_;
  return state;
}

Status SquishBuffer::ImportState(const SquishBufferState& state) {
  if (state.capacity != capacity_ || state.mu != mu_) {
    return InvalidArgumentError(
        "squish checkpoint was taken with a different capacity/mu");
  }
  const int size = static_cast<int>(state.nodes.size());
  const auto valid_id = [size](int id) { return id >= -1 && id < size; };
  if (!valid_id(state.head) || !valid_id(state.tail)) {
    return DataLossError("squish checkpoint has out-of-range list ends");
  }
  for (const SquishBufferState::Node& node : state.nodes) {
    if (!valid_id(node.prev) || !valid_id(node.next)) {
      return DataLossError("squish checkpoint has out-of-range node links");
    }
  }
  for (int id : state.free_ids) {
    if (id < 0 || id >= size || state.nodes[static_cast<size_t>(id)].alive) {
      return DataLossError("squish checkpoint free list is inconsistent");
    }
  }
  nodes_.clear();
  nodes_.reserve(state.nodes.size());
  queue_.clear();
  nodes_alive_ = 0;
  for (int id = 0; id < size; ++id) {
    const SquishBufferState::Node& node = state.nodes[static_cast<size_t>(id)];
    nodes_.push_back({node.point, node.original_index, node.priority,
                      node.carry, node.prev, node.next, node.alive});
    if (node.alive) {
      ++nodes_alive_;
      // Exactly the live entries Push/Reprioritise maintain.
      queue_.insert({node.priority, id});
    }
  }
  free_ids_ = state.free_ids;
  head_ = state.head;
  tail_ = state.tail;
  return Status::Ok();
}

IndexList SquishBuffer::Finalize() const {
  IndexList kept;
  Finalize(kept);
  return kept;
}

void SquishBuffer::Finalize(IndexList& out) const {
  out.clear();
  out.reserve(nodes_alive_);
  for (int id = head_; id >= 0;
       id = nodes_[static_cast<size_t>(id)].next) {
    out.push_back(nodes_[static_cast<size_t>(id)].original_index);
  }
}

std::vector<std::pair<int, TimedPoint>> SquishBuffer::FinalizePoints() const {
  std::vector<std::pair<int, TimedPoint>> kept;
  for (int id = head_; id >= 0;
       id = nodes_[static_cast<size_t>(id)].next) {
    const Node& node = nodes_[static_cast<size_t>(id)];
    kept.emplace_back(node.original_index, node.point);
  }
  return kept;
}

void Squish(TrajectoryView trajectory, size_t buffer_capacity,
            IndexList& out) {
  STCOMP_CHECK(buffer_capacity >= 2);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  SquishBuffer buffer(buffer_capacity, 0.0);
  for (size_t i = 0; i < trajectory.size(); ++i) {
    buffer.Push(static_cast<int>(i), trajectory[i]);
  }
  buffer.Finalize(out);
}

IndexList Squish(TrajectoryView trajectory, size_t buffer_capacity) {
  IndexList kept;
  Squish(trajectory, buffer_capacity, kept);
  return kept;
}

void SquishE(TrajectoryView trajectory, double mu_m, IndexList& out) {
  STCOMP_CHECK(mu_m >= 0.0);
  if (trajectory.size() <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  SquishBuffer buffer(0, mu_m);
  for (size_t i = 0; i < trajectory.size(); ++i) {
    buffer.Push(static_cast<int>(i), trajectory[i]);
  }
  buffer.Finalize(out);
}

IndexList SquishE(TrajectoryView trajectory, double mu_m) {
  IndexList kept;
  SquishE(trajectory, mu_m, kept);
  return kept;
}

}  // namespace stcomp::algo
