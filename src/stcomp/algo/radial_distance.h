// Euclidean-distance neighbour elimination (paper Sec. 2: "may use the
// Euclidean distance between two neighbour points; if it is less than a
// predefined threshold, one is eliminated").

#ifndef STCOMP_ALGO_RADIAL_DISTANCE_H_
#define STCOMP_ALGO_RADIAL_DISTANCE_H_

#include "stcomp/algo/compression.h"
#include "stcomp/algo/workspace.h"

namespace stcomp::algo {

// Sequentially drops points closer than `epsilon_m` to the last kept point.
// The last point is always kept. Precondition (checked): epsilon_m >= 0.
// The Workspace overload is the kernel-dispatched hot path (allocation-free
// when warm); the others allocate a throwaway workspace.
void RadialDistance(TrajectoryView trajectory, double epsilon_m,
                    Workspace& workspace, IndexList& out);
void RadialDistance(TrajectoryView trajectory, double epsilon_m,
                    IndexList& out);
IndexList RadialDistance(TrajectoryView trajectory, double epsilon_m);

}  // namespace stcomp::algo

#endif  // STCOMP_ALGO_RADIAL_DISTANCE_H_
