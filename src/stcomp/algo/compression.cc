#include "stcomp/algo/compression.h"

#include <numeric>

namespace stcomp::algo {

void KeepAll(TrajectoryView trajectory, IndexList& out) {
  out.resize(trajectory.size());
  std::iota(out.begin(), out.end(), 0);
}

IndexList KeepAll(TrajectoryView trajectory) {
  IndexList all;
  KeepAll(trajectory, all);
  return all;
}

bool IsValidIndexList(TrajectoryView trajectory, const IndexList& kept) {
  if (trajectory.empty()) {
    return kept.empty();
  }
  if (kept.empty() || kept.front() != 0 ||
      kept.back() != static_cast<int>(trajectory.size()) - 1) {
    return false;
  }
  for (size_t i = 1; i < kept.size(); ++i) {
    if (kept[i] <= kept[i - 1]) {
      return false;
    }
  }
  return kept.back() < static_cast<int>(trajectory.size());
}

double CompressionPercent(size_t original_points, size_t kept_points) {
  if (original_points == 0) {
    return 0.0;
  }
  return (1.0 - static_cast<double>(kept_points) /
                    static_cast<double>(original_points)) *
         100.0;
}

}  // namespace stcomp::algo
