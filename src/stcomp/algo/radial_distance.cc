#include "stcomp/algo/radial_distance.h"

#include <cstddef>

#include "stcomp/common/check.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "stcomp/geom/kernels.h"

namespace stcomp::algo {

void RadialDistance(TrajectoryView trajectory, double epsilon_m,
                    Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(epsilon_m >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  out.clear();
  if (n == 0) {
    return;
  }
  // Batched scan: from each kept anchor, one kernel call finds the first
  // point at least epsilon away (the keep rule is >=, not >); that point
  // becomes the next anchor. Identical to the per-point scan, one call
  // per kept point instead of one norm per input point.
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, workspace.soa);
  const kernels::KernelOps& ops = kernels::KernelDispatch::Get();
  const double* x = soa.x();
  const double* y = soa.y();
  out.push_back(0);
  int pos = 1;
  while (pos < n - 1) {
    const size_t anchor = static_cast<size_t>(out.back());
    const std::ptrdiff_t hit = ops.radial_first_reaching(
        x + pos, y + pos, static_cast<size_t>(n - 1 - pos), x[anchor],
        y[anchor], epsilon_m);
    if (hit < 0) {
      break;
    }
    out.push_back(pos + static_cast<int>(hit));
    pos = out.back() + 1;
  }
  if (n > 1) {
    out.push_back(n - 1);
  }
}

void RadialDistance(TrajectoryView trajectory, double epsilon_m,
                    IndexList& out) {
  Workspace workspace;
  RadialDistance(trajectory, epsilon_m, workspace, out);
}

IndexList RadialDistance(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  RadialDistance(trajectory, epsilon_m, kept);
  return kept;
}

}  // namespace stcomp::algo
