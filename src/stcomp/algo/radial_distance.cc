#include "stcomp/algo/radial_distance.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

void RadialDistance(TrajectoryView trajectory, double epsilon_m,
                    IndexList& out) {
  STCOMP_CHECK(epsilon_m >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  out.clear();
  if (n == 0) {
    return;
  }
  out.push_back(0);
  for (int i = 1; i < n - 1; ++i) {
    const Vec2 last = trajectory[static_cast<size_t>(out.back())].position;
    if (Distance(trajectory[static_cast<size_t>(i)].position, last) >=
        epsilon_m) {
      out.push_back(i);
    }
  }
  if (n > 1) {
    out.push_back(n - 1);
  }
}

IndexList RadialDistance(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  RadialDistance(trajectory, epsilon_m, kept);
  return kept;
}

}  // namespace stcomp::algo
