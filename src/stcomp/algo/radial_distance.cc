#include "stcomp/algo/radial_distance.h"

#include "stcomp/common/check.h"

namespace stcomp::algo {

IndexList RadialDistance(const Trajectory& trajectory, double epsilon_m) {
  STCOMP_CHECK(epsilon_m >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  IndexList kept;
  if (n == 0) {
    return kept;
  }
  kept.push_back(0);
  for (int i = 1; i < n - 1; ++i) {
    const Vec2 last = trajectory[static_cast<size_t>(kept.back())].position;
    if (Distance(trajectory[static_cast<size_t>(i)].position, last) >=
        epsilon_m) {
      kept.push_back(i);
    }
  }
  if (n > 1) {
    kept.push_back(n - 1);
  }
  return kept;
}

}  // namespace stcomp::algo
