#include "stcomp/algo/opening_window.h"

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"

namespace stcomp::algo {

double PerpendicularWindowDistance(TrajectoryView trajectory, int anchor,
                                   int float_index, int i) {
  return PointToLineDistance(
      trajectory[static_cast<size_t>(i)].position,
      trajectory[static_cast<size_t>(anchor)].position,
      trajectory[static_cast<size_t>(float_index)].position);
}

double SynchronizedWindowDistance(TrajectoryView trajectory, int anchor,
                                  int float_index, int i) {
  return SynchronizedDistance(trajectory[static_cast<size_t>(anchor)],
                              trajectory[static_cast<size_t>(float_index)],
                              trajectory[static_cast<size_t>(i)]);
}

void OpeningWindow(TrajectoryView trajectory, double epsilon,
                   BreakPolicy policy, const WindowDistanceFn& distance,
                   IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  out.clear();
  out.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    // Find the first interior violation of the current window. All interior
    // points must be re-examined whenever the float moves: for the
    // synchronized distance the approximation of *every* interior point
    // depends on the float (this is what makes the family O(N^2)).
    int violation = -1;
    for (int i = anchor + 1; i < float_index; ++i) {
      if (distance(trajectory, anchor, float_index, i) > epsilon) {
        violation = i;
        break;
      }
    }
    if (violation < 0) {
      ++float_index;
      continue;
    }
    const int cut =
        policy == BreakPolicy::kNormal ? violation : float_index - 1;
    // Both choices are > anchor: violation >= anchor + 1 and
    // float_index - 1 >= anchor + 1.
    out.push_back(cut);
    anchor = cut;
    float_index = anchor + 2;
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

IndexList OpeningWindow(TrajectoryView trajectory, double epsilon,
                        BreakPolicy policy, const WindowDistanceFn& distance) {
  IndexList kept;
  OpeningWindow(trajectory, epsilon, policy, distance, kept);
  return kept;
}

void Nopw(TrajectoryView trajectory, double epsilon_m, IndexList& out) {
  OpeningWindow(trajectory, epsilon_m, BreakPolicy::kNormal,
                PerpendicularWindowDistance, out);
}

IndexList Nopw(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  Nopw(trajectory, epsilon_m, kept);
  return kept;
}

void Bopw(TrajectoryView trajectory, double epsilon_m, IndexList& out) {
  OpeningWindow(trajectory, epsilon_m, BreakPolicy::kBefore,
                PerpendicularWindowDistance, out);
}

IndexList Bopw(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  Bopw(trajectory, epsilon_m, kept);
  return kept;
}

}  // namespace stcomp::algo
