#include "stcomp/algo/opening_window.h"

#include <cstddef>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/core/trajectory_view_soa.h"
#include "stcomp/geom/kernels.h"

namespace stcomp::algo {

double PerpendicularWindowDistance(TrajectoryView trajectory, int anchor,
                                   int float_index, int i) {
  return PointToLineDistance(
      trajectory[static_cast<size_t>(i)].position,
      trajectory[static_cast<size_t>(anchor)].position,
      trajectory[static_cast<size_t>(float_index)].position);
}

double SynchronizedWindowDistance(TrajectoryView trajectory, int anchor,
                                  int float_index, int i) {
  return SynchronizedDistance(trajectory[static_cast<size_t>(anchor)],
                              trajectory[static_cast<size_t>(float_index)],
                              trajectory[static_cast<size_t>(i)]);
}

void OpeningWindow(TrajectoryView trajectory, double epsilon,
                   BreakPolicy policy, const WindowDistanceFn& distance,
                   IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  out.clear();
  out.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    // Find the first interior violation of the current window. All interior
    // points must be re-examined whenever the float moves: for the
    // synchronized distance the approximation of *every* interior point
    // depends on the float (this is what makes the family O(N^2)).
    int violation = -1;
    for (int i = anchor + 1; i < float_index; ++i) {
      if (distance(trajectory, anchor, float_index, i) > epsilon) {
        violation = i;
        break;
      }
    }
    if (violation < 0) {
      ++float_index;
      continue;
    }
    const int cut =
        policy == BreakPolicy::kNormal ? violation : float_index - 1;
    // Both choices are > anchor: violation >= anchor + 1 and
    // float_index - 1 >= anchor + 1.
    out.push_back(cut);
    anchor = cut;
    float_index = anchor + 2;
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

IndexList OpeningWindow(TrajectoryView trajectory, double epsilon,
                        BreakPolicy policy, const WindowDistanceFn& distance) {
  IndexList kept;
  OpeningWindow(trajectory, epsilon, policy, distance, kept);
  return kept;
}

void OpeningWindow(TrajectoryView trajectory, double epsilon,
                   BreakPolicy policy, WindowCriterion criterion,
                   Workspace& workspace, IndexList& out) {
  STCOMP_CHECK(epsilon >= 0.0);
  const int n = static_cast<int>(trajectory.size());
  if (n <= 2) {
    KeepAll(trajectory, out);
    return;
  }
  // Kernelised form of the generic loop above: the whole interior of the
  // current window is scanned by one batched first-violation call per
  // float advance. Same O(N^2) scan structure (every interior point must
  // be re-examined whenever the float moves), but each scan runs at
  // vector width. The per-point formulas in geom/kernels.h are the ones
  // PerpendicularWindowDistance / SynchronizedWindowDistance route
  // through, so the kept set is bit-identical to the generic path.
  const TrajectoryViewSoA soa =
      TrajectoryViewSoA::Repack(trajectory, workspace.soa);
  const kernels::KernelOps& ops = kernels::KernelDispatch::Get();
  const double* x = soa.x();
  const double* y = soa.y();
  const double* t = soa.t();
  out.clear();
  out.push_back(0);
  int anchor = 0;
  int float_index = anchor + 2;
  while (float_index < n) {
    const size_t base = static_cast<size_t>(anchor) + 1;
    const size_t count = static_cast<size_t>(float_index - anchor - 1);
    const size_t f = static_cast<size_t>(float_index);
    const size_t a = static_cast<size_t>(anchor);
    std::ptrdiff_t hit;
    if (criterion == WindowCriterion::kSynchronized) {
      const kernels::SedSegment seg{x[a], y[a], t[a], x[f], y[f], t[f]};
      hit = ops.sed_first_above(x + base, y + base, t + base, count, seg,
                                epsilon);
    } else {
      const kernels::LineSegment seg{x[a], y[a], x[f], y[f]};
      hit = ops.perp_first_above(x + base, y + base, count, seg, epsilon);
    }
    if (hit < 0) {
      ++float_index;
      continue;
    }
    const int violation = anchor + 1 + static_cast<int>(hit);
    const int cut =
        policy == BreakPolicy::kNormal ? violation : float_index - 1;
    out.push_back(cut);
    anchor = cut;
    float_index = anchor + 2;
  }
  if (out.back() != n - 1) {
    out.push_back(n - 1);
  }
}

void Nopw(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
          IndexList& out) {
  OpeningWindow(trajectory, epsilon_m, BreakPolicy::kNormal,
                WindowCriterion::kPerpendicular, workspace, out);
}

void Nopw(TrajectoryView trajectory, double epsilon_m, IndexList& out) {
  Workspace workspace;
  Nopw(trajectory, epsilon_m, workspace, out);
}

IndexList Nopw(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  Nopw(trajectory, epsilon_m, kept);
  return kept;
}

void Bopw(TrajectoryView trajectory, double epsilon_m, Workspace& workspace,
          IndexList& out) {
  OpeningWindow(trajectory, epsilon_m, BreakPolicy::kBefore,
                WindowCriterion::kPerpendicular, workspace, out);
}

void Bopw(TrajectoryView trajectory, double epsilon_m, IndexList& out) {
  Workspace workspace;
  Bopw(trajectory, epsilon_m, workspace, out);
}

IndexList Bopw(TrajectoryView trajectory, double epsilon_m) {
  IndexList kept;
  Bopw(trajectory, epsilon_m, kept);
  return kept;
}

}  // namespace stcomp::algo
