#include "stcomp/obs/metrics.h"

#include <algorithm>

#include "stcomp/common/check.h"

namespace stcomp::obs {

namespace {

LabelSet Normalised(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Only consulted via STCOMP_DCHECK, which compiles away in NDEBUG builds.
[[maybe_unused]] bool ValidMetricName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      return false;
    }
  }
  return name[0] < '0' || name[0] > '9';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[upper_bounds_.size() + 1]) {
  STCOMP_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  STCOMP_CHECK(std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) ==
               upper_bounds_.end());
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(upper_bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double>* const kBuckets = new std::vector<double>{
      1e-7,   2.5e-7, 5e-7, 1e-6,   2.5e-6, 5e-6, 1e-5,   2.5e-5, 5e-5,
      1e-4,   2.5e-4, 5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2,   2.5e-2, 5e-2,
      1e-1,   2.5e-1, 5e-1, 1.0,    2.5};
  return *kBuckets;
}

const std::vector<double>& RatioBuckets() {
  static const std::vector<double>* const kBuckets = [] {
    auto* buckets = new std::vector<double>;
    for (int i = 1; i <= 20; ++i) {
      buckets->push_back(0.05 * i);
    }
    return buckets;
  }();
  return *kBuckets;
}

const std::vector<double>& SizeBuckets() {
  static const std::vector<double>* const kBuckets = [] {
    auto* buckets = new std::vector<double>;
    for (double bound = 1.0; bound <= 1048576.0; bound *= 4.0) {
      buckets->push_back(bound);
    }
    return buckets;
  }();
  return *kBuckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metric pointers handed to instrumented code must stay
  // valid through static destruction.
  static MetricsRegistry* const kGlobal = new MetricsRegistry;
  return *kGlobal;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, LabelSet labels) {
  STCOMP_DCHECK(ValidMetricName(name));
  const Key key{std::string(name), Normalised(std::move(labels))};
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, LabelSet labels) {
  STCOMP_DCHECK(ValidMetricName(name));
  const Key key{std::string(name), Normalised(std::move(labels))};
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, LabelSet labels,
                                         std::vector<double> upper_bounds) {
  STCOMP_DCHECK(ValidMetricName(name));
  const Key key{std::string(name), Normalised(std::move(labels))};
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snapshot.counters.push_back({key.first, key.second, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snapshot.gauges.push_back({key.first, key.second, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    snapshot.histograms.push_back({key.first, key.second,
                                   histogram->upper_bounds(),
                                   histogram->bucket_counts(),
                                   histogram->count(), histogram->sum()});
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, counter] : counters_) {
    counter->Reset();
  }
  for (const auto& [key, gauge] : gauges_) {
    gauge->Reset();
  }
  for (const auto& [key, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace stcomp::obs
