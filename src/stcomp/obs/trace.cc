#include "stcomp/obs/trace.h"

#include "stcomp/common/check.h"

namespace stcomp::obs {

TraceBuffer& TraceBuffer::Global() {
  // Leaked singleton, same rationale as MetricsRegistry::Global().
  static TraceBuffer* const kGlobal = new TraceBuffer;
  return *kGlobal;
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {
  STCOMP_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // Once wrapped, ring_[next_] is the oldest event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

uint64_t TraceBuffer::NowMicros() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

}  // namespace stcomp::obs
