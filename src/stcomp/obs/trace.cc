#include "stcomp/obs/trace.h"

#include <atomic>
#include <cstdlib>

#include "stcomp/common/check.h"

namespace stcomp::obs {

namespace {

// Per-thread span stack: only the active flag and span id of each open
// span are needed to wire children to parents; spans are strictly nested
// by construction (RAII). A fixed POD array instead of a vector keeps the
// not-sampled hot path to a TLS access plus two plain stores — no
// thread_local init guard, no allocation, no capacity check on pop.
// Nesting deeper than the array (never happens in practice — the pipeline
// is ~4 levels) records nothing for the overflowing spans.
struct SpanFrame {
  uint64_t span_id;
  bool active;
};

constexpr size_t kMaxSpanDepth = 64;

struct SpanStack {
  uint32_t depth = 0;
  SpanFrame frames[kMaxSpanDepth] = {};
};

// The `= {}` on frames makes the whole struct constant-initializable, so
// the TLS access below is a plain address computation — no per-access
// dynamic-init guard on the hot path.
thread_local constinit SpanStack tls_span_stack;

std::atomic<uint64_t> g_next_span_id{1};

uint64_t InitialSampledRootPeriod() {
  const char* env = std::getenv("STCOMP_TRACE_SAMPLE_EVERY");
  if (env != nullptr && env[0] != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<uint64_t>(parsed);
    }
  }
  return TraceBuffer::kDefaultSampledRootPeriod;
}

// 0 means "not initialized yet" (valid periods are >= 1), so the common
// read is one relaxed load + branch with no magic-static guard. The CAS
// makes first-read/first-write races converge on a single value.
constinit std::atomic<uint64_t> g_sampled_root_period{0};

uint64_t EnsureSampledRootPeriod() {
  uint64_t period = g_sampled_root_period.load(std::memory_order_relaxed);
  if (period == 0) {
    uint64_t expected = 0;
    period = InitialSampledRootPeriod();
    if (!g_sampled_root_period.compare_exchange_strong(
            expected, period, std::memory_order_relaxed)) {
      period = expected;
    }
  }
  return period;
}

}  // namespace

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

TraceBuffer& TraceBuffer::Global() {
  // Leaked singleton, same rationale as MetricsRegistry::Global().
  static TraceBuffer* const kGlobal = new TraceBuffer;
  return *kGlobal;
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {
  STCOMP_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

void TraceBuffer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // Once wrapped, ring_[next_] is the oldest event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

uint64_t TraceBuffer::NowMicros() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

uint64_t TraceBuffer::SetSampledRootPeriod(uint64_t period) {
  STCOMP_CHECK(period >= 1);
  // Initialize first so the returned "previous" is the effective period
  // (default or env), never the internal 0 sentinel.
  EnsureSampledRootPeriod();
  return g_sampled_root_period.exchange(period, std::memory_order_relaxed);
}

uint64_t TraceBuffer::SampledRootPeriod() {
  return EnsureSampledRootPeriod();
}

TraceSpan::TraceSpan(std::string_view name, std::string_view detail,
                     TraceBuffer* buffer, bool sampled_root)
    : buffer_(buffer) {
  SpanStack& stack = tls_span_stack;
  if (stack.depth > 0) {
    // A descendant inherits the root's record-or-not decision wholesale:
    // a recorded tree is complete, an unrecorded one costs nothing.
    const SpanFrame& top = stack.frames[stack.depth - 1];
    active_ = top.active;
    parent_id_ = top.span_id;
  } else if (sampled_root) {
    const uint64_t period = TraceBuffer::SampledRootPeriod();
    thread_local uint64_t tick = 0;
    active_ = (tick++ % period) == 0;
  } else {
    active_ = true;
  }
  if (stack.depth >= kMaxSpanDepth) {
    // Overflow: give up on recording this span but keep the destructor's
    // pop balanced by not pushing (buffer_ == nullptr marks it).
    active_ = false;
    buffer_ = nullptr;
    return;
  }
  if (active_) {
    span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    name_.assign(name);
    detail_.assign(detail);
    start_us_ = TraceBuffer::NowMicros();
  }
  stack.frames[stack.depth] = SpanFrame{span_id_, active_};
  ++stack.depth;
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) {
    return;  // overflow span: never pushed a frame
  }
  --tls_span_stack.depth;
  if (!active_) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name_);
  event.detail = std::move(detail_);
  event.start_us = start_us_;
  event.duration_us = TraceBuffer::NowMicros() - start_us_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.thread_id = CurrentThreadId();
  buffer_->Record(std::move(event));
}

}  // namespace stcomp::obs
