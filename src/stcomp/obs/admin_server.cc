#include "stcomp/obs/admin_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "stcomp/common/strings.h"
#include "stcomp/net/socket_util.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/trace.h"

namespace stcomp::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

std::string AdminRequest::QueryParam(std::string_view key) const {
  for (std::string_view pair : Split(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return "";
      continue;
    }
    if (pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return "";
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status AdminServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("admin server already running");
  }
  // Loopback only — the admin surface has no auth (see header comment).
  Result<net::Listener> listener = net::ListenLoopback(port, /*backlog=*/16);
  if (!listener.ok()) return listener.status();
  listen_fd_ = listener->fd;
  port_ = listener->port;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void AdminServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    // Poll with a short timeout so Stop() is observed without needing to
    // kick the blocked accept from another thread.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      continue;
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void AdminServer::HandleConnection(int client_fd) {
  // Read until the end of the request head; everything we need is in the
  // request line. ReadUntil (net/socket_util.h) supplies the slow-loris
  // defenses this loop used to hand-roll: a 16 KB head cap, a wall-clock
  // deadline (a per-read timeout alone would let a client trickling one
  // byte every <2s pin the single accept thread and block Stop() for
  // hours), and prompt observation of running_.
  std::string head;
  net::ReadUntil(
      client_fd, /*max_bytes=*/16 * 1024,
      std::chrono::steady_clock::now() + std::chrono::seconds(5), &running_,
      [](std::string_view buffer) {
        return buffer.find("\r\n\r\n") != std::string_view::npos ||
               buffer.find("\n\n") != std::string_view::npos;
      },
      &head);

  AdminResponse response;
  const size_t line_end = head.find_first_of("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const std::vector<std::string_view> parts =
      Split(std::string_view(request_line), ' ');
  if (parts.size() < 2 || request_line.empty()) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (parts[0] != "GET") {
    response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    AdminRequest request;
    const std::string_view target = parts[1];
    const size_t q = target.find('?');
    request.path = std::string(target.substr(0, q));
    if (q != std::string_view::npos) {
      request.query = std::string(target.substr(q + 1));
    }
    const auto it = handlers_.find(request.path);
    if (it == handlers_.end()) {
      response = {404, "text/plain; charset=utf-8",
                  "not found: " + request.path + "\n"};
    } else {
      response = it->second(request);
    }
  }

  std::string out = StrFormat(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, StatusText(response.status),
      response.content_type.c_str(), response.body.size());
  out += response.body;
  // Best-effort: a client that disconnected mid-response (curl ^C during
  // a large /tracez body) is not an error worth reporting.
  net::SendAll(client_fd, out).ok();
}

void RegisterStandardEndpoints(
    AdminServer& server,
    std::function<std::string(size_t limit)> objectz_json,
    std::function<std::string()> queryz_json,
    std::function<std::string()> ingestz_json) {
  server.Handle("/healthz", [](const AdminRequest&) {
    return AdminResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server.Handle("/metrics", [](const AdminRequest&) {
    return AdminResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                         RenderPrometheus(MetricsRegistry::Global().Snapshot())};
  });
  server.Handle("/tracez", [](const AdminRequest& request) {
    std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
    const std::string object = request.QueryParam("object");
    if (!object.empty()) {
      std::vector<TraceEvent> filtered;
      for (TraceEvent& event : events) {
        if (event.detail == object) {
          filtered.push_back(std::move(event));
        }
      }
      events = std::move(filtered);
    }
    const std::string format = request.QueryParam("format");
    if (format == "json") {
      return AdminResponse{200, "application/json", RenderTraceJson(events)};
    }
    if (format == "perfetto") {
      return AdminResponse{200, "application/json",
                           RenderTracePerfetto(events)};
    }
    if (format == "text") {
      return AdminResponse{200, "text/plain; charset=utf-8",
                           RenderTraceText(events)};
    }
    return AdminResponse{200, "text/plain; charset=utf-8",
                         RenderTraceTree(events)};
  });
  server.Handle("/flightz", [](const AdminRequest& request) {
    const std::vector<FlightEvent> events = FlightRecorder::Global().Snapshot();
    if (request.QueryParam("format") == "json") {
      return AdminResponse{200, "application/json", RenderFlightJson(events)};
    }
    std::string body = RenderFlightText(events);
    body += StrFormat("total_recorded=%llu dropped=%llu\n",
                      static_cast<unsigned long long>(
                          FlightRecorder::Global().total_recorded()),
                      static_cast<unsigned long long>(
                          FlightRecorder::Global().dropped()));
    return AdminResponse{200, "text/plain; charset=utf-8", std::move(body)};
  });
  server.Handle(
      "/objectz",
      [provider = std::move(objectz_json)](const AdminRequest& request) {
        size_t limit = kDefaultObjectzLimit;
        const std::string raw = request.QueryParam("limit");
        if (!raw.empty()) {
          // Digits only; anything else (including negatives) keeps the
          // default rather than surprising the caller with "unlimited".
          size_t parsed = 0;
          bool valid = true;
          for (const char c : raw) {
            if (c < '0' || c > '9') {
              valid = false;
              break;
            }
            parsed = parsed * 10 + static_cast<size_t>(c - '0');
          }
          if (valid) {
            limit = parsed;  // 0 = unlimited, by request.
          }
        }
        return AdminResponse{
            200, "application/json",
            provider ? provider(limit) : std::string("{\"objects\":[]}\n")};
      });
  server.Handle("/queryz",
                [provider = std::move(queryz_json)](const AdminRequest&) {
                  return AdminResponse{
                      200, "application/json",
                      provider ? provider()
                               : std::string("{\"queries\":{}}\n")};
                });
  server.Handle(
      "/ingestz", [provider = std::move(ingestz_json)](const AdminRequest&) {
        return AdminResponse{
            200, "application/json",
            provider ? provider()
                     : std::string("{\"server\":null,\"sessions\":[]}\n")};
      });
}

}  // namespace stcomp::obs
