// Runtime observability primitives: lock-cheap atomic Counter/Gauge, a
// fixed-boundary Histogram, and a process-wide MetricsRegistry addressing
// metrics by name + label set. The hot-path operations (Increment, Set,
// Observe) are single relaxed atomics; the registry mutex is touched only
// at registration and snapshot time, so instrumented code pays nanoseconds,
// not locks.
//
// Naming convention (DESIGN.md §10): `stcomp_<layer>_<name>_<unit>` —
// counters end in `_total`, time histograms in `_seconds`; gauges carry a
// unit suffix (`_points`, `_objects`). Labels distinguish instances of the
// same series (e.g. {algorithm="td-tr"}, {compressor="fleet-1"}).
//
// Compile-time kill switch: defining STCOMP_DISABLE_METRICS turns the
// instrumentation *macros* (scoped timers, trace spans, STCOMP_IF_METRICS
// blocks — see timer.h / trace.h) into no-ops. The registry and the metric
// value types stay compiled in every configuration because product APIs
// (e.g. FleetCompressor::fixes_in()) are shims over registry counters; a
// bare counter increment is a single relaxed atomic add and is kept live
// even in the disabled build.

#ifndef STCOMP_OBS_METRICS_H_
#define STCOMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#define STCOMP_OBS_CONCAT_INNER_(a, b) a##b
#define STCOMP_OBS_CONCAT_(a, b) STCOMP_OBS_CONCAT_INNER_(a, b)

#ifdef STCOMP_DISABLE_METRICS
#define STCOMP_METRICS_ENABLED 0
// Compiles `stmt` out entirely (use for instrumentation that is not part of
// a product API contract: gauge refreshes, histogram observations, ...).
#define STCOMP_IF_METRICS(stmt) \
  do {                          \
  } while (false)
#else
#define STCOMP_METRICS_ENABLED 1
#define STCOMP_IF_METRICS(stmt) \
  do {                          \
    stmt;                       \
  } while (false)
#endif

namespace stcomp::obs {

// Sorted key/value pairs identifying one series of a metric family.
// Registry lookups sort them, so callers may pass labels in any order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// A monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

// A value that can go up and down (working-set sizes, queue depths).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

// A distribution over fixed, strictly increasing upper boundaries. An
// implicit +Inf bucket catches everything above the last boundary, so
// bucket_counts() has upper_bounds().size() + 1 entries. Bucket i counts
// observations v with v <= upper_bounds()[i] (and > the previous bound) —
// the Prometheus `le` convention.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value) {
    size_t i = 0;
    const size_t n = upper_bounds_.size();
    while (i < n && value > upper_bounds_[i]) {
      ++i;
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  void Reset();

  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Shared boundary presets so series of the same kind are comparable.
const std::vector<double>& LatencyBucketsSeconds();  // 100 ns .. 2.5 s, log
const std::vector<double>& RatioBuckets();           // 0.05 .. 1.0, linear
const std::vector<double>& SizeBuckets();            // 1 .. 4^10, powers of 4

// Point-in-time copies of every registered series, sorted by (name, labels)
// — the exposition formats (exposition.h) render these.
struct CounterSample {
  std::string name;
  LabelSet labels;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  LabelSet labels;
  std::vector<double> upper_bounds;
  std::vector<uint64_t> buckets;  // non-cumulative; last entry is +Inf
  uint64_t count = 0;
  double sum = 0.0;
};
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

// The process-wide metric directory. Get* registers on first use and
// returns the same stable pointer for the same (name, labels) afterwards;
// returned pointers live for the registry's lifetime (for Global(), the
// process lifetime), so callers cache them at construction time and never
// touch the registry mutex on hot paths.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, LabelSet labels = {});
  // Boundaries are fixed by the first registration of a series; subsequent
  // calls for the same (name, labels) return the existing histogram.
  Histogram* GetHistogram(std::string_view name, LabelSet labels,
                          std::vector<double> upper_bounds);

  MetricsSnapshot Snapshot() const;

  // Zeroes every value while keeping all registered series (and therefore
  // every cached pointer) valid. Test isolation only.
  void ResetForTest();

 private:
  using Key = std::pair<std::string, LabelSet>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace stcomp::obs

#endif  // STCOMP_OBS_METRICS_H_
