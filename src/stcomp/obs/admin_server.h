// Minimal blocking-accept HTTP/1.0 admin server — the process's live
// introspection surface and the repo's first network listener.
//
// Scope is deliberately tiny: GET only, one request per connection
// (Connection: close), one accept thread handling requests serially, no
// TLS, no auth. It binds 127.0.0.1 ONLY — the endpoints expose object
// ids, file paths and timing internals, so never forward the port off a
// trusted host (DESIGN.md §15 lists the caveats). This is an operator
// tool, not a production ingest path — that is net/ingest_server.h; the
// two share socket plumbing via net/socket_util.h.
//
// Standard endpoints (RegisterStandardEndpoints):
//   /metrics  Prometheus text exposition 0.0.4 of the global registry
//   /healthz  "ok\n" — liveness probe
//   /tracez   span tree from the global TraceBuffer
//             (?format=text|tree|json|perfetto, ?object= filters by the
//             span detail tag)
//   /objectz  per-object fixes in/out, ratio and policy state (JSON),
//             from the caller-supplied provider
//   /flightz  flight-recorder snapshot (?format=text|json)
//   /queryz   query-layer counters and latency summary (JSON), from the
//             caller-supplied provider (store/query.h RenderQueryzJson)
//   /ingestz  network-ingest server and per-session state (JSON), from
//             the caller-supplied provider
//             (net/ingest_server.h RenderIngestzJson)

#ifndef STCOMP_OBS_ADMIN_SERVER_H_
#define STCOMP_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "stcomp/common/status.h"

namespace stcomp::obs {

struct AdminRequest {
  std::string path;   // decoded path, e.g. "/tracez"
  std::string query;  // raw query string after '?', may be empty

  // Value of `key` in the query string ("" when absent). Handles
  // k1=v1&k2=v2; no percent-decoding (admin values are plain tokens).
  std::string QueryParam(std::string_view key) const;
};

struct AdminResponse {
  int status = 200;  // 200, 404, ...
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  using Handler = std::function<AdminResponse(const AdminRequest&)>;

  AdminServer() = default;
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Registers `handler` for exact path `path`. Must be called before
  // Start(); later registrations race the accept thread.
  void Handle(std::string path, Handler handler);

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back via
  // port()) and starts the accept thread. kUnavailable on bind failure.
  Status Start(uint16_t port);

  // The bound port; 0 before Start() succeeds.
  uint16_t port() const { return port_; }

  // Stops accepting, joins the thread. Idempotent; also run by ~AdminServer.
  void Stop();

 private:
  void Serve();
  void HandleConnection(int client_fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

// /objectz renders at most this many objects unless the request says
// otherwise (?limit=N; 0 = unlimited) — a million-object fleet must not
// turn a dashboard poll into a hundred-megabyte response.
inline constexpr size_t kDefaultObjectzLimit = 1000;

// Wires the standard endpoints into `server`. `objectz_json` is called
// per /objectz request with the resolved entry limit (0 = unlimited) and
// must return a JSON document honoring it (e.g.
// FleetCompressor::RenderObjectsJson or the sharded engine's aggregate);
// pass nullptr to serve an empty object list. `queryz_json` is called per
// /queryz request (typically stcomp::RenderQueryzJson) and `ingestz_json`
// per /ingestz request (typically net::IngestServer::RenderIngestzJson);
// pass nullptr to serve an empty document. The caller must ensure the
// providers are safe to call from the server thread for as long as the
// server runs.
void RegisterStandardEndpoints(
    AdminServer& server, std::function<std::string(size_t limit)> objectz_json,
    std::function<std::string()> queryz_json = nullptr,
    std::function<std::string()> ingestz_json = nullptr);

}  // namespace stcomp::obs

#endif  // STCOMP_OBS_ADMIN_SERVER_H_
