#include "stcomp/obs/exposition.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "stcomp/common/strings.h"

namespace stcomp::obs {

namespace {

std::string FormatDouble(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

// JSON numbers cannot express NaN/Inf; emit null for them.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  return FormatDouble(value);
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// {k="v",k2="v2"} or "" for an unlabelled series. Both the Prometheus and
// the text renderer use this spelling.
std::string LabelString(const LabelSet& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

void AppendSeriesLine(std::string_view name, const LabelSet& labels,
                      std::string_view value, std::string* out) {
  std::string series = std::string(name) + LabelString(labels);
  out->append(series);
  // Pad to a readable column without truncating long series names.
  constexpr size_t kValueColumn = 64;
  const size_t pad =
      series.size() < kValueColumn ? kValueColumn - series.size() : 1;
  out->append(pad, ' ');
  out->append(value);
  out->append("\n");
}

}  // namespace

Result<MetricsFormat> ParseMetricsFormat(std::string_view name) {
  const std::string lower = AsciiLower(std::string(name));
  if (lower == "text") {
    return MetricsFormat::kText;
  }
  if (lower == "json") {
    return MetricsFormat::kJson;
  }
  if (lower == "prometheus" || lower == "prom") {
    return MetricsFormat::kPrometheus;
  }
  return InvalidArgumentError("unknown metrics format '" + std::string(name) +
                              "'; expected text, json or prometheus");
}

double ApproximateQuantile(const HistogramSample& histogram, double q) {
  if (histogram.count == 0) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(histogram.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < histogram.buckets.size(); ++i) {
    const uint64_t in_bucket = histogram.buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const bool is_inf_bucket = i >= histogram.upper_bounds.size();
      const double upper = is_inf_bucket
                               ? histogram.upper_bounds.empty()
                                     ? 0.0
                                     : histogram.upper_bounds.back()
                               : histogram.upper_bounds[i];
      if (is_inf_bucket) {
        return upper;  // clamp: no finite width to interpolate within
      }
      const double lower = i == 0 ? 0.0 : histogram.upper_bounds[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return histogram.upper_bounds.empty() ? 0.0 : histogram.upper_bounds.back();
}

std::string RenderText(const MetricsSnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "== counters ==\n";
    for (const CounterSample& counter : snapshot.counters) {
      AppendSeriesLine(counter.name, counter.labels,
                       std::to_string(counter.value), &out);
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "== gauges ==\n";
    for (const GaugeSample& gauge : snapshot.gauges) {
      AppendSeriesLine(gauge.name, gauge.labels, FormatDouble(gauge.value),
                       &out);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "== histograms ==\n";
    for (const HistogramSample& histogram : snapshot.histograms) {
      const double mean =
          histogram.count == 0
              ? 0.0
              : histogram.sum / static_cast<double>(histogram.count);
      char stats[256];
      std::snprintf(stats, sizeof(stats),
                    "count=%" PRIu64 " sum=%s mean=%s p50=%s p95=%s p99=%s",
                    histogram.count, FormatDouble(histogram.sum).c_str(),
                    FormatDouble(mean).c_str(),
                    FormatDouble(ApproximateQuantile(histogram, 0.50)).c_str(),
                    FormatDouble(ApproximateQuantile(histogram, 0.95)).c_str(),
                    FormatDouble(ApproximateQuantile(histogram, 0.99)).c_str());
      AppendSeriesLine(histogram.name, histogram.labels, stats, &out);
    }
  }
  if (out.empty()) {
    out = "(no metrics recorded)\n";
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& counter : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + JsonEscape(counter.name) +
           "\",\"labels\":" + JsonLabels(counter.labels) +
           ",\"value\":" + std::to_string(counter.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  first = true;
  for (const GaugeSample& gauge : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + JsonEscape(gauge.name) +
           "\",\"labels\":" + JsonLabels(gauge.labels) +
           ",\"value\":" + JsonNumber(gauge.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  first = true;
  for (const HistogramSample& histogram : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + JsonEscape(histogram.name) +
           "\",\"labels\":" + JsonLabels(histogram.labels) +
           ",\"count\":" + std::to_string(histogram.count) +
           ",\"sum\":" + JsonNumber(histogram.sum) + ",\"buckets\":[";
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      const std::string le = i < histogram.upper_bounds.size()
                                 ? JsonNumber(histogram.upper_bounds[i])
                                 : "\"+Inf\"";
      out += "{\"le\":" + le +
             ",\"count\":" + std::to_string(histogram.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const CounterSample& counter : snapshot.counters) {
    if (counter.name != last_name) {
      out += "# TYPE " + counter.name + " counter\n";
      last_name = counter.name;
    }
    out += counter.name + LabelString(counter.labels) + " " +
           std::to_string(counter.value) + "\n";
  }
  last_name.clear();
  for (const GaugeSample& gauge : snapshot.gauges) {
    if (gauge.name != last_name) {
      out += "# TYPE " + gauge.name + " gauge\n";
      last_name = gauge.name;
    }
    out += gauge.name + LabelString(gauge.labels) + " " +
           FormatDouble(gauge.value) + "\n";
  }
  last_name.clear();
  for (const HistogramSample& histogram : snapshot.histograms) {
    if (histogram.name != last_name) {
      out += "# TYPE " + histogram.name + " histogram\n";
      last_name = histogram.name;
    }
    // Prometheus buckets are cumulative and le-labelled; the le label joins
    // any series labels.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      LabelSet with_le = histogram.labels;
      with_le.emplace_back("le", i < histogram.upper_bounds.size()
                                     ? FormatDouble(histogram.upper_bounds[i])
                                     : "+Inf");
      out += histogram.name + "_bucket" + LabelString(with_le) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += histogram.name + "_sum" + LabelString(histogram.labels) + " " +
           FormatDouble(histogram.sum) + "\n";
    out += histogram.name + "_count" + LabelString(histogram.labels) + " " +
           std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string RenderMetrics(const MetricsSnapshot& snapshot,
                          MetricsFormat format) {
  switch (format) {
    case MetricsFormat::kText:
      return RenderText(snapshot);
    case MetricsFormat::kJson:
      return RenderJson(snapshot);
    case MetricsFormat::kPrometheus:
      return RenderPrometheus(snapshot);
  }
  return "";
}

std::string RenderTraceText(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "%12.3f ms  +%10.3f ms  t%02u  #%-6llu<#%-6llu %s%s%s\n",
                  static_cast<double>(event.start_us) / 1000.0,
                  static_cast<double>(event.duration_us) / 1000.0,
                  event.thread_id,
                  static_cast<unsigned long long>(event.span_id),
                  static_cast<unsigned long long>(event.parent_id),
                  event.name.c_str(), event.detail.empty() ? "" : " ",
                  event.detail.c_str());
    out += line;
  }
  if (out.empty()) {
    out = "(no trace spans recorded)\n";
  }
  return out;
}

std::string RenderTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\":\"" + JsonEscape(event.name) + "\",\"detail\":\"" +
           JsonEscape(event.detail) +
           "\",\"start_us\":" + std::to_string(event.start_us) +
           ",\"duration_us\":" + std::to_string(event.duration_us) +
           ",\"span_id\":" + std::to_string(event.span_id) +
           ",\"parent_id\":" + std::to_string(event.parent_id) +
           ",\"thread_id\":" + std::to_string(event.thread_id) + "}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

namespace {

void AppendTreeNode(const std::vector<TraceEvent>& events, size_t index,
                    const std::vector<std::vector<size_t>>& children,
                    int depth, std::string* out) {
  const TraceEvent& event = events[index];
  char line[320];
  std::snprintf(line, sizeof(line), "%12.3f ms  +%10.3f ms  t%02u  %*s%s%s%s\n",
                static_cast<double>(event.start_us) / 1000.0,
                static_cast<double>(event.duration_us) / 1000.0,
                event.thread_id, depth * 2, "", event.name.c_str(),
                event.detail.empty() ? "" : " ", event.detail.c_str());
  *out += line;
  for (size_t child : children[index]) {
    AppendTreeNode(events, child, children, depth + 1, out);
  }
}

}  // namespace

std::string RenderTraceTree(const std::vector<TraceEvent>& events) {
  // Index spans by id, then hang each span off its parent. A parent whose
  // event was overwritten in the ring (or is still open) leaves its
  // children promoted to roots — the forest stays renderable.
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].span_id != 0) {
      by_id[events[i].span_id] = i;
    }
  }
  std::vector<std::vector<size_t>> children(events.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < events.size(); ++i) {
    const auto parent = by_id.find(events[i].parent_id);
    if (events[i].parent_id != 0 && parent != by_id.end() &&
        parent->second != i) {
      children[parent->second].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  // Children recorded oldest-finished first; order each sibling list (and
  // the roots) by start time so the tree reads chronologically.
  const auto by_start = [&events](size_t a, size_t b) {
    return events[a].start_us < events[b].start_us;
  };
  for (auto& list : children) {
    std::sort(list.begin(), list.end(), by_start);
  }
  std::sort(roots.begin(), roots.end(), by_start);
  std::string out;
  for (size_t root : roots) {
    AppendTreeNode(events, root, children, 0, &out);
  }
  if (out.empty()) {
    out = "(no trace spans recorded)\n";
  }
  return out;
}

std::string RenderTracePerfetto(const std::vector<TraceEvent>& events) {
  // Chrome/Perfetto trace_event JSON: one complete ("ph":"X") event per
  // span, microsecond timestamps, thread id as tid so each pipeline
  // thread gets its own track in chrome://tracing.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\":\"" + JsonEscape(event.name) +
           "\",\"cat\":\"stcomp\",\"ph\":\"X\",\"ts\":" +
           std::to_string(event.start_us) +
           ",\"dur\":" + std::to_string(event.duration_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(event.thread_id) +
           ",\"args\":{\"detail\":\"" + JsonEscape(event.detail) +
           "\",\"span_id\":" + std::to_string(event.span_id) +
           ",\"parent_id\":" + std::to_string(event.parent_id) + "}}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace stcomp::obs
