// Lightweight trace spans: named start/duration events recorded into a
// bounded ring buffer. Spans answer "what did this process just do and how
// long did each step take" — the per-request view the aggregate metrics in
// metrics.h deliberately blur. Recording takes a mutex (spans mark
// coarse-grained work: an object finish, a file load — not per-fix pushes);
// the ring overwrites the oldest events, so the buffer is a fixed-size
// flight recorder, never an unbounded log.

#ifndef STCOMP_OBS_TRACE_H_
#define STCOMP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "stcomp/obs/metrics.h"

namespace stcomp::obs {

struct TraceEvent {
  std::string name;    // span name, e.g. "fleet.finish_object"
  std::string detail;  // free-form instance detail, e.g. the object id
  uint64_t start_us = 0;     // microseconds since the process trace epoch
  uint64_t duration_us = 0;  // span length in microseconds
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(TraceEvent event);

  // Buffered events, oldest first (at most `capacity` of them).
  std::vector<TraceEvent> Snapshot() const;

  // Events recorded over the buffer's lifetime, including overwritten ones.
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

  void Clear();

  // Microseconds since the first call in this process (the trace epoch).
  static uint64_t NowMicros();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        // ring_[next_] is the oldest once wrapped
  uint64_t total_ = 0;
};

// RAII span: captures the start time at construction and records the event
// on destruction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string detail = {},
                     TraceBuffer* buffer = &TraceBuffer::Global())
      : buffer_(buffer),
        name_(std::move(name)),
        detail_(std::move(detail)),
        start_us_(TraceBuffer::NowMicros()) {}
  ~TraceSpan() {
    buffer_->Record({std::move(name_), std::move(detail_), start_us_,
                     TraceBuffer::NowMicros() - start_us_});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  std::string name_;
  std::string detail_;
  uint64_t start_us_;
};

}  // namespace stcomp::obs

#if STCOMP_METRICS_ENABLED
#define STCOMP_TRACE_SPAN(name, detail)                             \
  ::stcomp::obs::TraceSpan STCOMP_OBS_CONCAT_(stcomp_obs_span_,     \
                                              __LINE__)(name, detail)
#else
#define STCOMP_TRACE_SPAN(name, detail) \
  do {                                  \
  } while (false)
#endif

#endif  // STCOMP_OBS_TRACE_H_
