// Causal trace spans: named start/duration events with span contexts —
// span id, parent id, thread id, free-form tag — recorded into a bounded
// ring buffer. Spans answer "what did this process just do, in what order,
// nested how, and how long did each step take" — the per-request view the
// aggregate metrics in metrics.h deliberately blur.
//
// Causality: every thread keeps an implicit span stack. A TraceSpan
// constructed while another span is open on the same thread becomes its
// child (parent_id links the two), so one object's journey through the
// pipeline — ingest gate → compressor → WAL append → segment checkpoint —
// is a connected tree as long as the layers run in one call stack.
// RenderTraceTree (exposition.h) reconstructs the forest; the Perfetto
// exporter loads it straight into chrome://tracing.
//
// Sampling: coarse spans (an object finish, a checkpoint) record always
// via STCOMP_TRACE_SPAN. Hot-path roots (a per-fix push) use
// STCOMP_TRACE_SPAN_SAMPLED: the record decision is made once at the root
// (1 in SampledRootPeriod() by default) and inherited by every descendant,
// so a sampled trace is always a *complete* tree, never a torn one.
// Inactive spans never touch the buffer, never allocate, and cost a few
// branches. Recording takes a mutex — acceptable because sampling keeps
// it off the per-fix fast path; truly per-event evidence belongs in the
// lock-free flight recorder (flight_recorder.h).

#ifndef STCOMP_OBS_TRACE_H_
#define STCOMP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/obs/metrics.h"

namespace stcomp::obs {

// Small, dense per-process thread number (1, 2, 3, ... in first-use
// order) — stable for the thread's lifetime, never 0. Used by trace
// spans and the flight recorder so events from SweepManyParallel workers
// and the admin server are distinguishable.
uint32_t CurrentThreadId();

struct TraceEvent {
  std::string name;    // span name, e.g. "fleet.finish_object"
  std::string detail;  // free-form instance tag, e.g. the object id
  uint64_t start_us = 0;     // microseconds since the process trace epoch
  uint64_t duration_us = 0;  // span length in microseconds
  uint64_t span_id = 0;      // unique per recorded span; never 0
  uint64_t parent_id = 0;    // enclosing span on the same thread; 0 = root
  uint32_t thread_id = 0;    // CurrentThreadId() of the recording thread
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(TraceEvent event);

  // Buffered events, oldest first (at most `capacity` of them).
  std::vector<TraceEvent> Snapshot() const;

  // Events recorded over the buffer's lifetime, including overwritten ones.
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

  void Clear();

  // Microseconds since the first call in this process (the trace epoch).
  static uint64_t NowMicros();

  // Head-sampling period for STCOMP_TRACE_SPAN_SAMPLED roots: 1 in
  // `period` hot-path root spans records (per thread). The initial value
  // comes from the STCOMP_TRACE_SAMPLE_EVERY environment variable when
  // set, else kDefaultSampledRootPeriod. Setting 1 traces every push —
  // the switch tests and the /tracez acceptance path flip. Returns the
  // previous period; `period` must be >= 1.
  static constexpr uint64_t kDefaultSampledRootPeriod = 64;
  static uint64_t SetSampledRootPeriod(uint64_t period);
  static uint64_t SampledRootPeriod();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        // ring_[next_] is the oldest once wrapped
  uint64_t total_ = 0;
};

// RAII span: captures the start time at construction, records the event
// on destruction, and maintains the thread's span stack so descendants
// link to it. `sampled_root` marks a hot-path root: when constructed with
// an empty stack it consults the sampling period and may deactivate the
// whole subtree (descendants inherit the decision).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, std::string_view detail = {},
                     TraceBuffer* buffer = &TraceBuffer::Global(),
                     bool sampled_root = false);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  // 0 when the span is inactive (not sampled).
  uint64_t span_id() const { return span_id_; }

 private:
  TraceBuffer* buffer_;
  std::string name_;    // materialized only when active
  std::string detail_;  // materialized only when active
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace stcomp::obs

#if STCOMP_METRICS_ENABLED
#define STCOMP_TRACE_SPAN(name, detail)                             \
  ::stcomp::obs::TraceSpan STCOMP_OBS_CONCAT_(stcomp_obs_span_,     \
                                              __LINE__)(name, detail)
// Hot-path root: records 1 in TraceBuffer::SampledRootPeriod() trees.
#define STCOMP_TRACE_SPAN_SAMPLED(name, detail)                     \
  ::stcomp::obs::TraceSpan STCOMP_OBS_CONCAT_(stcomp_obs_span_,     \
                                              __LINE__)(            \
      name, detail, &::stcomp::obs::TraceBuffer::Global(), true)
#else
#define STCOMP_TRACE_SPAN(name, detail) \
  do {                                  \
  } while (false)
#define STCOMP_TRACE_SPAN_SAMPLED(name, detail) \
  do {                                          \
  } while (false)
#endif

#endif  // STCOMP_OBS_TRACE_H_
