// Lock-free per-thread flight recorder: the last-moments evidence trail
// the mutexed trace buffer cannot be (DESIGN.md §15).
//
// Record() is wait-free on the hot path — a handful of relaxed atomic
// stores into the calling thread's own fixed-size ring, no mutex, no
// allocation, no string construction — so pipeline transitions (object
// arrival, gate decisions, batch appends, WAL commits) can leave
// structured events unconditionally, not sampled. Transitions, not
// steady-state traffic: a per-fix event stream would lap the ring in
// milliseconds and erase the history a post-mortem dump exists to keep. Memory is bounded by
// capacity_per_thread × max_threads entries of sizeof(Entry); the ring
// overwrites its oldest events and every overwritten or otherwise lost
// event is accounted in dropped(), so
//
//   delivered-by-Drain + dropped() + still-buffered == total_recorded()
//
// holds exactly even while writers race a drainer (the TSan suite in
// tests/flight_recorder_test.cc asserts it).
//
// Dumps: DumpGlobal(reason) renders the global recorder's snapshot and
// hands it to the dump sink (stderr by default). The store and stream
// layers call it automatically on WAL sticky death, Fsck corruption and
// ingest quarantine transitions — the crash report writes itself. A
// per-process dump budget keeps pathological loops (a fuzzer feeding
// corrupt stores) from flooding stderr.

#ifndef STCOMP_OBS_FLIGHT_RECORDER_H_
#define STCOMP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/obs/metrics.h"

namespace stcomp::obs {

// What happened, at a pipeline boundary. Codes are stable identifiers
// (events carry them as u16); add at the end.
enum class FlightCode : uint16_t {
  kNone = 0,
  // Stream layer.
  kFleetPush = 1,         // object's first fix arrived; arg0 = fixes_in (1)
  kFleetFinishObject = 2,  // arg0 = fixes_out for the object
  kGateDrop = 3,          // arg0 = consecutive faults
  kGateRepair = 4,
  kGateQuarantine = 5,    // the transition, once per object
  kGateRejected = 6,      // kReject surfaced an error to the caller
  // Store layer.
  kStoreAppend = 7,       // SegmentStore::Append accepted; arg0 = boundary
  kWalCommit = 8,         // arg0 = records in batch, arg1 = boundary
  kWalTruncate = 9,       // arg0 = boundary
  kWalDeath = 10,         // sticky death; arg0 = boundary
  kCheckpoint = 11,       // arg0 = segment sequence
  kRecovery = 12,         // arg0 = records replayed, arg1 = frames salvaged
  kFsckCorrupt = 13,      // arg0 = files flagged
  // Free-form probe for tests/benches.
  kProbe = 14,
  // Stream layer (continued; codes are append-only).
  kFleetDrain = 15,       // fleet batch reached the store; arg0 = points
                          // appended, arg1 = object's cumulative fixes_out
  kShardBackpressure = 16,  // producer blocked on a full shard queue;
                            // arg0 = queue depth, arg1 = shard's lifetime
                            // backpressure waits
  kShardError = 17,       // first async error recorded on a shard;
                          // arg0 = status code, arg1 = shard index
  // Network ingest layer (net/ingest_server.*).
  kNetAccept = 18,        // session accepted; arg0 = session id,
                          // arg1 = active sessions after the accept
  kNetShed = 19,          // session shed with GOAWAY; arg0 = session id,
                          // arg1 = GoAwayReason
  kNetProtocolError = 20,  // malformed/out-of-state frame ⇒ typed error
                           // frame + close; arg0 = session id,
                           // arg1 = NetErrorCode
  kNetDrain = 21,         // graceful Stop() drain; arg0 = sessions
                          // drained, arg1 = batches acked lifetime
};

// Stable lowercase name for rendering ("wal_commit", ...).
std::string_view FlightCodeName(FlightCode code);

// One recorded event, as returned by Snapshot()/Drain().
struct FlightEvent {
  uint64_t seq = 0;       // per-thread sequence number (dense from 0)
  uint64_t t_us = 0;      // coarse NowMicros clock: exact on every 64th
                          // record per thread, last-refreshed in between
                          // (per-thread order stays exact via seq)
  uint32_t thread_id = 0;  // CurrentThreadId() of the writer
  FlightCode code = FlightCode::kNone;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  char tag[24] = {};      // truncated, NUL-terminated object id / detail
};

class FlightRecorder {
 public:
  static constexpr size_t kTagCapacity = sizeof(FlightEvent::tag);
  static constexpr size_t kDefaultCapacityPerThread = 2048;
  static constexpr size_t kDefaultMaxThreads = 64;

  static FlightRecorder& Global();

  // `capacity_per_thread` is rounded up to a power of two so the ring
  // index is a mask, not a division, on the Record() hot path.
  explicit FlightRecorder(size_t capacity_per_thread = kDefaultCapacityPerThread,
                          size_t max_threads = kDefaultMaxThreads);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Wait-free, allocation-free structured event write into the calling
  // thread's ring. `tag` is truncated to kTagCapacity - 1 bytes. If every
  // thread slot is taken the event is counted dropped instead of recorded.
  void Record(FlightCode code, std::string_view tag, uint64_t arg0 = 0,
              uint64_t arg1 = 0);

  // Non-destructive merged view of every thread's buffered events, sorted
  // by (t_us, thread, seq). Events overwritten mid-read are skipped (a
  // later Drain accounts for them). Safe against concurrent writers.
  std::vector<FlightEvent> Snapshot() const;

  // Destructive read: returns every event recorded since the previous
  // Drain that still survives in its ring, advances the per-thread
  // cursors, and adds everything lost (ring overwrite, torn read) to the
  // drop counter — each sequence number is either delivered or counted
  // dropped, exactly once. Single drainer at a time; writers may race.
  std::vector<FlightEvent> Drain();

  // Record() calls over the recorder's lifetime (including dropped ones).
  uint64_t total_recorded() const;
  // Events lost: ring overwrites beyond a drain cursor, torn reads, and
  // records refused because max_threads slots were taken.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t capacity_per_thread() const { return capacity_; }
  size_t max_threads() const { return max_threads_; }

  // --- Automatic dumps ------------------------------------------------
  // The sink receives the reason and the RenderFlightText'd snapshot of
  // the *global* recorder. Default writes both to stderr. Returns the
  // previous sink. Process-global; tests install a capturing sink.
  using DumpSink =
      std::function<void(std::string_view reason, const std::string& text)>;
  static DumpSink SetDumpSink(DumpSink sink);

  // Renders Global().Snapshot() and hands it to the sink — called by the
  // WAL sticky-death, Fsck-corruption and quarantine-transition paths,
  // and by `trajectory_tool --flight-dump`. At most `budget` automatic
  // dumps fire per process (default 8) so corrupt-input loops cannot
  // flood stderr; suppressed dumps are counted silently.
  static void DumpGlobal(std::string_view reason);
  static void SetDumpBudgetForTest(uint64_t budget);

 private:
  // One ring entry. Payload fields are relaxed atomics so a reader racing
  // the overwriting writer is a data-race-free torn read, detected (and
  // discarded) via the seq stamp around it: the writer invalidates seq,
  // stores the payload, then publishes the new seq with release order.
  // Exactly one cache line, and aligned to it: a Record() touches a
  // single line, never straddles two.
  struct alignas(64) Entry {
    static constexpr uint64_t kInvalidSeq = ~uint64_t{0};
    std::atomic<uint64_t> seq{kInvalidSeq};
    std::atomic<uint64_t> t_us{0};
    std::atomic<uint64_t> code_thread{0};  // code in low 16, thread << 16
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
    std::atomic<uint64_t> tag_words[kTagCapacity / 8];
  };
  static_assert(sizeof(Entry) == 64, "one entry per cache line");

  // One per writer thread; `head` is single-writer (the owner), read by
  // the drainer with acquire order. `cursor` is drainer-owned. A claimant
  // wins `owner` by CAS (so only one thread ever writes `ring`), then
  // publishes the allocated ring via `ready`; readers skip non-ready
  // slots.
  struct Slot {
    std::atomic<uint32_t> owner{0};  // CurrentThreadId() of the claimant
    std::atomic<bool> ready{false};  // ring allocated and visible
    std::atomic<uint64_t> head{0};   // next sequence number to write
    uint64_t cursor = 0;             // first undrained sequence number
    uint64_t thread_bits = 0;        // owner << 16, precomputed at claim
    std::unique_ptr<Entry[]> ring;
  };

  Slot* AcquireSlot();
  // Reads ring entry `seq` of `slot`; false if torn/overwritten.
  bool ReadEntry(const Slot& slot, uint64_t seq, FlightEvent* out) const;

  const size_t capacity_;  // power of two
  const uint64_t ring_mask_;  // capacity_ - 1
  const size_t max_threads_;
  const uint64_t instance_id_;  // never-reused key for the TLS slot cache
  std::unique_ptr<Slot[]> slots_;
  std::atomic<size_t> claimed_slots_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> no_slot_records_{0};
};

// Human text, one line per event, oldest first.
std::string RenderFlightText(const std::vector<FlightEvent>& events);
// JSON array of {seq, t_us, thread_id, code, tag, arg0, arg1}.
std::string RenderFlightJson(const std::vector<FlightEvent>& events);

}  // namespace stcomp::obs

#if STCOMP_METRICS_ENABLED
#define STCOMP_FLIGHT_EVENT(code, tag, arg0, arg1)            \
  ::stcomp::obs::FlightRecorder::Global().Record(             \
      ::stcomp::obs::FlightCode::code, tag, arg0, arg1)
#else
#define STCOMP_FLIGHT_EVENT(code, tag, arg0, arg1) \
  do {                                             \
  } while (false)
#endif

#endif  // STCOMP_OBS_FLIGHT_RECORDER_H_
