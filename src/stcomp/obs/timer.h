// RAII scoped timing into latency histograms.
//
// ScopedTimer records every scope (two steady_clock reads, ~50 ns) — right
// for coarse scopes: an algorithm run, a file save, a batch drain.
// SampledScopedTimer records 1 in 64 scopes and costs ~2 ns when inactive —
// right for per-event hot paths (a single fix push, a store append) where
// full timing would itself dominate the measured work: on machines with a
// slow clock source a steady_clock read alone can cost as much as the push
// being timed. The sampled histogram's *distribution* stays representative;
// its count is ~1/64 of the event count, so pair it with an exact event
// counter.
//
// Under STCOMP_DISABLE_METRICS the STCOMP_SCOPED_TIMER* macros expand to
// nothing, which is the compile-out path bench_obs_overhead verifies.

#ifndef STCOMP_OBS_TIMER_H_
#define STCOMP_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

#include "stcomp/obs/metrics.h"

namespace stcomp::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(ElapsedSeconds());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// Records one scope in every kSamplePeriod constructions (per thread; the
// first construction on a thread is always recorded, so short tests still
// observe at least one sample).
class SampledScopedTimer {
 public:
  static constexpr uint64_t kSamplePeriod = 64;

  explicit SampledScopedTimer(Histogram* histogram) {
    thread_local uint64_t tick = 0;
    if ((tick++ % kSamplePeriod) == 0) {
      histogram_ = histogram;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~SampledScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  SampledScopedTimer(const SampledScopedTimer&) = delete;
  SampledScopedTimer& operator=(const SampledScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stcomp::obs

#if STCOMP_METRICS_ENABLED
#define STCOMP_SCOPED_TIMER(histogram)  \
  ::stcomp::obs::ScopedTimer STCOMP_OBS_CONCAT_(stcomp_obs_timer_, \
                                                __LINE__)(histogram)
#define STCOMP_SCOPED_TIMER_SAMPLED(histogram)         \
  ::stcomp::obs::SampledScopedTimer STCOMP_OBS_CONCAT_(stcomp_obs_timer_, \
                                                       __LINE__)(histogram)
#else
#define STCOMP_SCOPED_TIMER(histogram) \
  do {                                 \
  } while (false)
#define STCOMP_SCOPED_TIMER_SAMPLED(histogram) \
  do {                                         \
  } while (false)
#endif

#endif  // STCOMP_OBS_TIMER_H_
