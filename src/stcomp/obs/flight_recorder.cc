#include "stcomp/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/trace.h"

// GCC's ThreadSanitizer cannot instrument atomic_thread_fence (it
// promotes the gap to -Werror=tsan), so under TSan the fence-based
// seqlock edges below are replaced with equivalent-or-stronger
// per-operation orderings: an acq_rel exchange for the writer's
// invalidate-before-payload edge, acquire payload loads for the
// reader's payload-before-recheck edge.
#if defined(__SANITIZE_THREAD__)
#define STCOMP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STCOMP_TSAN 1
#endif
#endif
#ifndef STCOMP_TSAN
#define STCOMP_TSAN 0
#endif

namespace stcomp::obs {

namespace {

#if STCOMP_TSAN
constexpr std::memory_order kPayloadLoadOrder = std::memory_order_acquire;
#else
constexpr std::memory_order kPayloadLoadOrder = std::memory_order_relaxed;
#endif

// Last recorder this thread wrote to. Keyed by a never-reused instance id,
// so an entry for a destroyed recorder can never be mistaken for a live
// one; on miss we fall back to scanning for a slot we already own.
struct CachedSlot {
  uint64_t instance_id = 0;
  void* slot = nullptr;
};
thread_local CachedSlot tls_cached_slot;

std::atomic<uint64_t> g_next_instance_id{1};

// Coarse event clock: reading the real clock costs ~35ns — most of a
// Record() — so only every 64th record per thread refreshes it; the rest
// reload the last published value (~1ns). Within a thread, seq keeps the
// exact order; across threads, timestamps are accurate to one refresh
// interval, which is plenty for last-moments forensics.
std::atomic<uint64_t> g_coarse_clock_us{0};

uint64_t CoarseNowMicros(uint64_t seq) {
  if ((seq & 63) == 0) {
    const uint64_t now = TraceBuffer::NowMicros();
    g_coarse_clock_us.store(now, std::memory_order_relaxed);
    return now;
  }
  return g_coarse_clock_us.load(std::memory_order_relaxed);
}

void DefaultDumpSink(std::string_view reason, const std::string& text) {
  std::fprintf(stderr, "=== stcomp flight-recorder dump: %.*s ===\n%s=== end flight dump ===\n",
               static_cast<int>(reason.size()), reason.data(), text.c_str());
}

std::mutex& DumpMutex() {
  static std::mutex mu;
  return mu;
}

FlightRecorder::DumpSink& DumpSinkRef() {
  static FlightRecorder::DumpSink sink = DefaultDumpSink;
  return sink;
}

std::atomic<uint64_t>& DumpBudget() {
  static std::atomic<uint64_t> budget{8};
  return budget;
}

bool EventOrder(const FlightEvent& a, const FlightEvent& b) {
  if (a.t_us != b.t_us) return a.t_us < b.t_us;
  if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
  return a.seq < b.seq;
}

size_t RoundUpPow2(size_t n) {
  size_t pow2 = 1;
  while (pow2 < n) {
    pow2 <<= 1;
  }
  return pow2;
}

}  // namespace

std::string_view FlightCodeName(FlightCode code) {
  switch (code) {
    case FlightCode::kNone:
      return "none";
    case FlightCode::kFleetPush:
      return "fleet_push";
    case FlightCode::kFleetFinishObject:
      return "fleet_finish_object";
    case FlightCode::kGateDrop:
      return "gate_drop";
    case FlightCode::kGateRepair:
      return "gate_repair";
    case FlightCode::kGateQuarantine:
      return "gate_quarantine";
    case FlightCode::kGateRejected:
      return "gate_rejected";
    case FlightCode::kStoreAppend:
      return "store_append";
    case FlightCode::kWalCommit:
      return "wal_commit";
    case FlightCode::kWalTruncate:
      return "wal_truncate";
    case FlightCode::kWalDeath:
      return "wal_death";
    case FlightCode::kCheckpoint:
      return "checkpoint";
    case FlightCode::kRecovery:
      return "recovery";
    case FlightCode::kFsckCorrupt:
      return "fsck_corrupt";
    case FlightCode::kProbe:
      return "probe";
    case FlightCode::kFleetDrain:
      return "fleet_drain";
    case FlightCode::kShardBackpressure:
      return "shard_backpressure";
    case FlightCode::kShardError:
      return "shard_error";
    case FlightCode::kNetAccept:
      return "net_accept";
    case FlightCode::kNetShed:
      return "net_shed";
    case FlightCode::kNetProtocolError:
      return "net_protocol_error";
    case FlightCode::kNetDrain:
      return "net_drain";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked singleton, same rationale as MetricsRegistry::Global().
  static FlightRecorder* const kGlobal = new FlightRecorder;
  return *kGlobal;
}

FlightRecorder::FlightRecorder(size_t capacity_per_thread, size_t max_threads)
    : capacity_(RoundUpPow2(capacity_per_thread)),
      ring_mask_(capacity_ - 1),
      max_threads_(max_threads),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      slots_(new Slot[max_threads]) {
  STCOMP_CHECK(capacity_per_thread > 0);
  STCOMP_CHECK(max_threads_ > 0);
}

FlightRecorder::Slot* FlightRecorder::AcquireSlot() {
  if (tls_cached_slot.instance_id == instance_id_) {
    return static_cast<Slot*>(tls_cached_slot.slot);
  }
  const uint32_t tid = CurrentThreadId();
  // This thread may have claimed a slot before the cache moved on to
  // another recorder instance.
  for (size_t i = 0; i < max_threads_; ++i) {
    if (slots_[i].owner.load(std::memory_order_relaxed) == tid) {
      tls_cached_slot = {instance_id_, &slots_[i]};
      return &slots_[i];
    }
  }
  // Claim a fresh slot: winning the owner CAS makes this thread the only
  // writer of `ring`, which is then published through `ready` (release)
  // for Snapshot/Drain/total_recorded (acquire).
  for (size_t i = 0; i < max_threads_; ++i) {
    uint32_t expected = 0;
    if (!slots_[i].owner.compare_exchange_strong(expected, tid,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
      continue;
    }
    slots_[i].thread_bits = static_cast<uint64_t>(tid) << 16;
    slots_[i].ring.reset(new Entry[capacity_]);
    slots_[i].ready.store(true, std::memory_order_release);
    claimed_slots_.fetch_add(1, std::memory_order_relaxed);
    tls_cached_slot = {instance_id_, &slots_[i]};
    return &slots_[i];
  }
  return nullptr;
}

void FlightRecorder::Record(FlightCode code, std::string_view tag,
                            uint64_t arg0, uint64_t arg1) {
  Slot* slot = AcquireSlot();
  if (slot == nullptr) {
    // More live threads than slots: count the refusal as both a record
    // and a drop so the accounting invariant still balances.
    no_slot_records_.fetch_add(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t seq = slot->head.load(std::memory_order_relaxed);
  Entry& e = slot->ring[seq & ring_mask_];
  // Seqlock write protocol: invalidate, publish payload, stamp. The
  // release fence orders the invalidation before the payload stores so a
  // racing reader can never pair an old stamp with new payload bytes.
#if STCOMP_TSAN
  e.seq.exchange(Entry::kInvalidSeq, std::memory_order_acq_rel);
#else
  e.seq.store(Entry::kInvalidSeq, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
#endif
  e.t_us.store(CoarseNowMicros(seq), std::memory_order_relaxed);
  e.code_thread.store(static_cast<uint64_t>(code) | slot->thread_bits,
                      std::memory_order_relaxed);
  e.arg0.store(arg0, std::memory_order_relaxed);
  e.arg1.store(arg1, std::memory_order_relaxed);
  char bytes[kTagCapacity] = {};
  const size_t n = std::min(tag.size(), kTagCapacity - 1);
  std::memcpy(bytes, tag.data(), n);
  for (size_t w = 0; w < kTagCapacity / 8; ++w) {
    uint64_t word = 0;
    std::memcpy(&word, bytes + w * 8, 8);
    e.tag_words[w].store(word, std::memory_order_relaxed);
  }
  e.seq.store(seq, std::memory_order_release);
  slot->head.store(seq + 1, std::memory_order_release);
}

bool FlightRecorder::ReadEntry(const Slot& slot, uint64_t seq,
                               FlightEvent* out) const {
  const Entry& e = slot.ring[seq & ring_mask_];
  if (e.seq.load(std::memory_order_acquire) != seq) {
    return false;
  }
  out->seq = seq;
  out->t_us = e.t_us.load(kPayloadLoadOrder);
  const uint64_t code_thread = e.code_thread.load(kPayloadLoadOrder);
  out->code = static_cast<FlightCode>(code_thread & 0xffff);
  out->thread_id = static_cast<uint32_t>(code_thread >> 16);
  out->arg0 = e.arg0.load(kPayloadLoadOrder);
  out->arg1 = e.arg1.load(kPayloadLoadOrder);
  char bytes[kTagCapacity];
  for (size_t w = 0; w < kTagCapacity / 8; ++w) {
    const uint64_t word = e.tag_words[w].load(kPayloadLoadOrder);
    std::memcpy(bytes + w * 8, &word, 8);
  }
  bytes[kTagCapacity - 1] = '\0';
  std::memcpy(out->tag, bytes, kTagCapacity);
  // Re-check the stamp after the payload loads (the acquire fence — or,
  // under TSan, the acquire payload loads — keeps it from hoisting above
  // them): an overwrite mid-read flips it.
#if !STCOMP_TSAN
  std::atomic_thread_fence(std::memory_order_acquire);
#endif
  return e.seq.load(std::memory_order_relaxed) == seq;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  for (size_t i = 0; i < max_threads_; ++i) {
    const Slot& slot = slots_[i];
    if (!slot.ready.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t head = slot.head.load(std::memory_order_acquire);
    const uint64_t lo = head > capacity_ ? head - capacity_ : 0;
    for (uint64_t seq = lo; seq < head; ++seq) {
      FlightEvent ev;
      if (ReadEntry(slot, seq, &ev)) {
        events.push_back(ev);
      }
    }
  }
  std::sort(events.begin(), events.end(), EventOrder);
  return events;
}

std::vector<FlightEvent> FlightRecorder::Drain() {
  std::vector<FlightEvent> events;
  for (size_t i = 0; i < max_threads_; ++i) {
    Slot& slot = slots_[i];
    if (!slot.ready.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t head = slot.head.load(std::memory_order_acquire);
    uint64_t lo = slot.cursor;
    if (head > lo + capacity_) {
      // The ring lapped the cursor: those sequence numbers are gone for
      // good — account them before reading what survives.
      const uint64_t lost = head - capacity_ - lo;
      dropped_.fetch_add(lost, std::memory_order_relaxed);
      lo = head - capacity_;
    }
    for (uint64_t seq = lo; seq < head; ++seq) {
      FlightEvent ev;
      if (ReadEntry(slot, seq, &ev)) {
        events.push_back(ev);
      } else {
        // Overwritten between the head load and the read; the replacing
        // event has seq >= head and will be seen by the next drain.
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    slot.cursor = head;
  }
  std::sort(events.begin(), events.end(), EventOrder);
  return events;
}

uint64_t FlightRecorder::total_recorded() const {
  uint64_t total = no_slot_records_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < max_threads_; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      total += slots_[i].head.load(std::memory_order_relaxed);
    }
  }
  return total;
}

FlightRecorder::DumpSink FlightRecorder::SetDumpSink(DumpSink sink) {
  std::lock_guard<std::mutex> lock(DumpMutex());
  DumpSink previous = std::move(DumpSinkRef());
  DumpSinkRef() = sink ? std::move(sink) : DefaultDumpSink;
  return previous;
}

void FlightRecorder::DumpGlobal(std::string_view reason) {
  // Consume one unit of the process-wide budget; give up when exhausted
  // (a fuzz loop hitting thousands of sticky deaths must not flood).
  auto& budget = DumpBudget();
  uint64_t remaining = budget.load(std::memory_order_relaxed);
  do {
    if (remaining == 0) {
      return;
    }
  } while (!budget.compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed));
  const std::string text = RenderFlightText(Global().Snapshot());
  std::lock_guard<std::mutex> lock(DumpMutex());
  DumpSinkRef()(reason, text);
}

void FlightRecorder::SetDumpBudgetForTest(uint64_t budget) {
  DumpBudget().store(budget, std::memory_order_relaxed);
}

std::string RenderFlightText(const std::vector<FlightEvent>& events) {
  std::string out;
  out.reserve(events.size() * 64 + 64);
  out += StrFormat("flight recorder: %zu event(s)\n", events.size());
  for (const FlightEvent& e : events) {
    out += StrFormat("%12.3fms t%02u #%-6llu %-20s %-23s arg0=%llu arg1=%llu\n",
                     static_cast<double>(e.t_us) / 1000.0, e.thread_id,
                     static_cast<unsigned long long>(e.seq),
                     std::string(FlightCodeName(e.code)).c_str(), e.tag,
                     static_cast<unsigned long long>(e.arg0),
                     static_cast<unsigned long long>(e.arg1));
  }
  return out;
}

std::string RenderFlightJson(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i > 0) out += ",";
    // Tags are NUL-terminated ASCII identifiers (object ids, file stems);
    // escape the two JSON-hostile characters they could plausibly hold.
    std::string tag;
    for (const char* p = e.tag; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') tag += '\\';
      if (static_cast<unsigned char>(*p) >= 0x20) tag += *p;
    }
    out += StrFormat(
        "\n  {\"seq\": %llu, \"t_us\": %llu, \"thread_id\": %u, "
        "\"code\": \"%s\", \"tag\": \"%s\", \"arg0\": %llu, \"arg1\": %llu}",
        static_cast<unsigned long long>(e.seq),
        static_cast<unsigned long long>(e.t_us), e.thread_id,
        std::string(FlightCodeName(e.code)).c_str(), tag.c_str(),
        static_cast<unsigned long long>(e.arg0),
        static_cast<unsigned long long>(e.arg1));
  }
  out += events.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace stcomp::obs
