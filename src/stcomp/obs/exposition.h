// Renders a MetricsSnapshot (and trace events) in three formats:
//
//  kText       — aligned, human-first dump with derived histogram stats
//                (mean, approximate p50/p95/p99 from the buckets).
//  kJson       — machine-readable snapshot; the schema benches persist as
//                BENCH_*.json (see EXPERIMENTS.md "Bench JSON schema").
//  kPrometheus — Prometheus text exposition format 0.0.4: `# TYPE` lines,
//                cumulative `_bucket{le=...}` series, `_sum`/`_count`.

#ifndef STCOMP_OBS_EXPOSITION_H_
#define STCOMP_OBS_EXPOSITION_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/trace.h"

namespace stcomp::obs {

enum class MetricsFormat {
  kText = 0,
  kJson = 1,
  kPrometheus = 2,
};

// "text" | "json" | "prometheus" (case-insensitive); kInvalidArgument
// otherwise, listing the valid spellings.
Result<MetricsFormat> ParseMetricsFormat(std::string_view name);

// Escapes `s` for inclusion inside a JSON string literal: backslash,
// quote, and control characters (\n, \r, \t, \u00XX). The one escaping
// routine every JSON producer in the tree shares — /objectz, /queryz and
// the renderers below all go through here.
std::string JsonEscape(std::string_view s);

std::string RenderText(const MetricsSnapshot& snapshot);
std::string RenderJson(const MetricsSnapshot& snapshot);
std::string RenderPrometheus(const MetricsSnapshot& snapshot);
std::string RenderMetrics(const MetricsSnapshot& snapshot,
                          MetricsFormat format);

// Approximate quantile (q in [0, 1]) from histogram buckets by linear
// interpolation inside the hit bucket; the +Inf bucket clamps to the last
// finite boundary. 0 for an empty histogram. Exposed for the text renderer
// and tests.
double ApproximateQuantile(const HistogramSample& histogram, double q);

// Trace events as human text (one line per span, oldest first), with the
// recording thread and "#span<#parent" ids on each line.
std::string RenderTraceText(const std::vector<TraceEvent>& events);
// Trace events as a JSON array of {name, detail, start_us, duration_us,
// span_id, parent_id, thread_id}.
std::string RenderTraceJson(const std::vector<TraceEvent>& events);
// Reconstructs the span forest from parent ids and renders it as indented
// text, siblings in start-time order. Spans whose parent is missing from
// `events` (overwritten or still open) are promoted to roots.
std::string RenderTraceTree(const std::vector<TraceEvent>& events);
// Chrome/Perfetto trace_event JSON ("ph":"X" complete events, ts/dur in
// microseconds, tid = recording thread) — loads in chrome://tracing and
// ui.perfetto.dev as-is.
std::string RenderTracePerfetto(const std::vector<TraceEvent>& events);

}  // namespace stcomp::obs

#endif  // STCOMP_OBS_EXPOSITION_H_
