#include "stcomp/stream/policed_compressor.h"

#include <utility>

#include "stcomp/common/check.h"

namespace stcomp {

namespace {

std::string ResolveIngestInstance(const OnlineCompressor* inner,
                                  const std::string& instance) {
  STCOMP_CHECK(inner != nullptr);
  return instance.empty() ? std::string(inner->name()) : instance;
}

}  // namespace

PolicedCompressor::PolicedCompressor(std::unique_ptr<OnlineCompressor> inner,
                                     const IngestPolicy& policy,
                                     std::string instance)
    : inner_(std::move(inner)),
      gate_(policy, IngestCounters::ForInstance(
                        ResolveIngestInstance(inner_.get(), instance))),
      name_(std::string(inner_->name()) + "-policed") {}

Status PolicedCompressor::Push(const TimedPoint& point,
                               std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  admitted_.clear();
  STCOMP_RETURN_IF_ERROR(gate_.Admit(point, &admitted_));
  for (const TimedPoint& fix : admitted_) {
    STCOMP_RETURN_IF_ERROR(inner_->Push(fix, out));
  }
  return Status::Ok();
}

void PolicedCompressor::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  admitted_.clear();
  gate_.Flush(&admitted_);
  for (const TimedPoint& fix : admitted_) {
    // The gate guarantees strictly increasing output, so the inner
    // compressor cannot reject these; a failure here would be an inner
    // contract bug, which the checked status makes loud.
    STCOMP_CHECK_OK(inner_->Push(fix, out));
  }
  inner_->Finish(out);
}

}  // namespace stcomp
