#include "stcomp/stream/policed_compressor.h"

#include <chrono>
#include <thread>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/obs/trace.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

namespace {

std::string ResolveIngestInstance(const OnlineCompressor* inner,
                                  const std::string& instance) {
  STCOMP_CHECK(inner != nullptr);
  return instance.empty() ? std::string(inner->name()) : instance;
}

}  // namespace

PolicedCompressor::PolicedCompressor(std::unique_ptr<OnlineCompressor> inner,
                                     const IngestPolicy& policy,
                                     std::string instance)
    : inner_(std::move(inner)),
      counters_(IngestCounters::ForInstance(
          ResolveIngestInstance(inner_.get(), instance))),
      gate_(policy, counters_, ResolveIngestInstance(inner_.get(), instance)),
      name_(std::string(inner_->name()) + "-policed") {}

Status PolicedCompressor::Push(const TimedPoint& point,
                               std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  // Hot-path root span (head-sampled): descendants — the gate, the inner
  // adapter, and any store appends the caller makes in the same call
  // stack — attach to it, so a sampled push is a complete tree.
  STCOMP_TRACE_SPAN_SAMPLED("policed.push", name_);
  admitted_.clear();
  STCOMP_RETURN_IF_ERROR(gate_.Admit(point, &admitted_));
  for (const TimedPoint& fix : admitted_) {
    STCOMP_RETURN_IF_ERROR(inner_->Push(fix, out));
  }
  return Status::Ok();
}

Status PolicedCompressor::DrainSource(FixSource* source,
                                      const RetryPolicy& retry,
                                      std::vector<TimedPoint>* out) {
  STCOMP_CHECK(source != nullptr);
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(retry.max_attempts >= 1);
  const auto sleep = retry.sleep ? retry.sleep : [](double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  };
  while (true) {
    Result<std::optional<TimedPoint>> next = source->Next();
    double backoff_s = retry.initial_backoff_s;
    for (int attempt = 1;
         !next.ok() && next.status().code() == StatusCode::kUnavailable;
         ++attempt) {
      if (attempt >= retry.max_attempts) {
        return next.status();  // Attempts exhausted: the outage is real.
      }
      counters_.retries->Increment();
      sleep(backoff_s);
      backoff_s *= retry.backoff_multiplier;
      next = source->Next();
    }
    if (!next.ok()) {
      return next.status();
    }
    if (!next->has_value()) {
      return Status::Ok();  // Feed exhausted.
    }
    STCOMP_RETURN_IF_ERROR(Push(**next, out));
  }
}

Status PolicedCompressor::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  PutString(name_, out);
  std::string gate_state;
  STCOMP_RETURN_IF_ERROR(gate_.SaveState(&gate_state));
  PutString(gate_state, out);
  std::string inner_state;
  STCOMP_RETURN_IF_ERROR(inner_->SaveState(&inner_state));
  PutString(inner_state, out);
  return Status::Ok();
}

Status PolicedCompressor::RestoreState(std::string_view state) {
  STCOMP_ASSIGN_OR_RETURN(const std::string_view saved_name,
                          GetString(&state));
  if (saved_name != name_) {
    return InvalidArgumentError(
        "checkpoint was taken by a differently configured compressor (" +
        std::string(saved_name) + ")");
  }
  STCOMP_ASSIGN_OR_RETURN(const std::string_view gate_state,
                          GetString(&state));
  STCOMP_ASSIGN_OR_RETURN(const std::string_view inner_state,
                          GetString(&state));
  if (!state.empty()) {
    return DataLossError("trailing bytes in compressor checkpoint");
  }
  STCOMP_RETURN_IF_ERROR(gate_.RestoreState(gate_state));
  return inner_->RestoreState(inner_state);
}

void PolicedCompressor::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  admitted_.clear();
  gate_.Flush(&admitted_);
  for (const TimedPoint& fix : admitted_) {
    // The gate guarantees strictly increasing output, so the inner
    // compressor cannot reject these; a failure here would be an inner
    // contract bug, which the checked status makes loud.
    STCOMP_CHECK_OK(inner_->Push(fix, out));
  }
  inner_->Finish(out);
}

}  // namespace stcomp
