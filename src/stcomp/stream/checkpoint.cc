#include "stcomp/stream/checkpoint.h"

#include "stcomp/store/varint.h"

namespace stcomp {

namespace {
constexpr char kCheckpointMagic[4] = {'S', 'T', 'C', 'K'};
constexpr uint8_t kCheckpointVersion = 1;
}  // namespace

void PutString(std::string_view value, std::string* out) {
  PutVarint(value.size(), out);
  out->append(value);
}

Result<std::string_view> GetString(std::string_view* input) {
  STCOMP_ASSIGN_OR_RETURN(const uint64_t size, GetVarint(input));
  if (input->size() < size) {
    return DataLossError("checkpoint string truncated");
  }
  const std::string_view value = input->substr(0, size);
  input->remove_prefix(size);
  return value;
}

void PutBool(bool value, std::string* out) {
  out->push_back(value ? '\1' : '\0');
}

Result<bool> GetBool(std::string_view* input) {
  if (input->empty()) {
    return DataLossError("checkpoint bool truncated");
  }
  const char byte = input->front();
  input->remove_prefix(1);
  if (byte != '\0' && byte != '\1') {
    return DataLossError("checkpoint bool out of range");
  }
  return byte == '\1';
}

void PutTimedPoint(const TimedPoint& point, std::string* out) {
  PutDouble(point.t, out);
  PutDouble(point.position.x, out);
  PutDouble(point.position.y, out);
}

Result<TimedPoint> GetTimedPoint(std::string_view* input) {
  TimedPoint point;
  STCOMP_ASSIGN_OR_RETURN(point.t, GetDouble(input));
  STCOMP_ASSIGN_OR_RETURN(point.position.x, GetDouble(input));
  STCOMP_ASSIGN_OR_RETURN(point.position.y, GetDouble(input));
  return point;
}

void PutPointVector(const std::vector<TimedPoint>& points, std::string* out) {
  PutVarint(points.size(), out);
  for (const TimedPoint& point : points) {
    PutTimedPoint(point, out);
  }
}

Status GetPointVector(std::string_view* input, std::vector<TimedPoint>* out) {
  STCOMP_ASSIGN_OR_RETURN(const uint64_t count, GetVarint(input));
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    STCOMP_ASSIGN_OR_RETURN(const TimedPoint point, GetTimedPoint(input));
    out->push_back(point);
  }
  return Status::Ok();
}

namespace {
constexpr char kShardManifestMagic[4] = {'S', 'T', 'S', 'M'};
constexpr uint8_t kShardManifestVersion = 1;
}  // namespace

std::string WriteShardManifest(uint8_t hash_scheme,
                               const std::vector<std::string>& shard_images) {
  std::string image(kShardManifestMagic, sizeof(kShardManifestMagic));
  image.push_back(static_cast<char>(kShardManifestVersion));
  PutVarint(shard_images.size(), &image);
  image.push_back(static_cast<char>(hash_scheme));
  for (const std::string& shard_image : shard_images) {
    PutString(shard_image, &image);
  }
  return image;
}

Result<ShardManifestView> ParseShardManifest(std::string_view image) {
  if (image.size() < sizeof(kShardManifestMagic) + 1 ||
      image.substr(0, 4) != std::string_view(kShardManifestMagic, 4)) {
    return DataLossError("not a sharded manifest: bad magic");
  }
  image.remove_prefix(4);
  const uint8_t version = static_cast<uint8_t>(image.front());
  image.remove_prefix(1);
  if (version != kShardManifestVersion) {
    return DataLossError("unsupported sharded manifest version " +
                         std::to_string(version));
  }
  ShardManifestView view;
  STCOMP_ASSIGN_OR_RETURN(view.shard_count, GetVarint(&image));
  if (image.empty()) {
    return DataLossError("sharded manifest truncated before hash scheme");
  }
  view.hash_scheme = static_cast<uint8_t>(image.front());
  image.remove_prefix(1);
  view.shard_images.reserve(view.shard_count);
  for (uint64_t i = 0; i < view.shard_count; ++i) {
    STCOMP_ASSIGN_OR_RETURN(const std::string_view shard_image,
                            GetString(&image));
    view.shard_images.push_back(shard_image);
  }
  if (!image.empty()) {
    return DataLossError("trailing bytes after sharded manifest images");
  }
  return view;
}

void CheckpointWriter::AddSection(std::string_view tag,
                                  std::string_view body) {
  PutString(tag, &sections_);
  PutString(body, &sections_);
}

std::string CheckpointWriter::Finish() const {
  std::string image(kCheckpointMagic, sizeof(kCheckpointMagic));
  image.push_back(static_cast<char>(kCheckpointVersion));
  image += sections_;
  return image;
}

Status CheckpointReader::Parse(std::string_view image) {
  sections_.clear();
  if (image.size() < sizeof(kCheckpointMagic) + 1 ||
      image.substr(0, 4) != std::string_view(kCheckpointMagic, 4)) {
    return DataLossError("not a checkpoint: bad magic");
  }
  image.remove_prefix(4);
  const uint8_t version = static_cast<uint8_t>(image.front());
  image.remove_prefix(1);
  if (version != kCheckpointVersion) {
    return DataLossError("unsupported checkpoint version " +
                         std::to_string(version));
  }
  while (!image.empty()) {
    Section section;
    STCOMP_ASSIGN_OR_RETURN(section.tag, GetString(&image));
    STCOMP_ASSIGN_OR_RETURN(section.body, GetString(&image));
    sections_.push_back(section);
  }
  return Status::Ok();
}

Result<std::string_view> CheckpointReader::Find(std::string_view tag) const {
  const Section* found = nullptr;
  for (const Section& section : sections_) {
    if (section.tag != tag) {
      continue;
    }
    if (found != nullptr) {
      return DataLossError("checkpoint section '" + std::string(tag) +
                           "' repeated");
    }
    found = &section;
  }
  if (found == nullptr) {
    return NotFoundError("checkpoint has no section '" + std::string(tag) +
                         "'");
  }
  return found->body;
}

}  // namespace stcomp
