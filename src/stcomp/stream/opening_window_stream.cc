#include "stcomp/stream/opening_window_stream.h"

#include <cmath>

#include "stcomp/algo/spatiotemporal.h"
#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/core/trajectory_view.h"
#include "stcomp/store/varint.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

OpeningWindowStream::OpeningWindowStream(double epsilon_m,
                                         algo::BreakPolicy policy,
                                         StreamCriterion criterion,
                                         double speed_threshold_mps)
    : epsilon_m_(epsilon_m),
      policy_(policy),
      criterion_(criterion),
      speed_threshold_mps_(speed_threshold_mps) {
  STCOMP_CHECK(epsilon_m_ >= 0.0);
  STCOMP_CHECK(speed_threshold_mps_ >= 0.0);
  switch (criterion) {
    case StreamCriterion::kPerpendicular:
      name_ = policy == algo::BreakPolicy::kNormal ? "nopw-stream"
                                                   : "bopw-stream";
      break;
    case StreamCriterion::kSynchronized:
      name_ = "opw-tr-stream";
      break;
    case StreamCriterion::kSpatiotemporal:
      name_ = "opw-sp-stream";
      break;
  }
}

void OpeningWindowStream::Settle(std::vector<TimedPoint>* out) {
  // Replays float positions exactly as the batch loop would: all float
  // positions before window_.size()-1 were validated by earlier pushes, so
  // only the newest float needs checking — unless a cut shrinks the window,
  // after which every float position of the replayed tail is re-examined.
  bool need_full_replay = false;
  while (true) {
    const size_t size = window_.size();
    if (size < 3) {
      return;
    }
    // Anchor is window index 0; the criteria are the batch layer's own,
    // evaluated over a view of the buffer.
    const TrajectoryView window(window_.data(), size);
    const size_t first_float = need_full_replay ? 2 : size - 1;
    bool cut_made = false;
    for (size_t f = first_float; f < size && !cut_made; ++f) {
      // Violation scan for the window (anchor = 0, float = f).
      for (size_t i = 1; i < f; ++i) {
        bool violated;
        if (criterion_ == StreamCriterion::kPerpendicular) {
          violated = algo::PerpendicularWindowDistance(
                         window, 0, static_cast<int>(f),
                         static_cast<int>(i)) > epsilon_m_;
        } else {
          violated = algo::SynchronizedWindowDistance(
                         window, 0, static_cast<int>(f),
                         static_cast<int>(i)) > epsilon_m_;
          if (!violated && criterion_ == StreamCriterion::kSpatiotemporal) {
            violated = algo::SpeedJump(window, static_cast<int>(i)) >
                       speed_threshold_mps_;
          }
        }
        if (violated) {
          const size_t cut = policy_ == algo::BreakPolicy::kNormal ? i : f - 1;
          out->push_back(window_[cut]);
          window_.erase(window_.begin(),
                        window_.begin() + static_cast<ptrdiff_t>(cut));
          cut_made = true;
          break;
        }
      }
    }
    if (!cut_made) {
      return;
    }
    need_full_replay = true;
  }
}

Status OpeningWindowStream::Push(const TimedPoint& point,
                                 std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  if (any_pushed_ && point.t <= last_time_) {
    return InvalidArgumentError(
        StrFormat("stream timestamps must increase (%f after %f)", point.t,
                  last_time_));
  }
  last_time_ = point.t;
  if (!any_pushed_) {
    any_pushed_ = true;
    out->push_back(point);  // The first fix is always kept.
    window_.push_back(point);
    return Status::Ok();
  }
  window_.push_back(point);
  Settle(out);
  return Status::Ok();
}

Status OpeningWindowStream::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  PutString(name_, out);
  PutDouble(epsilon_m_, out);
  PutDouble(speed_threshold_mps_, out);
  PutDouble(last_time_, out);
  PutBool(any_pushed_, out);
  PutBool(finished_, out);
  PutPointVector(window_, out);
  return Status::Ok();
}

Status OpeningWindowStream::RestoreState(std::string_view state) {
  STCOMP_ASSIGN_OR_RETURN(const std::string_view saved_name,
                          GetString(&state));
  STCOMP_ASSIGN_OR_RETURN(const double epsilon, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(const double speed, GetDouble(&state));
  if (saved_name != name_ || epsilon != epsilon_m_ ||
      speed != speed_threshold_mps_) {
    return InvalidArgumentError(
        "checkpoint was taken by a differently configured compressor (" +
        std::string(saved_name) + ")");
  }
  STCOMP_ASSIGN_OR_RETURN(last_time_, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(any_pushed_, GetBool(&state));
  STCOMP_ASSIGN_OR_RETURN(finished_, GetBool(&state));
  window_.clear();
  STCOMP_RETURN_IF_ERROR(GetPointVector(&state, &window_));
  if (!state.empty()) {
    return DataLossError("trailing bytes in compressor checkpoint");
  }
  return Status::Ok();
}

void OpeningWindowStream::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  // Keep the final fix unless it is the anchor itself (already emitted).
  if (window_.size() >= 2) {
    out->push_back(window_.back());
  }
  window_.clear();
}

}  // namespace stcomp
