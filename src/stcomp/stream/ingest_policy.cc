#include "stcomp/stream/ingest_policy.h"

#include <algorithm>
#include <cmath>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/store/varint.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

std::string_view IngestModeToString(IngestMode mode) {
  switch (mode) {
    case IngestMode::kReject:
      return "reject";
    case IngestMode::kDropAndCount:
      return "drop-and-count";
    case IngestMode::kRepair:
      return "repair";
  }
  return "unknown";
}

IngestCounters IngestCounters::ForInstance(const std::string& instance) {
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"compressor", instance}};
  return IngestCounters{
      registry.GetCounter("stcomp_ingest_dropped_total", labels),
      registry.GetCounter("stcomp_ingest_repaired_total", labels),
      registry.GetCounter("stcomp_ingest_quarantined_total", labels),
      registry.GetCounter("stcomp_ingest_retries_total", labels)};
}

IngestGate::IngestGate(const IngestPolicy& policy,
                       const IngestCounters& counters, std::string tag)
    : policy_(policy), counters_(counters), tag_(std::move(tag)) {
  STCOMP_CHECK(counters_.dropped != nullptr);
  STCOMP_CHECK(counters_.repaired != nullptr);
  STCOMP_CHECK(counters_.quarantined != nullptr);
  STCOMP_CHECK(policy_.reorder_window_s >= 0.0);
  STCOMP_CHECK(policy_.quarantine_after >= 0);
}

Status IngestGate::RecordFault(obs::Counter* counter,
                               std::string_view detail) {
  counter->Increment();
  if (counter == counters_.repaired) {
    ++repaired_;
    STCOMP_FLIGHT_EVENT(kGateRepair, tag_,
                        static_cast<uint64_t>(consecutive_faults_ + 1), 0);
  } else {
    ++dropped_;
    STCOMP_FLIGHT_EVENT(kGateDrop, tag_,
                        static_cast<uint64_t>(consecutive_faults_ + 1), 0);
  }
  ++consecutive_faults_;
  if (policy_.quarantine_after > 0 && !quarantined_ &&
      consecutive_faults_ >= policy_.quarantine_after) {
    quarantined_ = true;
    STCOMP_FLIGHT_EVENT(kGateQuarantine, tag_,
                        static_cast<uint64_t>(consecutive_faults_), 0);
    // The quarantine transition is the stream layer's "something is badly
    // wrong with this feed" moment — preserve the evidence.
    STCOMP_IF_METRICS(obs::FlightRecorder::DumpGlobal(
        "ingest quarantine: " + (tag_.empty() ? "<untagged>" : tag_)));
  }
  if (policy_.mode == IngestMode::kReject) {
    return InvalidArgumentError(detail);
  }
  return Status::Ok();
}

Status IngestGate::Admit(const TimedPoint& fix,
                         std::vector<TimedPoint>* admitted) {
  STCOMP_CHECK(admitted != nullptr);
  if (quarantined_) {
    counters_.quarantined->Increment();
    if (policy_.mode == IngestMode::kReject) {
      STCOMP_FLIGHT_EVENT(kGateRejected, tag_, 0, 0);
      return FailedPreconditionError("object is quarantined");
    }
    return Status::Ok();
  }
  if (!std::isfinite(fix.t) || !std::isfinite(fix.position.x) ||
      !std::isfinite(fix.position.y)) {
    return RecordFault(counters_.dropped,
                       "fix has non-finite timestamp or coordinates");
  }
  if (policy_.mode != IngestMode::kRepair) {
    if (any_released_ && fix.t <= last_released_t_) {
      return RecordFault(
          counters_.dropped,
          StrFormat("fix at t=%.9g not after previous t=%.9g", fix.t,
                    last_released_t_));
    }
    consecutive_faults_ = 0;
    admitted->push_back(fix);
    last_released_t_ = fix.t;
    any_released_ = true;
    return Status::Ok();
  }
  // kRepair: dedup exact-duplicate timestamps, hold and re-sort late fixes
  // within the reorder window, drop what is beyond repair.
  // In kRepair mode RecordFault never returns an error (that is kReject's
  // contract), so its status is ignored below.
  if (any_released_ && fix.t <= last_released_t_) {
    if (fix.t == last_released_t_) {
      RecordFault(counters_.repaired, "duplicate timestamp (dedup)");
    } else {
      RecordFault(counters_.dropped, "fix older than the release watermark");
    }
    return Status::Ok();
  }
  const bool late = any_seen_ && fix.t < max_seen_t_;
  const auto at = std::lower_bound(
      held_.begin(), held_.end(), fix.t,
      [](const TimedPoint& held, double t) { return held.t < t; });
  if (at != held_.end() && at->t == fix.t) {
    RecordFault(counters_.repaired, "duplicate timestamp (dedup)");
  } else {
    held_.insert(at, fix);
    if (late) {
      RecordFault(counters_.repaired, "late fix re-sorted");
    } else {
      consecutive_faults_ = 0;
    }
  }
  any_seen_ = true;
  max_seen_t_ = std::max(max_seen_t_, fix.t);
  Release(admitted);
  return Status::Ok();
}

void IngestGate::Release(std::vector<TimedPoint>* admitted) {
  const double watermark = max_seen_t_ - policy_.reorder_window_s;
  size_t n = 0;
  while (n < held_.size() && held_[n].t <= watermark) {
    ++n;
  }
  if (n == 0) {
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    admitted->push_back(held_[i]);
  }
  last_released_t_ = held_[n - 1].t;
  any_released_ = true;
  held_.erase(held_.begin(), held_.begin() + static_cast<ptrdiff_t>(n));
}

Status IngestGate::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  out->push_back(static_cast<char>(policy_.mode));
  PutDouble(policy_.reorder_window_s, out);
  PutSignedVarint(policy_.quarantine_after, out);
  PutPointVector(held_, out);
  PutDouble(last_released_t_, out);
  PutDouble(max_seen_t_, out);
  PutBool(any_released_, out);
  PutBool(any_seen_, out);
  PutSignedVarint(consecutive_faults_, out);
  PutBool(quarantined_, out);
  return Status::Ok();
}

Status IngestGate::RestoreState(std::string_view state) {
  if (state.empty()) {
    return DataLossError("ingest gate checkpoint truncated");
  }
  const auto mode = static_cast<IngestMode>(state.front());
  state.remove_prefix(1);
  STCOMP_ASSIGN_OR_RETURN(const double reorder_window, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(const int64_t quarantine_after,
                          GetSignedVarint(&state));
  if (mode != policy_.mode || reorder_window != policy_.reorder_window_s ||
      quarantine_after != policy_.quarantine_after) {
    return InvalidArgumentError(
        "checkpoint was taken under a different ingest policy");
  }
  held_.clear();
  STCOMP_RETURN_IF_ERROR(GetPointVector(&state, &held_));
  STCOMP_ASSIGN_OR_RETURN(last_released_t_, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(max_seen_t_, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(any_released_, GetBool(&state));
  STCOMP_ASSIGN_OR_RETURN(any_seen_, GetBool(&state));
  STCOMP_ASSIGN_OR_RETURN(const int64_t faults, GetSignedVarint(&state));
  consecutive_faults_ = static_cast<int>(faults);
  STCOMP_ASSIGN_OR_RETURN(quarantined_, GetBool(&state));
  if (!state.empty()) {
    return DataLossError("trailing bytes in ingest gate checkpoint");
  }
  return Status::Ok();
}

void IngestGate::Flush(std::vector<TimedPoint>* admitted) {
  STCOMP_CHECK(admitted != nullptr);
  for (const TimedPoint& fix : held_) {
    admitted->push_back(fix);
  }
  if (!held_.empty()) {
    last_released_t_ = held_.back().t;
    any_released_ = true;
    held_.clear();
  }
}

}  // namespace stcomp
