#include "stcomp/stream/ingest_policy.h"

#include <algorithm>
#include <cmath>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"

namespace stcomp {

std::string_view IngestModeToString(IngestMode mode) {
  switch (mode) {
    case IngestMode::kReject:
      return "reject";
    case IngestMode::kDropAndCount:
      return "drop-and-count";
    case IngestMode::kRepair:
      return "repair";
  }
  return "unknown";
}

IngestCounters IngestCounters::ForInstance(const std::string& instance) {
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"compressor", instance}};
  return IngestCounters{
      registry.GetCounter("stcomp_ingest_dropped_total", labels),
      registry.GetCounter("stcomp_ingest_repaired_total", labels),
      registry.GetCounter("stcomp_ingest_quarantined_total", labels)};
}

IngestGate::IngestGate(const IngestPolicy& policy,
                       const IngestCounters& counters)
    : policy_(policy), counters_(counters) {
  STCOMP_CHECK(counters_.dropped != nullptr);
  STCOMP_CHECK(counters_.repaired != nullptr);
  STCOMP_CHECK(counters_.quarantined != nullptr);
  STCOMP_CHECK(policy_.reorder_window_s >= 0.0);
  STCOMP_CHECK(policy_.quarantine_after >= 0);
}

Status IngestGate::RecordFault(obs::Counter* counter,
                               std::string_view detail) {
  counter->Increment();
  ++consecutive_faults_;
  if (policy_.quarantine_after > 0 &&
      consecutive_faults_ >= policy_.quarantine_after) {
    quarantined_ = true;
  }
  if (policy_.mode == IngestMode::kReject) {
    return InvalidArgumentError(detail);
  }
  return Status::Ok();
}

Status IngestGate::Admit(const TimedPoint& fix,
                         std::vector<TimedPoint>* admitted) {
  STCOMP_CHECK(admitted != nullptr);
  if (quarantined_) {
    counters_.quarantined->Increment();
    if (policy_.mode == IngestMode::kReject) {
      return FailedPreconditionError("object is quarantined");
    }
    return Status::Ok();
  }
  if (!std::isfinite(fix.t) || !std::isfinite(fix.position.x) ||
      !std::isfinite(fix.position.y)) {
    return RecordFault(counters_.dropped,
                       "fix has non-finite timestamp or coordinates");
  }
  if (policy_.mode != IngestMode::kRepair) {
    if (any_released_ && fix.t <= last_released_t_) {
      return RecordFault(
          counters_.dropped,
          StrFormat("fix at t=%.9g not after previous t=%.9g", fix.t,
                    last_released_t_));
    }
    consecutive_faults_ = 0;
    admitted->push_back(fix);
    last_released_t_ = fix.t;
    any_released_ = true;
    return Status::Ok();
  }
  // kRepair: dedup exact-duplicate timestamps, hold and re-sort late fixes
  // within the reorder window, drop what is beyond repair.
  // In kRepair mode RecordFault never returns an error (that is kReject's
  // contract), so its status is ignored below.
  if (any_released_ && fix.t <= last_released_t_) {
    if (fix.t == last_released_t_) {
      RecordFault(counters_.repaired, "duplicate timestamp (dedup)");
    } else {
      RecordFault(counters_.dropped, "fix older than the release watermark");
    }
    return Status::Ok();
  }
  const bool late = any_seen_ && fix.t < max_seen_t_;
  const auto at = std::lower_bound(
      held_.begin(), held_.end(), fix.t,
      [](const TimedPoint& held, double t) { return held.t < t; });
  if (at != held_.end() && at->t == fix.t) {
    RecordFault(counters_.repaired, "duplicate timestamp (dedup)");
  } else {
    held_.insert(at, fix);
    if (late) {
      RecordFault(counters_.repaired, "late fix re-sorted");
    } else {
      consecutive_faults_ = 0;
    }
  }
  any_seen_ = true;
  max_seen_t_ = std::max(max_seen_t_, fix.t);
  Release(admitted);
  return Status::Ok();
}

void IngestGate::Release(std::vector<TimedPoint>* admitted) {
  const double watermark = max_seen_t_ - policy_.reorder_window_s;
  size_t n = 0;
  while (n < held_.size() && held_[n].t <= watermark) {
    ++n;
  }
  if (n == 0) {
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    admitted->push_back(held_[i]);
  }
  last_released_t_ = held_[n - 1].t;
  any_released_ = true;
  held_.erase(held_.begin(), held_.begin() + static_cast<ptrdiff_t>(n));
}

void IngestGate::Flush(std::vector<TimedPoint>* admitted) {
  STCOMP_CHECK(admitted != nullptr);
  for (const TimedPoint& fix : held_) {
    admitted->push_back(fix);
  }
  if (!held_.empty()) {
    last_released_t_ = held_.back().t;
    any_released_ = true;
    held_.clear();
  }
}

}  // namespace stcomp
