// Dead-reckoning online compression: an extension baseline beyond the
// paper. The receiver keeps the last committed fix plus a velocity estimate
// and commits a new fix only when the constant-velocity prediction drifts
// more than epsilon from the observed position. O(1) memory and time per
// fix — the cheapest online policy with a per-point guarantee against the
// *prediction*, commonly used in moving-object database update protocols.

#ifndef STCOMP_STREAM_DEAD_RECKONING_STREAM_H_
#define STCOMP_STREAM_DEAD_RECKONING_STREAM_H_

#include <optional>

#include "stcomp/stream/online_compressor.h"

namespace stcomp {

class DeadReckoningStream final : public OnlineCompressor {
 public:
  explicit DeadReckoningStream(double epsilon_m);

  Status Push(const TimedPoint& point, std::vector<TimedPoint>* out) override;
  void Finish(std::vector<TimedPoint>* out) override;
  size_t buffered_points() const override { return pending_ ? 1 : 0; }
  std::string_view name() const override { return "dead-reckoning"; }

  // Checkpointing (DESIGN.md §13): last commit, velocity estimate and the
  // pending fix, behind an epsilon config echo.
  Status SaveState(std::string* out) const override;
  Status RestoreState(std::string_view state) override;

 private:
  const double epsilon_m_;
  std::optional<TimedPoint> last_committed_;
  std::optional<Vec2> velocity_mps_;
  // The most recent pushed-but-uncommitted fix (flushed by Finish).
  std::optional<TimedPoint> pending_;
  bool finished_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_DEAD_RECKONING_STREAM_H_
