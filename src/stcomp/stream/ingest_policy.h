// Ingest hardening for the stream layer (DESIGN.md §12).
//
// The compression algorithms assume clean, strictly time-ordered, finite
// fixes; real feeds deliver out-of-order, duplicated and NaN-laden records.
// An IngestGate sits in front of a compressor and applies a per-object
// IngestPolicy to every raw fix *before* it reaches the algorithm: faults
// surface as Status (kReject), are counted and swallowed (kDropAndCount),
// or are repaired by dedup/bounded resort (kRepair) — never undefined
// behaviour downstream.
//
// Every gate decision is counted in the process-wide registry under the
// instance's {compressor=<instance>} labels:
//   stcomp_ingest_dropped_total      fixes discarded (unrepairable)
//   stcomp_ingest_repaired_total     fixes admitted after dedup/resort
//   stcomp_ingest_quarantined_total  fixes refused because the object
//                                    tripped the quarantine threshold

#ifndef STCOMP_STREAM_INGEST_POLICY_H_
#define STCOMP_STREAM_INGEST_POLICY_H_

#include <string>
#include <vector>

#include "stcomp/common/status.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/obs/metrics.h"

namespace stcomp {

// What the gate does with a fix that violates the ingest contract
// (non-finite timestamp/coordinates, non-monotonic timestamp).
enum class IngestMode {
  // Surface kInvalidArgument to the caller; nothing faulty is admitted.
  // The strict, fail-loud default — matches the historical behaviour of
  // pushing out-of-order fixes straight into a compressor.
  kReject,
  // Swallow the faulty fix, count it dropped, keep the stream alive.
  kDropAndCount,
  // Fix what is fixable: exact-duplicate timestamps are dropped as
  // repairs, late fixes within `reorder_window_s` are held and re-sorted;
  // everything else (non-finite, too stale) is dropped.
  kRepair,
};

std::string_view IngestModeToString(IngestMode mode);

struct IngestPolicy {
  IngestMode mode = IngestMode::kReject;

  // kRepair only: admitted fixes are released once the newest observed
  // timestamp is at least this far past them, so a fix arriving up to
  // `reorder_window_s` late is merged back in order. 0 releases
  // immediately (repair degenerates to dedup).
  double reorder_window_s = 0.0;

  // After this many *consecutive* faulty fixes the object is quarantined:
  // all later fixes are counted quarantined and discarded (kReject mode
  // additionally surfaces kFailedPrecondition). 0 disables quarantine.
  int quarantine_after = 0;
};

// Registry-owned counters for one gate instance; pointers live for the
// process lifetime.
struct IngestCounters {
  obs::Counter* dropped = nullptr;
  obs::Counter* repaired = nullptr;
  obs::Counter* quarantined = nullptr;
  // Transient-source retries (stcomp_ingest_retries_total): incremented by
  // PolicedCompressor::DrainSource for every kUnavailable it retries.
  obs::Counter* retries = nullptr;

  // The stcomp_ingest_* series labelled {compressor=instance}.
  static IngestCounters ForInstance(const std::string& instance);
};

// Per-object stateful validator. Admit() classifies one raw fix and
// appends every fix cleared for compression — in strictly increasing time
// order, each exactly once across the gate's lifetime — to `admitted`.
class IngestGate {
 public:
  // `tag` names the guarded stream in flight-recorder events (typically
  // the object id); empty leaves the events untagged.
  IngestGate(const IngestPolicy& policy, const IngestCounters& counters,
             std::string tag = "");

  // Returns non-OK only in kReject mode (kInvalidArgument for a faulty
  // fix, kFailedPrecondition once quarantined); the other modes always
  // return OK and account for the fault in the counters instead.
  // `admitted` is appended to, not cleared.
  Status Admit(const TimedPoint& fix, std::vector<TimedPoint>* admitted);

  // Releases any fixes still held in the reorder buffer (kRepair). Call
  // before finishing the downstream compressor.
  void Flush(std::vector<TimedPoint>* admitted);

  bool quarantined() const { return quarantined_; }
  // Fixes currently held for reordering (kRepair working memory).
  size_t held_points() const { return held_.size(); }

  // This gate's own fault tallies (the registry counters aggregate every
  // gate of an instance; /objectz needs them per object).
  uint64_t dropped() const { return dropped_; }
  uint64_t repaired() const { return repaired_; }

  // Checkpoint/restore (DESIGN.md §13): the reorder buffer, watermarks and
  // quarantine/fault counters, behind a policy config echo — a restarted
  // pipeline resumes with the same admission decisions. Counters are
  // process-wide registry series and are not part of the state.
  Status SaveState(std::string* out) const;
  Status RestoreState(std::string_view state);

 private:
  Status RecordFault(obs::Counter* counter, std::string_view detail);
  void Release(std::vector<TimedPoint>* admitted);

  const IngestPolicy policy_;
  const IngestCounters counters_;
  const std::string tag_;
  uint64_t dropped_ = 0;
  uint64_t repaired_ = 0;
  // Reorder buffer, sorted by strictly increasing t (kRepair only).
  std::vector<TimedPoint> held_;
  double last_released_t_ = 0.0;
  double max_seen_t_ = 0.0;
  bool any_released_ = false;
  bool any_seen_ = false;
  int consecutive_faults_ = 0;
  bool quarantined_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_INGEST_POLICY_H_
