#include "stcomp/stream/squish_stream.h"

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/store/varint.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

SquishStream::SquishStream(size_t capacity, double mu_m)
    : buffer_(capacity, mu_m) {
  name_ = capacity == 0 ? StrFormat("squish-e(%.0fm)", mu_m)
                        : StrFormat("squish(%zu)", capacity);
}

Status SquishStream::Push(const TimedPoint& point,
                          std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  if (any_pushed_ && point.t <= last_time_) {
    return InvalidArgumentError(
        StrFormat("stream timestamps must increase at t=%f", point.t));
  }
  last_time_ = point.t;
  buffer_.Push(next_index_++, point);
  if (!any_pushed_) {
    any_pushed_ = true;
    out->push_back(point);  // The first fix always survives SQUISH.
  }
  return Status::Ok();
}

Status SquishStream::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  const algo::SquishBufferState state = buffer_.ExportState();
  PutString(name_, out);
  PutVarint(state.capacity, out);
  PutDouble(state.mu, out);
  PutSignedVarint(next_index_, out);
  PutDouble(last_time_, out);
  PutBool(any_pushed_, out);
  PutBool(finished_, out);
  PutVarint(state.nodes.size(), out);
  for (const algo::SquishBufferState::Node& node : state.nodes) {
    PutTimedPoint(node.point, out);
    PutSignedVarint(node.original_index, out);
    PutDouble(node.priority, out);
    PutDouble(node.carry, out);
    PutSignedVarint(node.prev, out);
    PutSignedVarint(node.next, out);
    PutBool(node.alive, out);
  }
  PutVarint(state.free_ids.size(), out);
  for (int id : state.free_ids) {
    PutSignedVarint(id, out);
  }
  PutSignedVarint(state.head, out);
  PutSignedVarint(state.tail, out);
  return Status::Ok();
}

Status SquishStream::RestoreState(std::string_view state) {
  STCOMP_ASSIGN_OR_RETURN(const std::string_view saved_name,
                          GetString(&state));
  if (saved_name != name_) {
    return InvalidArgumentError(
        "checkpoint was taken by a differently configured compressor (" +
        std::string(saved_name) + ")");
  }
  algo::SquishBufferState buffer_state;
  STCOMP_ASSIGN_OR_RETURN(buffer_state.capacity, GetVarint(&state));
  STCOMP_ASSIGN_OR_RETURN(buffer_state.mu, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(const int64_t next_index,
                          GetSignedVarint(&state));
  STCOMP_ASSIGN_OR_RETURN(const double last_time, GetDouble(&state));
  STCOMP_ASSIGN_OR_RETURN(const bool any_pushed, GetBool(&state));
  STCOMP_ASSIGN_OR_RETURN(const bool finished, GetBool(&state));
  STCOMP_ASSIGN_OR_RETURN(const uint64_t node_count, GetVarint(&state));
  buffer_state.nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    algo::SquishBufferState::Node node;
    STCOMP_ASSIGN_OR_RETURN(node.point, GetTimedPoint(&state));
    STCOMP_ASSIGN_OR_RETURN(int64_t value, GetSignedVarint(&state));
    node.original_index = static_cast<int>(value);
    STCOMP_ASSIGN_OR_RETURN(node.priority, GetDouble(&state));
    STCOMP_ASSIGN_OR_RETURN(node.carry, GetDouble(&state));
    STCOMP_ASSIGN_OR_RETURN(value, GetSignedVarint(&state));
    node.prev = static_cast<int>(value);
    STCOMP_ASSIGN_OR_RETURN(value, GetSignedVarint(&state));
    node.next = static_cast<int>(value);
    STCOMP_ASSIGN_OR_RETURN(node.alive, GetBool(&state));
    buffer_state.nodes.push_back(node);
  }
  STCOMP_ASSIGN_OR_RETURN(const uint64_t free_count, GetVarint(&state));
  buffer_state.free_ids.reserve(free_count);
  for (uint64_t i = 0; i < free_count; ++i) {
    STCOMP_ASSIGN_OR_RETURN(const int64_t id, GetSignedVarint(&state));
    buffer_state.free_ids.push_back(static_cast<int>(id));
  }
  STCOMP_ASSIGN_OR_RETURN(int64_t end, GetSignedVarint(&state));
  buffer_state.head = static_cast<int>(end);
  STCOMP_ASSIGN_OR_RETURN(end, GetSignedVarint(&state));
  buffer_state.tail = static_cast<int>(end);
  if (!state.empty()) {
    return DataLossError("trailing bytes in compressor checkpoint");
  }
  STCOMP_RETURN_IF_ERROR(buffer_.ImportState(buffer_state));
  next_index_ = static_cast<int>(next_index);
  last_time_ = last_time;
  any_pushed_ = any_pushed;
  finished_ = finished;
  return Status::Ok();
}

void SquishStream::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  bool first = true;
  buffer_.ForEachKept([&](int /*index*/, const TimedPoint& point) {
    if (first) {
      first = false;  // Already emitted at the initial Push.
      return;
    }
    out->push_back(point);
  });
}

}  // namespace stcomp
