#include "stcomp/stream/squish_stream.h"

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"

namespace stcomp {

SquishStream::SquishStream(size_t capacity, double mu_m)
    : buffer_(capacity, mu_m) {
  name_ = capacity == 0 ? StrFormat("squish-e(%.0fm)", mu_m)
                        : StrFormat("squish(%zu)", capacity);
}

Status SquishStream::Push(const TimedPoint& point,
                          std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  if (any_pushed_ && point.t <= last_time_) {
    return InvalidArgumentError(
        StrFormat("stream timestamps must increase at t=%f", point.t));
  }
  last_time_ = point.t;
  buffer_.Push(next_index_++, point);
  if (!any_pushed_) {
    any_pushed_ = true;
    out->push_back(point);  // The first fix always survives SQUISH.
  }
  return Status::Ok();
}

void SquishStream::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  bool first = true;
  buffer_.ForEachKept([&](int /*index*/, const TimedPoint& point) {
    if (first) {
      first = false;  // Already emitted at the initial Push.
      return;
    }
    out->push_back(point);
  });
}

}  // namespace stcomp
