#include "stcomp/stream/online_compressor.h"

#include "stcomp/common/check.h"

namespace stcomp {

Result<Trajectory> CompressStream(const Trajectory& trajectory,
                                  OnlineCompressor* compressor) {
  STCOMP_CHECK(compressor != nullptr);
  std::vector<TimedPoint> committed;
  for (const TimedPoint& point : trajectory.points()) {
    STCOMP_RETURN_IF_ERROR(compressor->Push(point, &committed));
  }
  compressor->Finish(&committed);
  STCOMP_ASSIGN_OR_RETURN(Trajectory compressed,
                          Trajectory::FromPoints(std::move(committed)));
  compressed.set_name(trajectory.name());
  return compressed;
}

}  // namespace stcomp
