#include "stcomp/stream/online_compressor.h"

#include <cmath>

#include "stcomp/common/check.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/trace.h"

namespace stcomp {

Status OnlineCompressor::SaveState(std::string* /*out*/) const {
  return UnimplementedError(std::string(name()) +
                            " does not support checkpointing");
}

Status OnlineCompressor::RestoreState(std::string_view /*state*/) {
  return UnimplementedError(std::string(name()) +
                            " does not support checkpointing");
}

Status ValidateFiniteFix(const TimedPoint& point) {
  if (!std::isfinite(point.t) || !std::isfinite(point.position.x) ||
      !std::isfinite(point.position.y)) {
    return InvalidArgumentError(
        "fix has non-finite timestamp or coordinates");
  }
  return Status::Ok();
}

Result<Trajectory> CompressStream(const Trajectory& trajectory,
                                  OnlineCompressor* compressor) {
  STCOMP_CHECK(compressor != nullptr);
  // Whole-stream runs are coarse: a registry lookup and a trace span per
  // trajectory, not per fix.
  STCOMP_TRACE_SPAN("stream.compress", std::string(compressor->name()));
  STCOMP_IF_METRICS(
      obs::MetricsRegistry::Global()
          .GetCounter("stcomp_stream_compress_runs_total",
                      {{"compressor", std::string(compressor->name())}})
          ->Increment());
  std::vector<TimedPoint> committed;
  for (const TimedPoint& point : trajectory.points()) {
    STCOMP_RETURN_IF_ERROR(compressor->Push(point, &committed));
  }
  compressor->Finish(&committed);
  STCOMP_ASSIGN_OR_RETURN(Trajectory compressed,
                          Trajectory::FromPoints(std::move(committed)));
  compressed.set_name(trajectory.name());
  return compressed;
}

}  // namespace stcomp
