// Multi-object online compression: routes an interleaved fix stream
// (object id, fix) to one OnlineCompressor per object and appends each
// object's committed points to a TrajectoryStore — the full server-side
// ingestion path the paper's introduction motivates (many devices, one
// database, compress on arrival).
//
// Observability: every instance registers its own metric series under
// {compressor=<instance>} labels — fixes in/out counters (the public
// fixes_in()/fixes_out() accessors are shims over them), active-object and
// buffered-point gauges, a sampled per-push latency histogram, and a trace
// span per object finish. See DESIGN.md §10.
//
// Ingest hardening (DESIGN.md §12): every fix passes a per-object
// IngestGate before it reaches the object's compressor, so dirty feeds
// (non-finite values, duplicates, out-of-order timestamps) surface as
// Status or are counted/repaired per the configured IngestPolicy —
// stcomp_ingest_{dropped,repaired,quarantined}_total under this instance's
// labels. The default policy (kReject) preserves the historical contract:
// faulty fixes fail with kInvalidArgument and nothing reaches the store.
//
// Sharding (DESIGN.md §16): a FleetCompressor is the per-shard engine of
// ShardedFleetCompressor (stream/sharded_fleet.h). The sink constructor
// lets committed points flow into any durability layer (a per-shard
// SegmentStore partition, a network forwarder); the TrajectoryStore
// constructors remain the single-shard in-memory case. Synchronization is
// the caller's — the sharded engine serializes all access per shard.

#ifndef STCOMP_STREAM_FLEET_COMPRESSOR_H_
#define STCOMP_STREAM_FLEET_COMPRESSOR_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "stcomp/obs/metrics.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/ingest_policy.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

class FleetCompressor {
 public:
  // Receives every committed point, in per-object time order. Must not
  // re-enter the FleetCompressor.
  using AppendSink =
      std::function<Status(const std::string& object_id,
                           const TimedPoint& point)>;

  // `factory` builds a fresh compressor for every new object id; `store`
  // receives committed points (must outlive the FleetCompressor).
  // `instance` names this compressor's metric series; empty picks a unique
  // "fleet-<n>" so concurrent instances never share counters.
  FleetCompressor(
      std::function<std::unique_ptr<OnlineCompressor>()> factory,
      TrajectoryStore* store, std::string instance = "");

  // As above, with an explicit ingest policy applied per object.
  FleetCompressor(
      std::function<std::unique_ptr<OnlineCompressor>()> factory,
      TrajectoryStore* store, const IngestPolicy& policy,
      std::string instance = "");

  // Generic-sink form: committed points go to `sink` instead of a
  // TrajectoryStore (the sharded engine passes its shard's SegmentStore
  // partition here). A failing sink is handled exactly like a failing
  // store append: accounting stays consistent, the error surfaces.
  FleetCompressor(
      std::function<std::unique_ptr<OnlineCompressor>()> factory,
      AppendSink sink, const IngestPolicy& policy, std::string instance = "");

  // Feeds one fix for `object_id`; commits flow into the store.
  // Under the default (kReject) policy: kInvalidArgument for out-of-order
  // or non-finite fixes of the same object; other policies absorb faults
  // and return OK (see ingest_policy.h). Takes a string_view and looks the
  // object up heterogeneously, so callers holding string_views push
  // without materializing a std::string per fix.
  Status Push(std::string_view object_id, const TimedPoint& fix);

  // Ends one object's stream (flushes its tail, removes its compressor).
  // kNotFound for unknown ids.
  Status FinishObject(std::string_view object_id);

  // Ends all remaining streams.
  Status FinishAll();

  size_t active_objects() const { return compressors_.size(); }

  // Total fixes pushed and committed across all objects so far: the live
  // compression dashboard the ingestion path exposes. Reads the registry
  // counters backing this instance's metric series; only successfully
  // appended points count as out, so fixes_out() <= fixes_in() holds even
  // when the store rejects an append mid-drain.
  size_t fixes_in() const { return fixes_in_->value(); }
  size_t fixes_out() const { return fixes_out_->value(); }
  // Points currently buffered across all objects (working memory).
  size_t buffered_points() const;

  // The label value under which this instance's metrics are registered.
  const std::string& instance() const { return instance_; }

  // Per-object live view for /objectz: fixes in/out, compression ratio,
  // working memory and ingest-policy state of every active stream.
  // Synchronization is the caller's (same contract as Push/FinishObject).
  struct ObjectInfo {
    std::string object_id;
    uint64_t fixes_in = 0;
    uint64_t fixes_out = 0;  // committed to the store
    size_t buffered_points = 0;
    uint64_t dropped = 0;
    uint64_t repaired = 0;
    bool quarantined = false;
  };
  std::vector<ObjectInfo> ObjectsSnapshot() const;
  // One active object's stats without building the full snapshot
  // (heterogeneous lookup; no allocation on the miss path). nullopt for
  // unknown ids.
  std::optional<ObjectInfo> ObjectStats(std::string_view object_id) const;
  // {"instance":..., "policy":..., "objects_total":N, "truncated":...,
  //  "objects":[{...,"ratio":...}, ...]} — what the admin server's
  // /objectz endpoint serves. `limit` bounds the rendered entries (0 =
  // unlimited); when objects are cut, "truncated" is true and
  // "objects_total" still reports the full count.
  std::string RenderObjectsJson(size_t limit = 0) const;

  const IngestPolicy& policy() const { return policy_; }

  // Ingest-gate decisions across all objects so far (shims over this
  // instance's stcomp_ingest_* registry counters).
  size_t ingest_dropped() const { return ingest_counters_.dropped->value(); }
  size_t ingest_repaired() const { return ingest_counters_.repaired->value(); }
  size_t ingest_quarantined() const {
    return ingest_counters_.quarantined->value();
  }

  // Checkpoint/restore (DESIGN.md §13): one "STCK" image holding every
  // open object stream (its gate + compressor state plus its lifetime
  // fixes in/out counters, so /objectz ratios survive a restart). RestoreState
  // requires an empty fleet (no objects pushed yet), rebuilds each
  // object's compressor through the factory and loads its state — a
  // restarted ingestion process resumes exactly where the checkpoint was
  // taken. The store is durable separately (SegmentStore); it is not part
  // of this image. Fails with kUnimplemented if the factory's compressor
  // does not checkpoint, kInvalidArgument on a policy mismatch.
  Status SaveState(std::string* out) const;
  Status RestoreState(std::string_view image);

 private:
  struct ObjectState {
    std::unique_ptr<OnlineCompressor> compressor;
    IngestGate gate;
    uint64_t fixes_in = 0;
    uint64_t fixes_out = 0;
  };

  Status Drain(std::string_view object_id, ObjectState* state,
               std::vector<TimedPoint>* committed);

  std::function<std::unique_ptr<OnlineCompressor>()> factory_;
  AppendSink sink_;
  IngestPolicy policy_;
  std::string instance_;
  // Transparent comparator: Push/FinishObject/ObjectStats look up by
  // string_view without constructing a key string (the hot-path
  // allocation fix — a std::string is built only when a new object is
  // first seen).
  std::map<std::string, ObjectState, std::less<>> compressors_;
  // Registry-owned; valid for the process lifetime.
  obs::Counter* fixes_in_;
  obs::Counter* fixes_out_;
  obs::Gauge* active_objects_gauge_;
  obs::Gauge* buffered_points_gauge_;
  obs::Histogram* push_seconds_;
  IngestCounters ingest_counters_;
  // Reused gate-output scratch (Push/FinishObject are not re-entrant).
  std::vector<TimedPoint> admitted_;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_FLEET_COMPRESSOR_H_
