// Multi-object online compression: routes an interleaved fix stream
// (object id, fix) to one OnlineCompressor per object and appends each
// object's committed points to a TrajectoryStore — the full server-side
// ingestion path the paper's introduction motivates (many devices, one
// database, compress on arrival).

#ifndef STCOMP_STREAM_FLEET_COMPRESSOR_H_
#define STCOMP_STREAM_FLEET_COMPRESSOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

class FleetCompressor {
 public:
  // `factory` builds a fresh compressor for every new object id; `store`
  // receives committed points (must outlive the FleetCompressor).
  FleetCompressor(
      std::function<std::unique_ptr<OnlineCompressor>()> factory,
      TrajectoryStore* store);

  // Feeds one fix for `object_id`; commits flow into the store.
  // kInvalidArgument for out-of-order fixes of the same object.
  Status Push(const std::string& object_id, const TimedPoint& fix);

  // Ends one object's stream (flushes its tail, removes its compressor).
  // kNotFound for unknown ids.
  Status FinishObject(const std::string& object_id);

  // Ends all remaining streams.
  Status FinishAll();

  size_t active_objects() const { return compressors_.size(); }

  // Total fixes pushed and committed across all objects so far: the live
  // compression dashboard the ingestion path exposes.
  size_t fixes_in() const { return fixes_in_; }
  size_t fixes_out() const { return fixes_out_; }
  // Points currently buffered across all objects (working memory).
  size_t buffered_points() const;

 private:
  Status Drain(const std::string& object_id,
               std::vector<TimedPoint>* committed);

  std::function<std::unique_ptr<OnlineCompressor>()> factory_;
  TrajectoryStore* store_;
  std::map<std::string, std::unique_ptr<OnlineCompressor>> compressors_;
  size_t fixes_in_ = 0;
  size_t fixes_out_ = 0;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_FLEET_COMPRESSOR_H_
