// Checkpoint encoding for streaming state (DESIGN.md §13).
//
// A checkpoint is a "STCK" blob of tagged, length-prefixed sections:
//
//   magic "STCK" | version u8 | section*
//   section = tag (len varint + bytes) | body (len varint + bytes)
//
// Each OnlineCompressor::SaveState body is an opaque field sequence built
// from the primitives below; every implementation leads with a
// configuration echo (name + the constructor parameters) that
// RestoreState validates, so a checkpoint can only be loaded into a
// compressor constructed the same way — restoring into the wrong shape
// fails loudly with kInvalidArgument instead of resuming garbage.
//
// Doubles travel as raw little-endian bit patterns (store/varint.h
// PutDouble), so a restored stream continues bitwise-identical to the
// uninterrupted run — the property the crash-matrix test asserts.

#ifndef STCOMP_STREAM_CHECKPOINT_H_
#define STCOMP_STREAM_CHECKPOINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

// Field primitives shared by the SaveState/RestoreState implementations.
// Readers take the cursor by pointer and advance it; all failures are
// kDataLoss.
void PutString(std::string_view value, std::string* out);
Result<std::string_view> GetString(std::string_view* input);
void PutBool(bool value, std::string* out);
Result<bool> GetBool(std::string_view* input);
void PutTimedPoint(const TimedPoint& point, std::string* out);
Result<TimedPoint> GetTimedPoint(std::string_view* input);
void PutPointVector(const std::vector<TimedPoint>& points, std::string* out);
Status GetPointVector(std::string_view* input, std::vector<TimedPoint>* out);

class CheckpointWriter {
 public:
  void AddSection(std::string_view tag, std::string_view body);
  // The full "STCK" image (header + every section added so far).
  std::string Finish() const;

 private:
  std::string sections_;
};

// Sharded checkpoint manifest (DESIGN.md §16): the ShardedFleetCompressor
// image. Wraps one "STCK" image per shard in an outer envelope that echoes
// the shard layout, so restore can refuse a resharded reopen instead of
// silently misrouting objects:
//
//   magic "STSM" | version u8 | shard_count varint | hash_scheme u8 |
//   shard_count × (len varint + "STCK" bytes)
//
// `hash_scheme` names the id→shard mapping the images were taken under
// (kShardHashFnv1a64 is the only scheme today; the byte exists so a future
// scheme change fails loudly instead of scattering restored objects).
inline constexpr uint8_t kShardHashFnv1a64 = 1;

std::string WriteShardManifest(uint8_t hash_scheme,
                               const std::vector<std::string>& shard_images);

// Non-owning view into a parsed manifest; the image must outlive it.
struct ShardManifestView {
  uint64_t shard_count = 0;
  uint8_t hash_scheme = 0;
  std::vector<std::string_view> shard_images;
};

// kDataLoss on a malformed envelope. Per-shard images are not validated
// here — each shard's CheckpointReader does that on restore.
Result<ShardManifestView> ParseShardManifest(std::string_view image);

// Non-owning parser; the parsed image must outlive the reader.
class CheckpointReader {
 public:
  struct Section {
    std::string_view tag;
    std::string_view body;
  };

  // Validates the header and splits the sections. kDataLoss on a
  // malformed image.
  Status Parse(std::string_view image);

  // Sections in file order; tags may repeat (one per fleet object).
  const std::vector<Section>& sections() const { return sections_; }

  // The single section tagged `tag`: kNotFound if absent,
  // kDataLoss if repeated.
  Result<std::string_view> Find(std::string_view tag) const;

 private:
  std::vector<Section> sections_;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_CHECKPOINT_H_
