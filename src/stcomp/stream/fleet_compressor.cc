#include "stcomp/stream/fleet_compressor.h"

#include <utility>

#include "stcomp/common/check.h"

namespace stcomp {

FleetCompressor::FleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    TrajectoryStore* store)
    : factory_(std::move(factory)), store_(store) {
  STCOMP_CHECK(factory_ != nullptr);
  STCOMP_CHECK(store_ != nullptr);
}

Status FleetCompressor::Drain(const std::string& object_id,
                              std::vector<TimedPoint>* committed) {
  for (const TimedPoint& point : *committed) {
    STCOMP_RETURN_IF_ERROR(store_->Append(object_id, point));
    ++fixes_out_;
  }
  committed->clear();
  return Status::Ok();
}

Status FleetCompressor::Push(const std::string& object_id,
                             const TimedPoint& fix) {
  auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    it = compressors_.emplace(object_id, factory_()).first;
  }
  ++fixes_in_;
  std::vector<TimedPoint> committed;
  STCOMP_RETURN_IF_ERROR(it->second->Push(fix, &committed));
  return Drain(object_id, &committed);
}

Status FleetCompressor::FinishObject(const std::string& object_id) {
  const auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    return NotFoundError("no active stream for object '" + object_id + "'");
  }
  std::vector<TimedPoint> committed;
  it->second->Finish(&committed);
  // Drain before erasing: callers (FinishAll in particular) may pass a
  // reference to the map key itself, which erase() would invalidate.
  const Status status = Drain(object_id, &committed);
  compressors_.erase(it);
  return status;
}

Status FleetCompressor::FinishAll() {
  while (!compressors_.empty()) {
    STCOMP_RETURN_IF_ERROR(FinishObject(compressors_.begin()->first));
  }
  return Status::Ok();
}

size_t FleetCompressor::buffered_points() const {
  size_t total = 0;
  for (const auto& [id, compressor] : compressors_) {
    total += compressor->buffered_points();
  }
  return total;
}

}  // namespace stcomp
