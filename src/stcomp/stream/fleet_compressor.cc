#include "stcomp/stream/fleet_compressor.h"

#include <atomic>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/timer.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/varint.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

namespace {

std::string ResolveInstance(std::string instance) {
  if (!instance.empty()) {
    return instance;
  }
  static std::atomic<uint64_t> sequence{0};
  return "fleet-" + std::to_string(sequence.fetch_add(1));
}

FleetCompressor::AppendSink StoreSink(TrajectoryStore* store) {
  STCOMP_CHECK(store != nullptr);
  return [store](const std::string& object_id, const TimedPoint& point) {
    return store->Append(object_id, point);
  };
}

}  // namespace

FleetCompressor::FleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    TrajectoryStore* store, std::string instance)
    : FleetCompressor(std::move(factory), StoreSink(store), IngestPolicy{},
                      std::move(instance)) {}

FleetCompressor::FleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    TrajectoryStore* store, const IngestPolicy& policy, std::string instance)
    : FleetCompressor(std::move(factory), StoreSink(store), policy,
                      std::move(instance)) {}

FleetCompressor::FleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    AppendSink sink, const IngestPolicy& policy, std::string instance)
    : factory_(std::move(factory)),
      sink_(std::move(sink)),
      policy_(policy),
      instance_(ResolveInstance(std::move(instance))) {
  STCOMP_CHECK(factory_ != nullptr);
  STCOMP_CHECK(sink_ != nullptr);
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"compressor", instance_}};
  fixes_in_ = registry.GetCounter("stcomp_stream_fixes_in_total", labels);
  fixes_out_ = registry.GetCounter("stcomp_stream_fixes_out_total", labels);
  active_objects_gauge_ =
      registry.GetGauge("stcomp_stream_active_objects", labels);
  buffered_points_gauge_ =
      registry.GetGauge("stcomp_stream_buffered_points", labels);
  push_seconds_ = registry.GetHistogram("stcomp_stream_push_seconds", labels,
                                        obs::LatencyBucketsSeconds());
  ingest_counters_ = IngestCounters::ForInstance(instance_);
}

Status FleetCompressor::Drain(std::string_view object_id,
                              ObjectState* state,
                              std::vector<TimedPoint>* committed) {
  // Error-consistent accounting: count and remove exactly the points the
  // store accepted, so a failed Append mid-drain neither inflates fixes_out
  // nor leaves accepted points queued for a double-append on retry. The
  // un-appended tail stays in `committed` for the caller to inspect.
  size_t appended = 0;
  Status status = Status::Ok();
  if (!committed->empty()) {
    // The sink takes const std::string& (store API); one key string per
    // non-empty batch, never one per fix.
    const std::string id(object_id);
    for (const TimedPoint& point : *committed) {
      status = sink_(id, point);
      if (!status.ok()) {
        break;
      }
      ++appended;
    }
  }
  if (appended > 0) {
    fixes_out_->Increment(appended);
    state->fixes_out += appended;
    // kFleetDrain, not kStoreAppend: the store emits its own kStoreAppend
    // (arg0 = boundary) per accepted point; this is the fleet-level batch
    // summary with different args, so it needs its own code.
    STCOMP_FLIGHT_EVENT(kFleetDrain, object_id, appended, state->fixes_out);
  }
  committed->erase(committed->begin(),
                   committed->begin() + static_cast<ptrdiff_t>(appended));
  return status;
}

Status FleetCompressor::Push(std::string_view object_id,
                             const TimedPoint& fix) {
  STCOMP_SCOPED_TIMER_SAMPLED(push_seconds_);
  // Head-sampled root: one in TraceBuffer::SampledRootPeriod() pushes
  // records its whole gate → compressor → store span tree.
  STCOMP_TRACE_SPAN_SAMPLED("fleet.push", object_id);
  auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    // Only a brand-new object pays for key materialization; steady-state
    // pushes resolve heterogeneously through std::less<>.
    it = compressors_
             .emplace(std::string(object_id),
                      ObjectState{factory_(),
                                  IngestGate(policy_, ingest_counters_,
                                             std::string(object_id))})
             .first;
    STCOMP_IF_METRICS(active_objects_gauge_->Set(
        static_cast<double>(compressors_.size())));
  }
  fixes_in_->Increment();
  ++it->second.fixes_in;
  if (it->second.fixes_in == 1) {
    // Flight events mark transitions, not steady-state traffic: recording
    // every fix would lap the ring in milliseconds at fleet rates and
    // erase the history a post-mortem dump needs. The object's arrival
    // plus the per-batch kFleetDrain / gate-fault / WAL events below it
    // reconstruct the steady state.
    STCOMP_FLIGHT_EVENT(kFleetPush, object_id, 1, 0);
  }
  admitted_.clear();
  STCOMP_RETURN_IF_ERROR(it->second.gate.Admit(fix, &admitted_));
  std::vector<TimedPoint> committed;
  for (const TimedPoint& admitted_fix : admitted_) {
    STCOMP_RETURN_IF_ERROR(it->second.compressor->Push(admitted_fix,
                                                       &committed));
  }
  return Drain(object_id, &it->second, &committed);
}

Status FleetCompressor::FinishObject(std::string_view object_id) {
  const auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    return NotFoundError("no active stream for object '" +
                         std::string(object_id) + "'");
  }
  STCOMP_TRACE_SPAN("fleet.finish_object", object_id);
  std::vector<TimedPoint> committed;
  admitted_.clear();
  it->second.gate.Flush(&admitted_);
  Status status = Status::Ok();
  for (const TimedPoint& admitted_fix : admitted_) {
    status = it->second.compressor->Push(admitted_fix, &committed);
    if (!status.ok()) {
      break;  // Gate output is ordered; an inner failure is terminal.
    }
  }
  it->second.compressor->Finish(&committed);
  // Drain before erasing: callers (FinishAll in particular) may pass a
  // view of the map key itself, which erase() would invalidate.
  const Status drain_status = Drain(object_id, &it->second, &committed);
  STCOMP_FLIGHT_EVENT(kFleetFinishObject, object_id, it->second.fixes_out,
                      it->second.fixes_in);
  compressors_.erase(it);
  STCOMP_IF_METRICS(active_objects_gauge_->Set(
      static_cast<double>(compressors_.size())));
  // Finishing is coarse, so the O(objects) walk refreshing the
  // buffered-points gauge is affordable here (Push never does it).
  STCOMP_IF_METRICS(buffered_points());
  return status.ok() ? drain_status : status;
}

Status FleetCompressor::FinishAll() {
  STCOMP_TRACE_SPAN("fleet.finish_all", instance_);
  while (!compressors_.empty()) {
    STCOMP_RETURN_IF_ERROR(FinishObject(compressors_.begin()->first));
  }
  return Status::Ok();
}

namespace {
constexpr std::string_view kFleetSection = "fleet";
constexpr std::string_view kObjectSection = "object";
}  // namespace

Status FleetCompressor::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  STCOMP_TRACE_SPAN("fleet.save_state", instance_);
  CheckpointWriter writer;
  std::string meta;
  meta.push_back(static_cast<char>(policy_.mode));
  PutDouble(policy_.reorder_window_s, &meta);
  PutSignedVarint(policy_.quarantine_after, &meta);
  writer.AddSection(kFleetSection, meta);
  for (const auto& [object_id, state] : compressors_) {
    std::string body;
    PutString(object_id, &body);
    std::string gate_state;
    STCOMP_RETURN_IF_ERROR(state.gate.SaveState(&gate_state));
    PutString(gate_state, &body);
    std::string compressor_state;
    STCOMP_RETURN_IF_ERROR(state.compressor->SaveState(&compressor_state));
    PutString(compressor_state, &body);
    // Per-object lifetime counters: without them a restored fleet reports
    // fixes_in=0 / ratio 0 on /objectz for objects that have long histories.
    PutVarint(state.fixes_in, &body);
    PutVarint(state.fixes_out, &body);
    writer.AddSection(kObjectSection, body);
  }
  *out += writer.Finish();
  return Status::Ok();
}

Status FleetCompressor::RestoreState(std::string_view image) {
  if (!compressors_.empty()) {
    return FailedPreconditionError(
        "restore requires an empty fleet (objects are already active)");
  }
  STCOMP_TRACE_SPAN("fleet.restore_state", instance_);
  CheckpointReader reader;
  STCOMP_RETURN_IF_ERROR(reader.Parse(image));
  STCOMP_ASSIGN_OR_RETURN(std::string_view meta,
                          reader.Find(kFleetSection));
  if (meta.empty()) {
    return DataLossError("fleet checkpoint meta truncated");
  }
  const auto mode = static_cast<IngestMode>(meta.front());
  meta.remove_prefix(1);
  STCOMP_ASSIGN_OR_RETURN(const double reorder_window, GetDouble(&meta));
  STCOMP_ASSIGN_OR_RETURN(const int64_t quarantine_after,
                          GetSignedVarint(&meta));
  if (mode != policy_.mode || reorder_window != policy_.reorder_window_s ||
      quarantine_after != policy_.quarantine_after) {
    return InvalidArgumentError(
        "checkpoint was taken under a different ingest policy");
  }
  for (const CheckpointReader::Section& section : reader.sections()) {
    if (section.tag != kObjectSection) {
      continue;
    }
    std::string_view body = section.body;
    STCOMP_ASSIGN_OR_RETURN(const std::string_view object_id,
                            GetString(&body));
    STCOMP_ASSIGN_OR_RETURN(const std::string_view gate_state,
                            GetString(&body));
    STCOMP_ASSIGN_OR_RETURN(const std::string_view compressor_state,
                            GetString(&body));
    ObjectState state{factory_(),
                      IngestGate(policy_, ingest_counters_,
                                 std::string(object_id))};
    // Counters were appended to the section after the first release of the
    // format; accept their absence so pre-counter images still restore
    // (those objects then report since-restore counts).
    if (!body.empty()) {
      STCOMP_ASSIGN_OR_RETURN(const uint64_t fixes_in, GetVarint(&body));
      STCOMP_ASSIGN_OR_RETURN(const uint64_t fixes_out, GetVarint(&body));
      state.fixes_in = fixes_in;
      state.fixes_out = fixes_out;
    }
    if (!body.empty()) {
      return DataLossError("trailing bytes in fleet object section");
    }
    STCOMP_RETURN_IF_ERROR(state.gate.RestoreState(gate_state));
    STCOMP_RETURN_IF_ERROR(state.compressor->RestoreState(compressor_state));
    if (!compressors_.emplace(std::string(object_id), std::move(state))
             .second) {
      return DataLossError("duplicate object '" + std::string(object_id) +
                           "' in fleet checkpoint");
    }
  }
  STCOMP_IF_METRICS(active_objects_gauge_->Set(
      static_cast<double>(compressors_.size())));
  STCOMP_IF_METRICS(buffered_points());
  return Status::Ok();
}

std::vector<FleetCompressor::ObjectInfo> FleetCompressor::ObjectsSnapshot()
    const {
  std::vector<ObjectInfo> objects;
  objects.reserve(compressors_.size());
  for (const auto& [object_id, state] : compressors_) {
    ObjectInfo info;
    info.object_id = object_id;
    info.fixes_in = state.fixes_in;
    info.fixes_out = state.fixes_out;
    info.buffered_points =
        state.compressor->buffered_points() + state.gate.held_points();
    info.dropped = state.gate.dropped();
    info.repaired = state.gate.repaired();
    info.quarantined = state.gate.quarantined();
    objects.push_back(std::move(info));
  }
  return objects;
}

std::optional<FleetCompressor::ObjectInfo> FleetCompressor::ObjectStats(
    std::string_view object_id) const {
  const auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    return std::nullopt;
  }
  ObjectInfo info;
  info.object_id = it->first;
  info.fixes_in = it->second.fixes_in;
  info.fixes_out = it->second.fixes_out;
  info.buffered_points = it->second.compressor->buffered_points() +
                         it->second.gate.held_points();
  info.dropped = it->second.gate.dropped();
  info.repaired = it->second.gate.repaired();
  info.quarantined = it->second.gate.quarantined();
  return info;
}

std::string FleetCompressor::RenderObjectsJson(size_t limit) const {
  const size_t total = compressors_.size();
  const bool truncated = limit > 0 && total > limit;
  std::string out = StrFormat(
      "{\"instance\":\"%s\",\"policy\":\"%s\",\"objects_total\":%zu,"
      "\"truncated\":%s,\"objects\":[",
      instance_.c_str(),
      std::string(IngestModeToString(policy_.mode)).c_str(), total,
      truncated ? "true" : "false");
  bool first = true;
  size_t rendered = 0;
  for (const ObjectInfo& info : ObjectsSnapshot()) {
    if (truncated && rendered >= limit) {
      break;
    }
    ++rendered;
    out += first ? "\n" : ",\n";
    first = false;
    // Object ids come from feed identifiers; escape the JSON-hostile
    // characters a pathological feed could smuggle in.
    const std::string id = obs::JsonEscape(info.object_id);
    const double ratio =
        info.fixes_in > 0
            ? static_cast<double>(info.fixes_out) /
                  static_cast<double>(info.fixes_in)
            : 0.0;
    out += StrFormat(
        "  {\"object_id\":\"%s\",\"fixes_in\":%llu,\"fixes_out\":%llu,"
        "\"ratio\":%.6f,\"buffered_points\":%zu,\"dropped\":%llu,"
        "\"repaired\":%llu,\"quarantined\":%s}",
        id.c_str(), static_cast<unsigned long long>(info.fixes_in),
        static_cast<unsigned long long>(info.fixes_out), ratio,
        info.buffered_points, static_cast<unsigned long long>(info.dropped),
        static_cast<unsigned long long>(info.repaired),
        info.quarantined ? "true" : "false");
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

size_t FleetCompressor::buffered_points() const {
  size_t total = 0;
  for (const auto& [id, state] : compressors_) {
    total += state.compressor->buffered_points() + state.gate.held_points();
  }
  // The gauge tracks working memory but is refreshed lazily, on query and
  // at snapshot-relevant call sites, to keep Push() free of O(objects)
  // walks.
  STCOMP_IF_METRICS(buffered_points_gauge_->Set(static_cast<double>(total)));
  return total;
}

}  // namespace stcomp
