#include "stcomp/stream/fleet_compressor.h"

#include <atomic>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/obs/timer.h"
#include "stcomp/obs/trace.h"

namespace stcomp {

namespace {

std::string ResolveInstance(std::string instance) {
  if (!instance.empty()) {
    return instance;
  }
  static std::atomic<uint64_t> sequence{0};
  return "fleet-" + std::to_string(sequence.fetch_add(1));
}

}  // namespace

FleetCompressor::FleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    TrajectoryStore* store, std::string instance)
    : FleetCompressor(std::move(factory), store, IngestPolicy{},
                      std::move(instance)) {}

FleetCompressor::FleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    TrajectoryStore* store, const IngestPolicy& policy, std::string instance)
    : factory_(std::move(factory)),
      store_(store),
      policy_(policy),
      instance_(ResolveInstance(std::move(instance))) {
  STCOMP_CHECK(factory_ != nullptr);
  STCOMP_CHECK(store_ != nullptr);
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"compressor", instance_}};
  fixes_in_ = registry.GetCounter("stcomp_stream_fixes_in_total", labels);
  fixes_out_ = registry.GetCounter("stcomp_stream_fixes_out_total", labels);
  active_objects_gauge_ =
      registry.GetGauge("stcomp_stream_active_objects", labels);
  buffered_points_gauge_ =
      registry.GetGauge("stcomp_stream_buffered_points", labels);
  push_seconds_ = registry.GetHistogram("stcomp_stream_push_seconds", labels,
                                        obs::LatencyBucketsSeconds());
  ingest_counters_ = IngestCounters::ForInstance(instance_);
}

Status FleetCompressor::Drain(const std::string& object_id,
                              std::vector<TimedPoint>* committed) {
  // Error-consistent accounting: count and remove exactly the points the
  // store accepted, so a failed Append mid-drain neither inflates fixes_out
  // nor leaves accepted points queued for a double-append on retry. The
  // un-appended tail stays in `committed` for the caller to inspect.
  size_t appended = 0;
  Status status = Status::Ok();
  for (const TimedPoint& point : *committed) {
    status = store_->Append(object_id, point);
    if (!status.ok()) {
      break;
    }
    ++appended;
  }
  if (appended > 0) {
    fixes_out_->Increment(appended);
  }
  committed->erase(committed->begin(),
                   committed->begin() + static_cast<ptrdiff_t>(appended));
  return status;
}

Status FleetCompressor::Push(const std::string& object_id,
                             const TimedPoint& fix) {
  STCOMP_SCOPED_TIMER_SAMPLED(push_seconds_);
  auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    it = compressors_
             .emplace(object_id,
                      ObjectState{factory_(),
                                  IngestGate(policy_, ingest_counters_)})
             .first;
    STCOMP_IF_METRICS(active_objects_gauge_->Set(
        static_cast<double>(compressors_.size())));
  }
  fixes_in_->Increment();
  admitted_.clear();
  STCOMP_RETURN_IF_ERROR(it->second.gate.Admit(fix, &admitted_));
  std::vector<TimedPoint> committed;
  for (const TimedPoint& admitted_fix : admitted_) {
    STCOMP_RETURN_IF_ERROR(it->second.compressor->Push(admitted_fix,
                                                       &committed));
  }
  return Drain(object_id, &committed);
}

Status FleetCompressor::FinishObject(const std::string& object_id) {
  const auto it = compressors_.find(object_id);
  if (it == compressors_.end()) {
    return NotFoundError("no active stream for object '" + object_id + "'");
  }
  STCOMP_TRACE_SPAN("fleet.finish_object", object_id);
  std::vector<TimedPoint> committed;
  admitted_.clear();
  it->second.gate.Flush(&admitted_);
  Status status = Status::Ok();
  for (const TimedPoint& admitted_fix : admitted_) {
    status = it->second.compressor->Push(admitted_fix, &committed);
    if (!status.ok()) {
      break;  // Gate output is ordered; an inner failure is terminal.
    }
  }
  it->second.compressor->Finish(&committed);
  // Drain before erasing: callers (FinishAll in particular) may pass a
  // reference to the map key itself, which erase() would invalidate.
  const Status drain_status = Drain(object_id, &committed);
  compressors_.erase(it);
  STCOMP_IF_METRICS(active_objects_gauge_->Set(
      static_cast<double>(compressors_.size())));
  // Finishing is coarse, so the O(objects) walk refreshing the
  // buffered-points gauge is affordable here (Push never does it).
  STCOMP_IF_METRICS(buffered_points());
  return status.ok() ? drain_status : status;
}

Status FleetCompressor::FinishAll() {
  STCOMP_TRACE_SPAN("fleet.finish_all", instance_);
  while (!compressors_.empty()) {
    STCOMP_RETURN_IF_ERROR(FinishObject(compressors_.begin()->first));
  }
  return Status::Ok();
}

size_t FleetCompressor::buffered_points() const {
  size_t total = 0;
  for (const auto& [id, state] : compressors_) {
    total += state.compressor->buffered_points() + state.gate.held_points();
  }
  // The gauge tracks working memory but is refreshed lazily, on query and
  // at snapshot-relevant call sites, to keep Push() free of O(objects)
  // walks.
  STCOMP_IF_METRICS(buffered_points_gauge_->Set(static_cast<double>(total)));
  return total;
}

}  // namespace stcomp
