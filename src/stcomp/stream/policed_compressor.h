// PolicedCompressor: wraps any OnlineCompressor with an IngestGate so the
// wrapped algorithm only ever sees clean, strictly time-ordered, finite
// fixes — the generic way to run a BatchAdapter, OpeningWindowStream,
// SquishStream, ... against a hostile feed. FleetCompressor applies the
// same gating per object internally; use this class for single-object
// pipelines and for the dirty-input test matrix.

#ifndef STCOMP_STREAM_POLICED_COMPRESSOR_H_
#define STCOMP_STREAM_POLICED_COMPRESSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "stcomp/stream/ingest_policy.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

class PolicedCompressor final : public OnlineCompressor {
 public:
  // `instance` names the stcomp_ingest_* metric series; empty uses the
  // inner compressor's name.
  PolicedCompressor(std::unique_ptr<OnlineCompressor> inner,
                    const IngestPolicy& policy, std::string instance = "");

  Status Push(const TimedPoint& point, std::vector<TimedPoint>* out) override;
  void Finish(std::vector<TimedPoint>* out) override;
  size_t buffered_points() const override {
    return inner_->buffered_points() + gate_.held_points();
  }
  std::string_view name() const override { return name_; }

  const IngestGate& gate() const { return gate_; }

 private:
  std::unique_ptr<OnlineCompressor> inner_;
  IngestGate gate_;
  std::string name_;
  // Reused scratch for gate output; admitted fixes are strictly ordered,
  // so the inner Push never fails on them.
  std::vector<TimedPoint> admitted_;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_POLICED_COMPRESSOR_H_
