// PolicedCompressor: wraps any OnlineCompressor with an IngestGate so the
// wrapped algorithm only ever sees clean, strictly time-ordered, finite
// fixes — the generic way to run a BatchAdapter, OpeningWindowStream,
// SquishStream, ... against a hostile feed. FleetCompressor applies the
// same gating per object internally; use this class for single-object
// pipelines and for the dirty-input test matrix.

#ifndef STCOMP_STREAM_POLICED_COMPRESSOR_H_
#define STCOMP_STREAM_POLICED_COMPRESSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stcomp/stream/ingest_policy.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

// How DrainSource handles transient (kUnavailable) source failures: retry
// with exponential backoff, up to `max_attempts` tries per fix position.
// Anything else — attempts exhausted, a non-transient error — aborts the
// drain with that status.
struct RetryPolicy {
  int max_attempts = 5;  // Including the first try; >= 1 (checked).
  double initial_backoff_s = 0.010;
  double backoff_multiplier = 2.0;
  // Injectable for tests; null sleeps for real (std::this_thread).
  std::function<void(double seconds)> sleep;
};

class PolicedCompressor final : public OnlineCompressor {
 public:
  // `instance` names the stcomp_ingest_* metric series; empty uses the
  // inner compressor's name.
  PolicedCompressor(std::unique_ptr<OnlineCompressor> inner,
                    const IngestPolicy& policy, std::string instance = "");

  Status Push(const TimedPoint& point, std::vector<TimedPoint>* out) override;
  void Finish(std::vector<TimedPoint>* out) override;
  size_t buffered_points() const override {
    return inner_->buffered_points() + gate_.held_points();
  }
  std::string_view name() const override { return name_; }

  const IngestGate& gate() const { return gate_; }

  // Pulls `source` dry through Push. Every kUnavailable from Next() is
  // retried per `retry` and counted in stcomp_ingest_retries_total; the
  // feed position is preserved across retries (the source decides whether
  // a retried call re-delivers or skips). Returns the first terminal
  // error, or OK when the source reports exhaustion.
  Status DrainSource(FixSource* source, const RetryPolicy& retry,
                     std::vector<TimedPoint>* out);

  // Checkpointing (DESIGN.md §13): gate state + the inner compressor's
  // own SaveState, behind a name config echo. Fails with kUnimplemented
  // if the inner compressor does not checkpoint.
  Status SaveState(std::string* out) const override;
  Status RestoreState(std::string_view state) override;

 private:
  std::unique_ptr<OnlineCompressor> inner_;
  IngestCounters counters_;  // Shared with gate_; declared first.
  IngestGate gate_;
  std::string name_;
  // Reused scratch for gate output; admitted fixes are strictly ordered,
  // so the inner Push never fails on them.
  std::vector<TimedPoint> admitted_;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_POLICED_COMPRESSOR_H_
