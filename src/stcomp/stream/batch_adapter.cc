#include "stcomp/stream/batch_adapter.h"

#include <utility>

#include "stcomp/common/check.h"

namespace stcomp {

BatchAdapter::BatchAdapter(algo::AlgorithmFn algorithm,
                           algo::AlgorithmParams params, std::string name)
    : algorithm_(std::move(algorithm)),
      params_(params),
      name_(std::move(name)) {
  STCOMP_CHECK(algorithm_ != nullptr);
}

Status BatchAdapter::Push(const TimedPoint& point,
                          std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  return buffer_.Append(point);
}

void BatchAdapter::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  const algo::IndexList kept = algorithm_(buffer_, params_);
  for (int index : kept) {
    out->push_back(buffer_[static_cast<size_t>(index)]);
  }
}

}  // namespace stcomp
