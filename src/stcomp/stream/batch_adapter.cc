#include "stcomp/stream/batch_adapter.h"

#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

BatchAdapter::BatchAdapter(const algo::AlgorithmInfo& info,
                           algo::AlgorithmParams params)
    : algorithm_(nullptr),
      run_view_(&info.run_view),
      params_(params),
      name_(info.name + "-batch") {
  STCOMP_CHECK(*run_view_ != nullptr);
}

BatchAdapter::BatchAdapter(algo::AlgorithmFn algorithm,
                           algo::AlgorithmParams params, std::string name)
    : algorithm_(std::move(algorithm)),
      run_view_(nullptr),
      params_(params),
      name_(std::move(name)) {
  STCOMP_CHECK(algorithm_ != nullptr);
}

Status BatchAdapter::Push(const TimedPoint& point,
                          std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  return buffer_.Append(point);
}

Status BatchAdapter::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  PutString(name_, out);
  PutBool(finished_, out);
  PutPointVector(buffer_.points(), out);
  return Status::Ok();
}

Status BatchAdapter::RestoreState(std::string_view state) {
  STCOMP_ASSIGN_OR_RETURN(const std::string_view saved_name,
                          GetString(&state));
  if (saved_name != name_) {
    return InvalidArgumentError(
        "checkpoint was taken by a differently configured compressor (" +
        std::string(saved_name) + ")");
  }
  STCOMP_ASSIGN_OR_RETURN(finished_, GetBool(&state));
  std::vector<TimedPoint> points;
  STCOMP_RETURN_IF_ERROR(GetPointVector(&state, &points));
  if (!state.empty()) {
    return DataLossError("trailing bytes in compressor checkpoint");
  }
  STCOMP_ASSIGN_OR_RETURN(buffer_, Trajectory::FromPoints(std::move(points)));
  return Status::Ok();
}

void BatchAdapter::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  if (run_view_ != nullptr) {
    (*run_view_)(buffer_, params_, workspace_, kept_);
  } else {
    kept_ = algorithm_(buffer_, params_);
  }
  for (int index : kept_) {
    out->push_back(buffer_[static_cast<size_t>(index)]);
  }
}

}  // namespace stcomp
