#include "stcomp/stream/batch_adapter.h"

#include <utility>

#include "stcomp/common/check.h"

namespace stcomp {

BatchAdapter::BatchAdapter(const algo::AlgorithmInfo& info,
                           algo::AlgorithmParams params)
    : algorithm_(nullptr),
      run_view_(&info.run_view),
      params_(params),
      name_(info.name + "-batch") {
  STCOMP_CHECK(*run_view_ != nullptr);
}

BatchAdapter::BatchAdapter(algo::AlgorithmFn algorithm,
                           algo::AlgorithmParams params, std::string name)
    : algorithm_(std::move(algorithm)),
      run_view_(nullptr),
      params_(params),
      name_(std::move(name)) {
  STCOMP_CHECK(algorithm_ != nullptr);
}

Status BatchAdapter::Push(const TimedPoint& point,
                          std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  return buffer_.Append(point);
}

void BatchAdapter::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  if (run_view_ != nullptr) {
    (*run_view_)(buffer_, params_, workspace_, kept_);
  } else {
    kept_ = algorithm_(buffer_, params_);
  }
  for (int index : kept_) {
    out->push_back(buffer_[static_cast<size_t>(index)]);
  }
}

}  // namespace stcomp
