// Streaming implementations of the opening-window family. Each is
// output-equivalent to its batch counterpart in algo/ (verified by tests):
// after a cut, the buffered tail is replayed through the window logic in
// the same order the batch loop would re-examine it.
//
// The window is a contiguous vector, so the settle loop evaluates the
// batch layer's own criteria (PerpendicularWindowDistance,
// SynchronizedWindowDistance, SpeedJump) over a TrajectoryView of the
// buffer — one implementation of the math, shared with algo/ (DESIGN.md
// §11).

#ifndef STCOMP_STREAM_OPENING_WINDOW_STREAM_H_
#define STCOMP_STREAM_OPENING_WINDOW_STREAM_H_

#include <string>
#include <vector>

#include "stcomp/algo/opening_window.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

// Which discard criterion the streaming window applies.
enum class StreamCriterion {
  kPerpendicular,  // classic NOPW/BOPW
  kSynchronized,   // OPW-TR
  kSpatiotemporal,  // OPW-SP: synchronized distance OR speed jump
};

class OpeningWindowStream final : public OnlineCompressor {
 public:
  // `speed_threshold_mps` is used only by kSpatiotemporal.
  OpeningWindowStream(double epsilon_m, algo::BreakPolicy policy,
                      StreamCriterion criterion,
                      double speed_threshold_mps = 0.0);

  Status Push(const TimedPoint& point, std::vector<TimedPoint>* out) override;
  void Finish(std::vector<TimedPoint>* out) override;
  size_t buffered_points() const override { return window_.size(); }
  std::string_view name() const override { return name_; }

  // Checkpointing (DESIGN.md §13): the open window plus the monotonicity
  // guard, behind a name/epsilon/speed config echo.
  Status SaveState(std::string* out) const override;
  Status RestoreState(std::string_view state) override;

 private:
  // Processes the newest point in `window_` (window_.back()); commits cuts
  // and replays tails until the window is stable.
  void Settle(std::vector<TimedPoint>* out);

  const double epsilon_m_;
  const algo::BreakPolicy policy_;
  const StreamCriterion criterion_;
  const double speed_threshold_mps_;
  std::string name_;
  // window_[0] is the current anchor (already committed). Contiguous so the
  // settle loop can view it; capacity is retained across cuts.
  std::vector<TimedPoint> window_;
  double last_time_ = 0.0;
  bool any_pushed_ = false;
  bool finished_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_OPENING_WINDOW_STREAM_H_
