#include "stcomp/stream/sharded_fleet.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/trace.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

namespace {

std::string ResolveShardedInstance(std::string instance) {
  if (!instance.empty()) {
    return instance;
  }
  static std::atomic<uint64_t> sequence{0};
  return "shfleet-" + std::to_string(sequence.fetch_add(1));
}

size_t DefaultShardCount() {
  const unsigned cores = std::thread::hardware_concurrency();
  return cores > 0 ? static_cast<size_t>(cores) : 1;
}

}  // namespace

struct ShardedFleetCompressor::Shard {
  size_t index = 0;
  std::string label;  // "<instance>-sNNN" — metric instance + flight tag.

  struct QueueItem {
    std::string object_id;
    TimedPoint fix;
  };

  // Queue state, guarded by mu. Producers block on cv_space only while
  // the queue is full; the worker blocks on cv_nonempty only while it is
  // empty; Flush-style callers block on cv_drained until empty && !busy.
  mutable std::mutex mu;
  std::condition_variable cv_nonempty;
  std::condition_variable cv_space;
  mutable std::condition_variable cv_drained;
  std::deque<QueueItem> queue;
  bool stop = false;
  bool busy = false;  // Worker is processing a swapped-out batch.
  uint64_t enqueued = 0;
  uint64_t batches = 0;
  uint64_t backpressure_waits = 0;

  // Engine state, guarded by engine_mu. The worker holds it while
  // compressing a batch; FinishObject/stats/checkpoint calls serialize
  // against the worker through it. Never held together with mu.
  mutable std::mutex engine_mu;
  std::unique_ptr<TrajectoryStore> own_store;  // In-memory mode only.
  std::unique_ptr<FleetCompressor> fleet;
  Status first_error;

  // Registry-owned, labeled {shard=<label>}.
  obs::Gauge* depth_gauge = nullptr;
  obs::Counter* enqueued_counter = nullptr;
  obs::Counter* batches_counter = nullptr;
  obs::Counter* backpressure_counter = nullptr;
  obs::Counter* errors_counter = nullptr;

  std::thread worker;
};

ShardedFleetCompressor::ShardedFleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    ShardedFleetOptions options)
    : instance_(ResolveShardedInstance(options.instance)),
      options_(std::move(options)) {
  InitShards(std::move(factory));
}

ShardedFleetCompressor::ShardedFleetCompressor(
    std::function<std::unique_ptr<OnlineCompressor>()> factory,
    PartitionedSegmentStore* store, ShardedFleetOptions options)
    : instance_(ResolveShardedInstance(options.instance)),
      options_(std::move(options)),
      durable_(store) {
  STCOMP_CHECK(durable_ != nullptr);
  InitShards(std::move(factory));
}

void ShardedFleetCompressor::InitShards(
    std::function<std::unique_ptr<OnlineCompressor>()> factory) {
  STCOMP_CHECK(factory != nullptr);
  STCOMP_CHECK(options_.queue_capacity > 0);
  STCOMP_CHECK(options_.max_batch > 0);
  size_t count = options_.num_shards;
  if (durable_ != nullptr) {
    // The durable layout owns the id→shard mapping; a disagreeing option
    // is a caller bug, not a runtime condition.
    STCOMP_CHECK(count == 0 || count == durable_->num_shards());
    count = durable_->num_shards();
  } else if (count == 0) {
    count = DefaultShardCount();
  }
  auto& registry = obs::MetricsRegistry::Global();
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->label = StrFormat("%s-s%03zu", instance_.c_str(), i);
    const obs::LabelSet labels{{"shard", shard->label}};
    shard->depth_gauge = registry.GetGauge("stcomp_shard_queue_depth", labels);
    shard->enqueued_counter =
        registry.GetCounter("stcomp_shard_enqueued_total", labels);
    shard->batches_counter =
        registry.GetCounter("stcomp_shard_batches_total", labels);
    shard->backpressure_counter =
        registry.GetCounter("stcomp_shard_backpressure_total", labels);
    shard->errors_counter =
        registry.GetCounter("stcomp_shard_errors_total", labels);
    FleetCompressor::AppendSink sink;
    if (durable_ != nullptr) {
      SegmentStore* partition = &durable_->shard(i);
      sink = [partition](const std::string& object_id,
                         const TimedPoint& point) {
        return partition->Append(object_id, point);
      };
    } else {
      shard->own_store = std::make_unique<TrajectoryStore>();
      TrajectoryStore* partition = shard->own_store.get();
      sink = [partition](const std::string& object_id,
                         const TimedPoint& point) {
        return partition->Append(object_id, point);
      };
    }
    shard->fleet = std::make_unique<FleetCompressor>(
        factory, std::move(sink), options_.policy, shard->label);
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every shard is fully constructed (a worker
  // never touches a sibling shard, but the loop captures `this`).
  for (auto& shard : shards_) {
    shard->worker =
        std::thread(&ShardedFleetCompressor::WorkerLoop, this, shard.get());
  }
}

ShardedFleetCompressor::~ShardedFleetCompressor() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stop = true;
    shard->cv_nonempty.notify_all();
    shard->cv_space.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

ShardedFleetCompressor::Shard& ShardedFleetCompressor::ShardFor(
    std::string_view object_id) {
  return *shards_[ShardOfObject(object_id, shards_.size())];
}

const ShardedFleetCompressor::Shard& ShardedFleetCompressor::ShardFor(
    std::string_view object_id) const {
  return *shards_[ShardOfObject(object_id, shards_.size())];
}

void ShardedFleetCompressor::RecordShardError(Shard* shard,
                                              const Status& status) {
  // Caller holds shard->engine_mu.
  STCOMP_IF_METRICS(shard->errors_counter->Increment());
  if (shard->first_error.ok()) {
    shard->first_error = status;
    STCOMP_FLIGHT_EVENT(kShardError, shard->label,
                        static_cast<uint64_t>(status.code()), shard->index);
  }
}

void ShardedFleetCompressor::WorkerLoop(Shard* shard) {
  std::vector<Shard::QueueItem> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_nonempty.wait(
          lock, [shard] { return shard->stop || !shard->queue.empty(); });
      if (shard->queue.empty()) {
        // stop && empty: drained everything that was ever enqueued.
        return;
      }
      // Batch handoff: swap up to max_batch items out under the lock and
      // compress them outside it — producers only ever wait on a FULL
      // queue, never on compression work.
      const size_t take =
          std::min(options_.max_batch, shard->queue.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(shard->queue.front()));
        shard->queue.pop_front();
      }
      shard->busy = true;
      ++shard->batches;
      STCOMP_IF_METRICS(shard->batches_counter->Increment());
      STCOMP_IF_METRICS(shard->depth_gauge->Set(
          static_cast<double>(shard->queue.size())));
      shard->cv_space.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(shard->engine_mu);
      for (const Shard::QueueItem& item : batch) {
        const Status status = shard->fleet->Push(item.object_id, item.fix);
        if (!status.ok()) {
          // Sticky first error; later fixes still process (per-object
          // failures must not wedge the whole shard).
          RecordShardError(shard, status);
        }
      }
      if (durable_ != nullptr) {
        // Group commit: one durability point per handoff batch.
        const Status status = durable_->shard(shard->index).Commit();
        if (!status.ok()) {
          RecordShardError(shard, status);
        }
      }
    }
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->busy = false;
      if (shard->queue.empty()) {
        shard->cv_drained.notify_all();
      }
    }
  }
}

Status ShardedFleetCompressor::Push(std::string_view object_id,
                                    const TimedPoint& fix) {
  Shard& shard = ShardFor(object_id);
  std::unique_lock<std::mutex> lock(shard.mu);
  if (shard.queue.size() >= options_.queue_capacity) {
    ++shard.backpressure_waits;
    STCOMP_IF_METRICS(shard.backpressure_counter->Increment());
    STCOMP_FLIGHT_EVENT(kShardBackpressure, shard.label, shard.queue.size(),
                        shard.backpressure_waits);
    shard.cv_space.wait(lock, [&] {
      return shard.queue.size() < options_.queue_capacity || shard.stop;
    });
  }
  if (shard.stop) {
    return FailedPreconditionError("sharded fleet is shutting down");
  }
  shard.queue.push_back(Shard::QueueItem{std::string(object_id), fix});
  ++shard.enqueued;
  STCOMP_IF_METRICS(shard.enqueued_counter->Increment());
  STCOMP_IF_METRICS(
      shard.depth_gauge->Set(static_cast<double>(shard.queue.size())));
  if (shard.queue.size() == 1) {
    // The worker only ever waits while the queue is empty, so the 0→1
    // transition is the only one that needs a wakeup.
    shard.cv_nonempty.notify_one();
  }
  return Status::Ok();
}

void ShardedFleetCompressor::WaitDrained(Shard* shard) const {
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->cv_drained.wait(
      lock, [shard] { return shard->queue.empty() && !shard->busy; });
}

Status ShardedFleetCompressor::FinishObject(std::string_view object_id) {
  Shard& shard = ShardFor(object_id);
  WaitDrained(&shard);
  std::lock_guard<std::mutex> lock(shard.engine_mu);
  Status status = shard.fleet->FinishObject(object_id);
  if (status.ok() && durable_ != nullptr) {
    status = durable_->shard(shard.index).Commit();
    if (!status.ok()) {
      RecordShardError(&shard, status);
    }
  }
  return status;
}

Status ShardedFleetCompressor::Flush() {
  STCOMP_TRACE_SPAN("sharded_fleet.flush", instance_);
  for (auto& shard : shards_) {
    WaitDrained(shard.get());
  }
  Status first = Status::Ok();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->engine_mu);
    if (first.ok() && !shard->first_error.ok()) {
      first = shard->first_error;
    }
  }
  return first;
}

Status ShardedFleetCompressor::FinishAll() {
  STCOMP_TRACE_SPAN("sharded_fleet.finish_all", instance_);
  Status first = Flush();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->engine_mu);
    Status status = shard->fleet->FinishAll();
    if (status.ok() && durable_ != nullptr) {
      status = durable_->shard(shard->index).Commit();
    }
    if (!status.ok()) {
      RecordShardError(shard.get(), status);
      if (first.ok()) {
        first = status;
      }
    }
  }
  return first;
}

size_t ShardedFleetCompressor::fixes_in() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->engine_mu);
    total += shard->fleet->fixes_in();
  }
  return total;
}

size_t ShardedFleetCompressor::fixes_out() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->engine_mu);
    total += shard->fleet->fixes_out();
  }
  return total;
}

size_t ShardedFleetCompressor::active_objects() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->engine_mu);
    total += shard->fleet->active_objects();
  }
  return total;
}

Result<Trajectory> ShardedFleetCompressor::Get(
    std::string_view object_id) const {
  const Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.engine_mu);
  const TrajectoryStore& store = durable_ != nullptr
                                     ? durable_->shard(shard.index).store()
                                     : *shard.own_store;
  return store.Get(std::string(object_id));
}

std::optional<FleetCompressor::ObjectInfo> ShardedFleetCompressor::ObjectStats(
    std::string_view object_id) const {
  const Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.engine_mu);
  return shard.fleet->ObjectStats(object_id);
}

std::vector<ShardedFleetCompressor::ShardStats>
ShardedFleetCompressor::StatsSnapshot() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats entry;
    entry.shard = shard->index;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      entry.queue_depth = shard->queue.size();
      entry.enqueued = shard->enqueued;
      entry.batches = shard->batches;
      entry.backpressure_waits = shard->backpressure_waits;
    }
    {
      std::lock_guard<std::mutex> lock(shard->engine_mu);
      entry.active_objects = shard->fleet->active_objects();
      entry.fixes_in = shard->fleet->fixes_in();
      entry.fixes_out = shard->fleet->fixes_out();
      entry.error = shard->first_error;
    }
    stats.push_back(std::move(entry));
  }
  return stats;
}

std::string ShardedFleetCompressor::RenderObjectsJson(size_t limit) const {
  // Snapshot every shard first (each under its engine_mu), then render —
  // keeps lock hold times proportional to shard size, not fleet size.
  std::vector<FleetCompressor::ObjectInfo> objects;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->engine_mu);
    std::vector<FleetCompressor::ObjectInfo> snapshot =
        shard->fleet->ObjectsSnapshot();
    objects.insert(objects.end(),
                   std::make_move_iterator(snapshot.begin()),
                   std::make_move_iterator(snapshot.end()));
  }
  // Deterministic order across shard layouts (the per-shard snapshots
  // are each sorted, but shard interleaving is hash-dependent).
  std::sort(objects.begin(), objects.end(),
            [](const FleetCompressor::ObjectInfo& a,
               const FleetCompressor::ObjectInfo& b) {
              return a.object_id < b.object_id;
            });
  const size_t total = objects.size();
  const bool truncated = limit > 0 && total > limit;
  std::string out = StrFormat(
      "{\"instance\":\"%s\",\"policy\":\"%s\",\"shards\":%zu,"
      "\"objects_total\":%zu,\"truncated\":%s,\"objects\":[",
      instance_.c_str(),
      std::string(IngestModeToString(options_.policy.mode)).c_str(),
      shards_.size(), total, truncated ? "true" : "false");
  const size_t rendered = truncated ? limit : total;
  for (size_t i = 0; i < rendered; ++i) {
    const FleetCompressor::ObjectInfo& info = objects[i];
    out += i == 0 ? "\n" : ",\n";
    const std::string id = obs::JsonEscape(info.object_id);
    const double ratio =
        info.fixes_in > 0
            ? static_cast<double>(info.fixes_out) /
                  static_cast<double>(info.fixes_in)
            : 0.0;
    out += StrFormat(
        "  {\"object_id\":\"%s\",\"fixes_in\":%llu,\"fixes_out\":%llu,"
        "\"ratio\":%.6f,\"buffered_points\":%zu,\"dropped\":%llu,"
        "\"repaired\":%llu,\"quarantined\":%s}",
        id.c_str(), static_cast<unsigned long long>(info.fixes_in),
        static_cast<unsigned long long>(info.fixes_out), ratio,
        info.buffered_points, static_cast<unsigned long long>(info.dropped),
        static_cast<unsigned long long>(info.repaired),
        info.quarantined ? "true" : "false");
  }
  out += rendered == 0 ? "]}\n" : "\n]}\n";
  return out;
}

Status ShardedFleetCompressor::SaveState(std::string* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_TRACE_SPAN("sharded_fleet.save_state", instance_);
  // Drain first so the images capture everything pushed so far. Sticky
  // shard errors don't block a checkpoint — the engine state is still
  // consistent (error-consistent drain accounting).
  for (auto& shard : shards_) {
    WaitDrained(shard.get());
  }
  std::vector<std::string> images(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->engine_mu);
    STCOMP_RETURN_IF_ERROR(shards_[i]->fleet->SaveState(&images[i]));
  }
  *out += WriteShardManifest(kShardHashFnv1a64, images);
  return Status::Ok();
}

Status ShardedFleetCompressor::RestoreState(std::string_view image) {
  STCOMP_TRACE_SPAN("sharded_fleet.restore_state", instance_);
  for (auto& shard : shards_) {
    WaitDrained(shard.get());
  }
  STCOMP_ASSIGN_OR_RETURN(const ShardManifestView manifest,
                          ParseShardManifest(image));
  if (manifest.hash_scheme != kShardHashFnv1a64) {
    return FailedPreconditionError(StrFormat(
        "sharded checkpoint uses unknown id-hash scheme %u",
        static_cast<unsigned>(manifest.hash_scheme)));
  }
  if (manifest.shard_count != shards_.size()) {
    return FailedPreconditionError(StrFormat(
        "sharded checkpoint was taken with %llu shards but this engine has "
        "%zu; resharding requires an explicit migration (restore into a "
        "%llu-shard engine and re-ingest into the new layout)",
        static_cast<unsigned long long>(manifest.shard_count),
        shards_.size(),
        static_cast<unsigned long long>(manifest.shard_count)));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->engine_mu);
    STCOMP_RETURN_IF_ERROR(
        shards_[i]->fleet->RestoreState(manifest.shard_images[i]));
  }
  return Status::Ok();
}

}  // namespace stcomp
