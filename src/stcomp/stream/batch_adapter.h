// Adapter exposing any batch algorithm through the OnlineCompressor
// interface by buffering the entire stream and deciding at Finish(). Used
// to run batch algorithms (TD-TR, Douglas-Peucker, bottom-up) in streaming
// pipelines and to benchmark the memory gap between batch and true online
// operation.

#ifndef STCOMP_STREAM_BATCH_ADAPTER_H_
#define STCOMP_STREAM_BATCH_ADAPTER_H_

#include <string>

#include "stcomp/algo/registry.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

class BatchAdapter final : public OnlineCompressor {
 public:
  // Registry-backed form (preferred): runs the algorithm's zero-copy entry
  // point over a view of the internal buffer, scratching in a workspace
  // owned by this adapter — repeated Finish-per-trip cycles in a fleet
  // pipeline stop allocating once the buffers have grown. `info` must
  // outlive the adapter (registry entries live for the program's lifetime).
  BatchAdapter(const algo::AlgorithmInfo& info, algo::AlgorithmParams params);

  // Legacy form for ad-hoc callables not in the registry.
  BatchAdapter(algo::AlgorithmFn algorithm, algo::AlgorithmParams params,
               std::string name);

  Status Push(const TimedPoint& point, std::vector<TimedPoint>* out) override;
  void Finish(std::vector<TimedPoint>* out) override;
  size_t buffered_points() const override { return buffer_.size(); }
  std::string_view name() const override { return name_; }

  // Checkpointing (DESIGN.md §13): the whole buffered stream, behind a
  // name config echo. Algorithm params are identified by name_ (registry
  // entries are immutable), so only the buffer travels.
  Status SaveState(std::string* out) const override;
  Status RestoreState(std::string_view state) override;

 private:
  const algo::AlgorithmFn algorithm_;            // Legacy path (may be null).
  const algo::AlgorithmViewFn* const run_view_;  // Registry path (may be null).
  const algo::AlgorithmParams params_;
  const std::string name_;
  Trajectory buffer_;
  algo::Workspace workspace_;
  algo::IndexList kept_;
  bool finished_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_BATCH_ADAPTER_H_
