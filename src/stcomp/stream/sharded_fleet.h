// Shard-per-core fleet engine (DESIGN.md §16): the scale-out layer over
// FleetCompressor that the ROADMAP's "millions of concurrent objects"
// north star needs.
//
// Topology: object ids partition across N shards by FNV-1a 64 of the id
// (store/partitioned_store.h, the same mapping the durable layout uses).
// Each shard owns
//
//   - a bounded MPSC ingest queue (mutex + condvar; producers block only
//     when the queue is FULL — backpressure, counted and flight-recorded),
//   - one worker thread that drains the queue in batches (batch handoff:
//     the worker swaps up to max_batch items out under the lock and
//     compresses them outside it, so a hot object's compression cost
//     never stalls other producers' enqueues),
//   - its own FleetCompressor (gate + compressor per object, metric
//     instance "<instance>-sNNN"), and
//   - its own sink: an internal TrajectoryStore partition by default, or
//     one PartitionedSegmentStore partition in durable mode (each batch
//     group-commits after processing).
//
// Because every object maps to exactly one shard and one worker drains
// that shard's queue in FIFO order, per-object processing order equals
// per-object push order — the sharded engine's per-object output is
// bit-identical to a single FleetCompressor fed the same per-object
// sequences (the differential property test).
//
// Error model: Push() enqueues and returns quickly; a fix that the
// shard's gate/compressor/sink later rejects surfaces as that shard's
// sticky first error, returned by Flush()/FinishAll() and visible in
// StatsSnapshot(). Callers that need synchronous verdicts (tests, tools)
// call Flush() at interesting points. FinishObject() is synchronous: it
// waits for the object's shard to drain, then finishes inline so the
// real Status (including kNotFound) comes back.
//
// Checkpointing: SaveState() drains every queue and wraps one per-shard
// FleetCompressor image in an "STSM" manifest echoing shard count + hash
// scheme; RestoreState() refuses a mismatching layout with a clear error
// (resharding requires explicit migration — see DESIGN.md §16).

#ifndef STCOMP_STREAM_SHARDED_FLEET_H_
#define STCOMP_STREAM_SHARDED_FLEET_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "stcomp/obs/metrics.h"
#include "stcomp/store/partitioned_store.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/stream/fleet_compressor.h"
#include "stcomp/stream/ingest_policy.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

struct ShardedFleetOptions {
  // 0 = hardware cores. In durable mode the partitioned store's layout
  // wins; a nonzero value here must match it.
  size_t num_shards = 0;
  // Fixes a shard queue holds before producers block (backpressure).
  size_t queue_capacity = 4096;
  // Max items the worker swaps out of the queue per handoff.
  size_t max_batch = 256;
  // Ingest policy applied per object inside every shard.
  IngestPolicy policy;
  // Metric-instance prefix; empty picks a unique "shfleet-<n>". Shard i's
  // FleetCompressor registers under "<instance>-s<i:03>".
  std::string instance;
};

class ShardedFleetCompressor {
 public:
  // In-memory mode: each shard commits into its own internal
  // TrajectoryStore partition; Get() reads across them.
  ShardedFleetCompressor(
      std::function<std::unique_ptr<OnlineCompressor>()> factory,
      ShardedFleetOptions options);

  // Durable mode: shard i commits into store->shard(i) and group-commits
  // after every processed batch. `store` must be Open()ed, must outlive
  // this engine, and must not be mutated by anyone else while the engine
  // runs. Shard count is adopted from the store.
  ShardedFleetCompressor(
      std::function<std::unique_ptr<OnlineCompressor>()> factory,
      PartitionedSegmentStore* store, ShardedFleetOptions options);

  // Drains queues, stops workers. Buffered per-object tails that were
  // never FinishObject'd/FinishAll'd are dropped, same as FleetCompressor
  // destruction.
  ~ShardedFleetCompressor();

  ShardedFleetCompressor(const ShardedFleetCompressor&) = delete;
  ShardedFleetCompressor& operator=(const ShardedFleetCompressor&) = delete;

  // Thread-safe. Enqueues onto the object's shard; blocks only while that
  // shard's queue is full. Per-object ordering is the caller's: all fixes
  // of one object must come from one producer (or be externally ordered).
  Status Push(std::string_view object_id, const TimedPoint& fix);

  // Thread-safe. Waits for the object's shard to drain, then finishes the
  // stream synchronously. kNotFound for unknown ids.
  Status FinishObject(std::string_view object_id);

  // Waits until every queue is empty and every worker is idle, then
  // returns the first sticky shard error (Ok if none).
  Status Flush();

  // Flush + FinishAll on every shard (tail flush; durable mode commits).
  Status FinishAll();

  size_t num_shards() const { return shards_.size(); }
  const std::string& instance() const { return instance_; }

  // Aggregates across shards (each shard's engine counters summed).
  size_t fixes_in() const;
  size_t fixes_out() const;
  size_t active_objects() const;

  // Thread-safe single-object read: the object's committed trajectory so
  // far (in-memory partition or durable partition). Serialized against
  // the shard's worker, so the snapshot is batch-consistent; call Flush()
  // first for an everything-pushed-so-far view.
  Result<Trajectory> Get(std::string_view object_id) const;

  // Thread-safe per-object stats (nullopt for unknown/finished ids).
  std::optional<FleetCompressor::ObjectInfo> ObjectStats(
      std::string_view object_id) const;

  // Live per-shard health for /statsz-style surfaces and tools.
  struct ShardStats {
    size_t shard = 0;
    size_t queue_depth = 0;
    uint64_t enqueued = 0;
    uint64_t batches = 0;
    uint64_t backpressure_waits = 0;
    size_t active_objects = 0;
    uint64_t fixes_in = 0;
    uint64_t fixes_out = 0;
    Status error;  // Sticky first async error.
  };
  std::vector<ShardStats> StatsSnapshot() const;

  // Cross-shard /objectz aggregation: same JSON shape as
  // FleetCompressor::RenderObjectsJson plus "shards":N, objects merged
  // from every shard. `limit` bounds rendered entries (0 = unlimited);
  // "objects_total" always reports the full fleet. Thread-safe.
  std::string RenderObjectsJson(size_t limit = 0) const;

  // Checkpoint/restore (see header comment). Both drain first; restore
  // additionally requires an empty engine and a matching shard layout.
  Status SaveState(std::string* out);
  Status RestoreState(std::string_view image);

 private:
  struct Shard;

  void InitShards(std::function<std::unique_ptr<OnlineCompressor>()> factory);
  Shard& ShardFor(std::string_view object_id);
  const Shard& ShardFor(std::string_view object_id) const;
  void WorkerLoop(Shard* shard);
  void WaitDrained(Shard* shard) const;
  void RecordShardError(Shard* shard, const Status& status);

  std::string instance_;
  ShardedFleetOptions options_;
  PartitionedSegmentStore* durable_ = nullptr;  // Null in in-memory mode.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_SHARDED_FLEET_H_
