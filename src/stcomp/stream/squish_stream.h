// SQUISH as an OnlineCompressor. SQUISH holds its working set in a
// priority buffer and may still remove a buffered point later, so nothing
// except the very first fix can be committed before Finish(); the value of
// the adapter is the *bounded memory*: with capacity beta, at most beta
// points are ever buffered regardless of stream length.

#ifndef STCOMP_STREAM_SQUISH_STREAM_H_
#define STCOMP_STREAM_SQUISH_STREAM_H_

#include <string>

#include "stcomp/algo/squish.h"
#include "stcomp/stream/online_compressor.h"

namespace stcomp {

class SquishStream final : public OnlineCompressor {
 public:
  // capacity == 0: error-driven (SQUISH-E(mu), unbounded buffer);
  // otherwise at most `capacity` points are buffered.
  SquishStream(size_t capacity, double mu_m);

  Status Push(const TimedPoint& point, std::vector<TimedPoint>* out) override;
  void Finish(std::vector<TimedPoint>* out) override;
  size_t buffered_points() const override { return buffer_.size(); }
  std::string_view name() const override { return name_; }

  // Checkpointing (DESIGN.md §13): the full SquishBuffer snapshot
  // (SquishBufferState) plus the adapter's own cursor, behind a
  // name/capacity/mu config echo.
  Status SaveState(std::string* out) const override;
  Status RestoreState(std::string_view state) override;

 private:
  algo::SquishBuffer buffer_;
  std::string name_;
  int next_index_ = 0;
  double last_time_ = 0.0;
  bool any_pushed_ = false;
  bool finished_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STREAM_SQUISH_STREAM_H_
