#include "stcomp/stream/dead_reckoning_stream.h"

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/store/varint.h"
#include "stcomp/stream/checkpoint.h"

namespace stcomp {

DeadReckoningStream::DeadReckoningStream(double epsilon_m)
    : epsilon_m_(epsilon_m) {
  STCOMP_CHECK(epsilon_m_ >= 0.0);
}

Status DeadReckoningStream::Push(const TimedPoint& point,
                                 std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  if (last_committed_.has_value() && point.t <= pending_.value_or(
                                                    *last_committed_).t) {
    return InvalidArgumentError(
        StrFormat("stream timestamps must increase at t=%f", point.t));
  }
  if (!last_committed_.has_value()) {
    last_committed_ = point;
    out->push_back(point);
    return Status::Ok();
  }
  if (!velocity_mps_.has_value()) {
    // First fix after a commit calibrates the velocity estimate.
    const double dt = point.t - last_committed_->t;
    velocity_mps_ = (point.position - last_committed_->position) / dt;
    pending_ = point;
    return Status::Ok();
  }
  const double dt = point.t - last_committed_->t;
  const Vec2 predicted = last_committed_->position + *velocity_mps_ * dt;
  if (Distance(predicted, point.position) > epsilon_m_) {
    // Prediction broke: commit this fix and re-calibrate from it.
    last_committed_ = point;
    velocity_mps_.reset();
    pending_.reset();
    out->push_back(point);
  } else {
    pending_ = point;
  }
  return Status::Ok();
}

Status DeadReckoningStream::SaveState(std::string* out) const {
  STCOMP_CHECK(out != nullptr);
  PutDouble(epsilon_m_, out);
  PutBool(finished_, out);
  PutBool(last_committed_.has_value(), out);
  if (last_committed_.has_value()) {
    PutTimedPoint(*last_committed_, out);
  }
  PutBool(velocity_mps_.has_value(), out);
  if (velocity_mps_.has_value()) {
    PutDouble(velocity_mps_->x, out);
    PutDouble(velocity_mps_->y, out);
  }
  PutBool(pending_.has_value(), out);
  if (pending_.has_value()) {
    PutTimedPoint(*pending_, out);
  }
  return Status::Ok();
}

Status DeadReckoningStream::RestoreState(std::string_view state) {
  STCOMP_ASSIGN_OR_RETURN(const double epsilon, GetDouble(&state));
  if (epsilon != epsilon_m_) {
    return InvalidArgumentError(
        "checkpoint was taken by a differently configured compressor");
  }
  STCOMP_ASSIGN_OR_RETURN(finished_, GetBool(&state));
  STCOMP_ASSIGN_OR_RETURN(bool present, GetBool(&state));
  last_committed_.reset();
  if (present) {
    STCOMP_ASSIGN_OR_RETURN(last_committed_, GetTimedPoint(&state));
  }
  STCOMP_ASSIGN_OR_RETURN(present, GetBool(&state));
  velocity_mps_.reset();
  if (present) {
    Vec2 velocity;
    STCOMP_ASSIGN_OR_RETURN(velocity.x, GetDouble(&state));
    STCOMP_ASSIGN_OR_RETURN(velocity.y, GetDouble(&state));
    velocity_mps_ = velocity;
  }
  STCOMP_ASSIGN_OR_RETURN(present, GetBool(&state));
  pending_.reset();
  if (present) {
    STCOMP_ASSIGN_OR_RETURN(pending_, GetTimedPoint(&state));
  }
  if (!state.empty()) {
    return DataLossError("trailing bytes in compressor checkpoint");
  }
  return Status::Ok();
}

void DeadReckoningStream::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  if (pending_.has_value()) {
    out->push_back(*pending_);  // Preserve the final fix.
    pending_.reset();
  }
}

}  // namespace stcomp
