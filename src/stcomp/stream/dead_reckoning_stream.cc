#include "stcomp/stream/dead_reckoning_stream.h"

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"

namespace stcomp {

DeadReckoningStream::DeadReckoningStream(double epsilon_m)
    : epsilon_m_(epsilon_m) {
  STCOMP_CHECK(epsilon_m_ >= 0.0);
}

Status DeadReckoningStream::Push(const TimedPoint& point,
                                 std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  STCOMP_CHECK(!finished_);
  STCOMP_RETURN_IF_ERROR(ValidateFiniteFix(point));
  if (last_committed_.has_value() && point.t <= pending_.value_or(
                                                    *last_committed_).t) {
    return InvalidArgumentError(
        StrFormat("stream timestamps must increase at t=%f", point.t));
  }
  if (!last_committed_.has_value()) {
    last_committed_ = point;
    out->push_back(point);
    return Status::Ok();
  }
  if (!velocity_mps_.has_value()) {
    // First fix after a commit calibrates the velocity estimate.
    const double dt = point.t - last_committed_->t;
    velocity_mps_ = (point.position - last_committed_->position) / dt;
    pending_ = point;
    return Status::Ok();
  }
  const double dt = point.t - last_committed_->t;
  const Vec2 predicted = last_committed_->position + *velocity_mps_ * dt;
  if (Distance(predicted, point.position) > epsilon_m_) {
    // Prediction broke: commit this fix and re-calibrate from it.
    last_committed_ = point;
    velocity_mps_.reset();
    pending_.reset();
    out->push_back(point);
  } else {
    pending_ = point;
  }
  return Status::Ok();
}

void DeadReckoningStream::Finish(std::vector<TimedPoint>* out) {
  STCOMP_CHECK(out != nullptr);
  finished_ = true;
  if (pending_.has_value()) {
    out->push_back(*pending_);  // Preserve the final fix.
    pending_.reset();
  }
}

}  // namespace stcomp
