// Push-based interface for online trajectory compression (the paper's
// motivation for the opening-window family: "they are online algorithms ...
// typically used to compress data streams in real-time").
//
// Protocol: Push() each fix in time order; every point the compressor has
// irrevocably decided to keep is appended to `out` (in time order, each
// exactly once). Finish() flushes the tail — the countermeasure for the
// "opening window may lose the last few data points" issue (Sec. 2.2).

#ifndef STCOMP_STREAM_ONLINE_COMPRESSOR_H_
#define STCOMP_STREAM_ONLINE_COMPRESSOR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

class OnlineCompressor {
 public:
  virtual ~OnlineCompressor() = default;

  // Feeds the next fix. Fails with kInvalidArgument if `point.t` is not
  // strictly after the previous push. Newly committed points are appended
  // to `out` (which must be non-null; it is not cleared).
  virtual Status Push(const TimedPoint& point,
                      std::vector<TimedPoint>* out) = 0;

  // Ends the stream, flushing pending state. Push must not be called
  // afterwards.
  virtual void Finish(std::vector<TimedPoint>* out) = 0;

  // Currently buffered (not yet decided) points — the working-memory
  // footprint, reported by the streaming benchmarks.
  virtual size_t buffered_points() const = 0;

  virtual std::string_view name() const = 0;

  // Checkpoint/restore (DESIGN.md §13). SaveState appends a byte
  // serialization of every field a bitwise-identical resume needs;
  // RestoreState loads it into a compressor constructed with the same
  // configuration (validated via an embedded config echo —
  // kInvalidArgument on mismatch, kDataLoss on a malformed blob). The
  // default is kUnimplemented: adapters opt in.
  virtual Status SaveState(std::string* out) const;
  virtual Status RestoreState(std::string_view state);
};

// Pull-based fix feed for drain loops (PolicedCompressor::DrainSource).
// Next() yields the next fix, nullopt once the feed is exhausted, or a
// non-OK status: kUnavailable marks a *transient* failure — the same call
// may succeed if retried — anything else is terminal. Interface-only so
// test fakes (testing/faulty_source.h) implement it without linking the
// stream library.
class FixSource {
 public:
  virtual ~FixSource() = default;
  virtual Result<std::optional<TimedPoint>> Next() = 0;
};

// Shared Push precondition for adapters: kInvalidArgument if the fix has a
// non-finite timestamp or coordinates. NaN ordering comparisons are
// vacuously false, so without this check a NaN timestamp slips past the
// monotonicity guard and permanently disables it for the stream.
Status ValidateFiniteFix(const TimedPoint& point);

// Convenience driver: streams `trajectory` through `compressor` and
// returns the compressed trajectory.
Result<Trajectory> CompressStream(const Trajectory& trajectory,
                                  OnlineCompressor* compressor);

}  // namespace stcomp

#endif  // STCOMP_STREAM_ONLINE_COMPRESSOR_H_
