// Push-based interface for online trajectory compression (the paper's
// motivation for the opening-window family: "they are online algorithms ...
// typically used to compress data streams in real-time").
//
// Protocol: Push() each fix in time order; every point the compressor has
// irrevocably decided to keep is appended to `out` (in time order, each
// exactly once). Finish() flushes the tail — the countermeasure for the
// "opening window may lose the last few data points" issue (Sec. 2.2).

#ifndef STCOMP_STREAM_ONLINE_COMPRESSOR_H_
#define STCOMP_STREAM_ONLINE_COMPRESSOR_H_

#include <memory>
#include <string_view>
#include <vector>

#include "stcomp/common/status.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

class OnlineCompressor {
 public:
  virtual ~OnlineCompressor() = default;

  // Feeds the next fix. Fails with kInvalidArgument if `point.t` is not
  // strictly after the previous push. Newly committed points are appended
  // to `out` (which must be non-null; it is not cleared).
  virtual Status Push(const TimedPoint& point,
                      std::vector<TimedPoint>* out) = 0;

  // Ends the stream, flushing pending state. Push must not be called
  // afterwards.
  virtual void Finish(std::vector<TimedPoint>* out) = 0;

  // Currently buffered (not yet decided) points — the working-memory
  // footprint, reported by the streaming benchmarks.
  virtual size_t buffered_points() const = 0;

  virtual std::string_view name() const = 0;
};

// Shared Push precondition for adapters: kInvalidArgument if the fix has a
// non-finite timestamp or coordinates. NaN ordering comparisons are
// vacuously false, so without this check a NaN timestamp slips past the
// monotonicity guard and permanently disables it for the stream.
Status ValidateFiniteFix(const TimedPoint& point);

// Convenience driver: streams `trajectory` through `compressor` and
// returns the compressed trajectory.
Result<Trajectory> CompressStream(const Trajectory& trajectory,
                                  OnlineCompressor* compressor);

}  // namespace stcomp

#endif  // STCOMP_STREAM_ONLINE_COMPRESSOR_H_
