#include "stcomp/exp/sweep.h"

namespace stcomp {

std::vector<double> PaperThresholds() {
  std::vector<double> thresholds;
  for (double epsilon = 30.0; epsilon <= 100.0; epsilon += 5.0) {
    thresholds.push_back(epsilon);
  }
  return thresholds;
}

std::vector<double> PaperSpeedThresholds() { return {5.0, 15.0, 25.0}; }

Result<SweepPoint> EvaluateAveraged(const std::vector<Trajectory>& dataset,
                                    const algo::AlgorithmInfo& algorithm,
                                    const algo::AlgorithmParams& params) {
  if (dataset.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  SweepPoint point;
  point.epsilon_m = params.epsilon_m;
  point.speed_threshold_mps = params.speed_threshold_mps;
  for (const Trajectory& trajectory : dataset) {
    const algo::IndexList kept = algorithm.run(trajectory, params);
    STCOMP_ASSIGN_OR_RETURN(const Evaluation evaluation,
                            Evaluate(trajectory, kept));
    point.compression_percent += evaluation.compression_percent;
    point.sync_error_mean_m += evaluation.sync_error_mean_m;
    point.sync_error_max_m += evaluation.sync_error_max_m;
    point.perp_error_mean_m += evaluation.perp_error_mean_m;
    point.area_error_m += evaluation.area_error_m;
  }
  const double n = static_cast<double>(dataset.size());
  point.compression_percent /= n;
  point.sync_error_mean_m /= n;
  point.sync_error_max_m /= n;
  point.perp_error_mean_m /= n;
  point.area_error_m /= n;
  return point;
}

Result<std::vector<SweepPoint>> SweepThresholds(
    const std::vector<Trajectory>& dataset, std::string_view name,
    const algo::AlgorithmParams& base, const std::vector<double>& thresholds) {
  STCOMP_ASSIGN_OR_RETURN(const algo::AlgorithmInfo* algorithm,
                          algo::FindAlgorithm(name));
  std::vector<SweepPoint> points;
  points.reserve(thresholds.size());
  for (double epsilon : thresholds) {
    algo::AlgorithmParams params = base;
    params.epsilon_m = epsilon;
    STCOMP_ASSIGN_OR_RETURN(const SweepPoint point,
                            EvaluateAveraged(dataset, *algorithm, params));
    points.push_back(point);
  }
  return points;
}

}  // namespace stcomp
