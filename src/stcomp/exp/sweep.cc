#include "stcomp/exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"

namespace stcomp {

namespace {

// One sweep cell: run the algorithm's zero-copy entry point over every
// trajectory, scratching in the caller's workspace, and average the
// evaluation metrics. Parameters are validated here so a bad threshold
// surfaces as a Status instead of tripping the registry wrapper's check.
Result<SweepPoint> EvaluateCell(const std::vector<Trajectory>& dataset,
                                const algo::AlgorithmInfo& algorithm,
                                const algo::AlgorithmParams& params,
                                algo::Workspace& workspace,
                                algo::IndexList& kept) {
  if (dataset.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  STCOMP_RETURN_IF_ERROR(params.Validate());
  SweepPoint point;
  point.epsilon_m = params.epsilon_m;
  point.speed_threshold_mps = params.speed_threshold_mps;
  for (const Trajectory& trajectory : dataset) {
    algorithm.run_view(trajectory, params, workspace, kept);
    STCOMP_ASSIGN_OR_RETURN(const Evaluation evaluation,
                            Evaluate(trajectory, kept));
    point.compression_percent += evaluation.compression_percent;
    point.sync_error_mean_m += evaluation.sync_error_mean_m;
    point.sync_error_max_m += evaluation.sync_error_max_m;
    point.perp_error_mean_m += evaluation.perp_error_mean_m;
    point.area_error_m += evaluation.area_error_m;
  }
  const double n = static_cast<double>(dataset.size());
  point.compression_percent /= n;
  point.sync_error_mean_m /= n;
  point.sync_error_max_m /= n;
  point.perp_error_mean_m /= n;
  point.area_error_m /= n;
  return point;
}

}  // namespace

std::vector<double> PaperThresholds() {
  std::vector<double> thresholds;
  for (double epsilon = 30.0; epsilon <= 100.0; epsilon += 5.0) {
    thresholds.push_back(epsilon);
  }
  return thresholds;
}

std::vector<double> PaperSpeedThresholds() { return {5.0, 15.0, 25.0}; }

Result<SweepPoint> EvaluateAveraged(const std::vector<Trajectory>& dataset,
                                    const algo::AlgorithmInfo& algorithm,
                                    const algo::AlgorithmParams& params,
                                    algo::Workspace& workspace,
                                    algo::IndexList& kept) {
  return EvaluateCell(dataset, algorithm, params, workspace, kept);
}

Result<SweepPoint> EvaluateAveraged(const std::vector<Trajectory>& dataset,
                                    const algo::AlgorithmInfo& algorithm,
                                    const algo::AlgorithmParams& params) {
  thread_local algo::Workspace workspace;
  thread_local algo::IndexList kept;
  return EvaluateCell(dataset, algorithm, params, workspace, kept);
}

Result<std::vector<SweepPoint>> SweepThresholds(
    const std::vector<Trajectory>& dataset, std::string_view name,
    const algo::AlgorithmParams& base, const std::vector<double>& thresholds) {
  STCOMP_ASSIGN_OR_RETURN(const algo::AlgorithmInfo* algorithm,
                          algo::FindAlgorithm(name));
  std::vector<SweepPoint> points;
  points.reserve(thresholds.size());
  algo::Workspace workspace;
  algo::IndexList kept;
  for (double epsilon : thresholds) {
    algo::AlgorithmParams params = base;
    params.epsilon_m = epsilon;
    STCOMP_ASSIGN_OR_RETURN(
        const SweepPoint point,
        EvaluateCell(dataset, *algorithm, params, workspace, kept));
    points.push_back(point);
  }
  return points;
}

Result<std::vector<std::vector<SweepPoint>>> SweepManyParallel(
    const std::vector<Trajectory>& dataset,
    const std::vector<SweepRequest>& requests, int num_threads) {
  // Resolve every name up front so a typo fails before any work runs.
  std::vector<const algo::AlgorithmInfo*> algorithms;
  algorithms.reserve(requests.size());
  for (const SweepRequest& request : requests) {
    STCOMP_ASSIGN_OR_RETURN(const algo::AlgorithmInfo* algorithm,
                            algo::FindAlgorithm(request.algorithm));
    algorithms.push_back(algorithm);
  }
  std::vector<std::vector<SweepPoint>> results(requests.size());
  // Flatten to (request, threshold) cells; each cell owns one result slot,
  // so workers never write the same memory and need no result lock.
  struct Cell {
    size_t request;
    size_t threshold;
  };
  std::vector<Cell> cells;
  for (size_t r = 0; r < requests.size(); ++r) {
    results[r].resize(requests[r].thresholds.size());
    for (size_t k = 0; k < requests[r].thresholds.size(); ++k) {
      cells.push_back({r, k});
    }
  }
#if STCOMP_METRICS_ENABLED
  auto& metrics = obs::MetricsRegistry::Global();
  obs::Histogram* const sweep_seconds = metrics.GetHistogram(
      "stcomp_exp_sweep_seconds", {}, obs::LatencyBucketsSeconds());
  std::vector<obs::Counter*> cell_counters;
  cell_counters.reserve(requests.size());
  for (const SweepRequest& request : requests) {
    cell_counters.push_back(
        metrics.GetCounter("stcomp_exp_sweep_cells_total",
                           {{"algorithm", request.algorithm}}));
  }
  obs::ScopedTimer sweep_timer(sweep_seconds);
#endif
  size_t thread_count =
      num_threads > 0 ? static_cast<size_t>(num_threads)
                      : static_cast<size_t>(std::max(
                            1u, std::thread::hardware_concurrency()));
  thread_count = std::max<size_t>(1, std::min(thread_count, cells.size()));
  std::atomic<size_t> next_cell{0};
  std::mutex error_mutex;
  Status first_error = Status::Ok();
  const auto worker = [&]() {
    // Per-thread scratch: grows to the largest trajectory once, then every
    // later cell on this thread runs allocation-free.
    algo::Workspace workspace;
    algo::IndexList kept;
    for (size_t c = next_cell.fetch_add(1, std::memory_order_relaxed);
         c < cells.size();
         c = next_cell.fetch_add(1, std::memory_order_relaxed)) {
      const Cell cell = cells[c];
      algo::AlgorithmParams params = requests[cell.request].base;
      params.epsilon_m = requests[cell.request].thresholds[cell.threshold];
      Result<SweepPoint> point = EvaluateCell(
          dataset, *algorithms[cell.request], params, workspace, kept);
      if (!point.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) {
          first_error = point.status();
        }
        continue;
      }
      results[cell.request][cell.threshold] = *std::move(point);
      STCOMP_IF_METRICS(cell_counters[cell.request]->Increment());
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(thread_count - 1);
  for (size_t i = 0; i + 1 < thread_count; ++i) {
    threads.emplace_back(worker);
  }
  worker();  // The calling thread is the last worker.
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (!first_error.ok()) {
    return first_error;
  }
  return results;
}

Result<std::vector<SweepPoint>> SweepThresholdsParallel(
    const std::vector<Trajectory>& dataset, std::string_view name,
    const algo::AlgorithmParams& base, const std::vector<double>& thresholds,
    int num_threads) {
  SweepRequest request;
  request.algorithm = std::string(name);
  request.base = base;
  request.thresholds = thresholds;
  STCOMP_ASSIGN_OR_RETURN(
      std::vector<std::vector<SweepPoint>> results,
      SweepManyParallel(dataset, {std::move(request)}, num_threads));
  return std::move(results.front());
}

}  // namespace stcomp
