// Parameter sweeps: run one algorithm over a dataset at a sequence of
// thresholds and average the evaluation metrics — the exact procedure
// behind every figure in the paper's Sec. 4 ("fifteen different spatial
// threshold values ranging from 30 to 100 m ... averages over ten
// trajectories").

#ifndef STCOMP_EXP_SWEEP_H_
#define STCOMP_EXP_SWEEP_H_

#include <string_view>
#include <vector>

#include "stcomp/algo/registry.h"
#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/error/evaluation.h"

namespace stcomp {

// Dataset-averaged metrics at one parameter setting.
struct SweepPoint {
  double epsilon_m = 0.0;
  double speed_threshold_mps = 0.0;
  double compression_percent = 0.0;
  double sync_error_mean_m = 0.0;
  double sync_error_max_m = 0.0;
  double perp_error_mean_m = 0.0;
  double area_error_m = 0.0;
};

// The paper's threshold grid: 30, 35, ..., 100 m (15 values).
std::vector<double> PaperThresholds();

// The paper's speed-difference thresholds: 5, 15, 25 m/s.
std::vector<double> PaperSpeedThresholds();

// Averages Evaluate() over `dataset` for one algorithm + parameter set.
Result<SweepPoint> EvaluateAveraged(const std::vector<Trajectory>& dataset,
                                    const algo::AlgorithmInfo& algorithm,
                                    const algo::AlgorithmParams& params);

// Runs EvaluateAveraged for every epsilon in `thresholds` (other params
// from `base`). `name` is looked up in the registry.
Result<std::vector<SweepPoint>> SweepThresholds(
    const std::vector<Trajectory>& dataset, std::string_view name,
    const algo::AlgorithmParams& base, const std::vector<double>& thresholds);

}  // namespace stcomp

#endif  // STCOMP_EXP_SWEEP_H_
