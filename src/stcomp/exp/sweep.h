// Parameter sweeps: run one algorithm over a dataset at a sequence of
// thresholds and average the evaluation metrics — the exact procedure
// behind every figure in the paper's Sec. 4 ("fifteen different spatial
// threshold values ranging from 30 to 100 m ... averages over ten
// trajectories").
//
// Two drivers share one cell evaluator:
//   SweepThresholds          — serial, one reused workspace
//   SweepThresholdsParallel / SweepManyParallel — a std::thread pool over
//     (algorithm, threshold) cells, one workspace per thread. Cells are
//     independent (compression + error evaluation read the shared dataset
//     and write a private slot), so the parallel result is identical to
//     the serial one, in the same order.

#ifndef STCOMP_EXP_SWEEP_H_
#define STCOMP_EXP_SWEEP_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/algo/registry.h"
#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/error/evaluation.h"

namespace stcomp {

// Dataset-averaged metrics at one parameter setting.
struct SweepPoint {
  double epsilon_m = 0.0;
  double speed_threshold_mps = 0.0;
  double compression_percent = 0.0;
  double sync_error_mean_m = 0.0;
  double sync_error_max_m = 0.0;
  double perp_error_mean_m = 0.0;
  double area_error_m = 0.0;
};

// One algorithm's slice of a multi-algorithm sweep.
struct SweepRequest {
  std::string algorithm;            // Registry name, e.g. "td-tr".
  algo::AlgorithmParams base;       // Non-epsilon parameters.
  std::vector<double> thresholds;   // epsilon_m values to sweep.
};

// The paper's threshold grid: 30, 35, ..., 100 m (15 values).
std::vector<double> PaperThresholds();

// The paper's speed-difference thresholds: 5, 15, 25 m/s.
std::vector<double> PaperSpeedThresholds();

// Averages Evaluate() over `dataset` for one algorithm + parameter set.
// The workspace overload scratches in caller-owned buffers (zero
// steady-state allocation); the two-argument form keeps a thread-local
// workspace. kInvalidArgument on an empty dataset or invalid params.
Result<SweepPoint> EvaluateAveraged(const std::vector<Trajectory>& dataset,
                                    const algo::AlgorithmInfo& algorithm,
                                    const algo::AlgorithmParams& params);
Result<SweepPoint> EvaluateAveraged(const std::vector<Trajectory>& dataset,
                                    const algo::AlgorithmInfo& algorithm,
                                    const algo::AlgorithmParams& params,
                                    algo::Workspace& workspace,
                                    algo::IndexList& kept);

// Runs EvaluateAveraged for every epsilon in `thresholds` (other params
// from `base`). `name` is looked up in the registry.
Result<std::vector<SweepPoint>> SweepThresholds(
    const std::vector<Trajectory>& dataset, std::string_view name,
    const algo::AlgorithmParams& base, const std::vector<double>& thresholds);

// Parallel version of SweepThresholds: identical results, computed by
// `num_threads` workers (0 = hardware concurrency) over the threshold
// cells. Observability: records stcomp_exp_sweep_seconds and, per cell,
// stcomp_exp_sweep_cells_total{algorithm=...}.
Result<std::vector<SweepPoint>> SweepThresholdsParallel(
    const std::vector<Trajectory>& dataset, std::string_view name,
    const algo::AlgorithmParams& base, const std::vector<double>& thresholds,
    int num_threads = 0);

// Sweeps several algorithms in one thread pool; result[r][k] is request
// r's SweepPoint at thresholds[k] — exactly what SweepThresholds(r) would
// return. The first failing cell's error is returned (remaining cells are
// still drained); name lookup errors are reported before any work starts.
Result<std::vector<std::vector<SweepPoint>>> SweepManyParallel(
    const std::vector<Trajectory>& dataset,
    const std::vector<SweepRequest>& requests, int num_threads = 0);

}  // namespace stcomp

#endif  // STCOMP_EXP_SWEEP_H_
