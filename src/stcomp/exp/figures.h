// Drivers reproducing each table and figure of the paper's evaluation
// (Sec. 4). Each renders the same rows/series the paper plots, as a text
// table; the bench binaries are thin wrappers around these. See
// EXPERIMENTS.md for paper-vs-measured shape checks.

#ifndef STCOMP_EXP_FIGURES_H_
#define STCOMP_EXP_FIGURES_H_

#include <string>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

// Table 2: dataset statistics, paper values vs. the synthetic dataset.
std::string RenderTable2(const std::vector<Trajectory>& dataset);

// Fig. 7: NDP vs TD-TR — compression % and synchronous error per threshold.
Result<std::string> RenderFigure7(const std::vector<Trajectory>& dataset);

// Fig. 8: BOPW vs NOPW.
Result<std::string> RenderFigure8(const std::vector<Trajectory>& dataset);

// Fig. 9: NOPW vs OPW-TR.
Result<std::string> RenderFigure9(const std::vector<Trajectory>& dataset);

// Fig. 10: OPW-TR vs TD-SP(5) vs OPW-SP(5/15/25) — error and compression
// as functions of the distance threshold.
Result<std::string> RenderFigure10(const std::vector<Trajectory>& dataset);

// Fig. 11: error vs compression for NDP, TD-TR, NOPW, OPW-TR, OPW-SP(5/15/25).
Result<std::string> RenderFigure11(const std::vector<Trajectory>& dataset);

// Sec. 1 motivation: storage volume per codec and after compression.
Result<std::string> RenderStorageTable(const std::vector<Trajectory>& dataset);

}  // namespace stcomp

#endif  // STCOMP_EXP_FIGURES_H_
