// Fixed-width text tables for the experiment binaries (and CSV export for
// plotting).

#ifndef STCOMP_EXP_TABLE_H_
#define STCOMP_EXP_TABLE_H_

#include <string>
#include <vector>

namespace stcomp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cell count must match the header count (checked).
  void AddRow(std::vector<std::string> cells);

  // Right-aligned fixed-width rendering with a header underline.
  std::string ToString() const;

  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stcomp

#endif  // STCOMP_EXP_TABLE_H_
