#include "stcomp/exp/figures.h"

#include "stcomp/algo/registry.h"
#include "stcomp/common/strings.h"
#include "stcomp/core/trajectory_stats.h"
#include "stcomp/exp/sweep.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/store/codec.h"

namespace stcomp {

namespace {

std::string Fmt(double value, int decimals = 2) {
  return StrFormat("%.*f", decimals, value);
}

// Two-algorithm comparison over the paper threshold grid (the layout of
// Figs. 7, 8, 9): per threshold, compression % and synchronous error for
// both algorithms.
Result<std::string> RenderPairFigure(const std::vector<Trajectory>& dataset,
                                     std::string_view title,
                                     std::string_view left_name,
                                     std::string_view right_name) {
  const algo::AlgorithmParams base;
  // Both algorithms' threshold grids run in one thread pool; results are
  // identical to the serial SweepThresholds calls.
  std::vector<SweepRequest> requests(2);
  requests[0] = {std::string(left_name), base, PaperThresholds()};
  requests[1] = {std::string(right_name), base, PaperThresholds()};
  STCOMP_ASSIGN_OR_RETURN(const std::vector<std::vector<SweepPoint>> sweeps,
                          SweepManyParallel(dataset, requests));
  const std::vector<SweepPoint>& left = sweeps[0];
  const std::vector<SweepPoint>& right = sweeps[1];
  Table table({"threshold_m",
               std::string(left_name) + "_compr_%",
               std::string(right_name) + "_compr_%",
               std::string(left_name) + "_error_m",
               std::string(right_name) + "_error_m"});
  for (size_t i = 0; i < left.size(); ++i) {
    table.AddRow({Fmt(left[i].epsilon_m, 0), Fmt(left[i].compression_percent),
                  Fmt(right[i].compression_percent),
                  Fmt(left[i].sync_error_mean_m),
                  Fmt(right[i].sync_error_mean_m)});
  }
  std::string out = std::string(title) + "\n";
  out += StrFormat("(averages over %zu trajectories; error = time-"
                   "synchronous mean, paper Sec. 4.2)\n\n",
                   dataset.size());
  out += table.ToString();
  return out;
}

}  // namespace

std::string RenderTable2(const std::vector<Trajectory>& dataset) {
  const DatasetStats stats = ComputeDatasetStats(dataset);
  const Table2Reference reference;
  Table table({"statistic", "paper_avg", "paper_sd", "ours_avg", "ours_sd"});
  table.AddRow({"duration", FormatHms(reference.duration_mean_s),
                FormatHms(reference.duration_sd_s),
                FormatHms(stats.duration_s.mean),
                FormatHms(stats.duration_s.sd)});
  table.AddRow({"speed (km/h)", Fmt(reference.speed_mean_mps * 3.6),
                Fmt(reference.speed_sd_mps * 3.6),
                Fmt(stats.avg_speed_mps.mean * 3.6),
                Fmt(stats.avg_speed_mps.sd * 3.6)});
  table.AddRow({"length (km)", Fmt(reference.length_mean_m / 1000.0),
                Fmt(reference.length_sd_m / 1000.0),
                Fmt(stats.length_m.mean / 1000.0),
                Fmt(stats.length_m.sd / 1000.0)});
  table.AddRow({"displacement (km)",
                Fmt(reference.displacement_mean_m / 1000.0),
                Fmt(reference.displacement_sd_m / 1000.0),
                Fmt(stats.displacement_m.mean / 1000.0),
                Fmt(stats.displacement_m.sd / 1000.0)});
  table.AddRow({"# of data points", Fmt(reference.num_points_mean, 1),
                Fmt(reference.num_points_sd, 1),
                Fmt(stats.num_points.mean, 1), Fmt(stats.num_points.sd, 1)});
  std::string out =
      "Table 2: statistics of the trajectory dataset (paper: 10 real car GPS "
      "traces; ours: 10 synthetic trips, see DESIGN.md)\n\n";
  out += table.ToString();
  return out;
}

Result<std::string> RenderFigure7(const std::vector<Trajectory>& dataset) {
  return RenderPairFigure(
      dataset, "Figure 7: conventional Douglas-Peucker (NDP) vs TD-TR", "ndp",
      "td-tr");
}

Result<std::string> RenderFigure8(const std::vector<Trajectory>& dataset) {
  return RenderPairFigure(dataset,
                          "Figure 8: opening-window break strategies, "
                          "BOPW vs NOPW",
                          "bopw", "nopw");
}

Result<std::string> RenderFigure9(const std::vector<Trajectory>& dataset) {
  return RenderPairFigure(dataset, "Figure 9: NOPW vs OPW-TR", "nopw",
                          "opw-tr");
}

Result<std::string> RenderFigure10(const std::vector<Trajectory>& dataset) {
  struct Series {
    std::string label;
    std::string algorithm;
    double speed_threshold_mps;
  };
  const std::vector<Series> series = {
      {"opw-tr", "opw-tr", 0.0},      {"td-sp(5)", "td-sp", 5.0},
      {"opw-sp(5)", "opw-sp", 5.0},   {"opw-sp(15)", "opw-sp", 15.0},
      {"opw-sp(25)", "opw-sp", 25.0},
  };
  std::vector<SweepRequest> requests;
  requests.reserve(series.size());
  for (const Series& s : series) {
    algo::AlgorithmParams base;
    base.speed_threshold_mps = s.speed_threshold_mps;
    requests.push_back({s.algorithm, base, PaperThresholds()});
  }
  STCOMP_ASSIGN_OR_RETURN(const std::vector<std::vector<SweepPoint>> sweeps,
                          SweepManyParallel(dataset, requests));
  std::vector<std::string> error_headers = {"threshold_m"};
  std::vector<std::string> compression_headers = {"threshold_m"};
  for (const Series& s : series) {
    error_headers.push_back(s.label + "_error_m");
    compression_headers.push_back(s.label + "_compr_%");
  }
  Table errors(error_headers);
  Table compressions(compression_headers);
  const std::vector<double> thresholds = PaperThresholds();
  for (size_t i = 0; i < thresholds.size(); ++i) {
    std::vector<std::string> error_row = {Fmt(thresholds[i], 0)};
    std::vector<std::string> compression_row = {Fmt(thresholds[i], 0)};
    for (const auto& sweep : sweeps) {
      error_row.push_back(Fmt(sweep[i].sync_error_mean_m));
      compression_row.push_back(Fmt(sweep[i].compression_percent));
    }
    errors.AddRow(std::move(error_row));
    compressions.AddRow(std::move(compression_row));
  }
  std::string out =
      "Figure 10: OPW-TR vs TD-SP vs OPW-SP (speed thresholds in m/s)\n\n";
  out += "(a) Errors committed\n" + errors.ToString();
  out += "\n(b) Compression obtained\n" + compressions.ToString();
  return out;
}

Result<std::string> RenderFigure11(const std::vector<Trajectory>& dataset) {
  struct Series {
    std::string label;
    std::string algorithm;
    double speed_threshold_mps;
  };
  const std::vector<Series> series = {
      {"ndp", "ndp", 0.0},
      {"td-tr", "td-tr", 0.0},
      {"nopw", "nopw", 0.0},
      {"opw-tr", "opw-tr", 0.0},
      {"opw-sp(5)", "opw-sp", 5.0},
      {"opw-sp(15)", "opw-sp", 15.0},
      {"opw-sp(25)", "opw-sp", 25.0},
  };
  std::vector<SweepRequest> requests;
  requests.reserve(series.size());
  for (const Series& s : series) {
    algo::AlgorithmParams base;
    base.speed_threshold_mps = s.speed_threshold_mps;
    requests.push_back({s.algorithm, base, PaperThresholds()});
  }
  STCOMP_ASSIGN_OR_RETURN(const std::vector<std::vector<SweepPoint>> sweeps,
                          SweepManyParallel(dataset, requests));
  Table table({"algorithm", "threshold_m", "compression_%", "error_m"});
  for (size_t s = 0; s < series.size(); ++s) {
    for (const SweepPoint& point : sweeps[s]) {
      table.AddRow({series[s].label, Fmt(point.epsilon_m, 0),
                    Fmt(point.compression_percent),
                    Fmt(point.sync_error_mean_m)});
    }
  }
  std::string out =
      "Figure 11: error vs compression across algorithms (each row is one "
      "threshold setting; plot error_m against compression_% per "
      "algorithm)\n\n";
  out += table.ToString();
  return out;
}

Result<std::string> RenderStorageTable(const std::vector<Trajectory>& dataset) {
  size_t total_points = 0;
  size_t raw_bytes = 0;
  size_t delta_bytes = 0;
  for (const Trajectory& trajectory : dataset) {
    total_points += trajectory.size();
    STCOMP_ASSIGN_OR_RETURN(const size_t raw,
                            EncodedSize(trajectory, Codec::kRaw));
    STCOMP_ASSIGN_OR_RETURN(const size_t delta,
                            EncodedSize(trajectory, Codec::kDelta));
    raw_bytes += raw;
    delta_bytes += delta;
  }
  Table table({"representation", "bytes", "bytes/point"});
  table.AddRow({"raw <t,x,y> doubles", StrFormat("%zu", raw_bytes),
                Fmt(static_cast<double>(raw_bytes) /
                    static_cast<double>(total_points))});
  table.AddRow({"delta varint codec", StrFormat("%zu", delta_bytes),
                Fmt(static_cast<double>(delta_bytes) /
                    static_cast<double>(total_points))});
  // The paper's Sec. 1 example: a <t, x, y> fix every 10 seconds, 400
  // objects, one day => ~100 MB. Reproduce the arithmetic with our raw
  // codec (24 bytes/fix).
  const double fixes_per_object_day = 86400.0 / 10.0;
  const double mb =
      400.0 * fixes_per_object_day * 24.0 / (1024.0 * 1024.0);
  std::string out = "Storage accounting (Sec. 1 motivation)\n\n";
  out += table.ToString();
  out += StrFormat(
      "\n400 objects sampled every 10 s for one day at 24 raw bytes/fix: "
      "%.1f MB (paper's back-of-envelope: ~100 MB)\n",
      mb);
  return out;
}

}  // namespace stcomp
