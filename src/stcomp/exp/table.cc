#include "stcomp/exp/table.h"

#include <algorithm>

#include "stcomp/common/check.h"

namespace stcomp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  STCOMP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += "  ";
      }
      out.append(widths[c] - row[c].size(), ' ');
      out += row[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += row[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

}  // namespace stcomp
