// Result<T>: value-or-Status, the return type of fallible functions that
// produce a value. Mirrors the usual StatusOr<T> shape.

#ifndef STCOMP_COMMON_RESULT_H_
#define STCOMP_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "stcomp/common/status.h"

namespace stcomp {

template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError(...);`
  // both work, matching StatusOr conventions.
  Result(const T& value) : value_(value) {}                // NOLINT
  Result(T&& value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    if (status_.ok()) {
      // An OK status without a value is a programming error; fail loudly.
      std::cerr << "Result<T> constructed from OK Status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Result<T>::value() on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace stcomp

// Assigns the value of a Result expression to `lhs`, or propagates the
// error. `lhs` may include a declaration: STCOMP_ASSIGN_OR_RETURN(auto x, F())
#define STCOMP_ASSIGN_OR_RETURN(lhs, expr)                        \
  STCOMP_ASSIGN_OR_RETURN_IMPL_(                                  \
      STCOMP_RESULT_CONCAT_(stcomp_result_, __LINE__), lhs, expr)

#define STCOMP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define STCOMP_RESULT_CONCAT_INNER_(a, b) a##b
#define STCOMP_RESULT_CONCAT_(a, b) STCOMP_RESULT_CONCAT_INNER_(a, b)

#endif  // STCOMP_COMMON_RESULT_H_
