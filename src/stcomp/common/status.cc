#include "stcomp/common/status.h"

namespace stcomp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

Status::Status(StatusCode code, std::string_view message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::string(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) {
    rep_ = std::make_unique<Rep>(*other.rep_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code()));
  if (!message().empty()) {
    result += ": ";
    result += message();
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, message);
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, message);
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, message);
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, message);
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, message);
}
Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, message);
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, message);
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, message);
}
Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, message);
}

Status IoError(std::string_view message) {
  return Status(StatusCode::kIoError, message);
}

}  // namespace stcomp
