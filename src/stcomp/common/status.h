// Error handling for stcomp.
//
// The library does not use C++ exceptions. Fallible operations return a
// Status (or a Result<T>, see result.h). Status is a cheap value type: the
// OK state carries no allocation.

#ifndef STCOMP_COMMON_STATUS_H_
#define STCOMP_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace stcomp {

// Canonical error space, modelled after the usual RPC canonical codes but
// trimmed to what a storage/algorithm library needs.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kDataLoss = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIoError = 9,
  // A transient failure: the same operation may succeed if retried (used
  // by faulty feed sources and by the crash-injected durability layer).
  kUnavailable = 10,
};

// Human-readable name of a code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeToString(StatusCode code);

// A Status is either OK or an (error code, message) pair.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string_view message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status Ok() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr represents OK; errors allocate.
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories.
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status DataLossError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);
Status IoError(std::string_view message);
Status UnavailableError(std::string_view message);

}  // namespace stcomp

// Propagates a non-OK status to the caller.
#define STCOMP_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::stcomp::Status stcomp_status_macro_ = (expr);   \
    if (!stcomp_status_macro_.ok()) {                 \
      return stcomp_status_macro_;                    \
    }                                                 \
  } while (false)

#endif  // STCOMP_COMMON_STATUS_H_
