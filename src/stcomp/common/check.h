// Invariant-checking macros. STCOMP_CHECK* are always on (they guard
// library invariants whose violation would otherwise corrupt results);
// STCOMP_DCHECK* compile away in NDEBUG builds.

#ifndef STCOMP_COMMON_CHECK_H_
#define STCOMP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

namespace stcomp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::cerr << file << ":" << line << ": STCOMP_CHECK failed: " << condition
            << std::endl;
  std::abort();
}

}  // namespace stcomp::internal

#define STCOMP_CHECK(condition)                                       \
  do {                                                                \
    if (!(condition)) {                                               \
      ::stcomp::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                                 \
  } while (false)

#define STCOMP_CHECK_OK(expr)                                              \
  do {                                                                     \
    const ::stcomp::Status stcomp_check_status_ = (expr);                  \
    if (!stcomp_check_status_.ok()) {                                      \
      std::cerr << __FILE__ << ":" << __LINE__ << ": STCOMP_CHECK_OK failed: " \
                << stcomp_check_status_.ToString() << std::endl;           \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define STCOMP_DCHECK(condition) \
  do {                           \
  } while (false)
#else
#define STCOMP_DCHECK(condition) STCOMP_CHECK(condition)
#endif

#endif  // STCOMP_COMMON_CHECK_H_
