// A tiny command-line flag parser for the bench and example binaries.
// Supports --name=value and --name value forms plus `--help` generation.
// Deliberately minimal: the library itself never parses flags.

#ifndef STCOMP_COMMON_FLAGS_H_
#define STCOMP_COMMON_FLAGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/status.h"

namespace stcomp {

class FlagParser {
 public:
  // `program_doc` is printed at the top of --help output.
  explicit FlagParser(std::string_view program_doc);

  // Registration. Pointers must outlive Parse(). Defaults are taken from the
  // current pointee values.
  void AddDouble(std::string_view name, double* value, std::string_view doc);
  void AddInt(std::string_view name, int* value, std::string_view doc);
  void AddBool(std::string_view name, bool* value, std::string_view doc);
  void AddString(std::string_view name, std::string* value,
                 std::string_view doc);

  // Parses argv. On `--help`, prints usage and returns a status with code
  // kFailedPrecondition (callers exit 0). Unknown flags are errors.
  // Non-flag arguments are collected into positional().
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  std::string UsageString() const;

 private:
  enum class Type { kDouble, kInt, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string doc;
    std::string default_repr;
  };

  Status SetFlag(const Flag& flag, std::string_view value_text);
  const Flag* Find(std::string_view name) const;

  std::string program_doc_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace stcomp

#endif  // STCOMP_COMMON_FLAGS_H_
