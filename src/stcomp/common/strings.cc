#include "stcomp/common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace stcomp {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return InvalidArgumentError("empty string is not a number");
  }
  std::string buffer(stripped);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE ||
      std::isnan(value)) {
    return InvalidArgumentError("cannot parse '" + buffer + "' as double");
  }
  return value;
}

Result<long long> ParseInt(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return InvalidArgumentError("empty string is not an integer");
  }
  std::string buffer(stripped);
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return InvalidArgumentError("cannot parse '" + buffer + "' as integer");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string AsciiLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string FormatHms(double seconds) {
  long long total = static_cast<long long>(std::llround(seconds));
  long long h = total / 3600;
  long long m = (total % 3600) / 60;
  long long s = total % 60;
  return StrFormat("%02lld:%02lld:%02lld", h, m, s);
}

}  // namespace stcomp
