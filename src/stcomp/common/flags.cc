#include "stcomp/common/flags.h"

#include <iostream>

#include "stcomp/common/strings.h"

namespace stcomp {

FlagParser::FlagParser(std::string_view program_doc)
    : program_doc_(program_doc) {}

void FlagParser::AddDouble(std::string_view name, double* value,
                           std::string_view doc) {
  flags_.push_back(Flag{std::string(name), Type::kDouble, value,
                        std::string(doc), StrFormat("%g", *value)});
}

void FlagParser::AddInt(std::string_view name, int* value,
                        std::string_view doc) {
  flags_.push_back(Flag{std::string(name), Type::kInt, value, std::string(doc),
                        StrFormat("%d", *value)});
}

void FlagParser::AddBool(std::string_view name, bool* value,
                         std::string_view doc) {
  flags_.push_back(Flag{std::string(name), Type::kBool, value,
                        std::string(doc), *value ? "true" : "false"});
}

void FlagParser::AddString(std::string_view name, std::string* value,
                           std::string_view doc) {
  flags_.push_back(
      Flag{std::string(name), Type::kString, value, std::string(doc), *value});
}

const FlagParser::Flag* FlagParser::Find(std::string_view name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

Status FlagParser::SetFlag(const Flag& flag, std::string_view value_text) {
  switch (flag.type) {
    case Type::kDouble: {
      STCOMP_ASSIGN_OR_RETURN(*static_cast<double*>(flag.target),
                              ParseDouble(value_text));
      return Status::Ok();
    }
    case Type::kInt: {
      STCOMP_ASSIGN_OR_RETURN(long long parsed, ParseInt(value_text));
      *static_cast<int*>(flag.target) = static_cast<int>(parsed);
      return Status::Ok();
    }
    case Type::kBool: {
      std::string lower = AsciiLower(value_text);
      if (lower == "true" || lower == "1" || lower == "yes" || lower.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return InvalidArgumentError("bad boolean value for --" + flag.name);
      }
      return Status::Ok();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = std::string(value_text);
      return Status::Ok();
  }
  return InternalError("unreachable flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::string(arg));
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body == "help") {
      std::cout << UsageString();
      return FailedPreconditionError("help requested");
    }
    size_t eq = body.find('=');
    std::string_view name = eq == std::string_view::npos ? body : body.substr(0, eq);
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return InvalidArgumentError("unknown flag --" + std::string(name));
    }
    std::string_view value_text;
    if (eq != std::string_view::npos) {
      value_text = body.substr(eq + 1);
    } else if (flag->type == Type::kBool) {
      value_text = "true";
    } else {
      if (i + 1 >= argc) {
        return InvalidArgumentError("flag --" + std::string(name) +
                                    " needs a value");
      }
      value_text = argv[++i];
    }
    STCOMP_RETURN_IF_ERROR(SetFlag(*flag, value_text));
  }
  return Status::Ok();
}

std::string FlagParser::UsageString() const {
  std::string usage = program_doc_ + "\n\nFlags:\n";
  for (const Flag& flag : flags_) {
    usage += StrFormat("  --%-24s %s (default: %s)\n", flag.name.c_str(),
                       flag.doc.c_str(), flag.default_repr.c_str());
  }
  return usage;
}

}  // namespace stcomp
