// Small string helpers used across the library (parsing CSV/GPX, printing
// tables). Kept minimal and dependency-free.

#ifndef STCOMP_COMMON_STRINGS_H_
#define STCOMP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"

namespace stcomp {

// Splits `text` on `sep`, keeping empty fields. Splitting "" yields {""}.
std::vector<std::string_view> Split(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Whole-string numeric parsing (leading/trailing whitespace tolerated).
Result<double> ParseDouble(std::string_view text);
Result<long long> ParseInt(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Lowercases ASCII letters.
std::string AsciiLower(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Formats a duration in seconds as "HH:MM:SS".
std::string FormatHms(double seconds);

}  // namespace stcomp

#endif  // STCOMP_COMMON_STRINGS_H_
