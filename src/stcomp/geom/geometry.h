// Planar geometry primitives. Coordinates are metres in a local projected
// frame (east, north); see gps/projection.h for getting there from WGS84.

#ifndef STCOMP_GEOM_GEOMETRY_H_
#define STCOMP_GEOM_GEOMETRY_H_

#include <cmath>

namespace stcomp {

// A 2-D point or displacement vector, in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr friend bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }
  // Z component of the 3-D cross product; twice the signed area of the
  // triangle (origin, *this, o).
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::hypot(x, y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

// Euclidean distance between two points.
inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }
inline double SquaredDistance(Vec2 a, Vec2 b) { return (a - b).SquaredNorm(); }

// Distance from `p` to the infinite line through `a` and `b`.
// Precondition relaxed: if a == b, returns Distance(p, a).
double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b);

// Distance from `p` to the closed segment [a, b].
double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b);

// Parameter u in [0, 1] of the point on [a, b] closest to `p`
// (0 for a == b).
double ProjectOntoSegment(Vec2 p, Vec2 a, Vec2 b);

// Interior angle at `b` of the polyline a-b-c, in radians [0, pi].
// A straight continuation gives pi; a full reversal gives 0.
// If either arm is degenerate, returns pi (treated as straight).
double InteriorAngle(Vec2 a, Vec2 b, Vec2 c);

// Absolute change of heading when travelling a->b->c, in radians [0, pi]:
// 0 for straight continuation, pi for reversal. Complement of InteriorAngle.
double HeadingChange(Vec2 a, Vec2 b, Vec2 c);

// Heading of the displacement a->b in radians, measured counterclockwise
// from east (atan2 convention), in (-pi, pi]. Zero-length gives 0.
double Heading(Vec2 a, Vec2 b);

// Linear interpolation: a + u * (b - a).
inline Vec2 Lerp(Vec2 a, Vec2 b, double u) { return a + (b - a) * u; }

// Axis-aligned bounding box (closed on all sides).
struct BoundingBox {
  Vec2 min;
  Vec2 max;
  bool Contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  bool Intersects(const BoundingBox& o) const {
    return min.x <= o.max.x && max.x >= o.min.x && min.y <= o.max.y &&
           max.y >= o.min.y;
  }
};

// Distance from `p` to `box` (0 when p is inside or on the boundary).
double PointToBoxDistance(Vec2 p, const BoundingBox& box);

// True when the closed segments [a, b] and [c, d] share at least one
// point (touching endpoints and collinear overlap count).
bool SegmentsIntersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

// Minimum distance between the closed segments [a, b] and [c, d]
// (0 when they intersect). Degenerate segments collapse to points.
double SegmentToSegmentDistance(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

// True when the closed segment [a, b] has at least one point inside or on
// the boundary of `box`.
bool SegmentIntersectsBox(Vec2 a, Vec2 b, const BoundingBox& box);

// Minimum distance between the closed segment [a, b] and `box`
// (0 when the segment enters or touches the box).
double SegmentToBoxDistance(Vec2 a, Vec2 b, const BoundingBox& box);

}  // namespace stcomp

#endif  // STCOMP_GEOM_GEOMETRY_H_
