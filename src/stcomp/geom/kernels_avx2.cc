// AVX2 backend: 4-wide double lanes, unaligned loads (the SoA scratch has
// no alignment guarantee), scalar tails via the shared per-point helpers.
// Compiled with -mavx2 (and only -mavx2: no -mfma — the bit-exactness
// contract in kernels.h forbids fused multiply-add) on x86 targets; on
// other architectures this TU degrades to the nullptr factory.
//
// Every vector expression mirrors the scalar helper operation-for-
// operation: mul/add/sub/div/sqrt are correctly rounded per lane, so the
// lanes are bit-identical to the scalar reference. Comparisons use the
// ordered non-signalling predicates (_CMP_GT_OQ / _CMP_GE_OQ), which agree
// with scalar > / >= on NaN (both false).

#include "stcomp/geom/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace stcomp::kernels {

namespace {

inline __m256d Norm2V(__m256d dx, __m256d dy) {
  return _mm256_sqrt_pd(
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
}

inline __m256d AbsV(__m256d v) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  return _mm256_andnot_pd(sign_mask, v);
}

// Per-call constants of the SED formula, hoisted once (the hoisted values
// equal what the per-point helper recomputes, so hoisting is value-safe).
struct SedConsts {
  bool degenerate;
  __m256d ax, ay, at, abx, aby, dt;
};

inline SedConsts MakeSedConsts(const SedSegment& seg) {
  SedConsts c;
  const double dt = seg.bt - seg.at;
  c.degenerate = !(dt > 0.0);
  c.ax = _mm256_set1_pd(seg.ax);
  c.ay = _mm256_set1_pd(seg.ay);
  c.at = _mm256_set1_pd(seg.at);
  c.abx = _mm256_set1_pd(seg.bx - seg.ax);
  c.aby = _mm256_set1_pd(seg.by - seg.ay);
  c.dt = _mm256_set1_pd(dt);
  return c;
}

// SED of 4 points; caller handles the degenerate branch (it is per-call,
// not per-point: dt is a segment constant).
inline __m256d Sed4(const SedConsts& c, __m256d xv, __m256d yv, __m256d tv) {
  const __m256d u = _mm256_div_pd(_mm256_sub_pd(tv, c.at), c.dt);
  const __m256d ix = _mm256_add_pd(c.ax, _mm256_mul_pd(c.abx, u));
  const __m256d iy = _mm256_add_pd(c.ay, _mm256_mul_pd(c.aby, u));
  return Norm2V(_mm256_sub_pd(xv, ix), _mm256_sub_pd(yv, iy));
}

inline __m256d Radial4(__m256d xv, __m256d yv, __m256d ax, __m256d ay) {
  return Norm2V(_mm256_sub_pd(xv, ax), _mm256_sub_pd(yv, ay));
}

// ---- radial ----------------------------------------------------------

void RadialDistancesAvx2(const double* x, const double* y, size_t n,
                         double ax, double ay, double* out) {
  const __m256d axv = _mm256_set1_pd(ax);
  const __m256d ayv = _mm256_set1_pd(ay);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = Radial4(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                              axv, ayv);
    _mm256_storeu_pd(out + i, d);
  }
  for (; i < n; ++i) {
    out[i] = RadialDistancePoint(x[i], y[i], ax, ay);
  }
}

std::ptrdiff_t RadialFirstReachingAvx2(const double* x, const double* y,
                                       size_t n, double ax, double ay,
                                       double threshold) {
  const __m256d axv = _mm256_set1_pd(ax);
  const __m256d ayv = _mm256_set1_pd(ay);
  const __m256d thr = _mm256_set1_pd(threshold);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = Radial4(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                              axv, ayv);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d, thr, _CMP_GE_OQ));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  for (; i < n; ++i) {
    if (RadialDistancePoint(x[i], y[i], ax, ay) >= threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

// ---- sed -------------------------------------------------------------

void SedDistancesAvx2(const double* x, const double* y, const double* t,
                      size_t n, const SedSegment& seg, double* out) {
  const SedConsts c = MakeSedConsts(seg);
  if (c.degenerate) {
    RadialDistancesAvx2(x, y, n, seg.ax, seg.ay, out);
    return;
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = Sed4(c, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           _mm256_loadu_pd(t + i));
    _mm256_storeu_pd(out + i, d);
  }
  for (; i < n; ++i) {
    out[i] = SedDistancePoint(x[i], y[i], t[i], seg);
  }
}

std::ptrdiff_t SedFirstAboveAvx2(const double* x, const double* y,
                                 const double* t, size_t n,
                                 const SedSegment& seg, double threshold) {
  const SedConsts c = MakeSedConsts(seg);
  if (c.degenerate) {
    // d >= threshold is not d > threshold; inline the strict variant.
    const __m256d thr = _mm256_set1_pd(threshold);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d d = Radial4(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                                c.ax, c.ay);
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d, thr, _CMP_GT_OQ));
      if (mask != 0) {
        return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
      }
    }
    for (; i < n; ++i) {
      if (SedDistancePoint(x[i], y[i], t[i], seg) > threshold) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return -1;
  }
  const __m256d thr = _mm256_set1_pd(threshold);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = Sed4(c, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           _mm256_loadu_pd(t + i));
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d, thr, _CMP_GT_OQ));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  for (; i < n; ++i) {
    if (SedDistancePoint(x[i], y[i], t[i], seg) > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

// Horizontal reduce for the blockwise argmax: each lane holds the earliest
// maximum among the indices it visited; the earliest global strict
// maximum therefore lives in exactly one lane and wins the
// (greater value, then lower index) comparison.
inline MaxResult ReduceMax(__m256d bestv, __m256d besti) {
  double values[4];
  double indices[4];
  _mm256_storeu_pd(values, bestv);
  _mm256_storeu_pd(indices, besti);
  MaxResult best{static_cast<std::ptrdiff_t>(indices[0]), values[0]};
  for (int lane = 1; lane < 4; ++lane) {
    const std::ptrdiff_t index = static_cast<std::ptrdiff_t>(indices[lane]);
    if (values[lane] > best.value ||
        (values[lane] == best.value && index < best.index)) {
      best = {index, values[lane]};
    }
  }
  return best;
}

MaxResult SedMaxAvx2(const double* x, const double* y, const double* t,
                     size_t n, const SedSegment& seg) {
  if (n == 0) {
    return {-1, -1.0};
  }
  const SedConsts c = MakeSedConsts(seg);
  MaxResult best{0, -1.0};
  size_t i = 0;
  if (n >= 4) {
    __m256d bestv = _mm256_set1_pd(-1.0);
    __m256d besti = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    __m256d curi = besti;
    const __m256d four = _mm256_set1_pd(4.0);
    for (; i + 4 <= n; i += 4) {
      const __m256d xv = _mm256_loadu_pd(x + i);
      const __m256d yv = _mm256_loadu_pd(y + i);
      const __m256d d = c.degenerate
                            ? Radial4(xv, yv, c.ax, c.ay)
                            : Sed4(c, xv, yv, _mm256_loadu_pd(t + i));
      const __m256d gt = _mm256_cmp_pd(d, bestv, _CMP_GT_OQ);
      bestv = _mm256_blendv_pd(bestv, d, gt);
      besti = _mm256_blendv_pd(besti, curi, gt);
      curi = _mm256_add_pd(curi, four);
    }
    best = ReduceMax(bestv, besti);
  }
  for (; i < n; ++i) {
    const double d = SedDistancePoint(x[i], y[i], t[i], seg);
    if (d > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), d};
    }
  }
  return best;
}

// ---- perpendicular ---------------------------------------------------

struct PerpConsts {
  bool degenerate;  // a == b: fall back to radial distance to a.
  double abx, aby, len;
};

inline PerpConsts MakePerpConsts(const LineSegment& seg) {
  PerpConsts c;
  c.abx = seg.bx - seg.ax;
  c.aby = seg.by - seg.ay;
  c.len = Norm2(c.abx, c.aby);
  c.degenerate = (c.len == 0.0);
  return c;
}

inline __m256d Perp4(const PerpConsts& c, __m256d xv, __m256d yv, __m256d ax,
                     __m256d ay) {
  const __m256d abx = _mm256_set1_pd(c.abx);
  const __m256d aby = _mm256_set1_pd(c.aby);
  const __m256d len = _mm256_set1_pd(c.len);
  const __m256d cross =
      _mm256_sub_pd(_mm256_mul_pd(abx, _mm256_sub_pd(yv, ay)),
                    _mm256_mul_pd(aby, _mm256_sub_pd(xv, ax)));
  return _mm256_div_pd(AbsV(cross), len);
}

void PerpDistancesAvx2(const double* x, const double* y, size_t n,
                       const LineSegment& seg, double* out) {
  const PerpConsts c = MakePerpConsts(seg);
  if (c.degenerate) {
    RadialDistancesAvx2(x, y, n, seg.ax, seg.ay, out);
    return;
  }
  const __m256d ax = _mm256_set1_pd(seg.ax);
  const __m256d ay = _mm256_set1_pd(seg.ay);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        Perp4(c, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), ax, ay);
    _mm256_storeu_pd(out + i, d);
  }
  for (; i < n; ++i) {
    out[i] = PerpDistancePoint(x[i], y[i], seg);
  }
}

std::ptrdiff_t PerpFirstAboveAvx2(const double* x, const double* y, size_t n,
                                  const LineSegment& seg, double threshold) {
  const PerpConsts c = MakePerpConsts(seg);
  const __m256d ax = _mm256_set1_pd(seg.ax);
  const __m256d ay = _mm256_set1_pd(seg.ay);
  const __m256d thr = _mm256_set1_pd(threshold);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d d =
        c.degenerate ? Radial4(xv, yv, ax, ay) : Perp4(c, xv, yv, ax, ay);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(d, thr, _CMP_GT_OQ));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  for (; i < n; ++i) {
    if (PerpDistancePoint(x[i], y[i], seg) > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult PerpMaxAvx2(const double* x, const double* y, size_t n,
                      const LineSegment& seg) {
  if (n == 0) {
    return {-1, -1.0};
  }
  const PerpConsts c = MakePerpConsts(seg);
  const __m256d ax = _mm256_set1_pd(seg.ax);
  const __m256d ay = _mm256_set1_pd(seg.ay);
  MaxResult best{0, -1.0};
  size_t i = 0;
  if (n >= 4) {
    __m256d bestv = _mm256_set1_pd(-1.0);
    __m256d besti = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    __m256d curi = besti;
    const __m256d four = _mm256_set1_pd(4.0);
    for (; i + 4 <= n; i += 4) {
      const __m256d xv = _mm256_loadu_pd(x + i);
      const __m256d yv = _mm256_loadu_pd(y + i);
      const __m256d d =
          c.degenerate ? Radial4(xv, yv, ax, ay) : Perp4(c, xv, yv, ax, ay);
      const __m256d gt = _mm256_cmp_pd(d, bestv, _CMP_GT_OQ);
      bestv = _mm256_blendv_pd(bestv, d, gt);
      besti = _mm256_blendv_pd(besti, curi, gt);
      curi = _mm256_add_pd(curi, four);
    }
    best = ReduceMax(bestv, besti);
  }
  for (; i < n; ++i) {
    const double d = PerpDistancePoint(x[i], y[i], seg);
    if (d > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), d};
    }
  }
  return best;
}

// ---- plain arrays ----------------------------------------------------

std::ptrdiff_t ArrayFirstAboveAvx2(const double* v, size_t n,
                                   double threshold) {
  const __m256d thr = _mm256_set1_pd(threshold);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), thr, _CMP_GT_OQ));
    if (mask != 0) {
      return static_cast<std::ptrdiff_t>(i) + __builtin_ctz(mask);
    }
  }
  for (; i < n; ++i) {
    if (v[i] > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult ArrayMaxAvx2(const double* v, size_t n) {
  if (n == 0) {
    return {-1, -1.0};
  }
  MaxResult best{0, -1.0};
  size_t i = 0;
  if (n >= 4) {
    __m256d bestv = _mm256_set1_pd(-1.0);
    __m256d besti = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    __m256d curi = besti;
    const __m256d four = _mm256_set1_pd(4.0);
    for (; i + 4 <= n; i += 4) {
      const __m256d d = _mm256_loadu_pd(v + i);
      const __m256d gt = _mm256_cmp_pd(d, bestv, _CMP_GT_OQ);
      bestv = _mm256_blendv_pd(bestv, d, gt);
      besti = _mm256_blendv_pd(besti, curi, gt);
      curi = _mm256_add_pd(curi, four);
    }
    best = ReduceMax(bestv, besti);
  }
  for (; i < n; ++i) {
    if (v[i] > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), v[i]};
    }
  }
  return best;
}

// ---- error-module deltas ---------------------------------------------

void SyncDeltasAvx2(const double* x, const double* y, const double* t,
                    const double* xp, const double* yp, size_t n,
                    const SedSegment& seg, double* dx, double* dy) {
  const SedConsts c = MakeSedConsts(seg);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d xpv = _mm256_loadu_pd(xp + i);
    const __m256d ypv = _mm256_loadu_pd(yp + i);
    const __m256d ox = _mm256_add_pd(xpv, _mm256_sub_pd(xv, xpv));
    const __m256d oy = _mm256_add_pd(ypv, _mm256_sub_pd(yv, ypv));
    const __m256d u =
        _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(t + i), c.at), c.dt);
    const __m256d px = _mm256_add_pd(c.ax, _mm256_mul_pd(c.abx, u));
    const __m256d py = _mm256_add_pd(c.ay, _mm256_mul_pd(c.aby, u));
    _mm256_storeu_pd(dx + i, _mm256_sub_pd(ox, px));
    _mm256_storeu_pd(dy + i, _mm256_sub_pd(oy, py));
  }
  for (; i < n; ++i) {
    SyncDeltaPoint(x[i], y[i], t[i], xp[i], yp[i], seg, &dx[i], &dy[i]);
  }
}

constexpr KernelOps kAvx2Ops = {
    Backend::kAvx2,
    "avx2",
    SedDistancesAvx2,
    SedFirstAboveAvx2,
    SedMaxAvx2,
    PerpDistancesAvx2,
    PerpFirstAboveAvx2,
    PerpMaxAvx2,
    RadialDistancesAvx2,
    RadialFirstReachingAvx2,
    ArrayFirstAboveAvx2,
    ArrayMaxAvx2,
    SyncDeltasAvx2,
};

}  // namespace

const KernelOps* Avx2KernelOps() { return &kAvx2Ops; }

}  // namespace stcomp::kernels

#else  // !defined(__AVX2__)

namespace stcomp::kernels {
const KernelOps* Avx2KernelOps() { return nullptr; }
}  // namespace stcomp::kernels

#endif  // defined(__AVX2__)
