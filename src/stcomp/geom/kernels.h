// Batched distance kernels over SoA double arrays (DESIGN.md §14): the
// synchronized-Euclidean-distance (SED), perpendicular and radial inner
// loops of the compression algorithms, evaluated a whole window/range per
// call instead of point-at-a-time, with runtime-dispatched AVX2 (x86) /
// NEON (aarch64) implementations and an always-built scalar reference.
//
// Bit-exactness contract: every backend computes, per point, the *same*
// sequence of IEEE-754 operations — add/sub/mul/div/sqrt, all of which are
// correctly rounded elementwise in both scalar and vector units — so the
// scalar and SIMD backends produce bit-identical doubles, not merely
// close ones (the differential oracle in tests/kernel_differential_test.cc
// asserts 0 ULP; the documented bound is <= 4 ULP to leave headroom for
// future backends). Two global rules make this hold:
//  - norms are sqrt(dx*dx + dy*dy), never std::hypot (hypot's
//    rescaling is not replicable with vector ops; the domain is metres in
//    a local frame, so the squares cannot overflow),
//  - the build disables FP contraction (-ffp-contract=off in the root
//    CMakeLists), so a*b+c is never fused into an FMA behind our back.
//
// The per-point helpers below are the single source of truth for the
// arithmetic: the scalar backend and the vector backends' tail loops call
// them directly, and the AoS consumers (SynchronizedDistance,
// PointToLineDistance, SegmentSpeed) are implemented on top of them so
// point-at-a-time paths (streams, SQUISH, sliding window) stay
// bit-identical to the batched ones.
//
// This layer deliberately knows nothing about Trajectory/TrajectoryView:
// it reads raw x/y/t arrays (see core/trajectory_view_soa.h for the
// repack) so it can sit at the bottom of the dependency order.

#ifndef STCOMP_GEOM_KERNELS_H_
#define STCOMP_GEOM_KERNELS_H_

#include <cmath>
#include <cstddef>

namespace stcomp::kernels {

// Candidate approximation segment for the SED kernels: the anchor (a) and
// probe-end (b) samples. Precondition for the non-degenerate formula:
// at <= bt (the kernels branch on bt - at > 0 once per call, matching
// InterpolatePosition's degenerate rule "position = anchor").
struct SedSegment {
  double ax = 0.0;
  double ay = 0.0;
  double at = 0.0;
  double bx = 0.0;
  double by = 0.0;
  double bt = 0.0;
};

// Spatial-only segment for the perpendicular kernels.
struct LineSegment {
  double ax = 0.0;
  double ay = 0.0;
  double bx = 0.0;
  double by = 0.0;
};

// Argmax result: earliest index attaining the strict maximum, or
// {index = 0, value = -1.0} when no element compares greater than -1.0
// (all-NaN input), or {index = -1, value = -1.0} for n == 0. Mirrors the
// sequential "if (d > best)" scan the top-down algorithms used.
struct MaxResult {
  std::ptrdiff_t index = -1;
  double value = -1.0;
};

// The kernel norm: correctly-rounded sqrt of a correctly-rounded sum of
// correctly-rounded squares. Identical in every backend by IEEE-754.
inline double Norm2(double dx, double dy) {
  return std::sqrt(dx * dx + dy * dy);
}

// SED of the point (px, py, pt) against `seg`: distance to the position a
// time-ratio traveller on the segment occupies at pt (paper Eqs. 1-2).
inline double SedDistancePoint(double px, double py, double pt,
                               const SedSegment& seg) {
  const double dt = seg.bt - seg.at;
  double ix = seg.ax;
  double iy = seg.ay;
  if (dt > 0.0) {
    const double u = (pt - seg.at) / dt;
    ix = seg.ax + (seg.bx - seg.ax) * u;
    iy = seg.ay + (seg.by - seg.ay) * u;
  }
  return Norm2(px - ix, py - iy);
}

// Perpendicular distance from (px, py) to the infinite line through `seg`
// (distance to the segment start when the segment is degenerate).
inline double PerpDistancePoint(double px, double py, const LineSegment& seg) {
  const double abx = seg.bx - seg.ax;
  const double aby = seg.by - seg.ay;
  const double len = Norm2(abx, aby);
  if (len == 0.0) {
    return Norm2(px - seg.ax, py - seg.ay);
  }
  const double cross = abx * (py - seg.ay) - aby * (px - seg.ax);
  return std::abs(cross) / len;
}

// Euclidean distance from (px, py) to the anchor (ax, ay).
inline double RadialDistancePoint(double px, double py, double ax, double ay) {
  return Norm2(px - ax, py - ay);
}

// Synchronous-error delta at one original vertex (error module): the
// original cursor's position minus the kept-segment traveller's position,
// replicating SegmentCursor's exact arithmetic (xp is the previous
// original vertex; u = dt/dt is exactly 1.0 there, hence xp + (x - xp)).
// Precondition: seg.at < seg.bt.
inline void SyncDeltaPoint(double x, double y, double t, double xp, double yp,
                           const SedSegment& seg, double* dx, double* dy) {
  const double ox = xp + (x - xp);
  const double oy = yp + (y - yp);
  const double dt = seg.bt - seg.at;
  const double u = (t - seg.at) / dt;
  *dx = ox - (seg.ax + (seg.bx - seg.ax) * u);
  *dy = oy - (seg.ay + (seg.by - seg.ay) * u);
}

enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// One batched-kernel implementation. All `n` counts are in points; out
// arrays must have room for n doubles. first_above kernels return the
// lowest index whose distance compares strictly greater than `threshold`
// (NaN distances never fire), or -1; first_reaching uses >= instead
// (the radial-distance algorithm's keep rule).
struct KernelOps {
  Backend backend;
  const char* name;

  void (*sed_distances)(const double* x, const double* y, const double* t,
                        size_t n, const SedSegment& seg, double* out);
  std::ptrdiff_t (*sed_first_above)(const double* x, const double* y,
                                    const double* t, size_t n,
                                    const SedSegment& seg, double threshold);
  MaxResult (*sed_max)(const double* x, const double* y, const double* t,
                       size_t n, const SedSegment& seg);

  void (*perp_distances)(const double* x, const double* y, size_t n,
                         const LineSegment& seg, double* out);
  std::ptrdiff_t (*perp_first_above)(const double* x, const double* y,
                                     size_t n, const LineSegment& seg,
                                     double threshold);
  MaxResult (*perp_max)(const double* x, const double* y, size_t n,
                        const LineSegment& seg);

  void (*radial_distances)(const double* x, const double* y, size_t n,
                           double ax, double ay, double* out);
  std::ptrdiff_t (*radial_first_reaching)(const double* x, const double* y,
                                          size_t n, double ax, double ay,
                                          double threshold);

  std::ptrdiff_t (*array_first_above)(const double* v, size_t n,
                                      double threshold);
  MaxResult (*array_max)(const double* v, size_t n);

  void (*sync_deltas)(const double* x, const double* y, const double* t,
                      const double* xp, const double* yp, size_t n,
                      const SedSegment& seg, double* dx, double* dy);
};

// The always-built scalar reference.
const KernelOps& ScalarKernels();

// Ops for `backend`, or nullptr when the backend is not compiled in or the
// CPU lacks the ISA (kAvx2 on a non-AVX2 x86, kNeon off aarch64, ...).
const KernelOps* KernelsFor(Backend backend);

// The best backend this process could run, ignoring overrides.
Backend DetectBestBackend();

// True when STCOMP_FORCE_SCALAR_KERNELS is set non-empty and not "0"
// (read once, at first dispatch).
bool ScalarKernelsForced();

const char* BackendName(Backend backend);

// The dispatch seam: resolved once on first use (env override, then CPU
// detection), readable and pinnable afterwards. SetForTest installs a
// specific backend process-wide and returns the previous one; it aborts
// (STCOMP_CHECK) if the backend is unavailable, and is meant for the
// differential tests and benches only — not thread-safe against
// concurrently running algorithms.
struct KernelDispatch {
  static const KernelOps& Get();
  static Backend Active();
  static Backend SetForTest(Backend backend);
};

// Derived segment speeds (n - 1 entries) and their absolute jumps at
// interior points (n entries: out[0] = out[n-1] = 0). Plain scalar code,
// shared verbatim by every backend: the SP-family criteria consume these
// O(n) precomputations instead of recomputing two norms per candidate.
void SegmentSpeeds(const double* x, const double* y, const double* t, size_t n,
                   double* out);
void SpeedJumps(const double* speeds, size_t n_points, double* out);

// Backend factories, defined in their own translation units so the vector
// code can be compiled with per-file ISA flags; each returns nullptr when
// its ISA is not compiled in.
const KernelOps* Avx2KernelOps();
const KernelOps* NeonKernelOps();

}  // namespace stcomp::kernels

#endif  // STCOMP_GEOM_KERNELS_H_
