// Scalar reference backend and the dispatch seam. The scalar loops are
// deliberately nothing but the per-point helpers from kernels.h applied in
// index order — they are the executable specification the vector backends
// are differentially tested against.

#include "stcomp/geom/kernels.h"

#include <atomic>
#include <cstdlib>

#include "stcomp/common/check.h"

namespace stcomp::kernels {

namespace {

void SedDistancesScalar(const double* x, const double* y, const double* t,
                        size_t n, const SedSegment& seg, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SedDistancePoint(x[i], y[i], t[i], seg);
  }
}

std::ptrdiff_t SedFirstAboveScalar(const double* x, const double* y,
                                   const double* t, size_t n,
                                   const SedSegment& seg, double threshold) {
  for (size_t i = 0; i < n; ++i) {
    if (SedDistancePoint(x[i], y[i], t[i], seg) > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult SedMaxScalar(const double* x, const double* y, const double* t,
                       size_t n, const SedSegment& seg) {
  if (n == 0) {
    return {-1, -1.0};
  }
  MaxResult best{0, -1.0};
  for (size_t i = 0; i < n; ++i) {
    const double d = SedDistancePoint(x[i], y[i], t[i], seg);
    if (d > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), d};
    }
  }
  return best;
}

void PerpDistancesScalar(const double* x, const double* y, size_t n,
                         const LineSegment& seg, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = PerpDistancePoint(x[i], y[i], seg);
  }
}

std::ptrdiff_t PerpFirstAboveScalar(const double* x, const double* y, size_t n,
                                    const LineSegment& seg, double threshold) {
  for (size_t i = 0; i < n; ++i) {
    if (PerpDistancePoint(x[i], y[i], seg) > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult PerpMaxScalar(const double* x, const double* y, size_t n,
                        const LineSegment& seg) {
  if (n == 0) {
    return {-1, -1.0};
  }
  MaxResult best{0, -1.0};
  for (size_t i = 0; i < n; ++i) {
    const double d = PerpDistancePoint(x[i], y[i], seg);
    if (d > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), d};
    }
  }
  return best;
}

void RadialDistancesScalar(const double* x, const double* y, size_t n,
                           double ax, double ay, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = RadialDistancePoint(x[i], y[i], ax, ay);
  }
}

std::ptrdiff_t RadialFirstReachingScalar(const double* x, const double* y,
                                         size_t n, double ax, double ay,
                                         double threshold) {
  for (size_t i = 0; i < n; ++i) {
    if (RadialDistancePoint(x[i], y[i], ax, ay) >= threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::ptrdiff_t ArrayFirstAboveScalar(const double* v, size_t n,
                                     double threshold) {
  for (size_t i = 0; i < n; ++i) {
    if (v[i] > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult ArrayMaxScalar(const double* v, size_t n) {
  if (n == 0) {
    return {-1, -1.0};
  }
  MaxResult best{0, -1.0};
  for (size_t i = 0; i < n; ++i) {
    if (v[i] > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), v[i]};
    }
  }
  return best;
}

void SyncDeltasScalar(const double* x, const double* y, const double* t,
                      const double* xp, const double* yp, size_t n,
                      const SedSegment& seg, double* dx, double* dy) {
  for (size_t i = 0; i < n; ++i) {
    SyncDeltaPoint(x[i], y[i], t[i], xp[i], yp[i], seg, &dx[i], &dy[i]);
  }
}

constexpr KernelOps kScalarOps = {
    Backend::kScalar,
    "scalar",
    SedDistancesScalar,
    SedFirstAboveScalar,
    SedMaxScalar,
    PerpDistancesScalar,
    PerpFirstAboveScalar,
    PerpMaxScalar,
    RadialDistancesScalar,
    RadialFirstReachingScalar,
    ArrayFirstAboveScalar,
    ArrayMaxScalar,
    SyncDeltasScalar,
};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelOps* InitialOps() {
  if (ScalarKernelsForced()) {
    return &kScalarOps;
  }
  if (const KernelOps* ops = KernelsFor(DetectBestBackend())) {
    return ops;
  }
  return &kScalarOps;
}

std::atomic<const KernelOps*>& ActiveSlot() {
  // Function-local static: thread-safe one-time init on first dispatch.
  static std::atomic<const KernelOps*> slot{InitialOps()};
  return slot;
}

}  // namespace

const KernelOps& ScalarKernels() { return kScalarOps; }

const KernelOps* KernelsFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarOps;
    case Backend::kAvx2:
      return CpuHasAvx2() ? Avx2KernelOps() : nullptr;
    case Backend::kNeon:
      return NeonKernelOps();
  }
  return nullptr;
}

Backend DetectBestBackend() {
#if defined(__aarch64__)
  return Backend::kNeon;
#else
  if (CpuHasAvx2() && Avx2KernelOps() != nullptr) {
    return Backend::kAvx2;
  }
  return Backend::kScalar;
#endif
}

bool ScalarKernelsForced() {
  static const bool forced = [] {
    const char* value = std::getenv("STCOMP_FORCE_SCALAR_KERNELS");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
  }();
  return forced;
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

const KernelOps& KernelDispatch::Get() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

Backend KernelDispatch::Active() { return Get().backend; }

Backend KernelDispatch::SetForTest(Backend backend) {
  const KernelOps* ops = KernelsFor(backend);
  STCOMP_CHECK(ops != nullptr);
  const KernelOps* previous =
      ActiveSlot().exchange(ops, std::memory_order_relaxed);
  return previous->backend;
}

void SegmentSpeeds(const double* x, const double* y, const double* t, size_t n,
                   double* out) {
  for (size_t i = 0; i + 1 < n; ++i) {
    const double dt = t[i + 1] - t[i];
    out[i] = Norm2(x[i + 1] - x[i], y[i + 1] - y[i]) / dt;
  }
}

void SpeedJumps(const double* speeds, size_t n_points, double* out) {
  if (n_points == 0) {
    return;
  }
  out[0] = 0.0;
  for (size_t i = 1; i + 1 < n_points; ++i) {
    out[i] = std::abs(speeds[i] - speeds[i - 1]);
  }
  if (n_points > 1) {
    out[n_points - 1] = 0.0;
  }
}

}  // namespace stcomp::kernels
