// NEON (aarch64) backend: 2-wide double lanes, mirroring the scalar
// helpers operation-for-operation (see kernels.h for the bit-exactness
// contract; -ffp-contract=off keeps the scalar reference FMA-free so the
// mul+add intrinsic sequences here match it bit-for-bit). AdvSIMD double
// support is baseline on aarch64, so no extra compile flags are needed.

#include "stcomp/geom/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace stcomp::kernels {

namespace {

inline float64x2_t Norm2V(float64x2_t dx, float64x2_t dy) {
  return vsqrtq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
}

struct SedConsts {
  bool degenerate;
  float64x2_t ax, ay, at, abx, aby, dt;
};

inline SedConsts MakeSedConsts(const SedSegment& seg) {
  SedConsts c;
  const double dt = seg.bt - seg.at;
  c.degenerate = !(dt > 0.0);
  c.ax = vdupq_n_f64(seg.ax);
  c.ay = vdupq_n_f64(seg.ay);
  c.at = vdupq_n_f64(seg.at);
  c.abx = vdupq_n_f64(seg.bx - seg.ax);
  c.aby = vdupq_n_f64(seg.by - seg.ay);
  c.dt = vdupq_n_f64(dt);
  return c;
}

inline float64x2_t Sed2(const SedConsts& c, float64x2_t xv, float64x2_t yv,
                        float64x2_t tv) {
  const float64x2_t u = vdivq_f64(vsubq_f64(tv, c.at), c.dt);
  const float64x2_t ix = vaddq_f64(c.ax, vmulq_f64(c.abx, u));
  const float64x2_t iy = vaddq_f64(c.ay, vmulq_f64(c.aby, u));
  return Norm2V(vsubq_f64(xv, ix), vsubq_f64(yv, iy));
}

inline float64x2_t Radial2(float64x2_t xv, float64x2_t yv, float64x2_t ax,
                           float64x2_t ay) {
  return Norm2V(vsubq_f64(xv, ax), vsubq_f64(yv, ay));
}

// Lane index (0 or 1) of the first set comparison lane, or -1. vcgtq/vcgeq
// on NaN input yield all-zero lanes, matching scalar > / >= on NaN.
inline int FirstLane(uint64x2_t mask) {
  if (vgetq_lane_u64(mask, 0) != 0) {
    return 0;
  }
  if (vgetq_lane_u64(mask, 1) != 0) {
    return 1;
  }
  return -1;
}

inline MaxResult ReduceMax(float64x2_t bestv, float64x2_t besti) {
  const double v0 = vgetq_lane_f64(bestv, 0);
  const double v1 = vgetq_lane_f64(bestv, 1);
  const std::ptrdiff_t i0 =
      static_cast<std::ptrdiff_t>(vgetq_lane_f64(besti, 0));
  const std::ptrdiff_t i1 =
      static_cast<std::ptrdiff_t>(vgetq_lane_f64(besti, 1));
  MaxResult best{i0, v0};
  if (v1 > best.value || (v1 == best.value && i1 < best.index)) {
    best = {i1, v1};
  }
  return best;
}

// ---- radial ----------------------------------------------------------

void RadialDistancesNeon(const double* x, const double* y, size_t n,
                         double ax, double ay, double* out) {
  const float64x2_t axv = vdupq_n_f64(ax);
  const float64x2_t ayv = vdupq_n_f64(ay);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, Radial2(vld1q_f64(x + i), vld1q_f64(y + i), axv, ayv));
  }
  for (; i < n; ++i) {
    out[i] = RadialDistancePoint(x[i], y[i], ax, ay);
  }
}

std::ptrdiff_t RadialFirstReachingNeon(const double* x, const double* y,
                                       size_t n, double ax, double ay,
                                       double threshold) {
  const float64x2_t axv = vdupq_n_f64(ax);
  const float64x2_t ayv = vdupq_n_f64(ay);
  const float64x2_t thr = vdupq_n_f64(threshold);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d =
        Radial2(vld1q_f64(x + i), vld1q_f64(y + i), axv, ayv);
    const int lane = FirstLane(vcgeq_f64(d, thr));
    if (lane >= 0) {
      return static_cast<std::ptrdiff_t>(i) + lane;
    }
  }
  for (; i < n; ++i) {
    if (RadialDistancePoint(x[i], y[i], ax, ay) >= threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

// ---- sed -------------------------------------------------------------

void SedDistancesNeon(const double* x, const double* y, const double* t,
                      size_t n, const SedSegment& seg, double* out) {
  const SedConsts c = MakeSedConsts(seg);
  if (c.degenerate) {
    RadialDistancesNeon(x, y, n, seg.ax, seg.ay, out);
    return;
  }
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, Sed2(c, vld1q_f64(x + i), vld1q_f64(y + i),
                            vld1q_f64(t + i)));
  }
  for (; i < n; ++i) {
    out[i] = SedDistancePoint(x[i], y[i], t[i], seg);
  }
}

std::ptrdiff_t SedFirstAboveNeon(const double* x, const double* y,
                                 const double* t, size_t n,
                                 const SedSegment& seg, double threshold) {
  const SedConsts c = MakeSedConsts(seg);
  const float64x2_t thr = vdupq_n_f64(threshold);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    const float64x2_t yv = vld1q_f64(y + i);
    const float64x2_t d = c.degenerate
                              ? Radial2(xv, yv, c.ax, c.ay)
                              : Sed2(c, xv, yv, vld1q_f64(t + i));
    const int lane = FirstLane(vcgtq_f64(d, thr));
    if (lane >= 0) {
      return static_cast<std::ptrdiff_t>(i) + lane;
    }
  }
  for (; i < n; ++i) {
    if (SedDistancePoint(x[i], y[i], t[i], seg) > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult SedMaxNeon(const double* x, const double* y, const double* t,
                     size_t n, const SedSegment& seg) {
  if (n == 0) {
    return {-1, -1.0};
  }
  const SedConsts c = MakeSedConsts(seg);
  MaxResult best{0, -1.0};
  size_t i = 0;
  if (n >= 2) {
    float64x2_t bestv = vdupq_n_f64(-1.0);
    const double init_idx[2] = {0.0, 1.0};
    float64x2_t besti = vld1q_f64(init_idx);
    float64x2_t curi = besti;
    const float64x2_t two = vdupq_n_f64(2.0);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t xv = vld1q_f64(x + i);
      const float64x2_t yv = vld1q_f64(y + i);
      const float64x2_t d = c.degenerate
                                ? Radial2(xv, yv, c.ax, c.ay)
                                : Sed2(c, xv, yv, vld1q_f64(t + i));
      const uint64x2_t gt = vcgtq_f64(d, bestv);
      bestv = vbslq_f64(gt, d, bestv);
      besti = vbslq_f64(gt, curi, besti);
      curi = vaddq_f64(curi, two);
    }
    best = ReduceMax(bestv, besti);
  }
  for (; i < n; ++i) {
    const double d = SedDistancePoint(x[i], y[i], t[i], seg);
    if (d > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), d};
    }
  }
  return best;
}

// ---- perpendicular ---------------------------------------------------

struct PerpConsts {
  bool degenerate;
  float64x2_t abx, aby, len, ax, ay;
};

inline PerpConsts MakePerpConsts(const LineSegment& seg) {
  PerpConsts c;
  const double abx = seg.bx - seg.ax;
  const double aby = seg.by - seg.ay;
  const double len = Norm2(abx, aby);
  c.degenerate = (len == 0.0);
  c.abx = vdupq_n_f64(abx);
  c.aby = vdupq_n_f64(aby);
  c.len = vdupq_n_f64(len);
  c.ax = vdupq_n_f64(seg.ax);
  c.ay = vdupq_n_f64(seg.ay);
  return c;
}

inline float64x2_t Perp2(const PerpConsts& c, float64x2_t xv, float64x2_t yv) {
  const float64x2_t cross =
      vsubq_f64(vmulq_f64(c.abx, vsubq_f64(yv, c.ay)),
                vmulq_f64(c.aby, vsubq_f64(xv, c.ax)));
  return vdivq_f64(vabsq_f64(cross), c.len);
}

void PerpDistancesNeon(const double* x, const double* y, size_t n,
                       const LineSegment& seg, double* out) {
  const PerpConsts c = MakePerpConsts(seg);
  if (c.degenerate) {
    RadialDistancesNeon(x, y, n, seg.ax, seg.ay, out);
    return;
  }
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, Perp2(c, vld1q_f64(x + i), vld1q_f64(y + i)));
  }
  for (; i < n; ++i) {
    out[i] = PerpDistancePoint(x[i], y[i], seg);
  }
}

std::ptrdiff_t PerpFirstAboveNeon(const double* x, const double* y, size_t n,
                                  const LineSegment& seg, double threshold) {
  const PerpConsts c = MakePerpConsts(seg);
  const float64x2_t thr = vdupq_n_f64(threshold);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    const float64x2_t yv = vld1q_f64(y + i);
    const float64x2_t d =
        c.degenerate ? Radial2(xv, yv, c.ax, c.ay) : Perp2(c, xv, yv);
    const int lane = FirstLane(vcgtq_f64(d, thr));
    if (lane >= 0) {
      return static_cast<std::ptrdiff_t>(i) + lane;
    }
  }
  for (; i < n; ++i) {
    if (PerpDistancePoint(x[i], y[i], seg) > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult PerpMaxNeon(const double* x, const double* y, size_t n,
                      const LineSegment& seg) {
  if (n == 0) {
    return {-1, -1.0};
  }
  const PerpConsts c = MakePerpConsts(seg);
  MaxResult best{0, -1.0};
  size_t i = 0;
  if (n >= 2) {
    float64x2_t bestv = vdupq_n_f64(-1.0);
    const double init_idx[2] = {0.0, 1.0};
    float64x2_t besti = vld1q_f64(init_idx);
    float64x2_t curi = besti;
    const float64x2_t two = vdupq_n_f64(2.0);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t xv = vld1q_f64(x + i);
      const float64x2_t yv = vld1q_f64(y + i);
      const float64x2_t d =
          c.degenerate ? Radial2(xv, yv, c.ax, c.ay) : Perp2(c, xv, yv);
      const uint64x2_t gt = vcgtq_f64(d, bestv);
      bestv = vbslq_f64(gt, d, bestv);
      besti = vbslq_f64(gt, curi, besti);
      curi = vaddq_f64(curi, two);
    }
    best = ReduceMax(bestv, besti);
  }
  for (; i < n; ++i) {
    const double d = PerpDistancePoint(x[i], y[i], seg);
    if (d > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), d};
    }
  }
  return best;
}

// ---- plain arrays ----------------------------------------------------

std::ptrdiff_t ArrayFirstAboveNeon(const double* v, size_t n,
                                   double threshold) {
  const float64x2_t thr = vdupq_n_f64(threshold);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int lane = FirstLane(vcgtq_f64(vld1q_f64(v + i), thr));
    if (lane >= 0) {
      return static_cast<std::ptrdiff_t>(i) + lane;
    }
  }
  for (; i < n; ++i) {
    if (v[i] > threshold) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

MaxResult ArrayMaxNeon(const double* v, size_t n) {
  if (n == 0) {
    return {-1, -1.0};
  }
  MaxResult best{0, -1.0};
  size_t i = 0;
  if (n >= 2) {
    float64x2_t bestv = vdupq_n_f64(-1.0);
    const double init_idx[2] = {0.0, 1.0};
    float64x2_t besti = vld1q_f64(init_idx);
    float64x2_t curi = besti;
    const float64x2_t two = vdupq_n_f64(2.0);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t d = vld1q_f64(v + i);
      const uint64x2_t gt = vcgtq_f64(d, bestv);
      bestv = vbslq_f64(gt, d, bestv);
      besti = vbslq_f64(gt, curi, besti);
      curi = vaddq_f64(curi, two);
    }
    best = ReduceMax(bestv, besti);
  }
  for (; i < n; ++i) {
    if (v[i] > best.value) {
      best = {static_cast<std::ptrdiff_t>(i), v[i]};
    }
  }
  return best;
}

// ---- error-module deltas ---------------------------------------------

void SyncDeltasNeon(const double* x, const double* y, const double* t,
                    const double* xp, const double* yp, size_t n,
                    const SedSegment& seg, double* dx, double* dy) {
  const SedConsts c = MakeSedConsts(seg);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    const float64x2_t yv = vld1q_f64(y + i);
    const float64x2_t xpv = vld1q_f64(xp + i);
    const float64x2_t ypv = vld1q_f64(yp + i);
    const float64x2_t ox = vaddq_f64(xpv, vsubq_f64(xv, xpv));
    const float64x2_t oy = vaddq_f64(ypv, vsubq_f64(yv, ypv));
    const float64x2_t u =
        vdivq_f64(vsubq_f64(vld1q_f64(t + i), c.at), c.dt);
    const float64x2_t px = vaddq_f64(c.ax, vmulq_f64(c.abx, u));
    const float64x2_t py = vaddq_f64(c.ay, vmulq_f64(c.aby, u));
    vst1q_f64(dx + i, vsubq_f64(ox, px));
    vst1q_f64(dy + i, vsubq_f64(oy, py));
  }
  for (; i < n; ++i) {
    SyncDeltaPoint(x[i], y[i], t[i], xp[i], yp[i], seg, &dx[i], &dy[i]);
  }
}

constexpr KernelOps kNeonOps = {
    Backend::kNeon,
    "neon",
    SedDistancesNeon,
    SedFirstAboveNeon,
    SedMaxNeon,
    PerpDistancesNeon,
    PerpFirstAboveNeon,
    PerpMaxNeon,
    RadialDistancesNeon,
    RadialFirstReachingNeon,
    ArrayFirstAboveNeon,
    ArrayMaxNeon,
    SyncDeltasNeon,
};

}  // namespace

const KernelOps* NeonKernelOps() { return &kNeonOps; }

}  // namespace stcomp::kernels

#else  // !defined(__aarch64__)

namespace stcomp::kernels {
const KernelOps* NeonKernelOps() { return nullptr; }
}  // namespace stcomp::kernels

#endif  // defined(__aarch64__)
