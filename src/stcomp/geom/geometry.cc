#include "stcomp/geom/geometry.h"

#include <algorithm>

#include "stcomp/geom/kernels.h"

namespace stcomp {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b) {
  // Routed through the kernel layer's per-point helper so this AoS path is
  // bit-identical to the batched perp kernels (DESIGN.md §14). Note the
  // helper's norm is sqrt(dx*dx + dy*dy), not std::hypot.
  return kernels::PerpDistancePoint(p.x, p.y, {a.x, a.y, b.x, b.y});
}

double ProjectOntoSegment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double denom = ab.SquaredNorm();
  if (denom == 0.0) {
    return 0.0;
  }
  return std::clamp((p - a).Dot(ab) / denom, 0.0, 1.0);
}

double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b) {
  const double u = ProjectOntoSegment(p, a, b);
  return Distance(p, Lerp(a, b, u));
}

double InteriorAngle(Vec2 a, Vec2 b, Vec2 c) {
  const Vec2 u = a - b;
  const Vec2 v = c - b;
  const double nu = u.Norm();
  const double nv = v.Norm();
  if (nu == 0.0 || nv == 0.0) {
    return kPi;
  }
  const double cosine = std::clamp(u.Dot(v) / (nu * nv), -1.0, 1.0);
  return std::acos(cosine);
}

double HeadingChange(Vec2 a, Vec2 b, Vec2 c) {
  return kPi - InteriorAngle(a, b, c);
}

double Heading(Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  if (d.x == 0.0 && d.y == 0.0) {
    return 0.0;
  }
  return std::atan2(d.y, d.x);
}

double PointToBoxDistance(Vec2 p, const BoundingBox& box) {
  const double dx = std::max({box.min.x - p.x, 0.0, p.x - box.max.x});
  const double dy = std::max({box.min.y - p.y, 0.0, p.y - box.max.y});
  return std::hypot(dx, dy);
}

namespace {

// Sign of the turn a->b->c: +1 counterclockwise, -1 clockwise, 0 collinear.
int Orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double cross = (b - a).Cross(c - a);
  if (cross > 0.0) {
    return 1;
  }
  if (cross < 0.0) {
    return -1;
  }
  return 0;
}

// Whether `p` (known collinear with [a, b]) lies within the segment's
// coordinate ranges.
bool CollinearOnSegment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const int o1 = Orientation(a, b, c);
  const int o2 = Orientation(a, b, d);
  const int o3 = Orientation(c, d, a);
  const int o4 = Orientation(c, d, b);
  if (o1 != o2 && o3 != o4) {
    return true;
  }
  if (o1 == 0 && CollinearOnSegment(a, b, c)) {
    return true;
  }
  if (o2 == 0 && CollinearOnSegment(a, b, d)) {
    return true;
  }
  if (o3 == 0 && CollinearOnSegment(c, d, a)) {
    return true;
  }
  if (o4 == 0 && CollinearOnSegment(c, d, b)) {
    return true;
  }
  return false;
}

double SegmentToSegmentDistance(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  if (SegmentsIntersect(a, b, c, d)) {
    return 0.0;
  }
  // Disjoint convex sets: the minimum is attained at an endpoint of one
  // segment against the other.
  return std::min(
      std::min(PointToSegmentDistance(c, a, b), PointToSegmentDistance(d, a, b)),
      std::min(PointToSegmentDistance(a, c, d),
               PointToSegmentDistance(b, c, d)));
}

bool SegmentIntersectsBox(Vec2 a, Vec2 b, const BoundingBox& box) {
  if (box.Contains(a) || box.Contains(b)) {
    return true;
  }
  const Vec2 c00 = box.min;
  const Vec2 c10{box.max.x, box.min.y};
  const Vec2 c11 = box.max;
  const Vec2 c01{box.min.x, box.max.y};
  return SegmentsIntersect(a, b, c00, c10) || SegmentsIntersect(a, b, c10, c11) ||
         SegmentsIntersect(a, b, c11, c01) || SegmentsIntersect(a, b, c01, c00);
}

double SegmentToBoxDistance(Vec2 a, Vec2 b, const BoundingBox& box) {
  if (SegmentIntersectsBox(a, b, box)) {
    return 0.0;
  }
  const Vec2 c00 = box.min;
  const Vec2 c10{box.max.x, box.min.y};
  const Vec2 c11 = box.max;
  const Vec2 c01{box.min.x, box.max.y};
  return std::min(std::min(SegmentToSegmentDistance(a, b, c00, c10),
                           SegmentToSegmentDistance(a, b, c10, c11)),
                  std::min(SegmentToSegmentDistance(a, b, c11, c01),
                           SegmentToSegmentDistance(a, b, c01, c00)));
}

}  // namespace stcomp
