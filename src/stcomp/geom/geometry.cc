#include "stcomp/geom/geometry.h"

#include <algorithm>

#include "stcomp/geom/kernels.h"

namespace stcomp {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b) {
  // Routed through the kernel layer's per-point helper so this AoS path is
  // bit-identical to the batched perp kernels (DESIGN.md §14). Note the
  // helper's norm is sqrt(dx*dx + dy*dy), not std::hypot.
  return kernels::PerpDistancePoint(p.x, p.y, {a.x, a.y, b.x, b.y});
}

double ProjectOntoSegment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double denom = ab.SquaredNorm();
  if (denom == 0.0) {
    return 0.0;
  }
  return std::clamp((p - a).Dot(ab) / denom, 0.0, 1.0);
}

double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b) {
  const double u = ProjectOntoSegment(p, a, b);
  return Distance(p, Lerp(a, b, u));
}

double InteriorAngle(Vec2 a, Vec2 b, Vec2 c) {
  const Vec2 u = a - b;
  const Vec2 v = c - b;
  const double nu = u.Norm();
  const double nv = v.Norm();
  if (nu == 0.0 || nv == 0.0) {
    return kPi;
  }
  const double cosine = std::clamp(u.Dot(v) / (nu * nv), -1.0, 1.0);
  return std::acos(cosine);
}

double HeadingChange(Vec2 a, Vec2 b, Vec2 c) {
  return kPi - InteriorAngle(a, b, c);
}

double Heading(Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  if (d.x == 0.0 && d.y == 0.0) {
    return 0.0;
  }
  return std::atan2(d.y, d.x);
}

}  // namespace stcomp
