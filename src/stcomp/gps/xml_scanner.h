// A minimal, dependency-free XML reader — just enough for well-formed GPX
// documents: elements, attributes, character data, comments, declarations
// and CDATA. No namespaces resolution (prefixes are kept verbatim), no
// DTD/entities beyond the five predefined ones.

#ifndef STCOMP_GPS_XML_SCANNER_H_
#define STCOMP_GPS_XML_SCANNER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"

namespace stcomp {

struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  // Concatenated character data directly inside this element.
  std::string text;

  // First attribute value by name, or nullptr.
  const std::string* FindAttribute(std::string_view attribute_name) const;
  // First child element by name, or nullptr.
  const XmlElement* FindChild(std::string_view child_name) const;
  // All child elements by name.
  std::vector<const XmlElement*> FindChildren(std::string_view child_name)
      const;
};

// Parses a whole document; returns its root element.
Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view document);

// Escapes &, <, >, ", ' for emission.
std::string XmlEscape(std::string_view text);

}  // namespace stcomp

#endif  // STCOMP_GPS_XML_SCANNER_H_
