#include "stcomp/gps/xml_scanner.h"

#include <cctype>

#include "stcomp/common/strings.h"

namespace stcomp {

namespace {

// Hand-rolled recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view document) : input_(document) {}

  Result<std::unique_ptr<XmlElement>> ParseDocument() {
    SkipProlog();
    if (!SkipTo('<')) {
      return InvalidArgumentError("XML: no root element");
    }
    STCOMP_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement());
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  // Positions the cursor at the next `c`, returning false at EOF.
  bool SkipTo(char c) {
    while (!AtEnd() && Peek() != c) {
      ++pos_;
    }
    return !AtEnd();
  }

  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (Match("<?")) {
        while (!AtEnd() && !Match("?>")) {
          ++pos_;
        }
      } else if (Match("<!--")) {
        while (!AtEnd() && !Match("-->")) {
          ++pos_;
        }
      } else if (Match("<!")) {  // DOCTYPE etc.
        while (!AtEnd() && Peek() != '>') {
          ++pos_;
        }
        if (!AtEnd()) {
          ++pos_;
        }
      } else {
        return;
      }
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.';
  }

  std::string ParseName() {
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) {
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::string_view rest = raw.substr(i);
      if (StartsWith(rest, "&amp;")) {
        out += '&';
        i += 4;
      } else if (StartsWith(rest, "&lt;")) {
        out += '<';
        i += 3;
      } else if (StartsWith(rest, "&gt;")) {
        out += '>';
        i += 3;
      } else if (StartsWith(rest, "&quot;")) {
        out += '"';
        i += 5;
      } else if (StartsWith(rest, "&apos;")) {
        out += '\'';
        i += 5;
      } else {
        out += raw[i];  // Unknown entity: keep verbatim.
      }
    }
    return out;
  }

  Result<std::pair<std::string, std::string>> ParseAttribute() {
    const std::string name = ParseName();
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') {
      return InvalidArgumentError("XML: attribute without '='");
    }
    ++pos_;
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return InvalidArgumentError("XML: attribute value must be quoted");
    }
    const char quote = Peek();
    ++pos_;
    const size_t start = pos_;
    if (!SkipTo(quote)) {
      return InvalidArgumentError("XML: unterminated attribute value");
    }
    std::string value = DecodeEntities(input_.substr(start, pos_ - start));
    ++pos_;  // Closing quote.
    return std::make_pair(name, std::move(value));
  }

  // Cursor sits on '<' of the start tag.
  Result<std::unique_ptr<XmlElement>> ParseElement() {
    if (depth_ > 256) {
      return InvalidArgumentError("XML: nesting too deep");
    }
    ++pos_;  // '<'
    auto element = std::make_unique<XmlElement>();
    element->name = ParseName();
    if (element->name.empty()) {
      return InvalidArgumentError("XML: empty element name");
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd()) {
        return InvalidArgumentError("XML: unterminated start tag <" +
                                    element->name);
      }
      if (Match("/>")) {
        return element;
      }
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      STCOMP_ASSIGN_OR_RETURN(auto attribute, ParseAttribute());
      element->attributes.push_back(std::move(attribute));
    }
    // Content.
    while (true) {
      const size_t text_start = pos_;
      if (!SkipTo('<')) {
        return InvalidArgumentError("XML: unterminated element <" +
                                    element->name);
      }
      element->text +=
          DecodeEntities(input_.substr(text_start, pos_ - text_start));
      if (Match("<!--")) {
        while (!AtEnd() && !Match("-->")) {
          ++pos_;
        }
        continue;
      }
      if (Match("<![CDATA[")) {
        const size_t cdata_start = pos_;
        while (!AtEnd() && !Match("]]>")) {
          ++pos_;
        }
        element->text += input_.substr(cdata_start, pos_ - 3 - cdata_start);
        continue;
      }
      if (input_.substr(pos_, 2) == "</") {
        pos_ += 2;
        const std::string closing = ParseName();
        if (closing != element->name) {
          return InvalidArgumentError("XML: mismatched </" + closing +
                                      "> for <" + element->name + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') {
          return InvalidArgumentError("XML: malformed end tag");
        }
        ++pos_;
        // Surrounding whitespace in mixed content is never significant for
        // our use; trim it.
        element->text = std::string(StripWhitespace(element->text));
        return element;
      }
      ++depth_;
      STCOMP_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                              ParseElement());
      --depth_;
      element->children.push_back(std::move(child));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const std::string* XmlElement::FindAttribute(
    std::string_view attribute_name) const {
  for (const auto& [attr_name, attr_value] : attributes) {
    if (attr_name == attribute_name) {
      return &attr_value;
    }
  }
  return nullptr;
}

const XmlElement* XmlElement::FindChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) {
      return child.get();
    }
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::FindChildren(
    std::string_view child_name) const {
  std::vector<const XmlElement*> matches;
  for (const auto& child : children) {
    if (child->name == child_name) {
      matches.push_back(child.get());
    }
  }
  return matches;
}

Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view document) {
  Parser parser(document);
  return parser.ParseDocument();
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace stcomp
