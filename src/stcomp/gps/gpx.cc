#include "stcomp/gps/gpx.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "stcomp/common/strings.h"
#include "stcomp/gps/civil_time.h"
#include "stcomp/gps/xml_scanner.h"

namespace stcomp {

Result<double> ParseIso8601(std::string_view text) {
  const std::string_view stripped = StripWhitespace(text);
  // Minimal shape: YYYY-MM-DDThh:mm:ss[.fff][Z|+hh:mm|-hh:mm]
  if (stripped.size() < 19 || stripped[4] != '-' || stripped[7] != '-' ||
      (stripped[10] != 'T' && stripped[10] != ' ') || stripped[13] != ':' ||
      stripped[16] != ':') {
    return InvalidArgumentError("bad ISO 8601 timestamp '" +
                                std::string(stripped) + "'");
  }
  STCOMP_ASSIGN_OR_RETURN(const long long year, ParseInt(stripped.substr(0, 4)));
  STCOMP_ASSIGN_OR_RETURN(const long long month,
                          ParseInt(stripped.substr(5, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long day, ParseInt(stripped.substr(8, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long hour,
                          ParseInt(stripped.substr(11, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long minute,
                          ParseInt(stripped.substr(14, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long second,
                          ParseInt(stripped.substr(17, 2)));
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return InvalidArgumentError("out-of-range ISO 8601 field in '" +
                                std::string(stripped) + "'");
  }
  double fraction = 0.0;
  size_t pos = 19;
  if (pos < stripped.size() && stripped[pos] == '.') {
    size_t end = pos + 1;
    while (end < stripped.size() &&
           std::isdigit(static_cast<unsigned char>(stripped[end]))) {
      ++end;
    }
    STCOMP_ASSIGN_OR_RETURN(fraction,
                            ParseDouble("0" + std::string(stripped.substr(
                                                  pos, end - pos))));
    pos = end;
  }
  long long offset_seconds = 0;
  if (pos < stripped.size()) {
    const std::string_view zone = stripped.substr(pos);
    if (zone == "Z" || zone == "z") {
      offset_seconds = 0;
    } else if ((zone[0] == '+' || zone[0] == '-') && zone.size() == 6 &&
               zone[3] == ':') {
      STCOMP_ASSIGN_OR_RETURN(const long long oh, ParseInt(zone.substr(1, 2)));
      STCOMP_ASSIGN_OR_RETURN(const long long om, ParseInt(zone.substr(4, 2)));
      offset_seconds = (oh * 3600 + om * 60) * (zone[0] == '+' ? 1 : -1);
    } else {
      return InvalidArgumentError("bad ISO 8601 zone suffix '" +
                                  std::string(zone) + "'");
    }
  }
  const long long days =
      DaysFromCivil(year, static_cast<unsigned>(month),
                    static_cast<unsigned>(day));
  return static_cast<double>(days * 86400 + hour * 3600 + minute * 60 +
                             second - offset_seconds) +
         fraction;
}

std::string FormatIso8601(double unix_seconds, int decimals) {
  const long long total = static_cast<long long>(std::floor(unix_seconds));
  const double fraction = unix_seconds - static_cast<double>(total);
  long long days = total / 86400;
  long long rem = total % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  long long year;
  unsigned month, day;
  CivilFromDays(days, &year, &month, &day);
  std::string out =
      StrFormat("%04lld-%02u-%02uT%02lld:%02lld:%02lld", year, month, day,
                rem / 3600, (rem % 3600) / 60, rem % 60);
  if (decimals > 0) {
    // "0.1234" -> ".1234". Clamp below 1 - 10^-decimals so printf rounding
    // can never carry into the integer second.
    const double clamped =
        std::min(fraction, 1.0 - std::pow(10.0, -decimals));
    const std::string frac = StrFormat("%.*f", decimals, clamped);
    out += frac.substr(1);
  }
  out += 'Z';
  return out;
}

Result<GpxTrack> ParseGpx(std::string_view document) {
  STCOMP_ASSIGN_OR_RETURN(const std::unique_ptr<XmlElement> root,
                          ParseXml(document));
  if (root->name != "gpx") {
    return InvalidArgumentError("root element is <" + root->name +
                                ">, not <gpx>");
  }
  std::vector<TimedPoint> raw;
  std::vector<LatLon> fixes;
  for (const XmlElement* trk : root->FindChildren("trk")) {
    for (const XmlElement* trkseg : trk->FindChildren("trkseg")) {
      for (const XmlElement* trkpt : trkseg->FindChildren("trkpt")) {
        const std::string* lat = trkpt->FindAttribute("lat");
        const std::string* lon = trkpt->FindAttribute("lon");
        if (lat == nullptr || lon == nullptr) {
          return InvalidArgumentError("<trkpt> without lat/lon");
        }
        const XmlElement* time = trkpt->FindChild("time");
        if (time == nullptr) {
          return InvalidArgumentError(
              "<trkpt> without <time>; trajectories need timestamps");
        }
        STCOMP_ASSIGN_OR_RETURN(const double lat_deg, ParseDouble(*lat));
        STCOMP_ASSIGN_OR_RETURN(const double lon_deg, ParseDouble(*lon));
        STCOMP_ASSIGN_OR_RETURN(const double t, ParseIso8601(time->text));
        raw.emplace_back(t, 0.0, 0.0);
        fixes.push_back(LatLon{lat_deg, lon_deg});
      }
    }
  }
  if (raw.empty()) {
    return InvalidArgumentError("GPX document contains no track points");
  }
  STCOMP_ASSIGN_OR_RETURN(const LocalEnuProjection projection,
                          LocalEnuProjection::Create(fixes.front()));
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i].position = projection.Forward(fixes[i]);
  }
  GpxTrack track;
  track.origin = fixes.front();
  STCOMP_ASSIGN_OR_RETURN(track.trajectory,
                          Trajectory::FromPoints(std::move(raw)));
  const XmlElement* trk = root->FindChild("trk");
  if (trk != nullptr) {
    const XmlElement* trk_name = trk->FindChild("name");
    if (trk_name != nullptr) {
      track.trajectory.set_name(trk_name->text);
    }
  }
  return track;
}

std::string WriteGpx(const Trajectory& trajectory, LatLon origin) {
  const Result<LocalEnuProjection> projection =
      LocalEnuProjection::Create(origin);
  std::string out =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<gpx version=\"1.1\" creator=\"stcomp\" "
      "xmlns=\"http://www.topografix.com/GPX/1/1\">\n  <trk>\n";
  if (!trajectory.name().empty()) {
    out += "    <name>" + XmlEscape(trajectory.name()) + "</name>\n";
  }
  out += "    <trkseg>\n";
  for (const TimedPoint& point : trajectory.points()) {
    const LatLon fix = projection.value().Inverse(point.position);
    out += StrFormat(
        "      <trkpt lat=\"%.8f\" lon=\"%.8f\"><time>%s</time></trkpt>\n",
        fix.lat_deg, fix.lon_deg, FormatIso8601(point.t, 3).c_str());
  }
  out += "    </trkseg>\n  </trk>\n</gpx>\n";
  return out;
}

Result<GpxTrack> ReadGpxFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseGpx(buffer.str());
}

Status WriteGpxFile(const Trajectory& trajectory, LatLon origin,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return IoError("cannot open " + path + " for writing");
  }
  file << WriteGpx(trajectory, origin);
  if (!file) {
    return IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace stcomp
