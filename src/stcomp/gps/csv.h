// CSV trajectory I/O. Two schemas are accepted, detected from the header:
//   t,x,y         — seconds and projected metres (the library's own dump)
//   t,lat,lon     — seconds and WGS84 degrees (projected to a local frame
//                   anchored at the first fix)
// Lines starting with '#' and blank lines are skipped.

#ifndef STCOMP_GPS_CSV_H_
#define STCOMP_GPS_CSV_H_

#include <string>
#include <string_view>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

// Parses CSV text into a trajectory (sorted by time; duplicate timestamps
// rejected with kInvalidArgument).
Result<Trajectory> ParseCsvTrajectory(std::string_view text);

// Serialises as "t,x,y" with full double precision.
std::string WriteCsvTrajectory(const Trajectory& trajectory);

// File wrappers.
Result<Trajectory> ReadCsvTrajectoryFile(const std::string& path);
Status WriteCsvTrajectoryFile(const Trajectory& trajectory,
                              const std::string& path);

}  // namespace stcomp

#endif  // STCOMP_GPS_CSV_H_
