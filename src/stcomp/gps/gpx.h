// GPX 1.1 track I/O (the de-facto interchange format for consumer GPS
// traces). Reading concatenates all <trkseg> segments of all <trk> tracks;
// timestamps come from <time> children in ISO 8601 UTC.

#ifndef STCOMP_GPS_GPX_H_
#define STCOMP_GPS_GPX_H_

#include <string>
#include <string_view>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/gps/projection.h"

namespace stcomp {

// Seconds since the Unix epoch for an ISO 8601 UTC timestamp
// ("2004-03-14T09:26:53Z" or with fractional seconds / "+00:00" suffix).
Result<double> ParseIso8601(std::string_view text);

// Formats seconds since the Unix epoch as "YYYY-MM-DDThh:mm:ssZ", with
// `decimals` fractional-second digits (0-9) when non-zero. Valid for
// years 1-9999.
std::string FormatIso8601(double unix_seconds, int decimals = 0);

// Parses a GPX document. Fixes are projected into a local ENU frame
// anchored at the first track point; the anchor is returned so callers can
// round-trip. Track points without <time> are rejected.
struct GpxTrack {
  Trajectory trajectory;
  LatLon origin;  // Anchor of the local frame.
};
Result<GpxTrack> ParseGpx(std::string_view document);

// Emits a single-track GPX 1.1 document; positions are unprojected through
// `origin`. Timestamps are interpreted as Unix seconds.
std::string WriteGpx(const Trajectory& trajectory, LatLon origin);

Result<GpxTrack> ReadGpxFile(const std::string& path);
Status WriteGpxFile(const Trajectory& trajectory, LatLon origin,
                    const std::string& path);

}  // namespace stcomp

#endif  // STCOMP_GPS_GPX_H_
