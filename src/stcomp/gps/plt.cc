#include "stcomp/gps/plt.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "stcomp/common/strings.h"
#include "stcomp/gps/projection.h"

namespace stcomp {

Result<Trajectory> ParsePlt(std::string_view text) {
  const std::vector<std::string_view> lines = Split(text, '\n');
  std::vector<TimedPoint> raw;
  std::vector<LatLon> fixes;
  size_t data_lines_seen = 0;
  size_t line_number = 0;
  for (std::string_view line : lines) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) {
      continue;
    }
    if (line_number <= 6) {
      continue;  // Fixed-size preamble.
    }
    const std::vector<std::string_view> fields = Split(stripped, ',');
    if (fields.size() < 5) {
      return InvalidArgumentError(
          StrFormat("PLT line %zu: expected >= 5 fields", line_number));
    }
    STCOMP_ASSIGN_OR_RETURN(const double lat, ParseDouble(fields[0]));
    STCOMP_ASSIGN_OR_RETURN(const double lon, ParseDouble(fields[1]));
    STCOMP_ASSIGN_OR_RETURN(const double days, ParseDouble(fields[4]));
    const double t = days * 86400.0;
    ++data_lines_seen;
    if (!raw.empty() && t <= raw.back().t) {
      continue;  // Drop out-of-order fixes rather than failing whole files.
    }
    raw.emplace_back(t, 0.0, 0.0);
    fixes.push_back(LatLon{lat, lon});
  }
  if (raw.empty()) {
    return InvalidArgumentError("PLT file contains no fixes");
  }
  STCOMP_ASSIGN_OR_RETURN(const LocalEnuProjection projection,
                          LocalEnuProjection::Create(fixes.front()));
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i].position = projection.Forward(fixes[i]);
  }
  (void)data_lines_seen;
  return Trajectory::FromPoints(std::move(raw));
}

Result<Trajectory> ReadPltFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  STCOMP_ASSIGN_OR_RETURN(Trajectory trajectory, ParsePlt(buffer.str()));
  trajectory.set_name(path);
  return trajectory;
}

}  // namespace stcomp
