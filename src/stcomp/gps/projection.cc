#include "stcomp/gps/projection.h"

#include <cmath>

namespace stcomp {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;
constexpr double kRadToDeg = 180.0 / kPi;
constexpr double kMercatorScale = 0.9996;  // UTM k0.

// First eccentricity squared of the WGS84 ellipsoid.
constexpr double E2() {
  return kWgs84Flattening * (2.0 - kWgs84Flattening);
}

// Meridional arc length from the equator to latitude `lat_rad` (Snyder
// eq. 3-21).
double MeridionalArc(double lat_rad) {
  const double e2 = E2();
  const double e4 = e2 * e2;
  const double e6 = e4 * e2;
  return kWgs84SemiMajorAxisM *
         ((1.0 - e2 / 4.0 - 3.0 * e4 / 64.0 - 5.0 * e6 / 256.0) * lat_rad -
          (3.0 * e2 / 8.0 + 3.0 * e4 / 32.0 + 45.0 * e6 / 1024.0) *
              std::sin(2.0 * lat_rad) +
          (15.0 * e4 / 256.0 + 45.0 * e6 / 1024.0) * std::sin(4.0 * lat_rad) -
          (35.0 * e6 / 3072.0) * std::sin(6.0 * lat_rad));
}

}  // namespace

Result<LocalEnuProjection> LocalEnuProjection::Create(LatLon origin) {
  if (std::abs(origin.lat_deg) > 89.9 || std::abs(origin.lon_deg) > 180.0) {
    return InvalidArgumentError("origin out of range for local projection");
  }
  const double lat_rad = origin.lat_deg * kDegToRad;
  const double e2 = E2();
  const double sin_lat = std::sin(lat_rad);
  const double w2 = 1.0 - e2 * sin_lat * sin_lat;
  // Meridional and prime-vertical radii of curvature at the origin.
  const double meridional_radius =
      kWgs84SemiMajorAxisM * (1.0 - e2) / (w2 * std::sqrt(w2));
  const double prime_vertical_radius = kWgs84SemiMajorAxisM / std::sqrt(w2);
  const double metres_per_deg_lat = meridional_radius * kDegToRad;
  const double metres_per_deg_lon =
      prime_vertical_radius * std::cos(lat_rad) * kDegToRad;
  return LocalEnuProjection(origin, metres_per_deg_lat, metres_per_deg_lon);
}

Vec2 LocalEnuProjection::Forward(LatLon fix) const {
  return {(fix.lon_deg - origin_.lon_deg) * metres_per_deg_lon_,
          (fix.lat_deg - origin_.lat_deg) * metres_per_deg_lat_};
}

LatLon LocalEnuProjection::Inverse(Vec2 position) const {
  return {origin_.lat_deg + position.y / metres_per_deg_lat_,
          origin_.lon_deg + position.x / metres_per_deg_lon_};
}

TransverseMercator::TransverseMercator(double central_meridian_deg)
    : central_meridian_rad_(central_meridian_deg * kDegToRad) {}

Vec2 TransverseMercator::Forward(LatLon fix) const {
  const double e2 = E2();
  const double ep2 = e2 / (1.0 - e2);
  const double lat = fix.lat_deg * kDegToRad;
  const double lon = fix.lon_deg * kDegToRad;
  const double sin_lat = std::sin(lat);
  const double cos_lat = std::cos(lat);
  const double n = kWgs84SemiMajorAxisM / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
  const double t = (sin_lat / cos_lat) * (sin_lat / cos_lat);
  const double c = ep2 * cos_lat * cos_lat;
  const double a = (lon - central_meridian_rad_) * cos_lat;
  const double a2 = a * a;
  const double a3 = a2 * a;
  const double a4 = a2 * a2;
  const double a5 = a4 * a;
  const double a6 = a4 * a2;
  const double m = MeridionalArc(lat);
  const double x =
      kMercatorScale * n *
      (a + (1.0 - t + c) * a3 / 6.0 +
       (5.0 - 18.0 * t + t * t + 72.0 * c - 58.0 * ep2) * a5 / 120.0);
  const double y =
      kMercatorScale *
      (m + n * (sin_lat / cos_lat) *
               (a2 / 2.0 + (5.0 - t + 9.0 * c + 4.0 * c * c) * a4 / 24.0 +
                (61.0 - 58.0 * t + t * t + 600.0 * c - 330.0 * ep2) * a6 /
                    720.0));
  return {x, y};
}

LatLon TransverseMercator::Inverse(Vec2 position) const {
  const double e2 = E2();
  const double ep2 = e2 / (1.0 - e2);
  const double m = position.y / kMercatorScale;
  const double mu =
      m / (kWgs84SemiMajorAxisM *
           (1.0 - e2 / 4.0 - 3.0 * e2 * e2 / 64.0 - 5.0 * e2 * e2 * e2 / 256.0));
  const double e1 =
      (1.0 - std::sqrt(1.0 - e2)) / (1.0 + std::sqrt(1.0 - e2));
  const double e1_2 = e1 * e1;
  const double e1_3 = e1_2 * e1;
  const double e1_4 = e1_2 * e1_2;
  // Footpoint latitude (Snyder eq. 3-26).
  const double phi1 =
      mu + (3.0 * e1 / 2.0 - 27.0 * e1_3 / 32.0) * std::sin(2.0 * mu) +
      (21.0 * e1_2 / 16.0 - 55.0 * e1_4 / 32.0) * std::sin(4.0 * mu) +
      (151.0 * e1_3 / 96.0) * std::sin(6.0 * mu) +
      (1097.0 * e1_4 / 512.0) * std::sin(8.0 * mu);
  const double sin_phi1 = std::sin(phi1);
  const double cos_phi1 = std::cos(phi1);
  const double tan_phi1 = sin_phi1 / cos_phi1;
  const double c1 = ep2 * cos_phi1 * cos_phi1;
  const double t1 = tan_phi1 * tan_phi1;
  const double w2 = 1.0 - e2 * sin_phi1 * sin_phi1;
  const double n1 = kWgs84SemiMajorAxisM / std::sqrt(w2);
  const double r1 = kWgs84SemiMajorAxisM * (1.0 - e2) / (w2 * std::sqrt(w2));
  const double d = position.x / (n1 * kMercatorScale);
  const double d2 = d * d;
  const double d3 = d2 * d;
  const double d4 = d2 * d2;
  const double d5 = d4 * d;
  const double d6 = d4 * d2;
  const double lat =
      phi1 -
      (n1 * tan_phi1 / r1) *
          (d2 / 2.0 -
           (5.0 + 3.0 * t1 + 10.0 * c1 - 4.0 * c1 * c1 - 9.0 * ep2) * d4 /
               24.0 +
           (61.0 + 90.0 * t1 + 298.0 * c1 + 45.0 * t1 * t1 - 252.0 * ep2 -
            3.0 * c1 * c1) *
               d6 / 720.0);
  const double lon =
      central_meridian_rad_ +
      (d - (1.0 + 2.0 * t1 + c1) * d3 / 6.0 +
       (5.0 - 2.0 * c1 + 28.0 * t1 - 3.0 * c1 * c1 + 8.0 * ep2 +
        24.0 * t1 * t1) *
           d5 / 120.0) /
          cos_phi1;
  return {lat * kRadToDeg, lon * kRadToDeg};
}

double HaversineDistance(LatLon a, LatLon b) {
  constexpr double kMeanEarthRadiusM = 6371008.8;
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kMeanEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace stcomp
