#include "stcomp/gps/civil_time.h"

namespace stcomp {

long long DaysFromCivil(long long year, unsigned month, unsigned day) {
  year -= month <= 2;
  const long long era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

void CivilFromDays(long long days, long long* year, unsigned* month,
                   unsigned* day) {
  days += 719468;
  const long long era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long y = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = doy - (153 * mp + 2) / 5 + 1;
  *month = mp + (mp < 10 ? 3 : -9);
  *year = y + (*month <= 2);
}

}  // namespace stcomp
