// Geodetic support: turning WGS84 latitude/longitude fixes into the local
// planar metre coordinates the compression algorithms operate on.
//
// Two projections are provided:
//  - LocalEnuProjection: equirectangular local tangent approximation, exact
//    enough (< 1e-4 relative) for trip-scale extents (tens of km) and very
//    fast; this is the library default.
//  - TransverseMercator: the standard Gauss-Krueger series (UTM-style),
//    accurate over whole zones; used to validate the local projection.

#ifndef STCOMP_GPS_PROJECTION_H_
#define STCOMP_GPS_PROJECTION_H_

#include "stcomp/common/result.h"
#include "stcomp/geom/geometry.h"

namespace stcomp {

// A WGS84 fix, degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// WGS84 ellipsoid constants.
inline constexpr double kWgs84SemiMajorAxisM = 6378137.0;
inline constexpr double kWgs84Flattening = 1.0 / 298.257223563;

// Equirectangular east/north-up frame anchored at `origin`.
class LocalEnuProjection {
 public:
  // Fails with kInvalidArgument for |lat| > 89.9 deg (metric blows up) or
  // out-of-range coordinates.
  static Result<LocalEnuProjection> Create(LatLon origin);

  // East/north offsets in metres from the origin.
  Vec2 Forward(LatLon fix) const;
  LatLon Inverse(Vec2 position) const;

  LatLon origin() const { return origin_; }

 private:
  LocalEnuProjection(LatLon origin, double metres_per_deg_lat,
                     double metres_per_deg_lon)
      : origin_(origin),
        metres_per_deg_lat_(metres_per_deg_lat),
        metres_per_deg_lon_(metres_per_deg_lon) {}

  LatLon origin_;
  double metres_per_deg_lat_;
  double metres_per_deg_lon_;
};

// Transverse Mercator about `central_meridian_deg` (k0 = 0.9996, UTM
// convention; no false easting/northing so the output is comparable with
// the local frame).
class TransverseMercator {
 public:
  explicit TransverseMercator(double central_meridian_deg);

  Vec2 Forward(LatLon fix) const;
  LatLon Inverse(Vec2 position) const;

 private:
  double central_meridian_rad_;
};

// Great-circle (haversine, spherical mean radius) distance in metres;
// reference measure for projection tests.
double HaversineDistance(LatLon a, LatLon b);

}  // namespace stcomp

#endif  // STCOMP_GPS_PROJECTION_H_
