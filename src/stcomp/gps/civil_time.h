// Proleptic-Gregorian civil date <-> day-count conversions (Howard
// Hinnant's algorithms), shared by the GPX and NMEA timestamp parsers.

#ifndef STCOMP_GPS_CIVIL_TIME_H_
#define STCOMP_GPS_CIVIL_TIME_H_

namespace stcomp {

// Days since the Unix epoch (1970-01-01) for a civil date.
long long DaysFromCivil(long long year, unsigned month, unsigned day);

// Inverse of DaysFromCivil.
void CivilFromDays(long long days, long long* year, unsigned* month,
                   unsigned* day);

}  // namespace stcomp

#endif  // STCOMP_GPS_CIVIL_TIME_H_
