// Reader for the Geolife .plt trace format (Microsoft Research Geolife GPS
// trajectory dataset): six header lines, then
//   lat,lon,0,altitude_ft,days_since_1899-12-30,date,time
// per fix. A common public source of real traces for trajectory
// compression experiments.

#ifndef STCOMP_GPS_PLT_H_
#define STCOMP_GPS_PLT_H_

#include <string>
#include <string_view>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

// Parses .plt text; fixes are projected into a local ENU frame anchored at
// the first fix. Timestamps are the fractional-day field converted to
// seconds (epoch 1899-12-30, the format's own convention). Fixes with
// non-increasing timestamps are dropped (the dataset contains a few).
Result<Trajectory> ParsePlt(std::string_view text);

Result<Trajectory> ReadPltFile(const std::string& path);

}  // namespace stcomp

#endif  // STCOMP_GPS_PLT_H_
