#include "stcomp/gps/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "stcomp/common/strings.h"
#include "stcomp/gps/projection.h"

namespace stcomp {

namespace {

enum class CsvSchema { kProjected, kGeographic };

Result<CsvSchema> DetectSchema(std::string_view header) {
  const std::string lower = AsciiLower(StripWhitespace(header));
  if (lower == "t,x,y") {
    return CsvSchema::kProjected;
  }
  if (lower == "t,lat,lon" || lower == "time,lat,lon") {
    return CsvSchema::kGeographic;
  }
  return InvalidArgumentError("unrecognised CSV header '" +
                              std::string(header) +
                              "' (expected t,x,y or t,lat,lon)");
}

}  // namespace

Result<Trajectory> ParseCsvTrajectory(std::string_view text) {
  std::vector<std::string_view> lines = Split(text, '\n');
  size_t line_number = 0;
  CsvSchema schema = CsvSchema::kProjected;
  bool have_header = false;
  std::vector<TimedPoint> raw;
  std::vector<LatLon> fixes;  // Parallel to raw for geographic schema.
  for (std::string_view line : lines) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    if (!have_header) {
      STCOMP_ASSIGN_OR_RETURN(schema, DetectSchema(stripped));
      have_header = true;
      continue;
    }
    const std::vector<std::string_view> fields = Split(stripped, ',');
    if (fields.size() != 3) {
      return InvalidArgumentError(
          StrFormat("CSV line %zu: expected 3 fields, got %zu", line_number,
                    fields.size()));
    }
    STCOMP_ASSIGN_OR_RETURN(const double t, ParseDouble(fields[0]));
    STCOMP_ASSIGN_OR_RETURN(const double a, ParseDouble(fields[1]));
    STCOMP_ASSIGN_OR_RETURN(const double b, ParseDouble(fields[2]));
    if (schema == CsvSchema::kProjected) {
      raw.emplace_back(t, a, b);
    } else {
      raw.emplace_back(t, 0.0, 0.0);
      fixes.push_back(LatLon{a, b});
    }
  }
  if (!have_header) {
    return InvalidArgumentError("CSV has no header line");
  }
  if (schema == CsvSchema::kGeographic && !fixes.empty()) {
    STCOMP_ASSIGN_OR_RETURN(const LocalEnuProjection projection,
                            LocalEnuProjection::Create(fixes.front()));
    for (size_t i = 0; i < raw.size(); ++i) {
      raw[i].position = projection.Forward(fixes[i]);
    }
  }
  return Trajectory::FromPoints(std::move(raw));
}

std::string WriteCsvTrajectory(const Trajectory& trajectory) {
  std::string out = "t,x,y\n";
  for (const TimedPoint& point : trajectory.points()) {
    out += StrFormat("%.17g,%.17g,%.17g\n", point.t, point.position.x,
                     point.position.y);
  }
  return out;
}

Result<Trajectory> ReadCsvTrajectoryFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  STCOMP_ASSIGN_OR_RETURN(Trajectory trajectory,
                          ParseCsvTrajectory(buffer.str()));
  trajectory.set_name(path);
  return trajectory;
}

Status WriteCsvTrajectoryFile(const Trajectory& trajectory,
                              const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return IoError("cannot open " + path + " for writing");
  }
  file << WriteCsvTrajectory(trajectory);
  if (!file) {
    return IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace stcomp
