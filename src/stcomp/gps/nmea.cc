#include "stcomp/gps/nmea.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "stcomp/common/strings.h"
#include "stcomp/gps/civil_time.h"

namespace stcomp {

namespace {

constexpr double kKnotsToMps = 0.514444;

// "ddmm.mmmm" + hemisphere -> signed degrees.
Result<double> ParseNmeaAngle(std::string_view text, std::string_view hemi,
                              int degree_digits) {
  if (static_cast<int>(text.size()) < degree_digits + 2) {
    return InvalidArgumentError("NMEA coordinate field too short");
  }
  STCOMP_ASSIGN_OR_RETURN(
      const long long degrees,
      ParseInt(text.substr(0, static_cast<size_t>(degree_digits))));
  STCOMP_ASSIGN_OR_RETURN(
      const double minutes,
      ParseDouble(text.substr(static_cast<size_t>(degree_digits))));
  double value = static_cast<double>(degrees) + minutes / 60.0;
  if (hemi == "S" || hemi == "W") {
    value = -value;
  } else if (hemi != "N" && hemi != "E") {
    return InvalidArgumentError("bad NMEA hemisphere");
  }
  return value;
}

// hhmmss(.sss) + ddmmyy -> Unix seconds.
Result<double> ParseNmeaDateTime(std::string_view time_text,
                                 std::string_view date_text) {
  if (time_text.size() < 6 || date_text.size() != 6) {
    return InvalidArgumentError("bad NMEA time/date field");
  }
  STCOMP_ASSIGN_OR_RETURN(const long long hh, ParseInt(time_text.substr(0, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long mm, ParseInt(time_text.substr(2, 2)));
  STCOMP_ASSIGN_OR_RETURN(const double ss, ParseDouble(time_text.substr(4)));
  STCOMP_ASSIGN_OR_RETURN(const long long day, ParseInt(date_text.substr(0, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long month,
                          ParseInt(date_text.substr(2, 2)));
  STCOMP_ASSIGN_OR_RETURN(const long long yy, ParseInt(date_text.substr(4, 2)));
  if (month < 1 || month > 12 || day < 1 || day > 31 || hh > 23 || mm > 59 ||
      ss >= 61.0) {
    return InvalidArgumentError("out-of-range NMEA time/date");
  }
  // NMEA two-digit years: the GPS era convention (>= 80 -> 19xx).
  const long long year = yy >= 80 ? 1900 + yy : 2000 + yy;
  const long long days = DaysFromCivil(year, static_cast<unsigned>(month),
                                       static_cast<unsigned>(day));
  return static_cast<double>(days * 86400 + hh * 3600 + mm * 60) + ss;
}

}  // namespace

uint8_t NmeaChecksum(std::string_view payload) {
  uint8_t checksum = 0;
  for (char c : payload) {
    checksum = static_cast<uint8_t>(checksum ^ static_cast<uint8_t>(c));
  }
  return checksum;
}

Result<RmcFix> ParseRmcSentence(std::string_view sentence) {
  std::string_view body = StripWhitespace(sentence);
  if (body.empty() || body.front() != '$') {
    return InvalidArgumentError("NMEA sentence must start with '$'");
  }
  body.remove_prefix(1);
  const size_t star = body.rfind('*');
  if (star == std::string_view::npos || body.size() - star != 3) {
    return InvalidArgumentError("NMEA sentence missing '*hh' checksum");
  }
  const std::string_view payload = body.substr(0, star);
  // The checksum field must be exactly two hex digits (either case).
  // Anything laxer (strtoll and friends) accepts garbage like "*ZZ" as 0,
  // which collides with payloads whose XOR happens to be 0.
  const std::string_view checksum_text = body.substr(star + 1);
  const auto hex_digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  const int hi = hex_digit(checksum_text[0]);
  const int lo = hex_digit(checksum_text[1]);
  if (hi < 0 || lo < 0) {
    return InvalidArgumentError(
        "NMEA checksum must be exactly two hex digits");
  }
  const uint8_t stated = static_cast<uint8_t>(hi * 16 + lo);
  if (NmeaChecksum(payload) != stated) {
    return DataLossError("NMEA checksum mismatch");
  }
  const std::vector<std::string_view> fields = Split(payload, ',');
  // Talker id (GP/GN/GL...) + "RMC".
  if (fields.empty() || fields[0].size() < 5 ||
      fields[0].substr(fields[0].size() - 3) != "RMC") {
    return NotFoundError("not an RMC sentence");
  }
  if (fields.size() < 10) {
    return InvalidArgumentError("RMC sentence has too few fields");
  }
  RmcFix fix;
  fix.valid = fields[2] == "A";
  STCOMP_ASSIGN_OR_RETURN(fix.unix_time_s,
                          ParseNmeaDateTime(fields[1], fields[9]));
  STCOMP_ASSIGN_OR_RETURN(fix.position.lat_deg,
                          ParseNmeaAngle(fields[3], fields[4], 2));
  STCOMP_ASSIGN_OR_RETURN(fix.position.lon_deg,
                          ParseNmeaAngle(fields[5], fields[6], 3));
  if (!fields[7].empty()) {
    STCOMP_ASSIGN_OR_RETURN(const double knots, ParseDouble(fields[7]));
    fix.speed_mps = knots * kKnotsToMps;
  }
  if (!fields[8].empty()) {
    STCOMP_ASSIGN_OR_RETURN(fix.course_deg, ParseDouble(fields[8]));
  }
  return fix;
}

Result<Trajectory> ParseNmea(std::string_view text, LatLon* origin) {
  std::vector<TimedPoint> raw;
  std::vector<LatLon> fixes;
  for (std::string_view line : Split(text, '\n')) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) {
      continue;
    }
    const Result<RmcFix> fix = ParseRmcSentence(stripped);
    if (!fix.ok()) {
      if (fix.status().code() == StatusCode::kDataLoss) {
        return fix.status();  // Corruption is an error, other sentences not.
      }
      continue;
    }
    if (!fix->valid) {
      continue;
    }
    if (!raw.empty() && fix->unix_time_s <= raw.back().t) {
      continue;  // Receivers occasionally repeat a second; drop.
    }
    raw.emplace_back(fix->unix_time_s, 0.0, 0.0);
    fixes.push_back(fix->position);
  }
  if (raw.empty()) {
    return InvalidArgumentError("no valid RMC fixes in NMEA input");
  }
  STCOMP_ASSIGN_OR_RETURN(const LocalEnuProjection projection,
                          LocalEnuProjection::Create(fixes.front()));
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i].position = projection.Forward(fixes[i]);
  }
  if (origin != nullptr) {
    *origin = fixes.front();
  }
  return Trajectory::FromPoints(std::move(raw));
}

std::string WriteNmea(const Trajectory& trajectory, LatLon origin) {
  const LocalEnuProjection projection =
      LocalEnuProjection::Create(origin).value();
  std::string out;
  const auto& points = trajectory.points();
  for (size_t i = 0; i < points.size(); ++i) {
    const LatLon fix = projection.Inverse(points[i].position);
    const long long total = static_cast<long long>(std::floor(points[i].t));
    const double fraction = points[i].t - static_cast<double>(total);
    long long days = total / 86400;
    long long rem = total % 86400;
    if (rem < 0) {
      rem += 86400;
      --days;
    }
    long long year;
    unsigned month, day;
    CivilFromDays(days, &year, &month, &day);
    // Derived speed/course from the next segment (receivers report ground
    // speed; we reconstruct it from the motion).
    double speed_knots = 0.0;
    double course_deg = 0.0;
    if (i + 1 < points.size()) {
      const double dt = points[i + 1].t - points[i].t;
      const Vec2 d = points[i + 1].position - points[i].position;
      speed_knots = d.Norm() / dt / kKnotsToMps;
      // Compass course: clockwise from north.
      course_deg = std::fmod(
          90.0 - Heading(points[i].position, points[i + 1].position) * 180.0 /
                     3.14159265358979323846 + 360.0,
          360.0);
    }
    const double abs_lat = std::abs(fix.lat_deg);
    const double abs_lon = std::abs(fix.lon_deg);
    const int lat_deg = static_cast<int>(abs_lat);
    const int lon_deg = static_cast<int>(abs_lon);
    const std::string payload = StrFormat(
        "GPRMC,%02lld%02lld%06.3f,A,%02d%07.4f,%c,%03d%07.4f,%c,%.2f,%.1f,"
        "%02u%02u%02lld,,",
        rem / 3600, (rem % 3600) / 60,
        static_cast<double>(rem % 60) + fraction, lat_deg,
        (abs_lat - lat_deg) * 60.0, fix.lat_deg >= 0 ? 'N' : 'S', lon_deg,
        (abs_lon - lon_deg) * 60.0, fix.lon_deg >= 0 ? 'E' : 'W', speed_knots,
        course_deg, day, month, year % 100);
    out += StrFormat("$%s*%02X\r\n", payload.c_str(), NmeaChecksum(payload));
  }
  return out;
}

Result<Trajectory> ReadNmeaFile(const std::string& path, LatLon* origin) {
  std::ifstream file(path);
  if (!file) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseNmea(buffer.str(), origin);
}

}  // namespace stcomp
