// NMEA 0183 support: the sentence protocol GPS receivers actually emit.
// We parse the RMC (recommended minimum) sentence, which carries the fix
// time, date, position and ground speed, and validate the checksum. The
// writer emits RMC so hardware-in-the-loop tests can replay trajectories
// into NMEA consumers.

#ifndef STCOMP_GPS_NMEA_H_
#define STCOMP_GPS_NMEA_H_

#include <optional>
#include <string>
#include <string_view>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/gps/projection.h"

namespace stcomp {

// One decoded $..RMC sentence.
struct RmcFix {
  double unix_time_s = 0.0;
  LatLon position;
  bool valid = false;               // Status field 'A' (active) vs 'V'.
  double speed_mps = 0.0;           // From knots.
  double course_deg = 0.0;          // True course, degrees.
};

// XOR checksum over the payload between '$' and '*'.
uint8_t NmeaChecksum(std::string_view payload);

// Parses one RMC sentence ("$GPRMC,...*hh"). Fails with kInvalidArgument
// on malformed input and kDataLoss on checksum mismatch. Non-RMC sentences
// fail with kNotFound so stream readers can skip them cheaply.
Result<RmcFix> ParseRmcSentence(std::string_view sentence);

// Parses a whole NMEA log: keeps valid RMC fixes, skips other sentences,
// fails only if no usable fix is found. Fixes are projected into a local
// ENU frame anchored at the first fix; `origin` (optional out) receives
// the anchor.
Result<Trajectory> ParseNmea(std::string_view text, LatLon* origin);

// Emits one RMC sentence per trajectory point (positions unprojected
// through `origin`; timestamps interpreted as Unix seconds).
std::string WriteNmea(const Trajectory& trajectory, LatLon origin);

Result<Trajectory> ReadNmeaFile(const std::string& path, LatLon* origin);

}  // namespace stcomp

#endif  // STCOMP_GPS_NMEA_H_
