// Queries over the compressed store (DESIGN.md §17), evaluated directly
// on the blocked codec stream: block summaries (block_summary.h) and the
// spatio-temporal index (st_index.h) narrow the search to candidate
// blocks, and only those are decoded. Four query types:
//
//   kTimeWindow — objects whose motion overlaps [t0, t1] (index-only; no
//                 payload decode at all).
//   kRange      — objects whose motion during [t0, t1] enters an axis-
//                 aligned box.
//   kCorridor   — objects whose motion during [t0, t1] comes within
//                 radius_m of a waypoint polyline.
//   kNearest    — the k objects closest to a point during [t0, t1]
//                 (best-first over block lower bounds).
//
// Error-bound-aware semantics: the store holds lossily-compressed
// trajectories, so geometric predicates are evaluated against extents
// inflated by error_bound = declared_error_m (the SED tolerance the data
// was simplified with, supplied by the caller) + the codec quantisation
// bound (kDelta). An object whose *original* motion satisfied the
// predicate is therefore never missed; the answer reports the bound it
// used.
//
// RunQuery (index-accelerated) and BruteForceQuery (decode everything;
// the oracle) produce bitwise-identical hits for the same store and
// request: both walk the same decoded storage values through the same
// clipping and predicate helpers, and skipped blocks provably contain no
// hits (a block's summary covers its points plus the junction point, so
// every polyline segment lies within exactly one block's extents). The
// differential test suite holds this equality across algorithms, shard
// counts and seeded fleets.

#ifndef STCOMP_STORE_QUERY_H_
#define STCOMP_STORE_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/geom/geometry.h"
#include "stcomp/store/st_index.h"
#include "stcomp/store/trajectory_store.h"

namespace stcomp {

enum class QueryType : uint8_t {
  kTimeWindow = 0,
  kRange = 1,
  kCorridor = 2,
  kNearest = 3,
};

// "time_window" | "range" | "corridor" | "nearest".
std::string_view QueryTypeName(QueryType type);

struct QueryRequest {
  QueryType type = QueryType::kTimeWindow;
  // Closed time window; the defaults cover all of time.
  double t0 = std::numeric_limits<double>::lowest();
  double t1 = std::numeric_limits<double>::max();
  BoundingBox box;            // kRange.
  std::vector<Vec2> corridor; // kCorridor waypoints (>= 1; 1 = a point).
  double radius_m = 0.0;      // kCorridor.
  Vec2 point;                 // kNearest.
  size_t k = 1;               // kNearest.
  // SED tolerance the stored trajectories were simplified with (metres);
  // widens the match predicates so originally-matching objects are never
  // missed.
  double declared_error_m = 0.0;
};

struct QueryHit {
  std::string id;
  // Set queries: time of the earliest matching (clipped) segment start.
  // kTimeWindow/kRange/kCorridor only.
  double first_hit_t = 0.0;
  // kNearest only: the object's minimum distance to the query point over
  // the window, on the decoded (storage-value) polyline.
  double distance_m = 0.0;
};

struct QueryStats {
  uint64_t objects_considered = 0;
  uint64_t blocks_total = 0;      // Blocks owned by considered objects.
  uint64_t blocks_considered = 0; // Candidates after the summary filter.
  uint64_t blocks_decoded = 0;
};

struct QueryAnswer {
  // Set queries: ascending by id. kNearest: ascending by (distance, id),
  // exactly min(k, matching objects) entries.
  std::vector<QueryHit> hits;
  double error_bound_m = 0.0;
  QueryStats stats;
};

// kInvalidArgument unless the request is well-formed: t0 <= t1 and finite
// parameters for the chosen type (box min <= max, non-empty finite
// corridor, radius >= 0, k >= 1, declared_error_m >= 0).
Status ValidateQuery(const QueryRequest& request);

// The inflation applied to match predicates: declared_error_m plus the
// codec's quantisation bound (kCoordQuantumM for kDelta, 0 for kRaw).
double QueryErrorBound(const QueryRequest& request, Codec codec);

// Index-accelerated evaluation. Precondition: `index` describes `store`'s
// current contents (index.Matches(store)); the segment store maintains
// this. Increments the query metrics (/queryz).
Result<QueryAnswer> RunQuery(const TrajectoryStore& store,
                             const SpatioTemporalIndex& index,
                             const QueryRequest& request);

// The oracle: decodes every object in full and evaluates the predicate on
// every segment. Same answers as RunQuery, bit for bit; O(total points)
// always. Does not touch the query metrics.
Result<QueryAnswer> BruteForceQuery(const TrajectoryStore& store,
                                    const QueryRequest& request);

// Parses the CLI query mini-language (trajectory_tool --query):
//
//   window:T0:T1
//   range:T0:T1:MIN_X:MIN_Y:MAX_X:MAX_Y
//   corridor:T0:T1:RADIUS:X0,Y0;X1,Y1;...
//   nearest:T0:T1:K:X:Y
//
// T0/T1 may be "-" for an unbounded end. kInvalidArgument with a usage
// message on malformed specs.
Result<QueryRequest> ParseQuerySpec(std::string_view spec);

// One-line JSON summary of a query answer (ids escaped via
// obs::JsonEscape).
std::string RenderQueryAnswerJson(const QueryRequest& request,
                                  const QueryAnswer& answer);

// The /queryz document: cumulative per-type query counts, block
// considered/decoded totals and the latency histogram summary.
std::string RenderQueryzJson();

}  // namespace stcomp

#endif  // STCOMP_STORE_QUERY_H_
