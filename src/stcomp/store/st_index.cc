#include "stcomp/store/st_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stcomp/common/check.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/varint.h"

namespace stcomp {

namespace {

constexpr char kIndexMagic[4] = {'S', 'T', 'I', 'X'};
constexpr uint8_t kIndexVersion = 1;

void PutCrc(uint32_t crc, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
}

}  // namespace

SpatioTemporalIndex::SpatioTemporalIndex(double cell_size_m)
    : cell_size_m_(cell_size_m) {
  STCOMP_CHECK(std::isfinite(cell_size_m) && cell_size_m > 0.0);
}

SpatioTemporalIndex::CellKey SpatioTemporalIndex::KeyFor(
    Vec2 position) const {
  // Saturate before the cast: a fuzz-sized coordinate over a small cell
  // produces a quotient outside int64 range, and that conversion is UB.
  // Saturated keys stay ordered, which is all the grid walk needs.
  const auto coord = [&](double value) -> int64_t {
    const double cell = std::floor(value / cell_size_m_);
    if (std::isnan(cell)) {
      return 0;
    }
    if (cell <= -9.2e18) {
      return std::numeric_limits<int64_t>::min();
    }
    if (cell >= 9.2e18) {
      return std::numeric_limits<int64_t>::max();
    }
    return static_cast<int64_t>(cell);
  };
  return {coord(position.x), coord(position.y)};
}

void SpatioTemporalIndex::InsertPostings(uint32_t object_ordinal) {
  const ObjectEntry& entry = objects_[object_ordinal];
  for (uint32_t b = 0; b < entry.blocks.size(); ++b) {
    const BlockSummary& block = entry.blocks[b];
    const Posting posting{object_ordinal, b};
    const CellKey lo = KeyFor(block.bounds.min);
    const CellKey hi = KeyFor(block.bounds.max);
    // Subtract as unsigned: with saturated keys the signed difference of
    // int64 extremes overflows. Compare the gap itself (span - 1) so the
    // full-int64 gap of 2^64-1 cannot wrap span back to zero and sneak a
    // saturated block past the oversize cut.
    const uint64_t gap_x =
        static_cast<uint64_t>(hi.first) - static_cast<uint64_t>(lo.first);
    const uint64_t gap_y =
        static_cast<uint64_t>(hi.second) - static_cast<uint64_t>(lo.second);
    if (gap_x >= kMaxCellsPerBlock || gap_y >= kMaxCellsPerBlock ||
        (gap_x + 1) * (gap_y + 1) > kMaxCellsPerBlock) {
      oversize_.push_back(posting);
      ++total_postings_;
      continue;
    }
    for (int64_t cx = lo.first; cx <= hi.first; ++cx) {
      for (int64_t cy = lo.second; cy <= hi.second; ++cy) {
        cells_[{cx, cy}].push_back(posting);
        ++total_postings_;
      }
    }
  }
}

SpatioTemporalIndex SpatioTemporalIndex::BuildFromStore(
    const TrajectoryStore& store, double cell_size_m) {
  SpatioTemporalIndex index(cell_size_m);
  store.VisitBlocks([&index](const std::string& id, size_t num_points,
                             const std::vector<BlockSummary>& blocks,
                             std::string_view payload) {
    ObjectEntry entry;
    entry.id = id;
    entry.num_points = num_points;
    entry.payload_crc = Crc32(payload);
    entry.blocks = blocks;
    index.objects_.push_back(std::move(entry));
  });
  for (uint32_t i = 0; i < index.objects_.size(); ++i) {
    index.InsertPostings(i);
  }
  return index;
}

std::vector<SpatioTemporalIndex::Posting>
SpatioTemporalIndex::CandidateBlocks(const BoundingBox& box, double t0,
                                     double t1) const {
  std::vector<Posting> candidates;
  const CellKey lo = KeyFor(box.min);
  const CellKey hi = KeyFor(box.max);
  // Walk only populated cells, jumping over empty key ranges with
  // lower_bound. Iterating the integer cell range of the box instead
  // (one probe per x-column) stalls for hours on a planet-sized query
  // box over a metres-sized grid: cost must scale with the number of
  // occupied cells, never with the area of the question.
  for (auto it = cells_.lower_bound({lo.first, lo.second});
       it != cells_.end() && it->first.first <= hi.first;) {
    if (it->first.second < lo.second) {
      it = cells_.lower_bound({it->first.first, lo.second});
    } else if (it->first.second > hi.second) {
      if (it->first.first == std::numeric_limits<int64_t>::max()) {
        break;  // No next column to jump to.
      }
      it = cells_.lower_bound({it->first.first + 1, lo.second});
    } else {
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
      ++it;
    }
  }
  candidates.insert(candidates.end(), oversize_.begin(), oversize_.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Exact summary-level filter: the grid may over-approximate (a block's
  // box and the query box can share a cell without intersecting).
  std::erase_if(candidates, [&](const Posting& p) {
    const BlockSummary& block = objects_[p.object].blocks[p.block];
    return !block.OverlapsTime(t0, t1) || !block.bounds.Intersects(box);
  });
  return candidates;
}

std::string SpatioTemporalIndex::SerializeToString() const {
  std::string out(kIndexMagic, sizeof(kIndexMagic));
  out.push_back(static_cast<char>(kIndexVersion));
  PutDouble(cell_size_m_, &out);
  PutVarint(objects_.size(), &out);
  for (const ObjectEntry& entry : objects_) {
    PutVarint(entry.id.size(), &out);
    out += entry.id;
    PutVarint(entry.num_points, &out);
    PutCrc(entry.payload_crc, &out);
    PutVarint(entry.blocks.size(), &out);
    AppendSummaryTable(entry.blocks, &out);
  }
  PutCrc(Crc32(out), &out);
  return out;
}

Result<SpatioTemporalIndex> SpatioTemporalIndex::LoadFromBuffer(
    std::string_view data) {
  if (data.size() < sizeof(kIndexMagic) + 1 + 8 + 4) {
    return DataLossError("index image truncated");
  }
  if (data.substr(0, 4) != std::string_view(kIndexMagic, 4)) {
    return DataLossError("bad magic; not an index image");
  }
  // Whole-image CRC first: everything after this parses trusted bytes.
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(
                      static_cast<uint8_t>(data[data.size() - 4 + i]))
                  << (8 * i);
  }
  if (Crc32(data.substr(0, data.size() - 4)) != stored_crc) {
    return DataLossError("index image CRC mismatch");
  }
  std::string_view cursor = data.substr(4, data.size() - 8);
  const uint8_t version = static_cast<uint8_t>(cursor[0]);
  cursor.remove_prefix(1);
  if (version != kIndexVersion) {
    return DataLossError("unsupported index version");
  }
  STCOMP_ASSIGN_OR_RETURN(const double cell_size, GetDouble(&cursor));
  if (!std::isfinite(cell_size) || cell_size <= 0.0) {
    return DataLossError("index with non-positive cell size");
  }
  SpatioTemporalIndex index(cell_size);
  STCOMP_ASSIGN_OR_RETURN(const uint64_t object_count, GetVarint(&cursor));
  if (object_count > cursor.size()) {
    return DataLossError("index object count exceeds image");
  }
  index.objects_.reserve(object_count);
  for (uint64_t i = 0; i < object_count; ++i) {
    ObjectEntry entry;
    STCOMP_ASSIGN_OR_RETURN(const uint64_t id_size, GetVarint(&cursor));
    if (cursor.size() < id_size) {
      return DataLossError("index truncated in object id");
    }
    entry.id.assign(cursor.substr(0, id_size));
    cursor.remove_prefix(id_size);
    if (entry.id.empty()) {
      return DataLossError("index object without an id");
    }
    if (!index.objects_.empty() && index.objects_.back().id >= entry.id) {
      return DataLossError("index object ids out of order");
    }
    STCOMP_ASSIGN_OR_RETURN(entry.num_points, GetVarint(&cursor));
    if (cursor.size() < 4) {
      return DataLossError("index truncated in payload CRC");
    }
    entry.payload_crc = 0;
    for (int b = 0; b < 4; ++b) {
      entry.payload_crc |=
          static_cast<uint32_t>(static_cast<uint8_t>(cursor[b])) << (8 * b);
    }
    cursor.remove_prefix(4);
    STCOMP_ASSIGN_OR_RETURN(const uint64_t block_count, GetVarint(&cursor));
    STCOMP_ASSIGN_OR_RETURN(
        entry.blocks, ParseSummaryTable(&cursor, block_count,
                                        entry.num_points));
    index.objects_.push_back(std::move(entry));
  }
  if (!cursor.empty()) {
    return DataLossError("index image has trailing bytes");
  }
  for (uint32_t i = 0; i < index.objects_.size(); ++i) {
    index.InsertPostings(i);
  }
  return index;
}

bool SpatioTemporalIndex::Matches(const TrajectoryStore& store) const {
  size_t next = 0;
  bool ok = true;
  store.VisitBlocks([&](const std::string& id, size_t num_points,
                        const std::vector<BlockSummary>& blocks,
                        std::string_view payload) {
    (void)blocks;
    if (!ok || next >= objects_.size()) {
      ok = false;
      return;
    }
    const ObjectEntry& entry = objects_[next++];
    if (entry.id != id || entry.num_points != num_points ||
        entry.payload_crc != Crc32(payload)) {
      ok = false;
    }
  });
  return ok && next == objects_.size();
}

}  // namespace stcomp
