// Framed binary serialisation of trajectories.
//
// Version 1 (one continuous codec chain):
//
//   magic "STCT" | version u8=1 | codec u8 | name len varint | name bytes
//   | point count varint | payload | crc32 (4 bytes, LE, over everything
//   before it)
//
// Version 2 (blocked, DESIGN.md §17) inserts a block-summary table so
// readers can skip whole blocks without decoding them:
//
//   magic "STCT" | version u8=2 | codec u8 | name len varint | name bytes
//   | point count varint | block count varint | summary table
//   (block_summary.h) | concatenated block payloads | crc32
//
// The delta chain restarts at every v2 block. Writers emit v1 for single
// chains (SerializeTrajectory, unchanged bytes — the golden lock) and v2
// for blocked stores; the reader accepts both. The CRC turns silent
// truncation/corruption into kDataLoss.

#ifndef STCOMP_STORE_SERIALIZATION_H_
#define STCOMP_STORE_SERIALIZATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/store/block_summary.h"
#include "stcomp/store/codec.h"

namespace stcomp {

// CRC-32 (IEEE 802.3 polynomial, reflected).
uint32_t Crc32(std::string_view data);

Result<std::string> SerializeTrajectory(const Trajectory& trajectory,
                                        Codec codec);

// v2 blocked frame from pre-encoded state: `payload` must be the
// concatenation of the blocks' independently-coded payloads and `blocks`
// their summary table (the store passes its entries through without
// re-encoding). kInvalidArgument when the table disagrees with the
// payload length.
Result<std::string> SerializeBlockedFrame(
    std::string_view name, Codec codec,
    const std::vector<BlockSummary>& blocks, std::string_view payload);

// Convenience: encode `trajectory` into blocks of `block_points` and
// frame it as v2.
Result<std::string> SerializeTrajectoryBlocked(
    const Trajectory& trajectory, Codec codec,
    size_t block_points = kDefaultBlockPoints);

// Parses one framed trajectory (either version) from the front of
// `*input`, advancing it (multiple frames may be concatenated in one
// buffer/file).
Result<Trajectory> DeserializeTrajectory(std::string_view* input);

// Salvaging frame scan (DESIGN.md §13). Strict decoding (above) turns one
// flipped bit into kDataLoss for the whole image; the scanner instead
// recovers every intact frame: a frame that fails to decode is skipped and
// the scan resynchronises at the next magic. A trailing failure with no
// later resync point is a torn tail (an interrupted final write), counted
// separately from mid-image corruption.
struct FrameScanStats {
  size_t frames_good = 0;
  size_t frames_salvaged_past = 0;  // Corrupted frames skipped via resync.
  bool torn_tail = false;
  std::vector<std::string> log;  // One human-readable line per skip.
};

// Returns every decodable frame in order. `stats` may be null.
std::vector<Trajectory> ScanTrajectoryFrames(std::string_view image,
                                             FrameScanStats* stats);

Status WriteTrajectoryFile(const Trajectory& trajectory, Codec codec,
                           const std::string& path);
Result<Trajectory> ReadTrajectoryFile(const std::string& path);

}  // namespace stcomp

#endif  // STCOMP_STORE_SERIALIZATION_H_
