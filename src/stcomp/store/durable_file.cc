#include "stcomp/store/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace stcomp {

namespace {

std::string ErrnoMessage(std::string_view what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

std::string DirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

Status FsyncPath(const std::string& path, bool directory) {
  const int flags = directory ? O_RDONLY | O_DIRECTORY : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return IoError(ErrnoMessage("cannot open for fsync", path));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return IoError(ErrnoMessage("fsync failed for", path));
  }
  return Status::Ok();
}

}  // namespace

Status FaultableWriteFd(int fd, std::string_view bytes,
                        const WriteFaultHook& hook, size_t* boundary,
                        const std::string& path) {
  WriteFault fault;
  if (hook) {
    fault = hook((*boundary)++, bytes);
  } else {
    ++*boundary;
  }
  std::string_view to_write = bytes;
  std::string torn;
  switch (fault.action) {
    case WriteFault::Action::kProceed:
      break;
    case WriteFault::Action::kCrash:
      return UnavailableError("injected crash before write to " + path);
    case WriteFault::Action::kShortWrite:
      to_write = bytes.substr(0, std::min(fault.keep_bytes, bytes.size()));
      break;
    case WriteFault::Action::kTornWrite:
      torn = std::string(bytes.substr(0, std::min(fault.keep_bytes,
                                                  bytes.size())));
      torn += fault.garbage;
      to_write = torn;
      break;
  }
  size_t written = 0;
  while (written < to_write.size()) {
    const ssize_t n = ::write(fd, to_write.data() + written,
                              to_write.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(ErrnoMessage("write failed for", path));
    }
    written += static_cast<size_t>(n);
  }
  if (fault.action != WriteFault::Action::kProceed) {
    return UnavailableError("injected crash during write to " + path);
  }
  return Status::Ok();
}

Status FaultPoint(const WriteFaultHook& hook, size_t* boundary,
                  std::string_view what) {
  if (hook) {
    const WriteFault fault = hook((*boundary)++, std::string_view());
    if (fault.action != WriteFault::Action::kProceed) {
      return UnavailableError("injected crash before " + std::string(what));
    }
  } else {
    ++*boundary;
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  size_t boundary = 0;
  return AtomicWriteFile(path, contents, WriteFaultHook(), &boundary);
}

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const WriteFaultHook& hook, size_t* boundary) {
  size_t local_boundary = 0;
  if (boundary == nullptr) {
    boundary = &local_boundary;
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return IoError(ErrnoMessage("cannot open", tmp));
  }
  Status status = FaultableWriteFd(fd, contents, hook, boundary, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = IoError(ErrnoMessage("fsync failed for", tmp));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = IoError(ErrnoMessage("close failed for", tmp));
  }
  if (!status.ok()) {
    // A dead or failed temp write never disturbs the committed file; the
    // leftover .tmp is exactly what a crashed process would leave.
    return status;
  }
  STCOMP_RETURN_IF_ERROR(FaultPoint(hook, boundary, "rename of " + tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return IoError(ErrnoMessage("rename failed for", tmp));
  }
  // Make the rename itself durable; without this a crash can roll the
  // directory entry back to the old file.
  return FsyncPath(DirectoryOf(path), /*directory=*/true);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    return IoError("read failed for " + path);
  }
  return buffer.str();
}

}  // namespace stcomp
