// Trajectory point codecs. Two encodings:
//
//  kRaw   — 24 bytes/point (3 little-endian doubles); bit-exact.
//  kDelta — timestamps quantised to milliseconds and coordinates to
//           centimetres, then delta + zigzag + varint coded. Real GPS
//           streams compress to ~4-7 bytes/point because consecutive
//           deltas are small and regular. Quantisation error is bounded by
//           0.5 ms / 0.5 cm — far below sensor noise.
//
// These codecs quantify the storage story of the paper's introduction
// (raw <t, x, y> streams at 10 s sampling) and give the store its on-disk
// format; see bench_storage.

#ifndef STCOMP_STORE_CODEC_H_
#define STCOMP_STORE_CODEC_H_

#include <string>
#include <string_view>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"

namespace stcomp {

enum class Codec : uint8_t {
  kRaw = 0,
  kDelta = 1,
};

inline constexpr double kTimeQuantumS = 1e-3;   // 1 ms
inline constexpr double kCoordQuantumM = 1e-2;  // 1 cm

// Appends the encoded points to `out` (the caller frames point count and
// codec id; see serialization.h). Fails with kOutOfRange if a quantised
// value does not fit an int64 (never for terrestrial data).
Status EncodePoints(const Trajectory& trajectory, Codec codec,
                    std::string* out);

// Appends the encoding of `count` points starting at `points` with a
// fresh delta chain (the first point is coded absolute). EncodePoints is
// the whole-trajectory special case; the blocked store format encodes
// each block through this so blocks decode independently.
Status EncodePointSpan(const TimedPoint* points, size_t count, Codec codec,
                       std::string* out);

// Appends the encoding of `point` as the successor of `*previous` in an
// existing chain (`previous == nullptr` restarts the chain, i.e. codes
// the point absolute). Byte-identical to the corresponding slice of
// EncodePointSpan over the same sequence — the store's O(1) append path
// relies on that.
Status EncodeNextPoint(const TimedPoint* previous, const TimedPoint& point,
                       Codec codec, std::string* out);

// The value the decoder will reconstruct for `point`: identity for kRaw,
// the quantisation round-trip (1 ms / 1 cm grid) for kDelta. Block
// summaries are computed over storage values so decoded points can never
// escape their block's declared bounds.
TimedPoint StorageValue(const TimedPoint& point, Codec codec);

// Decodes exactly `count` points from the front of `*input`, advancing it.
Result<std::vector<TimedPoint>> DecodePoints(std::string_view* input,
                                             Codec codec, size_t count);

// Encoded payload size in bytes (convenience for accounting).
Result<size_t> EncodedSize(const Trajectory& trajectory, Codec codec);

}  // namespace stcomp

#endif  // STCOMP_STORE_CODEC_H_
