// Crash-safe durable trajectory store (DESIGN.md §13): an in-memory
// TrajectoryStore fronted by a write-ahead log and checkpointed into
// atomically-committed segment snapshots.
//
// Directory layout:
//
//   <dir>/seg-<n>.stseg   checkpoint snapshot n (SaveToFile byte image,
//                         written via temp + fsync + rename)
//   <dir>/wal.stwal       append-only log of mutations since the newest
//                         snapshot (wal.h framing, group commit)
//
// Mutations apply to memory immediately and stage a WAL record; Commit()
// makes the batch durable. Checkpoint() snapshots memory into the next
// segment, truncates the log and prunes older segments. Open() recovers:
// the newest readable segment is loaded (salvaging intact frames from a
// corrupted one), then every committed WAL batch is replayed on top.
// Recovery is salvage-first — a torn tail or a flipped bit costs the
// affected frame, never the store — and is observable:
//
//   stcomp_wal_replayed_total    committed records replayed at Open
//   stcomp_wal_salvaged_total    corrupted frames skipped (wal + segment)
//   stcomp_wal_torn_tail_total   recoveries that found a torn tail
//   stcomp_wal_recovery_seconds  recovery latency histogram

#ifndef STCOMP_STORE_SEGMENT_STORE_H_
#define STCOMP_STORE_SEGMENT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/store/query.h"
#include "stcomp/store/st_index.h"
#include "stcomp/store/trajectory_store.h"
#include "stcomp/store/wal.h"

namespace stcomp {

// What Open() found and did. Describe() renders the human-readable
// summary the CLI's --recover prints.
struct RecoveryReport {
  std::string segment_loaded;  // File name, empty if starting fresh.
  size_t segment_frames_loaded = 0;
  size_t segment_frames_salvaged = 0;
  bool segment_torn_tail = false;
  size_t wal_records_replayed = 0;
  size_t wal_frames_salvaged = 0;
  size_t wal_records_dropped_uncommitted = 0;
  bool wal_torn_tail = false;
  size_t replay_records_skipped = 0;  // Replayed records the store refused.
  // Spatio-temporal index outcome (DESIGN.md §17): loaded means the
  // persisted index.stidx validated against the recovered store; rebuilt
  // means it was absent, corrupt or stale and was reconstructed from the
  // store. Neither affects clean() — a rebuilt index is a performance
  // event, not data loss.
  bool index_loaded = false;
  bool index_rebuilt = false;
  double recovery_seconds = 0.0;
  std::vector<std::string> log;

  bool clean() const {
    return segment_frames_salvaged == 0 && !segment_torn_tail &&
           wal_frames_salvaged == 0 && !wal_torn_tail &&
           wal_records_dropped_uncommitted == 0 &&
           replay_records_skipped == 0;
  }
  std::string Describe() const;
};

// Read-only integrity scan of a store directory (--fsck).
struct FsckFileReport {
  std::string file;
  size_t bytes = 0;
  size_t frames_good = 0;
  size_t frames_salvaged = 0;
  bool torn_tail = false;
};

struct FsckReport {
  std::vector<FsckFileReport> files;
  bool clean() const {
    for (const FsckFileReport& file : files) {
      if (file.frames_salvaged > 0 || file.torn_tail) {
        return false;
      }
    }
    return true;
  }
  std::string Describe() const;
};

class SegmentStore {
 public:
  struct Options {
    Codec codec = Codec::kDelta;
    // Commit after every mutation (one record per batch). Convenient for
    // tools; high-throughput ingest should batch and call Commit().
    bool commit_every_record = false;
    // Crash-injection seam (testing::CrashPlan): consulted at every
    // durable write boundary of the WAL *and* of checkpoint snapshots.
    WriteFaultHook write_hook;
    // Persist the spatio-temporal index (index.stidx) at every
    // checkpoint so the next Open() can serve queries without a rebuild
    // scan. Queries work either way — recovery rebuilds a missing or
    // stale index from the store.
    bool persist_index = true;
    double index_cell_size_m = kDefaultIndexCellSizeM;
  };

  SegmentStore();
  explicit SegmentStore(Options options);

  // Creates `dir` if missing, recovers (newest segment + committed WAL
  // batches, salvaging), and opens the log for appending. Call exactly
  // once; the recovery outcome is left in last_recovery().
  Status Open(const std::string& dir);

  // Mutations: validate against the in-memory store first, then stage the
  // WAL record. A record is durable only after the next Commit() —
  // recovery loses at most the last uncommitted batch. After an injected
  // or real write failure the store is dead (kUnavailable): reopen a
  // fresh instance on the directory to recover.
  Status Append(const std::string& object_id, const TimedPoint& point);
  Status Insert(const std::string& object_id, const Trajectory& trajectory);
  Status Remove(const std::string& object_id);

  // Seals the current batch (write + fsync).
  Status Commit();

  // Commits, snapshots memory into the next segment (atomic rename),
  // truncates the WAL and prunes older segments. On success the log is
  // empty and recovery needs only the new segment.
  Status Checkpoint();

  // Query substrate (the in-memory view; always reflects every applied
  // mutation, committed or not).
  const TrajectoryStore& store() const { return store_; }

  // The spatio-temporal index over the current contents, rebuilt lazily
  // after mutations. The reference stays valid until the next mutation.
  const SpatioTemporalIndex& Index() const;

  // Index-accelerated query over the current contents (query.h).
  Result<QueryAnswer> Query(const QueryRequest& request) const;

  const RecoveryReport& last_recovery() const { return recovery_; }
  const std::string& directory() const { return dir_; }
  size_t staged_records() const { return wal_.staged_records(); }
  bool dead() const { return wal_.dead(); }

  // Read-only integrity scan of every segment + wal file in `dir`.
  static Result<FsckReport> Fsck(const std::string& dir);

 private:
  Status Recover();
  std::string SegmentPath(uint64_t sequence) const;
  std::string IndexPath() const;
  Status StageAndMaybeCommit(const WalRecord& record);

  Options options_;
  std::string dir_;
  TrajectoryStore store_;
  WalWriter wal_;
  uint64_t next_segment_ = 0;
  size_t boundary_ = 0;  // Global durable-write boundary counter.
  RecoveryReport recovery_;
  bool open_ = false;
  // Lazily refreshed after mutations (index_fresh_ flips false on every
  // mutation, and Index() rebuilds on demand).
  mutable std::unique_ptr<SpatioTemporalIndex> index_;
  mutable bool index_fresh_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STORE_SEGMENT_STORE_H_
