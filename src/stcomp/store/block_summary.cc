#include "stcomp/store/block_summary.h"

#include <algorithm>
#include <cmath>

#include "stcomp/store/varint.h"

namespace stcomp {

BlockSummary MakeBlockSummary(const TimedPoint& storage_point) {
  BlockSummary summary;
  summary.t_min = storage_point.t;
  summary.t_max = storage_point.t;
  summary.bounds.min = storage_point.position;
  summary.bounds.max = storage_point.position;
  return summary;
}

void ExtendBlockSummary(BlockSummary* summary,
                        const TimedPoint& storage_point) {
  summary->t_min = std::min(summary->t_min, storage_point.t);
  summary->t_max = std::max(summary->t_max, storage_point.t);
  summary->bounds.min.x = std::min(summary->bounds.min.x,
                                   storage_point.position.x);
  summary->bounds.min.y = std::min(summary->bounds.min.y,
                                   storage_point.position.y);
  summary->bounds.max.x = std::max(summary->bounds.max.x,
                                   storage_point.position.x);
  summary->bounds.max.y = std::max(summary->bounds.max.y,
                                   storage_point.position.y);
}

Result<std::vector<BlockSummary>> EncodeBlocked(const TimedPoint* points,
                                                size_t count, Codec codec,
                                                size_t block_points,
                                                std::string* out) {
  if (block_points == 0) {
    return InvalidArgumentError("block size must be positive");
  }
  std::vector<BlockSummary> blocks;
  const size_t base_offset = out->size();
  for (size_t first = 0; first < count; first += block_points) {
    const size_t n = std::min(block_points, count - first);
    BlockSummary summary = MakeBlockSummary(StorageValue(points[first], codec));
    summary.first_point = first;
    summary.byte_offset = out->size() - base_offset;
    const size_t before = out->size();
    STCOMP_RETURN_IF_ERROR(EncodePointSpan(points + first, n, codec, out));
    summary.count = static_cast<uint32_t>(n);
    summary.byte_length = static_cast<uint32_t>(out->size() - before);
    for (size_t i = 1; i < n; ++i) {
      ExtendBlockSummary(&summary, StorageValue(points[first + i], codec));
    }
    // Junction: the next block's first point ends this block's last
    // segment, so it belongs to this block's extents too.
    if (first + n < count) {
      ExtendBlockSummary(&summary, StorageValue(points[first + n], codec));
    }
    blocks.push_back(summary);
  }
  return blocks;
}

void AppendSummaryTable(const std::vector<BlockSummary>& blocks,
                        std::string* out) {
  for (const BlockSummary& block : blocks) {
    PutVarint(block.count, out);
    PutVarint(block.byte_length, out);
    PutDouble(block.t_min, out);
    PutDouble(block.t_max, out);
    PutDouble(block.bounds.min.x, out);
    PutDouble(block.bounds.min.y, out);
    PutDouble(block.bounds.max.x, out);
    PutDouble(block.bounds.max.y, out);
  }
}

Result<std::vector<BlockSummary>> ParseSummaryTable(std::string_view* input,
                                                    uint64_t block_count,
                                                    uint64_t expected_points) {
  // Every table entry needs at least 50 bytes (two varints + six doubles);
  // a count beyond the remaining bytes is corruption. Checking before
  // reserve() keeps a flipped bit from demanding an absurd allocation.
  if (block_count > input->size()) {
    return DataLossError("block count exceeds frame payload");
  }
  std::vector<BlockSummary> blocks;
  blocks.reserve(block_count);
  uint64_t points_seen = 0;
  uint64_t bytes_seen = 0;
  for (uint64_t i = 0; i < block_count; ++i) {
    BlockSummary block;
    STCOMP_ASSIGN_OR_RETURN(const uint64_t count, GetVarint(input));
    STCOMP_ASSIGN_OR_RETURN(const uint64_t byte_length, GetVarint(input));
    if (count == 0 || count > UINT32_MAX || byte_length == 0 ||
        byte_length > UINT32_MAX) {
      return DataLossError("block summary with out-of-range sizes");
    }
    block.count = static_cast<uint32_t>(count);
    block.byte_length = static_cast<uint32_t>(byte_length);
    STCOMP_ASSIGN_OR_RETURN(block.t_min, GetDouble(input));
    STCOMP_ASSIGN_OR_RETURN(block.t_max, GetDouble(input));
    STCOMP_ASSIGN_OR_RETURN(block.bounds.min.x, GetDouble(input));
    STCOMP_ASSIGN_OR_RETURN(block.bounds.min.y, GetDouble(input));
    STCOMP_ASSIGN_OR_RETURN(block.bounds.max.x, GetDouble(input));
    STCOMP_ASSIGN_OR_RETURN(block.bounds.max.y, GetDouble(input));
    if (!std::isfinite(block.t_min) || !std::isfinite(block.t_max) ||
        !std::isfinite(block.bounds.min.x) ||
        !std::isfinite(block.bounds.min.y) ||
        !std::isfinite(block.bounds.max.x) ||
        !std::isfinite(block.bounds.max.y) || block.t_min > block.t_max ||
        block.bounds.min.x > block.bounds.max.x ||
        block.bounds.min.y > block.bounds.max.y) {
      return DataLossError("block summary with invalid extents");
    }
    block.first_point = points_seen;
    block.byte_offset = bytes_seen;
    points_seen += count;
    bytes_seen += byte_length;
    blocks.push_back(block);
  }
  if (points_seen != expected_points) {
    return DataLossError("block summary point counts disagree with frame");
  }
  return blocks;
}

}  // namespace stcomp
