#include "stcomp/store/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stcomp/common/check.h"

namespace stcomp {

GridIndex::GridIndex(double cell_size_m) : cell_size_m_(cell_size_m) {
  STCOMP_CHECK(cell_size_m_ > 0.0);
}

GridIndex::CellKey GridIndex::KeyFor(Vec2 position) const {
  return {static_cast<int64_t>(std::floor(position.x / cell_size_m_)),
          static_cast<int64_t>(std::floor(position.y / cell_size_m_))};
}

void GridIndex::Insert(int64_t item, Vec2 position) {
  cells_[KeyFor(position)].entries.emplace_back(position, item);
  ++total_entries_;
}

std::vector<int64_t> GridIndex::QueryBox(const BoundingBox& box) const {
  std::vector<int64_t> hits;
  const CellKey lo = KeyFor(box.min);
  const CellKey hi = KeyFor(box.max);
  for (int64_t cx = lo.first; cx <= hi.first; ++cx) {
    // Range-scan the row within the ordered map instead of probing every
    // (cx, cy) pair: sparse rows cost only their occupied cells.
    const auto begin = cells_.lower_bound({cx, lo.second});
    const auto end = cells_.upper_bound({cx, hi.second});
    for (auto it = begin; it != end; ++it) {
      for (const auto& [position, item] : it->second.entries) {
        if (box.Contains(position)) {
          hits.push_back(item);
        }
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

Result<int64_t> GridIndex::Nearest(Vec2 query) const {
  if (total_entries_ == 0) {
    return NotFoundError("grid index is empty");
  }
  const CellKey centre = KeyFor(query);
  double best_distance = std::numeric_limits<double>::infinity();
  int64_t best_item = 0;
  bool found = false;
  // Expand square rings until one past the ring where a hit was found
  // (a closer point can still hide in the next ring's corner cells).
  for (int64_t ring = 0;; ++ring) {
    bool ring_has_cells = false;
    for (int64_t cx = centre.first - ring; cx <= centre.first + ring; ++cx) {
      for (int64_t cy = centre.second - ring; cy <= centre.second + ring;
           ++cy) {
        if (std::max(std::abs(cx - centre.first),
                     std::abs(cy - centre.second)) != ring) {
          continue;  // Interior already visited on earlier rings.
        }
        const auto it = cells_.find({cx, cy});
        if (it == cells_.end()) {
          continue;
        }
        ring_has_cells = true;
        for (const auto& [position, item] : it->second.entries) {
          const double d = Distance(position, query);
          if (d < best_distance ||
              (d == best_distance && found && item < best_item)) {
            best_distance = d;
            best_item = item;
            found = true;
          }
        }
      }
    }
    if (found && best_distance <= static_cast<double>(ring) * cell_size_m_) {
      // No unvisited cell can contain anything closer.
      break;
    }
    // Termination for sparse grids: once the ring radius exceeds the
    // span of all cells plus the query offset, stop.
    if (!ring_has_cells && ring > 0 && found) {
      break;
    }
    if (ring > 1 &&
        static_cast<size_t>(ring) > cells_.size() + 2 && !found) {
      // Pathological spread: fall back to a full scan.
      for (const auto& [key, cell] : cells_) {
        for (const auto& [position, item] : cell.entries) {
          const double d = Distance(position, query);
          if (d < best_distance) {
            best_distance = d;
            best_item = item;
            found = true;
          }
        }
      }
      break;
    }
  }
  return best_item;
}

}  // namespace stcomp
