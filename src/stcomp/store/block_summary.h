// Per-block summaries over the blocked codec stream (DESIGN.md §17).
//
// A trajectory's encoded payload is split into blocks of at most
// kDefaultBlockPoints coded points; the delta chain restarts at every
// block boundary so a block decodes independently of its predecessors.
// Each block carries a summary — point count, payload byte length, time
// span and bounding box — computed over *storage values* (the values the
// decoder reconstructs, i.e. the quantisation round-trip for kDelta), so
// a decoded point can never escape its block's declared extents.
//
// A block's extents cover its own coded points PLUS the junction point
// (the first point of the next block): every inter-point segment of the
// polyline then lies entirely within exactly one block's summary, which
// is what lets range/corridor/kNN queries skip blocks soundly without
// decoding them (store/query.h).

#ifndef STCOMP_STORE_BLOCK_SUMMARY_H_
#define STCOMP_STORE_BLOCK_SUMMARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/geom/geometry.h"
#include "stcomp/store/codec.h"

namespace stcomp {

// Coded points per block. Small enough that a selective query decodes a
// few dozen points per candidate block; large enough that the summary
// table stays a tiny fraction of the payload.
inline constexpr size_t kDefaultBlockPoints = 64;

struct BlockSummary {
  uint32_t count = 0;        // Coded points in this block (>= 1).
  uint32_t byte_length = 0;  // Encoded payload bytes of this block.
  // Extents over the block's points plus the junction point (see header
  // comment), in storage values.
  double t_min = 0.0;
  double t_max = 0.0;
  BoundingBox bounds;
  // Derived prefix sums (recomputed on parse, never serialised).
  uint64_t first_point = 0;
  uint64_t byte_offset = 0;

  bool OverlapsTime(double t0, double t1) const {
    return t_min <= t1 && t_max >= t0;
  }
};

// A summary whose extents are exactly the given storage-value point.
BlockSummary MakeBlockSummary(const TimedPoint& storage_point);

// Extends `summary`'s extents to cover a storage-value point.
void ExtendBlockSummary(BlockSummary* summary, const TimedPoint& storage_point);

// Encodes `count` points into blocks of at most `block_points`, appending
// the concatenated per-block payloads to `out` and returning the summary
// table (offsets filled relative to `out`'s length on entry). The bulk
// counterpart of the store's incremental per-point append — both produce
// identical bytes and summaries for the same point sequence.
Result<std::vector<BlockSummary>> EncodeBlocked(const TimedPoint* points,
                                                size_t count, Codec codec,
                                                size_t block_points,
                                                std::string* out);

// Serialises just the summary table: per block, count and byte_length as
// varints then the six extent doubles (fixed LE). Offsets are derived, so
// they are not written.
void AppendSummaryTable(const std::vector<BlockSummary>& blocks,
                        std::string* out);

// Parses a `block_count`-entry summary table from the front of `*input`,
// advancing it. Validates counts, byte lengths, finite ordered extents
// and that the point counts sum to `expected_points`; recomputes offsets.
// Any violation is kDataLoss.
Result<std::vector<BlockSummary>> ParseSummaryTable(std::string_view* input,
                                                    uint64_t block_count,
                                                    uint64_t expected_points);

}  // namespace stcomp

#endif  // STCOMP_STORE_BLOCK_SUMMARY_H_
