// Multi-partition durable store (DESIGN.md §16): N independent
// SegmentStore partitions under one root directory, one per fleet shard.
//
// Directory layout:
//
//   <dir>/shard-000/{seg-*.stseg, wal.stwal}
//   <dir>/shard-001/...
//   ...
//
// Each partition owns its own WAL and segment chain, so shards commit,
// checkpoint and recover independently — a torn write in one shard's WAL
// costs that shard at most its last uncommitted batch and never touches
// the others (the property the sharded crash-matrix test asserts).
// Open() recovers every partition, in parallel when asked; object ids
// route to partitions by FNV-1a 64 of the id, the same mapping
// ShardedFleetCompressor uses.
//
// Resharding requires an explicit migration: the shard an object's
// history lives in is a pure function of (id, shard count), so reopening
// an existing layout with a different count would route new fixes away
// from old data. Open() counts the shard-NNN directories on disk and
// refuses a mismatching request with kFailedPrecondition instead of
// silently splitting objects across partitions.

#ifndef STCOMP_STORE_PARTITIONED_STORE_H_
#define STCOMP_STORE_PARTITIONED_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/store/segment_store.h"

namespace stcomp {

// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
// the id→shard mapping is durable state (encoded in the on-disk layout
// and the STSM checkpoint manifest), so it must never change silently.
uint64_t Fnv1a64(std::string_view bytes);

// The partition `object_id` routes to under `num_shards` partitions.
size_t ShardOfObject(std::string_view object_id, size_t num_shards);

class PartitionedSegmentStore {
 public:
  struct Options {
    // 0 = adopt the on-disk layout if one exists, else hardware cores.
    // Nonzero must match an existing layout exactly (see header comment).
    size_t num_shards = 0;
    // Applied to every partition (codec, commit cadence, write hook).
    SegmentStore::Options shard_options;
    // When set, overrides shard_options.write_hook per partition — the
    // crash matrix uses this to fault exactly one shard's durable writes
    // while the others run clean.
    std::function<WriteFaultHook(size_t shard)> per_shard_hook;
    // Recover partitions on worker threads (one per partition). Off turns
    // Open() into a deterministic sequential scan — useful for debugging.
    bool parallel_recovery = true;
  };

  PartitionedSegmentStore();
  explicit PartitionedSegmentStore(Options options);

  // Creates `dir` if missing, resolves the shard count (see Options),
  // then opens/recovers every partition. kFailedPrecondition when the
  // requested count mismatches the on-disk layout.
  Status Open(const std::string& dir);

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(std::string_view object_id) const {
    return ShardOfObject(object_id, shards_.size());
  }

  // Direct partition access (the sharded fleet engine binds shard i's
  // sink to shard(i)). Synchronization is per-partition and the
  // caller's: two threads may use different partitions concurrently, but
  // not the same one.
  SegmentStore& shard(size_t index);
  const SegmentStore& shard(size_t index) const;

  // Routed single-object mutations/queries, for callers that don't manage
  // partitions themselves. Same durability contract as SegmentStore: a
  // mutation is durable only after that partition's next Commit().
  Status Append(const std::string& object_id, const TimedPoint& point);
  Status Insert(const std::string& object_id, const Trajectory& trajectory);
  Status Remove(const std::string& object_id);
  Result<Trajectory> Get(const std::string& object_id) const;

  // Cross-shard query fan-out (query.h): runs `request` against every
  // partition's index and merges the answers — object ids are disjoint
  // across shards, so set queries concatenate and re-sort by id, and
  // kNearest keeps the global top k by (distance, id). Stats and the
  // error bound aggregate across partitions. Answers are identical to
  // running the same query on an unsharded store with the same contents.
  Result<QueryAnswer> Query(const QueryRequest& request) const;

  // Whole-store orchestration: applies the operation to every partition,
  // returning the first error (remaining partitions are still attempted,
  // so one dead shard doesn't leave others uncommitted).
  Status Commit();
  Status Checkpoint();

  // Any partition dead (sticky write failure) ⇒ the store is dead.
  bool dead() const;

  // Sum of object counts across partitions.
  size_t object_count() const;

  const std::string& directory() const { return dir_; }

  // Per-partition recovery outcomes, concatenated ("shard-000: ...").
  std::string DescribeRecovery() const;
  bool recovery_clean() const;

  // Read-only integrity scan of every partition; file names come back
  // prefixed "shard-NNN/". kNotFound if `dir` holds no partitions.
  static Result<FsckReport> Fsck(const std::string& dir);

 private:
  Options options_;
  std::string dir_;
  std::vector<std::unique_ptr<SegmentStore>> shards_;
  bool open_ = false;
};

}  // namespace stcomp

#endif  // STCOMP_STORE_PARTITIONED_STORE_H_
