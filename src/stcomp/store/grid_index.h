// A uniform-grid spatial index over point samples: the classic cheap
// accelerator for box and nearest queries on moving-object stores (fits
// trajectory data well because samples are spread along paths rather than
// clustered). Items are caller-defined integer handles; one item may have
// many positions (all samples of a trajectory).

#ifndef STCOMP_STORE_GRID_INDEX_H_
#define STCOMP_STORE_GRID_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/geom/geometry.h"
#include "stcomp/store/trajectory_store.h"

namespace stcomp {

class GridIndex {
 public:
  // Precondition (checked): cell_size_m > 0.
  explicit GridIndex(double cell_size_m);

  void Insert(int64_t item, Vec2 position);
  size_t size() const { return total_entries_; }

  // Items with at least one inserted position inside `box`, ascending,
  // deduplicated. Touches only the covered cells.
  std::vector<int64_t> QueryBox(const BoundingBox& box) const;

  // Item owning the position closest to `query` (ties to the lower item
  // id). Expanding-ring search. kNotFound when the index is empty.
  Result<int64_t> Nearest(Vec2 query) const;

 private:
  struct Cell {
    std::vector<std::pair<Vec2, int64_t>> entries;
  };
  using CellKey = std::pair<int64_t, int64_t>;

  CellKey KeyFor(Vec2 position) const;

  const double cell_size_m_;
  std::map<CellKey, Cell> cells_;
  size_t total_entries_ = 0;
};

}  // namespace stcomp

#endif  // STCOMP_STORE_GRID_INDEX_H_
