#include "stcomp/store/serialization.h"

#include <array>
#include <fstream>
#include <sstream>

#include "stcomp/store/varint.h"

namespace stcomp {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'C', 'T'};
constexpr uint8_t kVersion = 1;
constexpr uint8_t kVersionBlocked = 2;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

Result<std::string> SerializeTrajectory(const Trajectory& trajectory,
                                        Codec codec) {
  std::string out(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(codec));
  PutVarint(trajectory.name().size(), &out);
  out += trajectory.name();
  PutVarint(trajectory.size(), &out);
  STCOMP_RETURN_IF_ERROR(EncodePoints(trajectory, codec, &out));
  const uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return out;
}

Result<std::string> SerializeBlockedFrame(
    std::string_view name, Codec codec,
    const std::vector<BlockSummary>& blocks, std::string_view payload) {
  uint64_t points = 0;
  uint64_t bytes = 0;
  for (const BlockSummary& block : blocks) {
    points += block.count;
    bytes += block.byte_length;
  }
  if (bytes != payload.size()) {
    return InvalidArgumentError(
        "block summary byte lengths disagree with the payload");
  }
  std::string out(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersionBlocked));
  out.push_back(static_cast<char>(codec));
  PutVarint(name.size(), &out);
  out += name;
  PutVarint(points, &out);
  PutVarint(blocks.size(), &out);
  AppendSummaryTable(blocks, &out);
  out += payload;
  const uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return out;
}

Result<std::string> SerializeTrajectoryBlocked(const Trajectory& trajectory,
                                               Codec codec,
                                               size_t block_points) {
  std::string payload;
  STCOMP_ASSIGN_OR_RETURN(
      const std::vector<BlockSummary> blocks,
      EncodeBlocked(trajectory.points().data(), trajectory.size(), codec,
                    block_points, &payload));
  return SerializeBlockedFrame(trajectory.name(), codec, blocks, payload);
}

Result<Trajectory> DeserializeTrajectory(std::string_view* input) {
  const std::string_view frame_start = *input;
  if (input->size() < 6) {
    return DataLossError("trajectory frame truncated");
  }
  if (input->substr(0, 4) != std::string_view(kMagic, 4)) {
    return DataLossError("bad magic; not a trajectory frame");
  }
  input->remove_prefix(4);
  const uint8_t version = static_cast<uint8_t>((*input)[0]);
  const uint8_t codec_byte = static_cast<uint8_t>((*input)[1]);
  input->remove_prefix(2);
  if (version != kVersion && version != kVersionBlocked) {
    return DataLossError("unsupported trajectory frame version");
  }
  if (codec_byte > static_cast<uint8_t>(Codec::kDelta)) {
    return DataLossError("unknown codec id");
  }
  const Codec codec = static_cast<Codec>(codec_byte);
  STCOMP_ASSIGN_OR_RETURN(const uint64_t name_size, GetVarint(input));
  if (input->size() < name_size) {
    return DataLossError("trajectory frame truncated in name");
  }
  std::string name(input->substr(0, name_size));
  input->remove_prefix(name_size);
  STCOMP_ASSIGN_OR_RETURN(const uint64_t count, GetVarint(input));
  std::vector<TimedPoint> points;
  if (version == kVersion) {
    STCOMP_ASSIGN_OR_RETURN(points, DecodePoints(input, codec, count));
  } else {
    STCOMP_ASSIGN_OR_RETURN(const uint64_t block_count, GetVarint(input));
    STCOMP_ASSIGN_OR_RETURN(const std::vector<BlockSummary> blocks,
                            ParseSummaryTable(input, block_count, count));
    if (count > input->size()) {
      return DataLossError("point count exceeds frame payload");
    }
    points.reserve(count);
    for (const BlockSummary& block : blocks) {
      if (block.byte_length > input->size()) {
        return DataLossError("block payload exceeds frame payload");
      }
      std::string_view slice = input->substr(0, block.byte_length);
      STCOMP_ASSIGN_OR_RETURN(std::vector<TimedPoint> decoded,
                              DecodePoints(&slice, codec, block.count));
      if (!slice.empty()) {
        return DataLossError("block payload longer than its coded points");
      }
      points.insert(points.end(), decoded.begin(), decoded.end());
      input->remove_prefix(block.byte_length);
    }
  }
  if (input->size() < 4) {
    return DataLossError("trajectory frame truncated before CRC");
  }
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>((*input)[i]))
                  << (8 * i);
  }
  const size_t frame_size =
      static_cast<size_t>(input->data() - frame_start.data());
  input->remove_prefix(4);
  if (Crc32(frame_start.substr(0, frame_size)) != stored_crc) {
    return DataLossError("trajectory frame CRC mismatch");
  }
  STCOMP_ASSIGN_OR_RETURN(Trajectory trajectory,
                          Trajectory::FromPoints(std::move(points)));
  trajectory.set_name(std::move(name));
  return trajectory;
}

std::vector<Trajectory> ScanTrajectoryFrames(std::string_view image,
                                             FrameScanStats* stats) {
  FrameScanStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  std::vector<Trajectory> frames;
  const std::string_view magic(kMagic, sizeof(kMagic));
  std::string_view cursor = image;
  while (!cursor.empty()) {
    const size_t offset = static_cast<size_t>(cursor.data() - image.data());
    std::string_view attempt = cursor;
    Result<Trajectory> frame = DeserializeTrajectory(&attempt);
    if (frame.ok()) {
      frames.push_back(*std::move(frame));
      ++stats->frames_good;
      cursor = attempt;
      continue;
    }
    // Resync: skip at least one byte, then hunt for the next magic. No
    // later magic means the failure is the interrupted final write.
    const size_t next = cursor.substr(1).find(magic);
    if (next == std::string_view::npos) {
      stats->torn_tail = true;
      stats->log.push_back("torn-tail@" + std::to_string(offset) + ": " +
                           frame.status().ToString());
      break;
    }
    ++stats->frames_salvaged_past;
    stats->log.push_back("salvaged-past@" + std::to_string(offset) + ": " +
                         frame.status().ToString());
    cursor.remove_prefix(next + 1);
  }
  return frames;
}

Status WriteTrajectoryFile(const Trajectory& trajectory, Codec codec,
                           const std::string& path) {
  STCOMP_ASSIGN_OR_RETURN(const std::string frame,
                          SerializeTrajectory(trajectory, codec));
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return IoError("cannot open " + path + " for writing");
  }
  file.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!file) {
    return IoError("write failed for " + path);
  }
  return Status::Ok();
}

Result<Trajectory> ReadTrajectoryFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string content = buffer.str();
  std::string_view cursor = content;
  return DeserializeTrajectory(&cursor);
}

}  // namespace stcomp
