#include "stcomp/store/segment_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/durable_file.h"
#include "stcomp/store/serialization.h"

namespace stcomp {

namespace {

constexpr std::string_view kWalFileName = "wal.stwal";
constexpr std::string_view kIndexFileName = "index.stidx";
constexpr std::string_view kSegmentPrefix = "seg-";
constexpr std::string_view kSegmentSuffix = ".stseg";

// Process-wide recovery series: recoveries across all store directories
// are one operational signal (DESIGN.md §13).
struct WalMetrics {
  obs::Counter* replayed;
  obs::Counter* salvaged;
  obs::Counter* torn_tail;
  obs::Histogram* recovery_seconds;
};

const WalMetrics& Metrics() {
  static const WalMetrics* const kMetrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return new WalMetrics{
        registry.GetCounter("stcomp_wal_replayed_total"),
        registry.GetCounter("stcomp_wal_salvaged_total"),
        registry.GetCounter("stcomp_wal_torn_tail_total"),
        registry.GetHistogram("stcomp_wal_recovery_seconds", {},
                              obs::LatencyBucketsSeconds())};
  }();
  return *kMetrics;
}

// seg-<8-digit sequence>.stseg; nullopt for anything else.
std::optional<uint64_t> ParseSegmentSequence(const std::string& name) {
  if (name.size() <= kSegmentPrefix.size() + kSegmentSuffix.size() ||
      name.compare(0, kSegmentPrefix.size(), kSegmentPrefix) != 0 ||
      name.compare(name.size() - kSegmentSuffix.size(),
                   kSegmentSuffix.size(), kSegmentSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(
      kSegmentPrefix.size(),
      name.size() - kSegmentPrefix.size() - kSegmentSuffix.size());
  if (digits.empty()) {
    return std::nullopt;
  }
  uint64_t sequence = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    sequence = sequence * 10 + static_cast<uint64_t>(c - '0');
  }
  return sequence;
}

// Segment files in `dir`, newest sequence first.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto sequence = ParseSegmentSequence(name)) {
      segments.emplace_back(*sequence, name);
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return segments;
}

}  // namespace

std::string RecoveryReport::Describe() const {
  std::string out = StrFormat(
      "recovery in %.3fs: segment %s (%zu frames, %zu salvaged%s), wal %zu "
      "records replayed, %zu frames salvaged, %zu uncommitted dropped%s, "
      "%zu replay conflicts",
      recovery_seconds,
      segment_loaded.empty() ? "<none>" : segment_loaded.c_str(),
      segment_frames_loaded, segment_frames_salvaged,
      segment_torn_tail ? ", torn tail" : "", wal_records_replayed,
      wal_frames_salvaged, wal_records_dropped_uncommitted,
      wal_torn_tail ? ", torn tail" : "", replay_records_skipped);
  if (index_loaded || index_rebuilt) {
    out += index_loaded ? ", index loaded" : ", index rebuilt";
  }
  for (const std::string& line : log) {
    out += "\n  " + line;
  }
  return out;
}

std::string FsckReport::Describe() const {
  std::string out =
      clean() ? std::string("fsck: clean") : std::string("fsck: CORRUPT");
  for (const FsckFileReport& file : files) {
    out += StrFormat("\n  %-24s %8zu bytes, %zu frames ok, %zu salvaged%s",
                     file.file.c_str(), file.bytes, file.frames_good,
                     file.frames_salvaged,
                     file.torn_tail ? ", torn tail" : "");
  }
  return out;
}

SegmentStore::SegmentStore() : SegmentStore(Options()) {}

SegmentStore::SegmentStore(Options options)
    : options_(std::move(options)), store_(options_.codec) {}

std::string SegmentStore::SegmentPath(uint64_t sequence) const {
  return dir_ + "/" + std::string(kSegmentPrefix) +
         StrFormat("%08llu", static_cast<unsigned long long>(sequence)) +
         std::string(kSegmentSuffix);
}

std::string SegmentStore::IndexPath() const {
  return dir_ + "/" + std::string(kIndexFileName);
}

const SpatioTemporalIndex& SegmentStore::Index() const {
  if (!index_fresh_ || index_ == nullptr) {
    index_ = std::make_unique<SpatioTemporalIndex>(
        SpatioTemporalIndex::BuildFromStore(store_,
                                            options_.index_cell_size_m));
    index_fresh_ = true;
  }
  return *index_;
}

Result<QueryAnswer> SegmentStore::Query(const QueryRequest& request) const {
  return RunQuery(store_, Index(), request);
}

Status SegmentStore::Open(const std::string& dir) {
  STCOMP_CHECK(!open_);
  STCOMP_TRACE_SPAN("segment_store.open", dir);
  dir_ = dir;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return IoError("cannot create store directory " + dir_ + ": " +
                   ec.message());
  }
  STCOMP_RETURN_IF_ERROR(Recover());
  STCOMP_RETURN_IF_ERROR(wal_.Open(dir_ + "/" + std::string(kWalFileName)));
  wal_.set_write_hook(options_.write_hook, &boundary_);
  open_ = true;
  return Status::Ok();
}

Status SegmentStore::Recover() {
  STCOMP_TRACE_SPAN("segment_store.recover", dir_);
  const auto started = std::chrono::steady_clock::now();
  recovery_ = RecoveryReport();

  // 1. Newest readable segment wins; a fully unreadable file falls back
  //    to the next older snapshot (and is logged).
  for (const auto& [sequence, name] : ListSegments(dir_)) {
    next_segment_ = std::max(next_segment_, sequence + 1);
    if (!recovery_.segment_loaded.empty()) {
      continue;  // Older snapshot; superseded.
    }
    const Result<std::string> image = ReadFileToString(dir_ + "/" + name);
    if (!image.ok()) {
      recovery_.log.push_back("unreadable segment " + name + ": " +
                              image.status().ToString());
      continue;
    }
    FrameScanStats stats;
    STCOMP_RETURN_IF_ERROR(store_.SalvageFromBuffer(*image, &stats));
    recovery_.segment_loaded = name;
    recovery_.segment_frames_loaded = stats.frames_good;
    recovery_.segment_frames_salvaged = stats.frames_salvaged_past;
    recovery_.segment_torn_tail = stats.torn_tail;
    for (std::string& line : stats.log) {
      recovery_.log.push_back(name + ": " + std::move(line));
    }
  }

  // 2. Replay every committed WAL batch on top. Conflicts (records the
  //    store refuses, e.g. re-replay after a crash between checkpoint and
  //    truncate) are skipped and logged: replay is idempotent.
  const std::string wal_path = dir_ + "/" + std::string(kWalFileName);
  if (std::filesystem::exists(wal_path)) {
    STCOMP_ASSIGN_OR_RETURN(const std::string image,
                            ReadFileToString(wal_path));
    WalScanStats stats;
    const std::vector<WalRecord> records = ScanWal(image, &stats);
    recovery_.wal_records_replayed = stats.records_replayed;
    recovery_.wal_frames_salvaged = stats.frames_salvaged_past;
    recovery_.wal_records_dropped_uncommitted =
        stats.records_dropped_uncommitted;
    recovery_.wal_torn_tail = stats.torn_tail;
    for (std::string& line : stats.log) {
      recovery_.log.push_back("wal: " + std::move(line));
    }
    for (const WalRecord& record : records) {
      Status applied = Status::Ok();
      switch (record.type) {
        case WalRecordType::kAppend:
          applied = store_.Append(record.object_id, record.point);
          break;
        case WalRecordType::kInsert: {
          std::string_view cursor = record.payload;
          Result<Trajectory> trajectory = DeserializeTrajectory(&cursor);
          if (!trajectory.ok()) {
            applied = trajectory.status();
          } else {
            applied = store_.Insert(record.object_id, *trajectory);
          }
          break;
        }
        case WalRecordType::kRemove:
          applied = store_.Remove(record.object_id);
          break;
        case WalRecordType::kCommit:
          break;  // ScanWal never returns markers.
      }
      if (!applied.ok()) {
        ++recovery_.replay_records_skipped;
        recovery_.log.push_back("replay skipped (" + record.object_id +
                                "): " + applied.ToString());
      }
    }
  }

  // 3. Spatio-temporal index: adopt the persisted one if it still
  //    describes the recovered contents (same ids, counts and payload
  //    CRCs); anything else — absent, corrupt, stale — triggers a rebuild
  //    from the store. Queries never see a wrong index either way.
  const std::string index_path = IndexPath();
  if (std::filesystem::exists(index_path)) {
    const Result<std::string> image = ReadFileToString(index_path);
    if (image.ok()) {
      Result<SpatioTemporalIndex> loaded =
          SpatioTemporalIndex::LoadFromBuffer(*image);
      if (loaded.ok() && loaded->Matches(store_)) {
        index_ = std::make_unique<SpatioTemporalIndex>(*std::move(loaded));
        index_fresh_ = true;
        recovery_.index_loaded = true;
      } else {
        recovery_.log.push_back(
            std::string(kIndexFileName) + ": " +
            (loaded.ok() ? std::string("stale (does not match the "
                                       "recovered store); rebuilding")
                         : loaded.status().ToString() + "; rebuilding"));
      }
    } else {
      recovery_.log.push_back(std::string(kIndexFileName) + ": " +
                              image.status().ToString() + "; rebuilding");
    }
  }
  if (!recovery_.index_loaded) {
    index_ = std::make_unique<SpatioTemporalIndex>(
        SpatioTemporalIndex::BuildFromStore(store_,
                                            options_.index_cell_size_m));
    index_fresh_ = true;
    recovery_.index_rebuilt = true;
  }

  recovery_.recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  Metrics().replayed->Increment(recovery_.wal_records_replayed);
  Metrics().salvaged->Increment(recovery_.segment_frames_salvaged +
                                recovery_.wal_frames_salvaged);
  if (recovery_.segment_torn_tail || recovery_.wal_torn_tail) {
    Metrics().torn_tail->Increment();
  }
  STCOMP_IF_METRICS(
      Metrics().recovery_seconds->Observe(recovery_.recovery_seconds));
  STCOMP_FLIGHT_EVENT(kRecovery, dir_, recovery_.wal_records_replayed,
                      recovery_.segment_frames_salvaged +
                          recovery_.wal_frames_salvaged);
  return Status::Ok();
}

Status SegmentStore::StageAndMaybeCommit(const WalRecord& record) {
  STCOMP_RETURN_IF_ERROR(wal_.Append(record));
  if (options_.commit_every_record) {
    return wal_.Commit();
  }
  return Status::Ok();
}

Status SegmentStore::Append(const std::string& object_id,
                            const TimedPoint& point) {
  STCOMP_CHECK(open_);
  // Head-sampled when it is itself the root; inherits the decision when a
  // pipeline push span is already open on this thread.
  STCOMP_TRACE_SPAN_SAMPLED("segment_store.append", object_id);
  // Memory first: the store's own validation (monotonic time, finite
  // values) decides what is worth logging.
  STCOMP_RETURN_IF_ERROR(store_.Append(object_id, point));
  index_fresh_ = false;
  STCOMP_FLIGHT_EVENT(kStoreAppend, object_id, boundary_, 0);
  return StageAndMaybeCommit(WalRecord::Append(object_id, point));
}

Status SegmentStore::Insert(const std::string& object_id,
                            const Trajectory& trajectory) {
  STCOMP_CHECK(open_);
  STCOMP_ASSIGN_OR_RETURN(std::string frame,
                          SerializeTrajectory(trajectory, options_.codec));
  STCOMP_RETURN_IF_ERROR(store_.Insert(object_id, trajectory));
  index_fresh_ = false;
  return StageAndMaybeCommit(WalRecord::Insert(object_id, std::move(frame)));
}

Status SegmentStore::Remove(const std::string& object_id) {
  STCOMP_CHECK(open_);
  STCOMP_RETURN_IF_ERROR(store_.Remove(object_id));
  index_fresh_ = false;
  return StageAndMaybeCommit(WalRecord::Remove(object_id));
}

Status SegmentStore::Commit() {
  STCOMP_CHECK(open_);
  return wal_.Commit();
}

Status SegmentStore::Checkpoint() {
  STCOMP_CHECK(open_);
  STCOMP_TRACE_SPAN("segment_store.checkpoint", dir_);
  // Seal staged records first so the snapshot is a superset of everything
  // ever acknowledged as committed.
  STCOMP_RETURN_IF_ERROR(wal_.Commit());
  STCOMP_ASSIGN_OR_RETURN(const std::string image,
                          store_.SerializeToString());
  const uint64_t sequence = next_segment_;
  STCOMP_RETURN_IF_ERROR(AtomicWriteFile(SegmentPath(sequence), image,
                                         options_.write_hook, &boundary_));
  ++next_segment_;
  // Persist the index next to the snapshot it describes. A crash at
  // either durable boundary is safe: the atomic rename leaves the old
  // index (or none), and recovery detects a stale one via Matches() and
  // rebuilds.
  if (options_.persist_index) {
    STCOMP_RETURN_IF_ERROR(AtomicWriteFile(IndexPath(),
                                           Index().SerializeToString(),
                                           options_.write_hook, &boundary_));
  }
  // The snapshot now owns the log's contents. A crash before the truncate
  // re-replays the log over the snapshot at the next Open — idempotent,
  // surfaced as replay conflicts.
  STCOMP_RETURN_IF_ERROR(wal_.Truncate());
  // Prune superseded snapshots; a failure here is cosmetic.
  for (const auto& [old_sequence, name] : ListSegments(dir_)) {
    if (old_sequence < sequence) {
      std::error_code ec;
      std::filesystem::remove(dir_ + "/" + name, ec);
    }
  }
  STCOMP_FLIGHT_EVENT(kCheckpoint, dir_, sequence, 0);
  return Status::Ok();
}

Result<FsckReport> SegmentStore::Fsck(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    return NotFoundError("no store directory at " + dir);
  }
  FsckReport report;
  std::vector<std::pair<uint64_t, std::string>> segments = ListSegments(dir);
  std::sort(segments.begin(), segments.end());
  for (const auto& [sequence, name] : segments) {
    STCOMP_ASSIGN_OR_RETURN(const std::string image,
                            ReadFileToString(dir + "/" + name));
    FrameScanStats stats;
    ScanTrajectoryFrames(image, &stats);
    report.files.push_back(FsckFileReport{name, image.size(),
                                          stats.frames_good,
                                          stats.frames_salvaged_past,
                                          stats.torn_tail});
  }
  const std::string wal_path = dir + "/" + std::string(kWalFileName);
  if (std::filesystem::exists(wal_path)) {
    STCOMP_ASSIGN_OR_RETURN(const std::string image,
                            ReadFileToString(wal_path));
    WalScanStats stats;
    ScanWal(image, &stats);
    report.files.push_back(FsckFileReport{
        std::string(kWalFileName), image.size(),
        stats.records_replayed + stats.records_dropped_uncommitted,
        stats.frames_salvaged_past, stats.torn_tail});
  }
  const std::string index_path = dir + "/" + std::string(kIndexFileName);
  if (std::filesystem::exists(index_path)) {
    STCOMP_ASSIGN_OR_RETURN(const std::string image,
                            ReadFileToString(index_path));
    // The index is one CRC-framed document: it either validates whole
    // (frames_good = indexed objects) or is corrupt (flagged; recovery
    // rebuilds it from the store, so this is never data loss).
    const Result<SpatioTemporalIndex> index =
        SpatioTemporalIndex::LoadFromBuffer(image);
    report.files.push_back(FsckFileReport{
        std::string(kIndexFileName), image.size(),
        index.ok() ? index->objects().size() : 0, index.ok() ? 0u : 1u,
        false});
  }
  if (!report.clean()) {
    size_t flagged = 0;
    for (const FsckFileReport& file : report.files) {
      if (file.frames_salvaged > 0 || file.torn_tail) {
        ++flagged;
      }
    }
    STCOMP_FLIGHT_EVENT(kFsckCorrupt, dir, flagged, report.files.size());
    STCOMP_IF_METRICS(
        obs::FlightRecorder::DumpGlobal("fsck found corruption in " + dir));
  }
  return report;
}

}  // namespace stcomp
