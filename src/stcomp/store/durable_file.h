// Crash-safe file primitives for the durability layer (DESIGN.md §13).
//
// AtomicWriteFile implements the classic commit protocol: write the full
// image to `<path>.tmp`, fsync the file, rename it over `path`, fsync the
// containing directory. A crash at any step leaves either the old file or
// the new one — never a torn mixture — so readers see only committed
// images.
//
// Every durable write funnels through a *write boundary*: one physical
// write/rename/truncate step at which a crash could interrupt the process.
// The optional WriteFaultHook is the deterministic crash-injection seam
// the testing::CrashPlan harness drives: consulted once per boundary, it
// can let the write proceed, kill the writer before the write, or leave a
// short/torn prefix behind — exactly the states a real power cut produces.
// Production code never sets a hook; the seam costs one null check.

#ifndef STCOMP_STORE_DURABLE_FILE_H_
#define STCOMP_STORE_DURABLE_FILE_H_

#include <functional>
#include <string>
#include <string_view>

#include "stcomp/common/result.h"

namespace stcomp {

// What the injected fault does to the bytes of one write boundary.
struct WriteFault {
  enum class Action {
    kProceed,     // No fault: the write happens in full.
    kCrash,       // Process dies before the write: no bytes land.
    kShortWrite,  // Only the first `keep_bytes` land, then the process dies.
    kTornWrite,   // `keep_bytes` land intact, then `garbage`, then death.
  };
  Action action = Action::kProceed;
  size_t keep_bytes = 0;
  std::string garbage;
};

// Consulted once per write boundary with the bytes about to be written
// (empty for non-byte boundaries such as rename or truncate, where any
// non-kProceed action crashes before the step). `boundary` is the caller's
// running boundary index, so a plan can target "the k-th durable step".
using WriteFaultHook =
    std::function<WriteFault(size_t boundary, std::string_view bytes)>;

// Writes `contents` to `path` via temp file + fsync + rename + directory
// fsync. On any error the previous file at `path` is left untouched.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// As above with the crash-injection seam: `*boundary` is incremented once
// per durable step; a firing hook aborts the protocol mid-flight and
// returns kUnavailable (the "process died here" signal — the caller must
// treat the writer as gone). `hook` may be null.
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const WriteFaultHook& hook, size_t* boundary);

// Reads the whole file; kIoError if it cannot be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

// Low-level boundary helpers shared with the WAL writer.
//
// Writes all of `bytes` to `fd`, honouring an injected fault at this
// boundary: on kShortWrite/kTornWrite the decided prefix lands before the
// kUnavailable "process died here" status is returned. `path` is for
// error messages only.
Status FaultableWriteFd(int fd, std::string_view bytes,
                        const WriteFaultHook& hook, size_t* boundary,
                        const std::string& path);

// A non-byte boundary (rename, truncate, fsync): any injected fault means
// the process died before the step; returns kUnavailable then.
Status FaultPoint(const WriteFaultHook& hook, size_t* boundary,
                  std::string_view what);

}  // namespace stcomp

#endif  // STCOMP_STORE_DURABLE_FILE_H_
