#include "stcomp/store/partitioned_store.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <thread>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/common/strings.h"
#include "stcomp/obs/trace.h"

namespace stcomp {

namespace {

constexpr std::string_view kShardDirPrefix = "shard-";

std::string ShardDirName(size_t index) {
  return StrFormat("shard-%03zu", index);
}

// shard-<digits> → index; nullopt for anything else.
std::optional<size_t> ParseShardIndex(const std::string& name) {
  if (name.size() <= kShardDirPrefix.size() ||
      name.compare(0, kShardDirPrefix.size(), kShardDirPrefix) != 0) {
    return std::nullopt;
  }
  size_t index = 0;
  for (size_t i = kShardDirPrefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    index = index * 10 + static_cast<size_t>(c - '0');
  }
  return index;
}

// Existing shard directories under `dir`, as a validated 0..N-1 count.
// kDataLoss if the numbering has holes or duplicates — a partial layout
// means a mangled store, not a smaller fleet.
Result<size_t> CountShardDirs(const std::string& dir) {
  std::vector<size_t> indices;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (const auto index = ParseShardIndex(name)) {
      indices.push_back(*index);
    }
  }
  std::sort(indices.begin(), indices.end());
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != i) {
      return DataLossError(StrFormat(
          "store at %s has a broken partition layout: expected shard-%03zu, "
          "found shard-%03zu",
          dir.c_str(), i, indices[i]));
    }
  }
  return indices.size();
}

size_t DefaultShardCount() {
  const unsigned cores = std::thread::hardware_concurrency();
  return cores > 0 ? static_cast<size_t>(cores) : 1;
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis.
  for (const char c : bytes) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;  // FNV prime.
  }
  return hash;
}

size_t ShardOfObject(std::string_view object_id, size_t num_shards) {
  STCOMP_CHECK(num_shards > 0);
  return static_cast<size_t>(Fnv1a64(object_id) %
                             static_cast<uint64_t>(num_shards));
}

PartitionedSegmentStore::PartitionedSegmentStore()
    : PartitionedSegmentStore(Options()) {}

PartitionedSegmentStore::PartitionedSegmentStore(Options options)
    : options_(std::move(options)) {}

Status PartitionedSegmentStore::Open(const std::string& dir) {
  STCOMP_CHECK(!open_);
  STCOMP_TRACE_SPAN("partitioned_store.open", dir);
  dir_ = dir;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return IoError("cannot create store directory " + dir_ + ": " +
                   ec.message());
  }
  STCOMP_ASSIGN_OR_RETURN(const size_t on_disk, CountShardDirs(dir_));
  size_t count = options_.num_shards;
  if (count == 0) {
    count = on_disk > 0 ? on_disk : DefaultShardCount();
  } else if (on_disk > 0 && count != on_disk) {
    return FailedPreconditionError(StrFormat(
        "store at %s is laid out with %zu shards but %zu were requested; "
        "resharding requires an explicit migration (reopen with %zu shards "
        "and rewrite into a new layout)",
        dir_.c_str(), on_disk, count, on_disk));
  }
  shards_.clear();
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    SegmentStore::Options shard_options = options_.shard_options;
    if (options_.per_shard_hook) {
      shard_options.write_hook = options_.per_shard_hook(i);
    }
    shards_.push_back(std::make_unique<SegmentStore>(shard_options));
  }
  std::vector<Status> results(count, Status::Ok());
  const auto open_shard = [&](size_t i) {
    results[i] = shards_[i]->Open(dir_ + "/" + ShardDirName(i));
  };
  if (options_.parallel_recovery && count > 1) {
    // One recovery thread per partition: recovery cost is dominated by
    // reading + replaying that partition's files, which is independent
    // work (separate directories, separate metric atomics).
    std::vector<std::thread> workers;
    workers.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      workers.emplace_back(open_shard, i);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      open_shard(i);
    }
  }
  for (size_t i = 0; i < count; ++i) {
    if (!results[i].ok()) {
      return results[i];
    }
  }
  open_ = true;
  return Status::Ok();
}

SegmentStore& PartitionedSegmentStore::shard(size_t index) {
  STCOMP_CHECK(index < shards_.size());
  return *shards_[index];
}

const SegmentStore& PartitionedSegmentStore::shard(size_t index) const {
  STCOMP_CHECK(index < shards_.size());
  return *shards_[index];
}

Status PartitionedSegmentStore::Append(const std::string& object_id,
                                       const TimedPoint& point) {
  return shard(ShardOf(object_id)).Append(object_id, point);
}

Status PartitionedSegmentStore::Insert(const std::string& object_id,
                                       const Trajectory& trajectory) {
  return shard(ShardOf(object_id)).Insert(object_id, trajectory);
}

Status PartitionedSegmentStore::Remove(const std::string& object_id) {
  return shard(ShardOf(object_id)).Remove(object_id);
}

Result<Trajectory> PartitionedSegmentStore::Get(
    const std::string& object_id) const {
  return shard(ShardOf(object_id)).store().Get(object_id);
}

Result<QueryAnswer> PartitionedSegmentStore::Query(
    const QueryRequest& request) const {
  STCOMP_CHECK(open_);
  QueryAnswer merged;
  for (const auto& shard : shards_) {
    STCOMP_ASSIGN_OR_RETURN(const QueryAnswer answer,
                            shard->Query(request));
    merged.error_bound_m = std::max(merged.error_bound_m,
                                    answer.error_bound_m);
    merged.stats.objects_considered += answer.stats.objects_considered;
    merged.stats.blocks_total += answer.stats.blocks_total;
    merged.stats.blocks_considered += answer.stats.blocks_considered;
    merged.stats.blocks_decoded += answer.stats.blocks_decoded;
    merged.hits.insert(merged.hits.end(), answer.hits.begin(),
                       answer.hits.end());
  }
  if (request.type == QueryType::kNearest) {
    // Each shard returned its own top k; the global top k is within their
    // union. Ties break to the lower id, as in the single-store engine.
    std::sort(merged.hits.begin(), merged.hits.end(),
              [](const QueryHit& a, const QueryHit& b) {
                if (a.distance_m != b.distance_m) {
                  return a.distance_m < b.distance_m;
                }
                return a.id < b.id;
              });
    if (merged.hits.size() > request.k) {
      merged.hits.resize(request.k);
    }
  } else {
    std::sort(merged.hits.begin(), merged.hits.end(),
              [](const QueryHit& a, const QueryHit& b) {
                return a.id < b.id;
              });
  }
  return merged;
}

Status PartitionedSegmentStore::Commit() {
  Status first = Status::Ok();
  for (const auto& shard : shards_) {
    const Status status = shard->Commit();
    if (!status.ok() && first.ok()) {
      first = status;
    }
  }
  return first;
}

Status PartitionedSegmentStore::Checkpoint() {
  Status first = Status::Ok();
  for (const auto& shard : shards_) {
    const Status status = shard->Checkpoint();
    if (!status.ok() && first.ok()) {
      first = status;
    }
  }
  return first;
}

bool PartitionedSegmentStore::dead() const {
  for (const auto& shard : shards_) {
    if (shard->dead()) {
      return true;
    }
  }
  return false;
}

size_t PartitionedSegmentStore::object_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->store().object_count();
  }
  return total;
}

std::string PartitionedSegmentStore::DescribeRecovery() const {
  std::string out =
      StrFormat("partitioned store: %zu shards", shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    out += "\n" + ShardDirName(i) + ": " +
           shards_[i]->last_recovery().Describe();
  }
  return out;
}

bool PartitionedSegmentStore::recovery_clean() const {
  for (const auto& shard : shards_) {
    if (!shard->last_recovery().clean()) {
      return false;
    }
  }
  return true;
}

Result<FsckReport> PartitionedSegmentStore::Fsck(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    return NotFoundError("no store directory at " + dir);
  }
  STCOMP_ASSIGN_OR_RETURN(const size_t count, CountShardDirs(dir));
  if (count == 0) {
    return NotFoundError("no shard-NNN partitions under " + dir);
  }
  FsckReport merged;
  for (size_t i = 0; i < count; ++i) {
    const std::string shard_dir = ShardDirName(i);
    STCOMP_ASSIGN_OR_RETURN(const FsckReport report,
                            SegmentStore::Fsck(dir + "/" + shard_dir));
    for (FsckFileReport file : report.files) {
      file.file = shard_dir + "/" + file.file;
      merged.files.push_back(std::move(file));
    }
  }
  return merged;
}

}  // namespace stcomp
