#include "stcomp/store/codec.h"

#include <cmath>

#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"
#include "stcomp/store/varint.h"

namespace stcomp {

namespace {

// Per-codec, per-direction byte/point counters and sampled timing. The
// store's incremental append path encodes two-point suffixes, so these
// sit on a hot path: counters are exact relaxed atomics, timing is 1/16
// sampled (see obs/timer.h).
struct CodecMetrics {
  obs::Counter* calls;
  obs::Counter* bytes;
  obs::Counter* points;
  obs::Histogram* seconds;
};

CodecMetrics MakeCodecMetrics(const char* direction, const char* codec) {
  auto& registry = obs::MetricsRegistry::Global();
  const obs::LabelSet labels{{"codec", codec}};
  const std::string prefix = std::string("stcomp_store_") + direction;
  return {registry.GetCounter(prefix + "_calls_total", labels),
          registry.GetCounter(prefix + "_bytes_total", labels),
          registry.GetCounter(prefix + "_points_total", labels),
          registry.GetHistogram(prefix + "_seconds", labels,
                                obs::LatencyBucketsSeconds())};
}

const CodecMetrics& EncodeMetrics(Codec codec) {
  static const CodecMetrics* const kRaw =
      new CodecMetrics(MakeCodecMetrics("encode", "raw"));
  static const CodecMetrics* const kDelta =
      new CodecMetrics(MakeCodecMetrics("encode", "delta"));
  return codec == Codec::kRaw ? *kRaw : *kDelta;
}

const CodecMetrics& DecodeMetrics(Codec codec) {
  static const CodecMetrics* const kRaw =
      new CodecMetrics(MakeCodecMetrics("decode", "raw"));
  static const CodecMetrics* const kDelta =
      new CodecMetrics(MakeCodecMetrics("decode", "delta"));
  return codec == Codec::kRaw ? *kRaw : *kDelta;
}

Result<int64_t> Quantise(double value, double quantum) {
  const double scaled = std::round(value / quantum);
  if (!(std::abs(scaled) < 9.0e18)) {
    return OutOfRangeError("value too large for quantised encoding");
  }
  return static_cast<int64_t>(scaled);
}

Status EncodePointsImpl(const TimedPoint* points, size_t count, Codec codec,
                        std::string* out) {
  switch (codec) {
    case Codec::kRaw:
      for (size_t i = 0; i < count; ++i) {
        PutDouble(points[i].t, out);
        PutDouble(points[i].position.x, out);
        PutDouble(points[i].position.y, out);
      }
      return Status::Ok();
    case Codec::kDelta: {
      int64_t previous_t = 0;
      int64_t previous_x = 0;
      int64_t previous_y = 0;
      for (size_t i = 0; i < count; ++i) {
        const TimedPoint& point = points[i];
        STCOMP_ASSIGN_OR_RETURN(const int64_t t,
                                Quantise(point.t, kTimeQuantumS));
        STCOMP_ASSIGN_OR_RETURN(const int64_t x,
                                Quantise(point.position.x, kCoordQuantumM));
        STCOMP_ASSIGN_OR_RETURN(const int64_t y,
                                Quantise(point.position.y, kCoordQuantumM));
        PutSignedVarint(t - previous_t, out);
        PutSignedVarint(x - previous_x, out);
        PutSignedVarint(y - previous_y, out);
        previous_t = t;
        previous_x = x;
        previous_y = y;
      }
      return Status::Ok();
    }
  }
  return InternalError("unknown codec");
}

Result<std::vector<TimedPoint>> DecodePointsImpl(std::string_view* input,
                                                 Codec codec, size_t count) {
  // `count` comes off the wire; every point needs at least one byte per
  // field under either codec, so a count beyond the remaining payload is
  // corruption. Checking before reserve() keeps a flipped bit in the count
  // varint from demanding an absurd allocation (found by tests/fuzz).
  if (count > input->size()) {
    return DataLossError("point count exceeds frame payload");
  }
  std::vector<TimedPoint> points;
  points.reserve(count);
  switch (codec) {
    case Codec::kRaw:
      for (size_t i = 0; i < count; ++i) {
        STCOMP_ASSIGN_OR_RETURN(const double t, GetDouble(input));
        STCOMP_ASSIGN_OR_RETURN(const double x, GetDouble(input));
        STCOMP_ASSIGN_OR_RETURN(const double y, GetDouble(input));
        points.emplace_back(t, x, y);
      }
      return points;
    case Codec::kDelta: {
      int64_t t = 0;
      int64_t x = 0;
      int64_t y = 0;
      for (size_t i = 0; i < count; ++i) {
        STCOMP_ASSIGN_OR_RETURN(const int64_t dt, GetSignedVarint(input));
        STCOMP_ASSIGN_OR_RETURN(const int64_t dx, GetSignedVarint(input));
        STCOMP_ASSIGN_OR_RETURN(const int64_t dy, GetSignedVarint(input));
        t += dt;
        x += dx;
        y += dy;
        points.emplace_back(static_cast<double>(t) * kTimeQuantumS,
                            static_cast<double>(x) * kCoordQuantumM,
                            static_cast<double>(y) * kCoordQuantumM);
      }
      return points;
    }
  }
  return InternalError("unknown codec");
}

}  // namespace

Status EncodePoints(const Trajectory& trajectory, Codec codec,
                    std::string* out) {
  return EncodePointSpan(trajectory.points().data(), trajectory.size(), codec,
                         out);
}

Status EncodePointSpan(const TimedPoint* points, size_t count, Codec codec,
                       std::string* out) {
  const CodecMetrics& metrics = EncodeMetrics(codec);
  STCOMP_SCOPED_TIMER_SAMPLED(metrics.seconds);
  const size_t before = out->size();
  STCOMP_RETURN_IF_ERROR(EncodePointsImpl(points, count, codec, out));
  metrics.calls->Increment();
  metrics.points->Increment(count);
  metrics.bytes->Increment(out->size() - before);
  return Status::Ok();
}

Status EncodeNextPoint(const TimedPoint* previous, const TimedPoint& point,
                       Codec codec, std::string* out) {
  switch (codec) {
    case Codec::kRaw:
      PutDouble(point.t, out);
      PutDouble(point.position.x, out);
      PutDouble(point.position.y, out);
      return Status::Ok();
    case Codec::kDelta: {
      int64_t previous_t = 0;
      int64_t previous_x = 0;
      int64_t previous_y = 0;
      if (previous != nullptr) {
        STCOMP_ASSIGN_OR_RETURN(previous_t,
                                Quantise(previous->t, kTimeQuantumS));
        STCOMP_ASSIGN_OR_RETURN(
            previous_x, Quantise(previous->position.x, kCoordQuantumM));
        STCOMP_ASSIGN_OR_RETURN(
            previous_y, Quantise(previous->position.y, kCoordQuantumM));
      }
      STCOMP_ASSIGN_OR_RETURN(const int64_t t, Quantise(point.t, kTimeQuantumS));
      STCOMP_ASSIGN_OR_RETURN(const int64_t x,
                              Quantise(point.position.x, kCoordQuantumM));
      STCOMP_ASSIGN_OR_RETURN(const int64_t y,
                              Quantise(point.position.y, kCoordQuantumM));
      PutSignedVarint(t - previous_t, out);
      PutSignedVarint(x - previous_x, out);
      PutSignedVarint(y - previous_y, out);
      return Status::Ok();
    }
  }
  return InternalError("unknown codec");
}

TimedPoint StorageValue(const TimedPoint& point, Codec codec) {
  if (codec == Codec::kRaw) {
    return point;
  }
  return TimedPoint(
      std::round(point.t / kTimeQuantumS) * kTimeQuantumS,
      std::round(point.position.x / kCoordQuantumM) * kCoordQuantumM,
      std::round(point.position.y / kCoordQuantumM) * kCoordQuantumM);
}

Result<std::vector<TimedPoint>> DecodePoints(std::string_view* input,
                                             Codec codec, size_t count) {
  const CodecMetrics& metrics = DecodeMetrics(codec);
  STCOMP_SCOPED_TIMER_SAMPLED(metrics.seconds);
  const size_t before = input->size();
  STCOMP_ASSIGN_OR_RETURN(std::vector<TimedPoint> points,
                          DecodePointsImpl(input, codec, count));
  metrics.calls->Increment();
  metrics.points->Increment(points.size());
  metrics.bytes->Increment(before - input->size());
  return points;
}

Result<size_t> EncodedSize(const Trajectory& trajectory, Codec codec) {
  std::string buffer;
  STCOMP_RETURN_IF_ERROR(EncodePoints(trajectory, codec, &buffer));
  return buffer.size();
}

}  // namespace stcomp
