#include "stcomp/store/codec.h"

#include <cmath>

#include "stcomp/store/varint.h"

namespace stcomp {

namespace {

Result<int64_t> Quantise(double value, double quantum) {
  const double scaled = std::round(value / quantum);
  if (!(std::abs(scaled) < 9.0e18)) {
    return OutOfRangeError("value too large for quantised encoding");
  }
  return static_cast<int64_t>(scaled);
}

}  // namespace

Status EncodePoints(const Trajectory& trajectory, Codec codec,
                    std::string* out) {
  switch (codec) {
    case Codec::kRaw:
      for (const TimedPoint& point : trajectory.points()) {
        PutDouble(point.t, out);
        PutDouble(point.position.x, out);
        PutDouble(point.position.y, out);
      }
      return Status::Ok();
    case Codec::kDelta: {
      int64_t previous_t = 0;
      int64_t previous_x = 0;
      int64_t previous_y = 0;
      for (const TimedPoint& point : trajectory.points()) {
        STCOMP_ASSIGN_OR_RETURN(const int64_t t,
                                Quantise(point.t, kTimeQuantumS));
        STCOMP_ASSIGN_OR_RETURN(const int64_t x,
                                Quantise(point.position.x, kCoordQuantumM));
        STCOMP_ASSIGN_OR_RETURN(const int64_t y,
                                Quantise(point.position.y, kCoordQuantumM));
        PutSignedVarint(t - previous_t, out);
        PutSignedVarint(x - previous_x, out);
        PutSignedVarint(y - previous_y, out);
        previous_t = t;
        previous_x = x;
        previous_y = y;
      }
      return Status::Ok();
    }
  }
  return InternalError("unknown codec");
}

Result<std::vector<TimedPoint>> DecodePoints(std::string_view* input,
                                             Codec codec, size_t count) {
  std::vector<TimedPoint> points;
  points.reserve(count);
  switch (codec) {
    case Codec::kRaw:
      for (size_t i = 0; i < count; ++i) {
        STCOMP_ASSIGN_OR_RETURN(const double t, GetDouble(input));
        STCOMP_ASSIGN_OR_RETURN(const double x, GetDouble(input));
        STCOMP_ASSIGN_OR_RETURN(const double y, GetDouble(input));
        points.emplace_back(t, x, y);
      }
      return points;
    case Codec::kDelta: {
      int64_t t = 0;
      int64_t x = 0;
      int64_t y = 0;
      for (size_t i = 0; i < count; ++i) {
        STCOMP_ASSIGN_OR_RETURN(const int64_t dt, GetSignedVarint(input));
        STCOMP_ASSIGN_OR_RETURN(const int64_t dx, GetSignedVarint(input));
        STCOMP_ASSIGN_OR_RETURN(const int64_t dy, GetSignedVarint(input));
        t += dt;
        x += dx;
        y += dy;
        points.emplace_back(static_cast<double>(t) * kTimeQuantumS,
                            static_cast<double>(x) * kCoordQuantumM,
                            static_cast<double>(y) * kCoordQuantumM);
      }
      return points;
    }
  }
  return InternalError("unknown codec");
}

Result<size_t> EncodedSize(const Trajectory& trajectory, Codec codec) {
  std::string buffer;
  STCOMP_RETURN_IF_ERROR(EncodePoints(trajectory, codec, &buffer));
  return buffer.size();
}

}  // namespace stcomp
