#include "stcomp/store/trajectory_store.h"

#include <algorithm>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/durable_file.h"
#include "stcomp/store/serialization.h"

namespace stcomp {

namespace {

// Process-wide store-layer series (appends across all store instances are
// one ingestion stream); append timing is 1/16 sampled — the live-tracking
// path calls Append once per committed fix.
struct StoreMetrics {
  obs::Counter* appends;
  obs::Counter* inserts;
  obs::Histogram* append_seconds;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics* const kMetrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return new StoreMetrics{
        registry.GetCounter("stcomp_store_append_total"),
        registry.GetCounter("stcomp_store_insert_total"),
        registry.GetHistogram("stcomp_store_append_seconds", {},
                              obs::LatencyBucketsSeconds())};
  }();
  return *kMetrics;
}

}  // namespace

Status TrajectoryStore::EncodeInto(const Trajectory& trajectory,
                                   Entry* entry) const {
  entry->encoded.clear();
  STCOMP_ASSIGN_OR_RETURN(
      entry->blocks,
      EncodeBlocked(trajectory.points().data(), trajectory.size(), codec_,
                    kDefaultBlockPoints, &entry->encoded));
  entry->num_points = trajectory.size();
  entry->name = trajectory.name();
  entry->decoded = trajectory;
  return Status::Ok();
}

const TrajectoryStore::Entry* TrajectoryStore::FindEntry(
    std::string_view object_id) const {
  const auto it = entries_.find(object_id);
  return it == entries_.end() ? nullptr : &it->second;
}

Status TrajectoryStore::Insert(const std::string& object_id,
                               const Trajectory& trajectory) {
  if (entries_.contains(object_id)) {
    return AlreadyExistsError("object '" + object_id + "' already stored");
  }
  Entry entry;
  STCOMP_RETURN_IF_ERROR(EncodeInto(trajectory, &entry));
  entries_.emplace(object_id, std::move(entry));
  Metrics().inserts->Increment();
  return Status::Ok();
}

Status TrajectoryStore::Append(const std::string& object_id,
                               const TimedPoint& point) {
  STCOMP_SCOPED_TIMER_SAMPLED(Metrics().append_seconds);
  Metrics().appends->Increment();
  auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    Trajectory fresh;
    STCOMP_RETURN_IF_ERROR(fresh.Append(point));
    fresh.set_name(object_id);
    Entry entry;
    STCOMP_RETURN_IF_ERROR(EncodeInto(fresh, &entry));
    entries_.emplace(object_id, std::move(entry));
    return Status::Ok();
  }
  Entry& entry = it->second;
  STCOMP_RETURN_IF_ERROR(entry.decoded.Append(point));
  // Appends are incremental: only the new point's bytes are encoded, so
  // live tracking is O(1) per fix. When the tail block is full, a new
  // block starts with a fresh chain — byte- and summary-identical to a
  // bulk EncodeInto of the whole point sequence.
  const Trajectory& decoded = entry.decoded;
  const size_t n = decoded.size();
  const TimedPoint storage = StorageValue(point, codec_);
  const size_t before = entry.encoded.size();
  if (entry.blocks.empty() || entry.blocks.back().count >= kDefaultBlockPoints) {
    if (!entry.blocks.empty()) {
      // The new point is the previous block's junction: its last segment
      // ends here.
      ExtendBlockSummary(&entry.blocks.back(), storage);
    }
    BlockSummary block = MakeBlockSummary(storage);
    block.first_point = n - 1;
    block.byte_offset = before;
    STCOMP_RETURN_IF_ERROR(
        EncodeNextPoint(nullptr, point, codec_, &entry.encoded));
    block.count = 1;
    block.byte_length = static_cast<uint32_t>(entry.encoded.size() - before);
    entry.blocks.push_back(block);
  } else {
    STCOMP_RETURN_IF_ERROR(
        EncodeNextPoint(&decoded[n - 2], point, codec_, &entry.encoded));
    BlockSummary& block = entry.blocks.back();
    ++block.count;
    block.byte_length += static_cast<uint32_t>(entry.encoded.size() - before);
    ExtendBlockSummary(&block, storage);
  }
  entry.num_points = n;
  return Status::Ok();
}

Result<Trajectory> TrajectoryStore::Get(const std::string& object_id) const {
  const Entry* entry = FindEntry(object_id);
  if (entry == nullptr) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  std::vector<TimedPoint> points;
  points.reserve(entry->num_points);
  std::string_view cursor = entry->encoded;
  // Each block is its own chain; decode block by block.
  for (const BlockSummary& block : entry->blocks) {
    STCOMP_ASSIGN_OR_RETURN(std::vector<TimedPoint> decoded,
                            DecodePoints(&cursor, codec_, block.count));
    points.insert(points.end(), decoded.begin(), decoded.end());
  }
  STCOMP_ASSIGN_OR_RETURN(Trajectory trajectory,
                          Trajectory::FromPoints(std::move(points)));
  trajectory.set_name(entry->name.empty() ? object_id : entry->name);
  return trajectory;
}

Result<const std::vector<BlockSummary>*> TrajectoryStore::BlockSummariesOf(
    std::string_view object_id) const {
  const Entry* entry = FindEntry(object_id);
  if (entry == nullptr) {
    return NotFoundError("object '" + std::string(object_id) +
                         "' not in store");
  }
  return &entry->blocks;
}

Result<std::vector<TimedPoint>> TrajectoryStore::DecodeBlock(
    std::string_view object_id, size_t block_index) const {
  const Entry* entry = FindEntry(object_id);
  if (entry == nullptr) {
    return NotFoundError("object '" + std::string(object_id) +
                         "' not in store");
  }
  if (block_index >= entry->blocks.size()) {
    return OutOfRangeError("block index past the object's block count");
  }
  const BlockSummary& block = entry->blocks[block_index];
  std::string_view slice = std::string_view(entry->encoded)
                               .substr(block.byte_offset, block.byte_length);
  return DecodePoints(&slice, codec_, block.count);
}

Result<TimedPoint> TrajectoryStore::DecodeBlockFirstPoint(
    std::string_view object_id, size_t block_index) const {
  const Entry* entry = FindEntry(object_id);
  if (entry == nullptr) {
    return NotFoundError("object '" + std::string(object_id) +
                         "' not in store");
  }
  if (block_index >= entry->blocks.size()) {
    return OutOfRangeError("block index past the object's block count");
  }
  const BlockSummary& block = entry->blocks[block_index];
  std::string_view slice = std::string_view(entry->encoded)
                               .substr(block.byte_offset, block.byte_length);
  STCOMP_ASSIGN_OR_RETURN(const std::vector<TimedPoint> points,
                          DecodePoints(&slice, codec_, 1));
  return points.front();
}

void TrajectoryStore::VisitBlocks(
    const std::function<void(const std::string& id, size_t num_points,
                             const std::vector<BlockSummary>& blocks,
                             std::string_view payload)>& fn) const {
  for (const auto& [id, entry] : entries_) {
    fn(id, entry.num_points, entry.blocks, entry.encoded);
  }
}

Status TrajectoryStore::Remove(const std::string& object_id) {
  if (entries_.erase(object_id) == 0) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  return Status::Ok();
}

std::vector<std::string> TrajectoryStore::ObjectIds() const {
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    ids.push_back(id);
  }
  return ids;
}

Result<Vec2> TrajectoryStore::PositionAt(const std::string& object_id,
                                         double t) const {
  const auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  return it->second.decoded.PositionAt(t);
}

Result<Trajectory> TrajectoryStore::TimeSlice(const std::string& object_id,
                                              double t0, double t1) const {
  STCOMP_CHECK(t0 <= t1);
  const auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  const Trajectory& decoded = it->second.decoded;
  if (decoded.empty() || t1 < decoded.front().t || t0 > decoded.back().t) {
    return OutOfRangeError("time slice does not overlap the trajectory");
  }
  const double lo = std::max(t0, decoded.front().t);
  const double hi = std::min(t1, decoded.back().t);
  Trajectory slice;
  slice.set_name(decoded.name());
  if (lo == hi) {
    STCOMP_ASSIGN_OR_RETURN(const Vec2 at, decoded.PositionAt(lo));
    STCOMP_CHECK_OK(slice.Append(TimedPoint(lo, at)));
    return slice;
  }
  STCOMP_ASSIGN_OR_RETURN(const Vec2 start, decoded.PositionAt(lo));
  STCOMP_CHECK_OK(slice.Append(TimedPoint(lo, start)));
  for (const TimedPoint& point : decoded.points()) {
    if (point.t > lo && point.t < hi) {
      STCOMP_CHECK_OK(slice.Append(point));
    }
  }
  STCOMP_ASSIGN_OR_RETURN(const Vec2 end, decoded.PositionAt(hi));
  STCOMP_CHECK_OK(slice.Append(TimedPoint(hi, end)));
  return slice;
}

std::vector<std::string> TrajectoryStore::ObjectsInBox(
    const BoundingBox& box) const {
  std::vector<std::string> hits;
  for (const auto& [id, entry] : entries_) {
    for (const TimedPoint& point : entry.decoded.points()) {
      if (box.Contains(point.position)) {
        hits.push_back(id);
        break;
      }
    }
  }
  return hits;
}

Result<std::string> TrajectoryStore::SerializeToString() const {
  std::string image;
  for (const auto& [id, entry] : entries_) {
    // v2 blocked frames, straight from the stored payload — no re-encode.
    STCOMP_ASSIGN_OR_RETURN(
        const std::string frame,
        SerializeBlockedFrame(id, codec_, entry.blocks, entry.encoded));
    image += frame;
  }
  return image;
}

Status TrajectoryStore::SaveToFile(const std::string& path) const {
  STCOMP_TRACE_SPAN("store.save_to_file", path);
  STCOMP_ASSIGN_OR_RETURN(const std::string image, SerializeToString());
  return AtomicWriteFile(path, image);
}

Status TrajectoryStore::LoadFromFile(const std::string& path) {
  STCOMP_TRACE_SPAN("store.load_from_file", path);
  STCOMP_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  return LoadFromBuffer(content);
}

Status TrajectoryStore::LoadFromBuffer(std::string_view data) {
  std::string_view cursor = data;
  std::map<std::string, Entry, std::less<>> loaded;
  while (!cursor.empty()) {
    STCOMP_ASSIGN_OR_RETURN(const Trajectory trajectory,
                            DeserializeTrajectory(&cursor));
    if (trajectory.name().empty()) {
      return DataLossError("stored trajectory frame without an object id");
    }
    Entry entry;
    STCOMP_RETURN_IF_ERROR(EncodeInto(trajectory, &entry));
    if (!loaded.emplace(trajectory.name(), std::move(entry)).second) {
      return DataLossError("duplicate object id '" + trajectory.name() +
                           "' in store file");
    }
  }
  entries_ = std::move(loaded);
  return Status::Ok();
}

Status TrajectoryStore::SalvageFromBuffer(std::string_view data,
                                          FrameScanStats* stats) {
  FrameScanStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  std::map<std::string, Entry, std::less<>> loaded;
  for (Trajectory& trajectory : ScanTrajectoryFrames(data, stats)) {
    if (trajectory.name().empty()) {
      stats->log.push_back("dropped frame without an object id");
      continue;
    }
    Entry entry;
    STCOMP_RETURN_IF_ERROR(EncodeInto(trajectory, &entry));
    if (!loaded.emplace(trajectory.name(), std::move(entry)).second) {
      stats->log.push_back("dropped duplicate object id '" +
                           trajectory.name() + "'");
    }
  }
  entries_ = std::move(loaded);
  return Status::Ok();
}

size_t TrajectoryStore::StorageBytes() const {
  size_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += entry.encoded.size();
  }
  return total;
}

}  // namespace stcomp
