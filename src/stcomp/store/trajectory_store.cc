#include "stcomp/store/trajectory_store.h"

#include <algorithm>

#include "stcomp/common/check.h"
#include "stcomp/core/interpolation.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/durable_file.h"
#include "stcomp/store/serialization.h"

namespace stcomp {

namespace {

// Process-wide store-layer series (appends across all store instances are
// one ingestion stream); append timing is 1/16 sampled — the live-tracking
// path calls Append once per committed fix.
struct StoreMetrics {
  obs::Counter* appends;
  obs::Counter* inserts;
  obs::Histogram* append_seconds;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics* const kMetrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return new StoreMetrics{
        registry.GetCounter("stcomp_store_append_total"),
        registry.GetCounter("stcomp_store_insert_total"),
        registry.GetHistogram("stcomp_store_append_seconds", {},
                              obs::LatencyBucketsSeconds())};
  }();
  return *kMetrics;
}

}  // namespace

Status TrajectoryStore::EncodeInto(const Trajectory& trajectory,
                                   Entry* entry) const {
  entry->encoded.clear();
  STCOMP_RETURN_IF_ERROR(EncodePoints(trajectory, codec_, &entry->encoded));
  entry->num_points = trajectory.size();
  entry->name = trajectory.name();
  entry->decoded = trajectory;
  return Status::Ok();
}

Status TrajectoryStore::Insert(const std::string& object_id,
                               const Trajectory& trajectory) {
  if (entries_.contains(object_id)) {
    return AlreadyExistsError("object '" + object_id + "' already stored");
  }
  Entry entry;
  STCOMP_RETURN_IF_ERROR(EncodeInto(trajectory, &entry));
  entries_.emplace(object_id, std::move(entry));
  Metrics().inserts->Increment();
  return Status::Ok();
}

Status TrajectoryStore::Append(const std::string& object_id,
                               const TimedPoint& point) {
  STCOMP_SCOPED_TIMER_SAMPLED(Metrics().append_seconds);
  Metrics().appends->Increment();
  auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    Trajectory fresh;
    STCOMP_RETURN_IF_ERROR(fresh.Append(point));
    fresh.set_name(object_id);
    Entry entry;
    STCOMP_RETURN_IF_ERROR(EncodeInto(fresh, &entry));
    entries_.emplace(object_id, std::move(entry));
    return Status::Ok();
  }
  Entry& entry = it->second;
  STCOMP_RETURN_IF_ERROR(entry.decoded.Append(point));
  // Delta codec appends are incremental: only the new point's deltas are
  // encoded, so live tracking is O(1) per fix.
  const Trajectory& decoded = entry.decoded;
  const size_t n = decoded.size();
  if (codec_ == Codec::kDelta && n >= 2) {
    Trajectory tail;
    // Re-encode the delta of the final point against its predecessor by
    // encoding the two-point suffix and dropping the first point's bytes.
    STCOMP_CHECK_OK(tail.Append(decoded[n - 2]));
    STCOMP_CHECK_OK(tail.Append(decoded[n - 1]));
    std::string suffix;
    STCOMP_RETURN_IF_ERROR(EncodePoints(tail, codec_, &suffix));
    std::string first_only;
    Trajectory head;
    STCOMP_CHECK_OK(head.Append(decoded[n - 2]));
    STCOMP_RETURN_IF_ERROR(EncodePoints(head, codec_, &first_only));
    entry.encoded += suffix.substr(first_only.size());
    entry.num_points = n;
    return Status::Ok();
  }
  return EncodeInto(decoded, &entry);
}

Result<Trajectory> TrajectoryStore::Get(const std::string& object_id) const {
  const auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  std::string_view cursor = it->second.encoded;
  STCOMP_ASSIGN_OR_RETURN(
      std::vector<TimedPoint> points,
      DecodePoints(&cursor, codec_, it->second.num_points));
  STCOMP_ASSIGN_OR_RETURN(Trajectory trajectory,
                          Trajectory::FromPoints(std::move(points)));
  trajectory.set_name(it->second.name.empty() ? object_id : it->second.name);
  return trajectory;
}

Status TrajectoryStore::Remove(const std::string& object_id) {
  if (entries_.erase(object_id) == 0) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  return Status::Ok();
}

std::vector<std::string> TrajectoryStore::ObjectIds() const {
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    ids.push_back(id);
  }
  return ids;
}

Result<Vec2> TrajectoryStore::PositionAt(const std::string& object_id,
                                         double t) const {
  const auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  return it->second.decoded.PositionAt(t);
}

Result<Trajectory> TrajectoryStore::TimeSlice(const std::string& object_id,
                                              double t0, double t1) const {
  STCOMP_CHECK(t0 <= t1);
  const auto it = entries_.find(object_id);
  if (it == entries_.end()) {
    return NotFoundError("object '" + object_id + "' not in store");
  }
  const Trajectory& decoded = it->second.decoded;
  if (decoded.empty() || t1 < decoded.front().t || t0 > decoded.back().t) {
    return OutOfRangeError("time slice does not overlap the trajectory");
  }
  const double lo = std::max(t0, decoded.front().t);
  const double hi = std::min(t1, decoded.back().t);
  Trajectory slice;
  slice.set_name(decoded.name());
  if (lo == hi) {
    STCOMP_ASSIGN_OR_RETURN(const Vec2 at, decoded.PositionAt(lo));
    STCOMP_CHECK_OK(slice.Append(TimedPoint(lo, at)));
    return slice;
  }
  STCOMP_ASSIGN_OR_RETURN(const Vec2 start, decoded.PositionAt(lo));
  STCOMP_CHECK_OK(slice.Append(TimedPoint(lo, start)));
  for (const TimedPoint& point : decoded.points()) {
    if (point.t > lo && point.t < hi) {
      STCOMP_CHECK_OK(slice.Append(point));
    }
  }
  STCOMP_ASSIGN_OR_RETURN(const Vec2 end, decoded.PositionAt(hi));
  STCOMP_CHECK_OK(slice.Append(TimedPoint(hi, end)));
  return slice;
}

std::vector<std::string> TrajectoryStore::ObjectsInBox(
    const BoundingBox& box) const {
  std::vector<std::string> hits;
  for (const auto& [id, entry] : entries_) {
    for (const TimedPoint& point : entry.decoded.points()) {
      if (box.Contains(point.position)) {
        hits.push_back(id);
        break;
      }
    }
  }
  return hits;
}

Result<std::string> TrajectoryStore::SerializeToString() const {
  std::string image;
  for (const auto& [id, entry] : entries_) {
    Trajectory named = entry.decoded;
    named.set_name(id);
    STCOMP_ASSIGN_OR_RETURN(const std::string frame,
                            SerializeTrajectory(named, codec_));
    image += frame;
  }
  return image;
}

Status TrajectoryStore::SaveToFile(const std::string& path) const {
  STCOMP_TRACE_SPAN("store.save_to_file", path);
  STCOMP_ASSIGN_OR_RETURN(const std::string image, SerializeToString());
  return AtomicWriteFile(path, image);
}

Status TrajectoryStore::LoadFromFile(const std::string& path) {
  STCOMP_TRACE_SPAN("store.load_from_file", path);
  STCOMP_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  return LoadFromBuffer(content);
}

Status TrajectoryStore::LoadFromBuffer(std::string_view data) {
  std::string_view cursor = data;
  std::map<std::string, Entry> loaded;
  while (!cursor.empty()) {
    STCOMP_ASSIGN_OR_RETURN(const Trajectory trajectory,
                            DeserializeTrajectory(&cursor));
    if (trajectory.name().empty()) {
      return DataLossError("stored trajectory frame without an object id");
    }
    Entry entry;
    STCOMP_RETURN_IF_ERROR(EncodeInto(trajectory, &entry));
    if (!loaded.emplace(trajectory.name(), std::move(entry)).second) {
      return DataLossError("duplicate object id '" + trajectory.name() +
                           "' in store file");
    }
  }
  entries_ = std::move(loaded);
  return Status::Ok();
}

Status TrajectoryStore::SalvageFromBuffer(std::string_view data,
                                          FrameScanStats* stats) {
  FrameScanStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  std::map<std::string, Entry> loaded;
  for (Trajectory& trajectory : ScanTrajectoryFrames(data, stats)) {
    if (trajectory.name().empty()) {
      stats->log.push_back("dropped frame without an object id");
      continue;
    }
    Entry entry;
    STCOMP_RETURN_IF_ERROR(EncodeInto(trajectory, &entry));
    if (!loaded.emplace(trajectory.name(), std::move(entry)).second) {
      stats->log.push_back("dropped duplicate object id '" +
                           trajectory.name() + "'");
    }
  }
  entries_ = std::move(loaded);
  return Status::Ok();
}

size_t TrajectoryStore::StorageBytes() const {
  size_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += entry.encoded.size();
  }
  return total;
}

}  // namespace stcomp
