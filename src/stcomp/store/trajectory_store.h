// An in-memory moving-object trajectory store — the database-side substrate
// the paper's introduction motivates (storage of <t, x, y> streams for
// fleets of objects). Trajectories are held delta-encoded; queries decode
// on demand. Supports per-object append (the live-tracking path), time-
// interval slicing with interpolated boundary positions, bounding-box
// search and storage accounting.

#ifndef STCOMP_STORE_TRAJECTORY_STORE_H_
#define STCOMP_STORE_TRAJECTORY_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/geom/geometry.h"
#include "stcomp/store/block_summary.h"
#include "stcomp/store/codec.h"
#include "stcomp/store/serialization.h"

namespace stcomp {

class TrajectoryStore {
 public:
  explicit TrajectoryStore(Codec codec = Codec::kDelta) : codec_(codec) {}

  Codec codec() const { return codec_; }

  // Inserts a whole trajectory under `object_id`; kAlreadyExists if the id
  // is taken.
  Status Insert(const std::string& object_id, const Trajectory& trajectory);

  // Appends one fix to an object, creating it if missing. The fix must be
  // after the object's last timestamp.
  Status Append(const std::string& object_id, const TimedPoint& point);

  Result<Trajectory> Get(const std::string& object_id) const;
  Status Remove(const std::string& object_id);
  std::vector<std::string> ObjectIds() const;
  size_t object_count() const { return entries_.size(); }

  // Object position at time t (kOutOfRange outside its interval).
  Result<Vec2> PositionAt(const std::string& object_id, double t) const;

  // The object's movement during [t0, t1] clipped to its interval, with
  // interpolated boundary points; kNotFound for unknown ids, kOutOfRange
  // for empty overlap. Precondition (checked): t0 <= t1.
  Result<Trajectory> TimeSlice(const std::string& object_id, double t0,
                               double t1) const;

  // Ids of objects that enter `box` at any sample point.
  std::vector<std::string> ObjectsInBox(const BoundingBox& box) const;

  // Block-level access for the query layer (DESIGN.md §17). Payloads are
  // stored as independently-decodable blocks of at most
  // kDefaultBlockPoints coded points with per-block summaries; queries
  // consult summaries first and decode only candidate blocks.

  // The object's block summaries, ordered by first_point; kNotFound for
  // unknown ids. The pointer stays valid until the next mutation.
  Result<const std::vector<BlockSummary>*> BlockSummariesOf(
      std::string_view object_id) const;

  // Decodes one block's coded points (storage values; no junction point).
  Result<std::vector<TimedPoint>> DecodeBlock(std::string_view object_id,
                                              size_t block_index) const;

  // Decodes only the first point of a block — the cheap junction lookup
  // (a block's last segment ends at the next block's first point).
  Result<TimedPoint> DecodeBlockFirstPoint(std::string_view object_id,
                                           size_t block_index) const;

  // Visits every object's id, point count, summary table and encoded
  // payload in id order (the index builder's scan).
  void VisitBlocks(
      const std::function<void(const std::string& id, size_t num_points,
                               const std::vector<BlockSummary>& blocks,
                               std::string_view payload)>& fn) const;

  // Total encoded payload bytes across objects (the store's memory story).
  size_t StorageBytes() const;

  // Persists every object as a concatenation of CRC-framed trajectory
  // records (serialization.h); Load replaces the store's contents with the
  // file's. Object ids are the stored trajectory names. SaveToFile commits
  // atomically (temp file + fsync + rename, durable_file.h): a crash or a
  // failed write never destroys the previous good file.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  // The SaveToFile byte image, without touching the filesystem (the
  // segment store snapshots through this).
  Result<std::string> SerializeToString() const;

  // Replaces the store's contents with the frames parsed from an in-memory
  // image in the SaveToFile byte format (kDataLoss on any corruption; the
  // store is left untouched on error). LoadFromFile delegates here; the
  // fuzz harness drives this entry point directly.
  Status LoadFromBuffer(std::string_view data);

  // Lenient counterpart for recovery (DESIGN.md §13): loads every intact
  // frame of a possibly corrupted image, skipping bad frames and a torn
  // tail instead of failing the whole load. Later duplicates of an object
  // id are dropped (a resync artefact). Always replaces the contents;
  // `stats` (may be null) reports what was skipped.
  Status SalvageFromBuffer(std::string_view data, FrameScanStats* stats);

 private:
  struct Entry {
    std::string encoded;  // Concatenated independently-coded block payloads.
    std::vector<BlockSummary> blocks;  // Parallel summary table.
    size_t num_points = 0;
    std::string name;
    // Decode cache for the append path (kept in sync with `encoded`).
    Trajectory decoded;
  };

  Status EncodeInto(const Trajectory& trajectory, Entry* entry) const;
  const Entry* FindEntry(std::string_view object_id) const;

  Codec codec_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace stcomp

#endif  // STCOMP_STORE_TRAJECTORY_STORE_H_
