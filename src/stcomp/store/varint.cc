#include "stcomp/store/varint.h"

#include <cstring>

namespace stcomp {

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint(std::string_view* input) {
  uint64_t value = 0;
  int shift = 0;
  for (size_t i = 0; i < input->size() && i < 10; ++i) {
    const uint8_t byte = static_cast<uint8_t>((*input)[i]);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      input->remove_prefix(i + 1);
      return value;
    }
    shift += 7;
  }
  return DataLossError("truncated or overlong varint");
}

void PutSignedVarint(int64_t value, std::string* out) {
  PutVarint(ZigZagEncode(value), out);
}

Result<int64_t> GetSignedVarint(std::string_view* input) {
  STCOMP_ASSIGN_OR_RETURN(const uint64_t raw, GetVarint(input));
  return ZigZagDecode(raw);
}

void PutDouble(double value, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

Result<double> GetDouble(std::string_view* input) {
  if (input->size() < 8) {
    return DataLossError("truncated double");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>((*input)[i]))
            << (8 * i);
  }
  input->remove_prefix(8);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace stcomp
