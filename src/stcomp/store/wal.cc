#include "stcomp/store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "stcomp/common/check.h"
#include "stcomp/obs/flight_recorder.h"
#include "stcomp/obs/trace.h"
#include "stcomp/store/serialization.h"
#include "stcomp/store/varint.h"

namespace stcomp {

namespace {

constexpr char kWalMagic[4] = {'S', 'T', 'W', 'L'};

// Flight-recorder tags carry 23 bytes; the file name is the useful part.
[[maybe_unused]] std::string_view PathTail(std::string_view path) {
  const size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

void AppendCrc(std::string* frame) {
  const uint32_t crc = Crc32(*frame);
  for (int i = 0; i < 4; ++i) {
    frame->push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
}

}  // namespace

WalRecord WalRecord::Append(std::string object_id, const TimedPoint& point) {
  WalRecord record;
  record.type = WalRecordType::kAppend;
  record.object_id = std::move(object_id);
  record.point = point;
  return record;
}

WalRecord WalRecord::Insert(std::string object_id, std::string frame) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.object_id = std::move(object_id);
  record.payload = std::move(frame);
  return record;
}

WalRecord WalRecord::Remove(std::string object_id) {
  WalRecord record;
  record.type = WalRecordType::kRemove;
  record.object_id = std::move(object_id);
  return record;
}

WalRecord WalRecord::Commit() {
  WalRecord record;
  record.type = WalRecordType::kCommit;
  return record;
}

std::string EncodeWalFrame(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  switch (record.type) {
    case WalRecordType::kAppend:
      PutVarint(record.object_id.size(), &payload);
      payload += record.object_id;
      PutDouble(record.point.t, &payload);
      PutDouble(record.point.position.x, &payload);
      PutDouble(record.point.position.y, &payload);
      break;
    case WalRecordType::kInsert:
      PutVarint(record.object_id.size(), &payload);
      payload += record.object_id;
      PutVarint(record.payload.size(), &payload);
      payload += record.payload;
      break;
    case WalRecordType::kRemove:
      PutVarint(record.object_id.size(), &payload);
      payload += record.object_id;
      break;
    case WalRecordType::kCommit:
      break;
  }
  std::string frame(kWalMagic, sizeof(kWalMagic));
  PutVarint(payload.size(), &frame);
  frame += payload;
  AppendCrc(&frame);
  return frame;
}

Result<WalRecord> DecodeWalFrame(std::string_view* input) {
  const std::string_view frame_start = *input;
  if (input->size() < sizeof(kWalMagic)) {
    return DataLossError("wal frame truncated");
  }
  if (input->substr(0, 4) != std::string_view(kWalMagic, 4)) {
    return DataLossError("bad magic; not a wal frame");
  }
  input->remove_prefix(4);
  STCOMP_ASSIGN_OR_RETURN(const uint64_t payload_size, GetVarint(input));
  if (input->size() < payload_size + 4) {
    return DataLossError("wal frame truncated in payload");
  }
  std::string_view payload = input->substr(0, payload_size);
  input->remove_prefix(payload_size);
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>((*input)[i]))
                  << (8 * i);
  }
  const size_t frame_size =
      static_cast<size_t>(input->data() - frame_start.data());
  input->remove_prefix(4);
  if (Crc32(frame_start.substr(0, frame_size)) != stored_crc) {
    return DataLossError("wal frame CRC mismatch");
  }
  if (payload.empty()) {
    return DataLossError("wal frame with empty payload");
  }
  WalRecord record;
  const uint8_t type_byte = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (type_byte < static_cast<uint8_t>(WalRecordType::kAppend) ||
      type_byte > static_cast<uint8_t>(WalRecordType::kCommit)) {
    return DataLossError("unknown wal record type");
  }
  record.type = static_cast<WalRecordType>(type_byte);
  if (record.type != WalRecordType::kCommit) {
    STCOMP_ASSIGN_OR_RETURN(const uint64_t id_size, GetVarint(&payload));
    if (payload.size() < id_size) {
      return DataLossError("wal record truncated in object id");
    }
    record.object_id = std::string(payload.substr(0, id_size));
    payload.remove_prefix(id_size);
  }
  switch (record.type) {
    case WalRecordType::kAppend: {
      STCOMP_ASSIGN_OR_RETURN(record.point.t, GetDouble(&payload));
      STCOMP_ASSIGN_OR_RETURN(record.point.position.x, GetDouble(&payload));
      STCOMP_ASSIGN_OR_RETURN(record.point.position.y, GetDouble(&payload));
      break;
    }
    case WalRecordType::kInsert: {
      STCOMP_ASSIGN_OR_RETURN(const uint64_t frame_len, GetVarint(&payload));
      if (payload.size() < frame_len) {
        return DataLossError("wal insert record truncated in payload");
      }
      record.payload = std::string(payload.substr(0, frame_len));
      payload.remove_prefix(frame_len);
      break;
    }
    case WalRecordType::kRemove:
    case WalRecordType::kCommit:
      break;
  }
  if (!payload.empty()) {
    return DataLossError("wal record has trailing bytes");
  }
  return record;
}

std::vector<WalRecord> ScanWal(std::string_view image, WalScanStats* stats) {
  WalScanStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  const std::string_view magic(kWalMagic, sizeof(kWalMagic));
  std::vector<WalRecord> committed;
  std::vector<WalRecord> batch;
  std::string_view cursor = image;
  while (!cursor.empty()) {
    const size_t offset = static_cast<size_t>(cursor.data() - image.data());
    std::string_view attempt = cursor;
    Result<WalRecord> record = DecodeWalFrame(&attempt);
    if (record.ok()) {
      cursor = attempt;
      if (record->type == WalRecordType::kCommit) {
        stats->records_replayed += batch.size();
        for (WalRecord& sealed : batch) {
          committed.push_back(std::move(sealed));
        }
        batch.clear();
      } else {
        batch.push_back(*std::move(record));
      }
      continue;
    }
    const size_t next = cursor.substr(1).find(magic);
    if (next == std::string_view::npos) {
      stats->torn_tail = true;
      stats->log.push_back("torn-tail@" + std::to_string(offset) + ": " +
                           record.status().ToString());
      break;
    }
    ++stats->frames_salvaged_past;
    stats->log.push_back("salvaged-past@" + std::to_string(offset) + ": " +
                         record.status().ToString());
    cursor.remove_prefix(next + 1);
  }
  if (!batch.empty()) {
    stats->records_dropped_uncommitted += batch.size();
    stats->log.push_back("dropped " + std::to_string(batch.size()) +
                         " uncommitted trailing record(s)");
  }
  return committed;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WalWriter::Die(Status status) {
  death_ = std::move(status);
  STCOMP_FLIGHT_EVENT(kWalDeath, PathTail(path_), *boundary_, 0);
  STCOMP_IF_METRICS(obs::FlightRecorder::DumpGlobal("wal sticky death: " +
                                                    death_.ToString()));
  return death_;
}

Status WalWriter::CheckAlive() const {
  if (!death_.ok()) {
    return death_;
  }
  if (fd_ < 0) {
    return FailedPreconditionError("wal writer is not open");
  }
  return Status::Ok();
}

Status WalWriter::Open(const std::string& path) {
  STCOMP_CHECK(fd_ < 0);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return IoError("cannot open wal " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  return Status::Ok();
}

Status WalWriter::Append(const WalRecord& record) {
  STCOMP_RETURN_IF_ERROR(CheckAlive());
  STCOMP_CHECK(record.type != WalRecordType::kCommit);
  staged_.push_back(EncodeWalFrame(record));
  return Status::Ok();
}

Status WalWriter::Commit() {
  STCOMP_RETURN_IF_ERROR(CheckAlive());
  if (staged_.empty()) {
    return Status::Ok();
  }
  // Records as a child of whatever pipeline span is open (e.g. a sampled
  // fleet.push) so the durable-write leg shows up in the object's tree.
  STCOMP_TRACE_SPAN("wal.commit", PathTail(path_));
  [[maybe_unused]] const size_t batch_records = staged_.size();
  staged_.push_back(EncodeWalFrame(WalRecord::Commit()));
  for (const std::string& frame : staged_) {
    const Status status =
        FaultableWriteFd(fd_, frame, hook_, boundary_, path_);
    if (!status.ok()) {
      return Die(status);
    }
  }
  const Status synced = FaultPoint(hook_, boundary_, "fsync of " + path_);
  if (!synced.ok()) {
    return Die(synced);
  }
  if (::fsync(fd_) != 0) {
    return Die(IoError("fsync failed for " + path_ + ": " +
                       std::strerror(errno)));
  }
  staged_.clear();
  STCOMP_FLIGHT_EVENT(kWalCommit, PathTail(path_), batch_records, *boundary_);
  return Status::Ok();
}

Status WalWriter::Truncate() {
  STCOMP_RETURN_IF_ERROR(CheckAlive());
  const Status point = FaultPoint(hook_, boundary_, "truncate of " + path_);
  if (!point.ok()) {
    return Die(point);
  }
  if (::ftruncate(fd_, 0) != 0) {
    return Die(IoError("truncate failed for " + path_ + ": " +
                       std::strerror(errno)));
  }
  if (::fsync(fd_) != 0) {
    return Die(IoError("fsync failed for " + path_ + ": " +
                       std::strerror(errno)));
  }
  staged_.clear();
  STCOMP_FLIGHT_EVENT(kWalTruncate, PathTail(path_), *boundary_, 0);
  return Status::Ok();
}

void WalWriter::set_write_hook(WriteFaultHook hook, size_t* boundary) {
  hook_ = std::move(hook);
  boundary_ = boundary != nullptr ? boundary : &own_boundary_;
}

}  // namespace stcomp
