// Persistent spatio-temporal index over a blocked trajectory store
// (DESIGN.md §17). A uniform grid maps cells to (object, block) postings
// built from the store's block summaries; range/corridor queries collect
// candidate blocks from the covered cells and decode only those. The index
// carries each object's full summary table, so kNN pruning and time-window
// queries run off the index without touching payloads.
//
// On-disk format (index.stidx, written by the segment store at
// checkpoint):
//
//   magic "STIX" | version u8=1 | cell size double | object count varint
//   | per object: id len varint | id bytes | point count varint
//     | payload crc32 (4 bytes LE) | block count varint | summary table
//     (block_summary.h)
//   | crc32 (4 bytes, LE, over everything before it)
//
// The grid itself is rebuilt from the summaries on load — postings are
// derived state and are never serialised. Matches() compares object ids,
// point counts and payload CRCs against a live store, so a stale index
// (even one with identical counts) is detected and rebuilt instead of
// silently serving wrong candidates.

#ifndef STCOMP_STORE_ST_INDEX_H_
#define STCOMP_STORE_ST_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/geom/geometry.h"
#include "stcomp/store/block_summary.h"
#include "stcomp/store/trajectory_store.h"

namespace stcomp {

// Default grid cell edge. Urban fleets move a few hundred metres per
// 64-point block at typical sampling rates, so one block usually lands in
// a handful of cells.
inline constexpr double kDefaultIndexCellSizeM = 250.0;

// A block whose bounding box covers more cells than this is kept on an
// always-considered overflow list instead of being fanned out to every
// cell — a bound on index size and build time against adversarial
// (fuzzed) geometry, not a correctness carve-out.
inline constexpr size_t kMaxCellsPerBlock = 4096;

class SpatioTemporalIndex {
 public:
  struct ObjectEntry {
    std::string id;
    uint64_t num_points = 0;
    uint32_t payload_crc = 0;  // Crc32 of the encoded payload.
    std::vector<BlockSummary> blocks;
  };

  // A candidate: objects()[object].blocks[block].
  struct Posting {
    uint32_t object = 0;
    uint32_t block = 0;
    friend bool operator==(const Posting& a, const Posting& b) {
      return a.object == b.object && a.block == b.block;
    }
    friend bool operator<(const Posting& a, const Posting& b) {
      return a.object != b.object ? a.object < b.object : a.block < b.block;
    }
  };

  // Precondition (checked): cell_size_m > 0 and finite.
  explicit SpatioTemporalIndex(double cell_size_m = kDefaultIndexCellSizeM);

  // Snapshots `store` into a fresh index.
  static SpatioTemporalIndex BuildFromStore(
      const TrajectoryStore& store,
      double cell_size_m = kDefaultIndexCellSizeM);

  double cell_size_m() const { return cell_size_m_; }
  const std::vector<ObjectEntry>& objects() const { return objects_; }
  size_t posting_count() const { return total_postings_; }

  // Sorted, deduplicated postings whose block summaries overlap both
  // [t0, t1] and `box`. A superset-free exact filter at summary
  // granularity: every returned block really overlaps, and every block
  // that overlaps is returned (the grid only narrows which summaries get
  // tested).
  std::vector<Posting> CandidateBlocks(const BoundingBox& box, double t0,
                                       double t1) const;

  // The STIX byte image (header comment). Deterministic for a given
  // logical content.
  std::string SerializeToString() const;

  // Parses and validates a STIX image, rebuilding the grid; kDataLoss on
  // any corruption (bad magic/version/CRC, invalid summaries, duplicate
  // or unordered ids, non-positive cell size).
  static Result<SpatioTemporalIndex> LoadFromBuffer(std::string_view data);

  // True when this index exactly describes `store`'s current contents:
  // same object ids in order, same point counts, same payload CRCs.
  bool Matches(const TrajectoryStore& store) const;

 private:
  using CellKey = std::pair<int64_t, int64_t>;

  CellKey KeyFor(Vec2 position) const;
  void InsertPostings(uint32_t object_ordinal);

  double cell_size_m_;
  std::vector<ObjectEntry> objects_;  // Ascending by id (store map order).
  std::map<CellKey, std::vector<Posting>> cells_;
  std::vector<Posting> oversize_;  // Blocks spanning > kMaxCellsPerBlock.
  size_t total_postings_ = 0;
};

}  // namespace stcomp

#endif  // STCOMP_STORE_ST_INDEX_H_
