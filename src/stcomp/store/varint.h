// LEB128 varint and zigzag primitives for the trajectory codec.

#ifndef STCOMP_STORE_VARINT_H_
#define STCOMP_STORE_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "stcomp/common/result.h"

namespace stcomp {

// Appends `value` to `out` as base-128 varint (1-10 bytes).
void PutVarint(uint64_t value, std::string* out);

// Reads a varint from the front of `*input`, advancing it.
// Fails with kDataLoss on truncation or overlong (> 10 byte) encodings.
Result<uint64_t> GetVarint(std::string_view* input);

// Zigzag mapping so small-magnitude signed deltas stay short.
constexpr uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
constexpr int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

void PutSignedVarint(int64_t value, std::string* out);
Result<int64_t> GetSignedVarint(std::string_view* input);

// Fixed-width little-endian doubles (for the raw codec).
void PutDouble(double value, std::string* out);
Result<double> GetDouble(std::string_view* input);

}  // namespace stcomp

#endif  // STCOMP_STORE_VARINT_H_
