// Append-only, CRC-framed write-ahead log for store mutations
// (DESIGN.md §13).
//
// Frame format (all little-endian):
//
//   magic "STWL" | payload len varint | payload | crc32 (4 bytes, over
//   everything before it)
//
// where payload = record type u8 + type-specific fields:
//
//   kAppend  object-id (len varint + bytes) | t, x, y as raw doubles
//   kInsert  object-id | one serialization.h "STCT" frame
//   kRemove  object-id
//   kCommit  (empty) — seals everything since the previous marker
//
// Append() stages records in memory; Commit() writes the batch plus a
// commit marker and fsyncs, so a batch is durable if and only if its
// marker reached the disk. Point coordinates travel as raw doubles (not
// the quantising delta codec) so replay reconstructs state bit-for-bit.
//
// The scanner *salvages*: a corrupted frame is skipped (resync at the
// next magic) and logged, an interrupted final write is a torn tail, and
// records after the last commit marker are dropped — recovery loses at
// most the last uncommitted batch, never the log.

#ifndef STCOMP_STORE_WAL_H_
#define STCOMP_STORE_WAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "stcomp/common/result.h"
#include "stcomp/core/trajectory.h"
#include "stcomp/store/durable_file.h"

namespace stcomp {

enum class WalRecordType : uint8_t {
  kAppend = 1,
  kInsert = 2,
  kRemove = 3,
  kCommit = 4,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  std::string object_id;  // kAppend / kInsert / kRemove.
  TimedPoint point;       // kAppend.
  std::string payload;    // kInsert: one serialized trajectory frame.

  static WalRecord Append(std::string object_id, const TimedPoint& point);
  static WalRecord Insert(std::string object_id, std::string frame);
  static WalRecord Remove(std::string object_id);
  static WalRecord Commit();
};

// One serialized frame (magic + payload + crc).
std::string EncodeWalFrame(const WalRecord& record);

// Strict single-frame decode from the front of `*input`, advancing it.
// kDataLoss on any corruption (the salvaging scanner wraps this).
Result<WalRecord> DecodeWalFrame(std::string_view* input);

struct WalScanStats {
  size_t records_replayed = 0;   // Committed records returned.
  size_t frames_salvaged_past = 0;  // Corrupted frames skipped via resync.
  size_t records_dropped_uncommitted = 0;  // After the last commit marker.
  bool torn_tail = false;  // Final write was interrupted mid-frame.
  std::vector<std::string> log;
};

// Salvaging scan of a whole log image: returns every record of every
// committed batch, in order. Never fails — corruption shrinks the result
// and grows `stats` (may be null) instead.
std::vector<WalRecord> ScanWal(std::string_view image, WalScanStats* stats);

// Append-only writer with group commit. Not thread-safe. After a write
// failure (including an injected crash) the writer is dead: every further
// operation returns the original error, like talking to a gone process.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens (creates) `path` for appending.
  Status Open(const std::string& path);

  // Stages one record for the current batch (no I/O).
  Status Append(const WalRecord& record);

  // Writes every staged frame plus a commit marker (one write boundary
  // per frame), then fsyncs. On return OK the batch is durable.
  Status Commit();

  // Drops the log's contents (after a checkpoint made it redundant).
  Status Truncate();

  size_t staged_records() const { return staged_.size(); }
  bool dead() const { return !death_.ok(); }

  // Crash-injection seam (testing): consulted at every write boundary;
  // `boundary` (may be null) is shared with the caller's other durable
  // writes so a CrashPlan can target a global boundary index.
  void set_write_hook(WriteFaultHook hook, size_t* boundary);

 private:
  Status CheckAlive() const;
  // Marks the writer dead with `status`, leaves a kWalDeath flight event
  // and triggers an automatic flight dump — the recorder holds the last
  // moments before the failure.
  Status Die(Status status);

  int fd_ = -1;
  std::string path_;
  std::vector<std::string> staged_;  // Encoded frames awaiting Commit().
  WriteFaultHook hook_;
  size_t own_boundary_ = 0;
  size_t* boundary_ = &own_boundary_;
  Status death_;  // First fatal error; OK while alive.
};

}  // namespace stcomp

#endif  // STCOMP_STORE_WAL_H_
