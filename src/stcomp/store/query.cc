#include "stcomp/store/query.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stcomp/common/strings.h"
#include "stcomp/obs/exposition.h"
#include "stcomp/obs/metrics.h"
#include "stcomp/obs/timer.h"

namespace stcomp {

namespace {

constexpr double kUnboundedLow = std::numeric_limits<double>::lowest();
constexpr double kUnboundedHigh = std::numeric_limits<double>::max();

struct QueryMetricsSet {
  obs::Counter* by_type[4];
  obs::Counter* blocks_considered;
  obs::Counter* blocks_decoded;
  obs::Histogram* seconds;
};

const QueryMetricsSet& Metrics() {
  static const QueryMetricsSet* const kMetrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    auto counter = [&registry](const char* type) {
      return registry.GetCounter("stcomp_query_total", {{"type", type}});
    };
    return new QueryMetricsSet{
        {counter("time_window"), counter("range"), counter("corridor"),
         counter("nearest")},
        registry.GetCounter("stcomp_query_blocks_considered_total"),
        registry.GetCounter("stcomp_query_blocks_decoded_total"),
        registry.GetHistogram("stcomp_query_seconds", {},
                              obs::LatencyBucketsSeconds())};
  }();
  return *kMetrics;
}

BoundingBox Inflate(const BoundingBox& box, double by) {
  return BoundingBox{{box.min.x - by, box.min.y - by},
                     {box.max.x + by, box.max.y + by}};
}

// A polyline segment clipped to the query window, positions interpolated
// at the clipped endpoints. RunQuery and BruteForceQuery feed identical
// storage-value points through this, so both see identical doubles — the
// bitwise engine/oracle equality starts here.
struct ClippedSegment {
  double ta = 0.0;
  double tb = 0.0;
  Vec2 pa;
  Vec2 pb;
};

bool ClipSegmentToWindow(const TimedPoint& p, const TimedPoint& q, double t0,
                         double t1, ClippedSegment* out) {
  if (q.t < t0 || p.t > t1) {
    return false;
  }
  out->ta = std::max(p.t, t0);
  out->tb = std::min(q.t, t1);
  const double span = q.t - p.t;
  if (span <= 0.0) {
    out->pa = p.position;
    out->pb = q.position;
    return true;
  }
  out->pa = out->ta == p.t ? p.position
                           : Lerp(p.position, q.position, (out->ta - p.t) / span);
  out->pb = out->tb == q.t ? q.position
                           : Lerp(p.position, q.position, (out->tb - p.t) / span);
  return true;
}

// The match predicate of a set query (time-window / range / corridor),
// with the error bound already folded into `box` / `corridor_radius`.
struct SetPredicate {
  QueryType type = QueryType::kTimeWindow;
  BoundingBox box;
  const std::vector<Vec2>* corridor = nullptr;
  double corridor_radius = 0.0;

  bool Matches(const ClippedSegment& seg) const {
    switch (type) {
      case QueryType::kTimeWindow:
        return true;
      case QueryType::kRange:
        return SegmentIntersectsBox(seg.pa, seg.pb, box);
      case QueryType::kCorridor: {
        const std::vector<Vec2>& w = *corridor;
        if (w.size() == 1) {
          return PointToSegmentDistance(w[0], seg.pa, seg.pb) <=
                 corridor_radius;
        }
        for (size_t i = 0; i + 1 < w.size(); ++i) {
          if (SegmentToSegmentDistance(seg.pa, seg.pb, w[i], w[i + 1]) <=
              corridor_radius) {
            return true;
          }
        }
        return false;
      }
      case QueryType::kNearest:
        return false;  // kNearest has no boolean predicate.
    }
    return false;
  }
};

// Scans `points` (a full object or one block plus its junction) for the
// first predicate match; `base_t_known` guards the single-point case.
// Returns true and the clipped start time of the first matching segment.
bool FirstHitInSpan(const std::vector<TimedPoint>& points, double t0,
                    double t1, const SetPredicate& pred, double* first_hit_t) {
  if (points.size() == 1) {
    const TimedPoint& p = points[0];
    if (p.t < t0 || p.t > t1) {
      return false;
    }
    const ClippedSegment seg{p.t, p.t, p.position, p.position};
    if (!pred.Matches(seg)) {
      return false;
    }
    *first_hit_t = p.t;
    return true;
  }
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    ClippedSegment seg;
    if (!ClipSegmentToWindow(points[i], points[i + 1], t0, t1, &seg)) {
      continue;
    }
    if (pred.Matches(seg)) {
      *first_hit_t = seg.ta;
      return true;
    }
  }
  return false;
}

// Minimum distance from `query` to the clipped polyline over `points`;
// false when no segment overlaps the window.
bool MinDistanceInSpan(const std::vector<TimedPoint>& points, double t0,
                       double t1, Vec2 query, double* min_distance) {
  bool any = false;
  double best = kUnboundedHigh;
  if (points.size() == 1) {
    const TimedPoint& p = points[0];
    if (p.t >= t0 && p.t <= t1) {
      any = true;
      best = Distance(query, p.position);
    }
  } else {
    for (size_t i = 0; i + 1 < points.size(); ++i) {
      ClippedSegment seg;
      if (!ClipSegmentToWindow(points[i], points[i + 1], t0, t1, &seg)) {
        continue;
      }
      any = true;
      best = std::min(best, PointToSegmentDistance(query, seg.pa, seg.pb));
    }
  }
  if (any) {
    *min_distance = best;
  }
  return any;
}

// One candidate block's points plus its junction point (the next block's
// first point), so the block's trailing segment is evaluated exactly once
// — by the block that owns it.
Result<std::vector<TimedPoint>> DecodeBlockWithJunction(
    const TrajectoryStore& store, const std::string& id, size_t block_index,
    size_t block_count) {
  STCOMP_ASSIGN_OR_RETURN(std::vector<TimedPoint> points,
                          store.DecodeBlock(id, block_index));
  if (block_index + 1 < block_count) {
    STCOMP_ASSIGN_OR_RETURN(const TimedPoint junction,
                            store.DecodeBlockFirstPoint(id, block_index + 1));
    points.push_back(junction);
  }
  return points;
}

Status ValidateWindow(const QueryRequest& request) {
  if (std::isnan(request.t0) || std::isnan(request.t1)) {
    return InvalidArgumentError("query window bounds must not be NaN");
  }
  if (request.t0 > request.t1) {
    return InvalidArgumentError("query window start after its end");
  }
  return Status::Ok();
}

bool FiniteVec(Vec2 v) { return std::isfinite(v.x) && std::isfinite(v.y); }

}  // namespace

std::string_view QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kTimeWindow:
      return "time_window";
    case QueryType::kRange:
      return "range";
    case QueryType::kCorridor:
      return "corridor";
    case QueryType::kNearest:
      return "nearest";
  }
  return "unknown";
}

Status ValidateQuery(const QueryRequest& request) {
  STCOMP_RETURN_IF_ERROR(ValidateWindow(request));
  if (!std::isfinite(request.declared_error_m) ||
      request.declared_error_m < 0.0) {
    return InvalidArgumentError("declared error must be finite and >= 0");
  }
  switch (request.type) {
    case QueryType::kTimeWindow:
      return Status::Ok();
    case QueryType::kRange:
      if (!FiniteVec(request.box.min) || !FiniteVec(request.box.max)) {
        return InvalidArgumentError("range box must be finite");
      }
      if (request.box.min.x > request.box.max.x ||
          request.box.min.y > request.box.max.y) {
        return InvalidArgumentError("range box min exceeds its max");
      }
      return Status::Ok();
    case QueryType::kCorridor:
      if (request.corridor.empty()) {
        return InvalidArgumentError("corridor needs at least one waypoint");
      }
      for (Vec2 waypoint : request.corridor) {
        if (!FiniteVec(waypoint)) {
          return InvalidArgumentError("corridor waypoints must be finite");
        }
      }
      if (!std::isfinite(request.radius_m) || request.radius_m < 0.0) {
        return InvalidArgumentError(
            "corridor radius must be finite and >= 0");
      }
      return Status::Ok();
    case QueryType::kNearest:
      if (!FiniteVec(request.point)) {
        return InvalidArgumentError("nearest query point must be finite");
      }
      if (request.k == 0) {
        return InvalidArgumentError("nearest k must be >= 1");
      }
      return Status::Ok();
  }
  return InvalidArgumentError("unknown query type");
}

double QueryErrorBound(const QueryRequest& request, Codec codec) {
  return request.declared_error_m +
         (codec == Codec::kDelta ? kCoordQuantumM : 0.0);
}

Result<QueryAnswer> RunQuery(const TrajectoryStore& store,
                             const SpatioTemporalIndex& index,
                             const QueryRequest& request) {
  STCOMP_RETURN_IF_ERROR(ValidateQuery(request));
  STCOMP_SCOPED_TIMER(Metrics().seconds);
  Metrics().by_type[static_cast<size_t>(request.type)]->Increment();
  QueryAnswer answer;
  answer.error_bound_m = QueryErrorBound(request, store.codec());
  const double t0 = request.t0;
  const double t1 = request.t1;
  const auto& objects = index.objects();
  answer.stats.objects_considered = objects.size();
  for (const auto& object : objects) {
    answer.stats.blocks_total += object.blocks.size();
  }

  if (request.type == QueryType::kTimeWindow) {
    // Index-only: block time spans are exact (summaries are built from
    // storage values and time is monotone), so no payload is touched.
    for (const auto& object : objects) {
      if (object.blocks.empty()) {
        continue;
      }
      const double first_t = object.blocks.front().t_min;
      const double last_t = object.blocks.back().t_max;
      if (first_t > t1 || last_t < t0) {
        continue;
      }
      answer.hits.push_back(QueryHit{object.id, std::max(t0, first_t), 0.0});
    }
    Metrics().blocks_considered->Increment(answer.stats.blocks_considered);
    return answer;
  }

  if (request.type == QueryType::kNearest) {
    // Best-first over block distance lower bounds: a block's polyline
    // (points + junction) lies inside its summary box, so
    // PointToBoxDistance never overestimates. Processing in ascending
    // lower-bound order and stopping once the bound strictly exceeds the
    // current k-th best distance is exact, ties included.
    struct NearestCandidate {
      double lower_bound;
      uint32_t object;
      uint32_t block;
    };
    std::vector<NearestCandidate> candidates;
    for (uint32_t o = 0; o < objects.size(); ++o) {
      for (uint32_t b = 0; b < objects[o].blocks.size(); ++b) {
        const BlockSummary& block = objects[o].blocks[b];
        if (!block.OverlapsTime(t0, t1)) {
          continue;
        }
        candidates.push_back(NearestCandidate{
            PointToBoxDistance(request.point, block.bounds), o, b});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const NearestCandidate& a, const NearestCandidate& b) {
                if (a.lower_bound != b.lower_bound) {
                  return a.lower_bound < b.lower_bound;
                }
                return a.object != b.object ? a.object < b.object
                                            : a.block < b.block;
              });
    answer.stats.blocks_considered = candidates.size();
    std::map<uint32_t, double> best;
    const auto kth_bound = [&best, &request]() {
      if (best.size() < request.k) {
        return kUnboundedHigh;
      }
      std::vector<double> values;
      values.reserve(best.size());
      for (const auto& [object, distance] : best) {
        values.push_back(distance);
      }
      std::nth_element(values.begin(), values.begin() + (request.k - 1),
                       values.end());
      return values[request.k - 1];
    };
    for (const NearestCandidate& candidate : candidates) {
      if (best.size() >= request.k && candidate.lower_bound > kth_bound()) {
        break;
      }
      const auto& object = objects[candidate.object];
      STCOMP_ASSIGN_OR_RETURN(
          const std::vector<TimedPoint> points,
          DecodeBlockWithJunction(store, object.id, candidate.block,
                                  object.blocks.size()));
      ++answer.stats.blocks_decoded;
      double distance = 0.0;
      if (MinDistanceInSpan(points, t0, t1, request.point, &distance)) {
        const auto it = best.find(candidate.object);
        if (it == best.end()) {
          best.emplace(candidate.object, distance);
        } else {
          it->second = std::min(it->second, distance);
        }
      }
    }
    std::vector<std::pair<double, uint32_t>> ranked;
    ranked.reserve(best.size());
    for (const auto& [object, distance] : best) {
      ranked.emplace_back(distance, object);
    }
    std::sort(ranked.begin(), ranked.end());
    if (ranked.size() > request.k) {
      ranked.resize(request.k);
    }
    for (const auto& [distance, object] : ranked) {
      answer.hits.push_back(QueryHit{objects[object].id, 0.0, distance});
    }
    Metrics().blocks_considered->Increment(answer.stats.blocks_considered);
    Metrics().blocks_decoded->Increment(answer.stats.blocks_decoded);
    return answer;
  }

  // Range / corridor: candidate blocks from the grid, then decode only
  // those, ascending per object — skipped blocks provably hold no hits,
  // so the first match found is the object's earliest.
  SetPredicate pred;
  pred.type = request.type;
  std::vector<SpatioTemporalIndex::Posting> candidates;
  if (request.type == QueryType::kRange) {
    pred.box = Inflate(request.box, answer.error_bound_m);
    candidates = index.CandidateBlocks(pred.box, t0, t1);
  } else {
    pred.corridor = &request.corridor;
    pred.corridor_radius = request.radius_m + answer.error_bound_m;
    const std::vector<Vec2>& w = request.corridor;
    const size_t segment_count = w.size() == 1 ? 1 : w.size() - 1;
    for (size_t i = 0; i < segment_count; ++i) {
      const Vec2 a = w[i];
      const Vec2 b = w[w.size() == 1 ? i : i + 1];
      const BoundingBox seg_box =
          Inflate(BoundingBox{{std::min(a.x, b.x), std::min(a.y, b.y)},
                              {std::max(a.x, b.x), std::max(a.y, b.y)}},
                  pred.corridor_radius);
      std::vector<SpatioTemporalIndex::Posting> partial =
          index.CandidateBlocks(seg_box, t0, t1);
      candidates.insert(candidates.end(), partial.begin(), partial.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    // Tighten: a block survives only if it actually comes within the
    // effective radius of some corridor segment, not merely within the
    // segment's inflated bounding box.
    std::erase_if(candidates, [&](const SpatioTemporalIndex::Posting& p) {
      const BlockSummary& block = objects[p.object].blocks[p.block];
      for (size_t i = 0; i < segment_count; ++i) {
        const Vec2 a = w[i];
        const Vec2 b = w[w.size() == 1 ? i : i + 1];
        if (SegmentToBoxDistance(a, b, block.bounds) <=
            pred.corridor_radius) {
          return false;
        }
      }
      return true;
    });
  }
  answer.stats.blocks_considered = candidates.size();
  for (size_t i = 0; i < candidates.size();) {
    const uint32_t object_ordinal = candidates[i].object;
    const auto& object = objects[object_ordinal];
    bool hit = false;
    double first_hit_t = 0.0;
    for (; i < candidates.size() && candidates[i].object == object_ordinal;
         ++i) {
      if (hit) {
        continue;  // Later candidate blocks cannot beat an earlier hit.
      }
      STCOMP_ASSIGN_OR_RETURN(
          const std::vector<TimedPoint> points,
          DecodeBlockWithJunction(store, object.id, candidates[i].block,
                                  object.blocks.size()));
      ++answer.stats.blocks_decoded;
      hit = FirstHitInSpan(points, t0, t1, pred, &first_hit_t);
    }
    if (hit) {
      answer.hits.push_back(QueryHit{object.id, first_hit_t, 0.0});
    }
  }
  Metrics().blocks_considered->Increment(answer.stats.blocks_considered);
  Metrics().blocks_decoded->Increment(answer.stats.blocks_decoded);
  return answer;
}

Result<QueryAnswer> BruteForceQuery(const TrajectoryStore& store,
                                    const QueryRequest& request) {
  STCOMP_RETURN_IF_ERROR(ValidateQuery(request));
  QueryAnswer answer;
  answer.error_bound_m = QueryErrorBound(request, store.codec());
  const double t0 = request.t0;
  const double t1 = request.t1;
  SetPredicate pred;
  pred.type = request.type;
  if (request.type == QueryType::kRange) {
    pred.box = Inflate(request.box, answer.error_bound_m);
  } else if (request.type == QueryType::kCorridor) {
    pred.corridor = &request.corridor;
    pred.corridor_radius = request.radius_m + answer.error_bound_m;
  }
  std::vector<std::pair<double, std::string>> nearest;
  for (const std::string& id : store.ObjectIds()) {
    STCOMP_ASSIGN_OR_RETURN(const Trajectory trajectory, store.Get(id));
    const std::vector<TimedPoint>& points = trajectory.points();
    ++answer.stats.objects_considered;
    STCOMP_ASSIGN_OR_RETURN(const std::vector<BlockSummary>* blocks,
                            store.BlockSummariesOf(id));
    answer.stats.blocks_total += blocks->size();
    answer.stats.blocks_considered += blocks->size();
    answer.stats.blocks_decoded += blocks->size();
    if (points.empty()) {
      continue;
    }
    if (request.type == QueryType::kNearest) {
      double distance = 0.0;
      if (MinDistanceInSpan(points, t0, t1, request.point, &distance)) {
        nearest.emplace_back(distance, id);
      }
      continue;
    }
    double first_hit_t = 0.0;
    if (FirstHitInSpan(points, t0, t1, pred, &first_hit_t)) {
      answer.hits.push_back(QueryHit{id, first_hit_t, 0.0});
    }
  }
  if (request.type == QueryType::kNearest) {
    std::sort(nearest.begin(), nearest.end());
    if (nearest.size() > request.k) {
      nearest.resize(request.k);
    }
    for (const auto& [distance, id] : nearest) {
      answer.hits.push_back(QueryHit{id, 0.0, distance});
    }
  }
  return answer;
}

namespace {

Result<double> ParseWindowBound(std::string_view field, bool low) {
  if (StripWhitespace(field) == "-") {
    return low ? kUnboundedLow : kUnboundedHigh;
  }
  return ParseDouble(field);
}

constexpr std::string_view kQueryUsage =
    "expected window:T0:T1 | range:T0:T1:MIN_X:MIN_Y:MAX_X:MAX_Y | "
    "corridor:T0:T1:RADIUS:X0,Y0;X1,Y1;... | nearest:T0:T1:K:X:Y "
    "(T0/T1 may be '-' for unbounded)";

}  // namespace

Result<QueryRequest> ParseQuerySpec(std::string_view spec) {
  const std::vector<std::string_view> fields = Split(spec, ':');
  if (fields.size() < 3) {
    return InvalidArgumentError("bad query '" + std::string(spec) + "': " +
                                std::string(kQueryUsage));
  }
  QueryRequest request;
  const std::string_view kind = StripWhitespace(fields[0]);
  STCOMP_ASSIGN_OR_RETURN(request.t0, ParseWindowBound(fields[1], true));
  STCOMP_ASSIGN_OR_RETURN(request.t1, ParseWindowBound(fields[2], false));
  if (kind == "window") {
    request.type = QueryType::kTimeWindow;
    if (fields.size() != 3) {
      return InvalidArgumentError(std::string(kQueryUsage));
    }
  } else if (kind == "range") {
    request.type = QueryType::kRange;
    if (fields.size() != 7) {
      return InvalidArgumentError(std::string(kQueryUsage));
    }
    STCOMP_ASSIGN_OR_RETURN(request.box.min.x, ParseDouble(fields[3]));
    STCOMP_ASSIGN_OR_RETURN(request.box.min.y, ParseDouble(fields[4]));
    STCOMP_ASSIGN_OR_RETURN(request.box.max.x, ParseDouble(fields[5]));
    STCOMP_ASSIGN_OR_RETURN(request.box.max.y, ParseDouble(fields[6]));
  } else if (kind == "corridor") {
    request.type = QueryType::kCorridor;
    if (fields.size() != 5) {
      return InvalidArgumentError(std::string(kQueryUsage));
    }
    STCOMP_ASSIGN_OR_RETURN(request.radius_m, ParseDouble(fields[3]));
    for (std::string_view waypoint : Split(fields[4], ';')) {
      const std::vector<std::string_view> coords = Split(waypoint, ',');
      if (coords.size() != 2) {
        return InvalidArgumentError("bad corridor waypoint '" +
                                    std::string(waypoint) + "': " +
                                    std::string(kQueryUsage));
      }
      Vec2 position;
      STCOMP_ASSIGN_OR_RETURN(position.x, ParseDouble(coords[0]));
      STCOMP_ASSIGN_OR_RETURN(position.y, ParseDouble(coords[1]));
      request.corridor.push_back(position);
    }
  } else if (kind == "nearest") {
    request.type = QueryType::kNearest;
    if (fields.size() != 6) {
      return InvalidArgumentError(std::string(kQueryUsage));
    }
    STCOMP_ASSIGN_OR_RETURN(const long long k, ParseInt(fields[3]));
    if (k < 1) {
      return InvalidArgumentError("nearest k must be >= 1");
    }
    request.k = static_cast<size_t>(k);
    STCOMP_ASSIGN_OR_RETURN(request.point.x, ParseDouble(fields[4]));
    STCOMP_ASSIGN_OR_RETURN(request.point.y, ParseDouble(fields[5]));
  } else {
    return InvalidArgumentError("unknown query type '" + std::string(kind) +
                                "': " + std::string(kQueryUsage));
  }
  STCOMP_RETURN_IF_ERROR(ValidateQuery(request));
  return request;
}

std::string RenderQueryAnswerJson(const QueryRequest& request,
                                  const QueryAnswer& answer) {
  std::string out = "{\"type\":\"";
  out += QueryTypeName(request.type);
  out += StrFormat("\",\"error_bound_m\":%.17g,\"hits\":[",
                   answer.error_bound_m);
  bool first = true;
  for (const QueryHit& hit : answer.hits) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"id\":\"" + obs::JsonEscape(hit.id) + "\"";
    if (request.type == QueryType::kNearest) {
      out += StrFormat(",\"distance_m\":%.17g", hit.distance_m);
    } else {
      out += StrFormat(",\"first_hit_t\":%.17g", hit.first_hit_t);
    }
    out += "}";
  }
  out += StrFormat(
      "],\"stats\":{\"objects_considered\":%llu,\"blocks_total\":%llu,"
      "\"blocks_considered\":%llu,\"blocks_decoded\":%llu}}",
      static_cast<unsigned long long>(answer.stats.objects_considered),
      static_cast<unsigned long long>(answer.stats.blocks_total),
      static_cast<unsigned long long>(answer.stats.blocks_considered),
      static_cast<unsigned long long>(answer.stats.blocks_decoded));
  return out;
}

std::string RenderQueryzJson() {
  const QueryMetricsSet& metrics = Metrics();
  obs::HistogramSample latency;
  latency.upper_bounds = metrics.seconds->upper_bounds();
  latency.buckets = metrics.seconds->bucket_counts();
  latency.count = metrics.seconds->count();
  latency.sum = metrics.seconds->sum();
  const double mean =
      latency.count == 0 ? 0.0 : latency.sum / static_cast<double>(latency.count);
  std::string out = "{\"queries\":{";
  static constexpr QueryType kTypes[] = {
      QueryType::kTimeWindow, QueryType::kRange, QueryType::kCorridor,
      QueryType::kNearest};
  bool first = true;
  for (QueryType type : kTypes) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    out += QueryTypeName(type);
    out += StrFormat("\":%llu",
                     static_cast<unsigned long long>(
                         metrics.by_type[static_cast<size_t>(type)]->value()));
  }
  out += StrFormat(
      "},\"blocks_considered\":%llu,\"blocks_decoded\":%llu,"
      "\"latency_seconds\":{\"count\":%llu,\"mean\":%.9g,\"p50\":%.9g,"
      "\"p95\":%.9g,\"p99\":%.9g}}",
      static_cast<unsigned long long>(metrics.blocks_considered->value()),
      static_cast<unsigned long long>(metrics.blocks_decoded->value()),
      static_cast<unsigned long long>(latency.count), mean,
      obs::ApproximateQuantile(latency, 0.5),
      obs::ApproximateQuantile(latency, 0.95),
      obs::ApproximateQuantile(latency, 0.99));
  return out;
}

}  // namespace stcomp
