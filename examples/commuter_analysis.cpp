// Rush-hour commuter analysis — the paper's principal motivating scenario
// (Sec. 1: "urban traffic, specifically commuter traffic, and rush hour
// analysis").
//
// Simulates a fleet of commuters over a shared road network, compresses
// every trace with each algorithm family, loads the compressed fleet into
// the trajectory store, and answers the analyst questions the paper
// motivates: where is everyone at time T, who passed through the city
//-centre box, and how much storage did compression save at what error.
//
//   ./examples/commuter_analysis [--fleet=25] [--epsilon=40]

#include <cstdio>
#include <map>
#include <vector>

#include "stcomp/algo/registry.h"
#include "stcomp/algo/time_ratio.h"
#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/common/strings.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/exp/table.h"
#include "stcomp/sim/gps_noise.h"
#include "stcomp/sim/road_network.h"
#include "stcomp/sim/trip_generator.h"
#include "stcomp/store/trajectory_store.h"

int main(int argc, char** argv) {
  int fleet = 25;
  double epsilon = 40.0;
  stcomp::FlagParser flags("commuter fleet analysis");
  flags.AddInt("fleet", &fleet, "number of commuters");
  flags.AddDouble("epsilon", &epsilon, "distance threshold in metres");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // Morning rush hour on one road network.
  stcomp::RoadNetworkConfig network_config;
  network_config.grid_width = 28;
  network_config.grid_height = 28;
  network_config.spacing_m = 500.0;
  const stcomp::RoadNetwork network =
      stcomp::RoadNetwork::Generate(network_config, /*seed=*/7);
  stcomp::Rng rng(1234);

  std::vector<stcomp::Trajectory> fleet_traces;
  for (int i = 0; i < fleet; ++i) {
    stcomp::TripConfig trip;
    trip.target_length_m = rng.NextUniform(6000.0, 18000.0);
    trip.start_time_s = rng.NextUniform(0.0, 1800.0);  // Staggered departures.
    trip.stop_probability = 0.6;                        // Rush hour.
    const stcomp::Result<stcomp::Trajectory> trace =
        stcomp::GenerateTrip(network, trip, -1, &rng);
    if (!trace.ok()) {
      --i;
      continue;
    }
    stcomp::Trajectory noisy =
        stcomp::AddGpsNoise(*trace, stcomp::GpsNoiseConfig{}, &rng);
    noisy.set_name(stcomp::StrFormat("commuter-%d", i));
    fleet_traces.push_back(std::move(noisy));
  }

  // Compress the whole fleet with each algorithm and account storage.
  stcomp::Table table({"algorithm", "compression_%", "mean_sync_err_m",
                       "store_bytes", "bytes/commuter"});
  for (const char* name : {"ndp", "nopw", "td-tr", "opw-tr", "opw-sp"}) {
    const stcomp::algo::AlgorithmInfo* info =
        stcomp::algo::FindAlgorithm(name).value();
    stcomp::algo::AlgorithmParams params;
    params.epsilon_m = epsilon;
    params.speed_threshold_mps = 10.0;
    stcomp::TrajectoryStore store;
    double compression_sum = 0.0;
    double error_sum = 0.0;
    for (const stcomp::Trajectory& trace : fleet_traces) {
      const stcomp::algo::IndexList kept = info->run(trace, params);
      const stcomp::Evaluation eval = stcomp::Evaluate(trace, kept).value();
      compression_sum += eval.compression_percent;
      error_sum += eval.sync_error_mean_m;
      STCOMP_CHECK_OK(store.Insert(trace.name(), trace.Subset(kept)));
    }
    table.AddRow(
        {name,
         stcomp::StrFormat("%.1f", compression_sum / fleet_traces.size()),
         stcomp::StrFormat("%.2f", error_sum / fleet_traces.size()),
         stcomp::StrFormat("%zu", store.StorageBytes()),
         stcomp::StrFormat("%.0f", static_cast<double>(store.StorageBytes()) /
                                       fleet_traces.size())});
  }
  std::printf("fleet of %zu commuters, epsilon = %.0f m\n\n%s\n",
              fleet_traces.size(), epsilon, table.ToString().c_str());

  // Analyst queries against the TD-TR-compressed store.
  stcomp::TrajectoryStore store;
  for (const stcomp::Trajectory& trace : fleet_traces) {
    store.Insert(trace.name(),
                 trace.Subset(stcomp::algo::TdTr(trace, epsilon)));
  }
  // Who is inside the city-centre box at any point of their trip?
  const stcomp::BoundingBox centre{{5000.0, 5000.0}, {9000.0, 9000.0}};
  const std::vector<std::string> through_centre = store.ObjectsInBox(centre);
  std::printf("%zu/%zu commuters pass through the city-centre box\n",
              through_centre.size(), store.object_count());

  // Snapshot: positions 20 minutes into the rush hour.
  const double snapshot_t = 1200.0;
  int moving = 0;
  for (const std::string& id : store.ObjectIds()) {
    if (store.PositionAt(id, snapshot_t).ok()) {
      ++moving;
    }
  }
  std::printf("at t=%.0f s, %d commuters are en route\n", snapshot_t, moving);
  return 0;
}
