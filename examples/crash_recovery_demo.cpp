// Crash-safe persistence end to end (DESIGN.md §13): ingest a fleet feed
// into a SegmentStore, kill the process mid-write with a seeded CrashPlan
// (a torn write, the nastiest fate), then reopen the directory and show
// salvage recovery bringing back every committed batch. A second act
// checkpoints a live streaming compressor and resumes it in a "new
// process", proving the resumed output is bit-identical.
//
//   ./crash_recovery_demo [--seed=N] [--fixes=N] [--dir=path]
//
// Exits nonzero if the crash does not fire, recovery loses a committed
// batch, or the resumed stream diverges.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "stcomp/store/segment_store.h"
#include "stcomp/stream/opening_window_stream.h"
#include "stcomp/testing/crash_plan.h"

namespace {

using stcomp::Codec;
using stcomp::SegmentStore;
using stcomp::Status;
using stcomp::TimedPoint;
using stcomp::testing::CrashFate;
using stcomp::testing::CrashPlan;
using stcomp::testing::CrashPoint;

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

TimedPoint Fix(int tick, int object) {
  return TimedPoint(1.0 * tick, 3.0 * tick + 100.0 * object,
                    -0.5 * tick + 10.0 * object);
}

// Feeds `fixes` batches into the store, committing every batch; stops at
// the first error (the injected crash) and returns how many batches were
// acknowledged as committed.
size_t Ingest(SegmentStore* store, int fixes, Status* error) {
  size_t committed = 0;
  for (int tick = 1; tick <= fixes; ++tick) {
    for (int object = 0; object < 2; ++object) {
      *error = store->Append("bus-" + std::to_string(object),
                             Fix(tick, object));
      if (!error->ok()) {
        return committed;
      }
    }
    *error = store->Commit();
    if (!error->ok()) {
      return committed;
    }
    ++committed;
  }
  return committed;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 20260805;
  int fixes = 50;
  std::string dir =
      (std::filesystem::temp_directory_path() / "crash_recovery_demo")
          .string();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--fixes=", 0) == 0) {
      fixes = std::stoi(arg.substr(8));
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  std::filesystem::remove_all(dir);

  // Act 1 — the doomed process: commit batches until a torn write kills it
  // somewhere in the middle of the ingest.
  CrashPlan plan(seed, CrashPoint{static_cast<size_t>(3 * fixes) / 2,
                                  CrashFate::kTornWrite});
  size_t committed = 0;
  {
    SegmentStore::Options options;
    options.codec = Codec::kRaw;
    options.write_hook = plan.Hook();
    SegmentStore store(options);
    if (const Status status = store.Open(dir); !status.ok()) {
      return Fail("open", status);
    }
    Status error;
    committed = Ingest(&store, fixes, &error);
    if (error.ok() || !plan.fired()) {
      std::fprintf(stderr, "crash never fired (%s)\n",
                   plan.Describe().c_str());
      return 1;
    }
    std::printf("process died: %s\n  after %zu acknowledged commits: %s\n",
                plan.Describe().c_str(), committed,
                error.ToString().c_str());
  }

  // Act 2 — the fresh process: reopen, salvage, verify nothing committed
  // was lost.
  {
    SegmentStore::Options options;
    options.codec = Codec::kRaw;
    SegmentStore store(options);
    if (const Status status = store.Open(dir); !status.ok()) {
      return Fail("recovery open", status);
    }
    std::printf("%s\n", store.last_recovery().Describe().c_str());
    const size_t replayed = store.last_recovery().wal_records_replayed;
    if (replayed < 2 * committed) {
      std::fprintf(stderr,
                   "LOST COMMITTED DATA: %zu records recovered, %zu "
                   "acknowledged\n",
                   replayed, 2 * committed);
      return 1;
    }
    if (const Status status = store.Checkpoint(); !status.ok()) {
      return Fail("checkpoint", status);
    }
    std::printf("recovered %zu objects, checkpointed clean\n",
                store.store().object_count());
  }
  const stcomp::Result<stcomp::FsckReport> fsck = SegmentStore::Fsck(dir);
  if (!fsck.ok()) {
    return Fail("fsck", fsck.status());
  }
  std::printf("%s\n", fsck->Describe().c_str());

  // Act 3 — checkpointed streaming state: save a live compressor, resume
  // it in a "new process", and compare against the uninterrupted run.
  std::vector<TimedPoint> reference;
  {
    stcomp::OpeningWindowStream stream(25.0, stcomp::algo::BreakPolicy::kNormal,
                                       stcomp::StreamCriterion::kSynchronized);
    for (int tick = 1; tick <= fixes; ++tick) {
      if (const Status status = stream.Push(Fix(tick, 0), &reference);
          !status.ok()) {
        return Fail("reference push", status);
      }
    }
    stream.Finish(&reference);
  }
  std::vector<TimedPoint> resumed;
  std::string state;
  {
    stcomp::OpeningWindowStream stream(25.0, stcomp::algo::BreakPolicy::kNormal,
                                       stcomp::StreamCriterion::kSynchronized);
    for (int tick = 1; tick <= fixes / 2; ++tick) {
      if (const Status status = stream.Push(Fix(tick, 0), &resumed);
          !status.ok()) {
        return Fail("first-half push", status);
      }
    }
    if (const Status status = stream.SaveState(&state); !status.ok()) {
      return Fail("save state", status);
    }
  }
  {
    stcomp::OpeningWindowStream stream(25.0, stcomp::algo::BreakPolicy::kNormal,
                                       stcomp::StreamCriterion::kSynchronized);
    if (const Status status = stream.RestoreState(state); !status.ok()) {
      return Fail("restore state", status);
    }
    for (int tick = fixes / 2 + 1; tick <= fixes; ++tick) {
      if (const Status status = stream.Push(Fix(tick, 0), &resumed);
          !status.ok()) {
        return Fail("second-half push", status);
      }
    }
    stream.Finish(&resumed);
  }
  if (reference.size() != resumed.size() ||
      (!reference.empty() &&
       std::memcmp(reference.data(), resumed.data(),
                   reference.size() * sizeof(TimedPoint)) != 0)) {
    std::fprintf(stderr, "resumed stream diverged from the reference run\n");
    return 1;
  }
  std::printf(
      "streaming checkpoint resumed bit-identical: %zu committed points "
      "(%d-byte state blob)\n",
      resumed.size(), static_cast<int>(state.size()));

  std::filesystem::remove_all(dir);
  return 0;
}
