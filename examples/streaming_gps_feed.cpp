// Online compression of a live GPS feed — the paper's opening-window
// algorithms "are online algorithms ... typically used to compress data
// streams in real-time" (Sec. 2.2).
//
// Feeds a simulated receiver fix-by-fix through OPW-TR, OPW-SP and
// dead-reckoning compressors side by side, reporting commits and working
// memory as the stream progresses, then compares the final results.
//
//   ./examples/streaming_gps_feed [--epsilon=30] [--speed-threshold=10]

#include <cstdio>
#include <memory>
#include <vector>

#include "stcomp/common/check.h"
#include "stcomp/common/flags.h"
#include "stcomp/error/evaluation.h"
#include "stcomp/sim/paper_dataset.h"
#include "stcomp/stream/dead_reckoning_stream.h"
#include "stcomp/stream/opening_window_stream.h"

int main(int argc, char** argv) {
  double epsilon = 30.0;
  double speed_threshold = 10.0;
  stcomp::FlagParser flags("streaming GPS feed demo");
  flags.AddDouble("epsilon", &epsilon, "distance threshold in metres");
  flags.AddDouble("speed-threshold", &speed_threshold,
                  "speed-difference threshold in m/s (OPW-SP)");
  if (const stcomp::Status status = flags.Parse(argc, argv); !status.ok()) {
    return status.code() == stcomp::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  stcomp::PaperDatasetConfig config;
  config.num_trajectories = 1;
  const stcomp::Trajectory feed = stcomp::GeneratePaperDataset(config).front();
  std::printf("live feed: %zu fixes at ~10 s spacing (%.0f s total)\n\n",
              feed.size(), feed.Duration());

  struct Lane {
    std::unique_ptr<stcomp::OnlineCompressor> compressor;
    std::vector<stcomp::TimedPoint> committed;
    size_t max_buffer = 0;
  };
  std::vector<Lane> lanes;
  lanes.push_back({std::make_unique<stcomp::OpeningWindowStream>(
                       epsilon, stcomp::algo::BreakPolicy::kNormal,
                       stcomp::StreamCriterion::kSynchronized),
                   {},
                   0});
  lanes.push_back({std::make_unique<stcomp::OpeningWindowStream>(
                       epsilon, stcomp::algo::BreakPolicy::kNormal,
                       stcomp::StreamCriterion::kSpatiotemporal,
                       speed_threshold),
                   {},
                   0});
  lanes.push_back({std::make_unique<stcomp::DeadReckoningStream>(epsilon),
                   {},
                   0});

  // Pump the stream; print a progress line every 50 fixes.
  size_t fix_count = 0;
  for (const stcomp::TimedPoint& fix : feed.points()) {
    ++fix_count;
    for (Lane& lane : lanes) {
      STCOMP_CHECK_OK(lane.compressor->Push(fix, &lane.committed));
      lane.max_buffer =
          std::max(lane.max_buffer, lane.compressor->buffered_points());
    }
    if (fix_count % 50 == 0) {
      std::printf("after %4zu fixes:", fix_count);
      for (const Lane& lane : lanes) {
        std::printf("  %s: %zu kept (%zu buffered)",
                    std::string(lane.compressor->name()).c_str(),
                    lane.committed.size(),
                    lane.compressor->buffered_points());
      }
      std::printf("\n");
    }
  }
  for (Lane& lane : lanes) {
    lane.compressor->Finish(&lane.committed);
  }

  std::printf("\nfinal results (epsilon = %.0f m):\n", epsilon);
  for (const Lane& lane : lanes) {
    const stcomp::Trajectory compressed =
        stcomp::Trajectory::FromPoints(lane.committed).value();
    // Map committed points back to original indices for evaluation.
    stcomp::algo::IndexList kept;
    size_t cursor = 0;
    for (size_t i = 0; i < feed.size(); ++i) {
      if (cursor < compressed.size() && feed[i].t == compressed[cursor].t) {
        kept.push_back(static_cast<int>(i));
        ++cursor;
      }
    }
    const stcomp::Evaluation eval = stcomp::Evaluate(feed, kept).value();
    std::printf(
        "  %-15s kept %3zu/%3zu  compression %5.1f%%  mean sync error %6.2f "
        "m  peak buffer %zu points\n",
        std::string(lane.compressor->name()).c_str(), eval.kept_points,
        eval.original_points, eval.compression_percent,
        eval.sync_error_mean_m, lane.max_buffer);
  }
  return 0;
}
